//! Structural resource models of the platform devices.
//!
//! Each estimator mirrors the RTL structure the paper describes for
//! the device (register benches, LFSRs, packet generators, network
//! interfaces, histogram RAMs, latency analyzers, Xpipes-style
//! switches with retransmission buffers and CRC) and maps it to
//! LUT/FF/BRAM counts through [`crate::primitives`].
//!
//! The models are **calibrated** against the paper's Table 1: two
//! constants absorb what a structural count cannot see (control glue,
//! logic replication, placement overhead) — shadow copies of run-time
//! parameters in the TGs and [`PORT_CONTROL_OVERHEAD`] per switch
//! port. With those fixed once, every Table 1 entry lands within a few
//! per cent, and the models extrapolate to other parameterizations
//! (deeper buffers, wider flits, higher radix), which is what the
//! design-space example exercises.

use crate::primitives::{
    adder, bus_slave, comparator, counter, fifo_lutram, fsm, lfsr, memory_bram, mux, register,
    Resources,
};

/// Flit width on the wire, in bits (32 data + 2 type bits).
pub const FLIT_BITS: u64 = 34;

/// Calibrated per-port control overhead of the switch (flow control
/// handshake, go-back-N control, routing glue): see the module docs.
pub const PORT_CONTROL_OVERHEAD: Resources = Resources::new(33, 33);

/// Parameters of a stochastic traffic generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StochasticTgParams {
    /// Bus-visible parameter/counter registers.
    pub registers: u64,
    /// Width of the hardware PRNGs.
    pub lfsr_bits: u64,
    /// Source-queue depth in packet descriptors.
    pub queue_depth: u64,
}

impl Default for StochasticTgParams {
    fn default() -> Self {
        StochasticTgParams {
            registers: 20, // the layout in nocem-traffic::registers
            lfsr_bits: 32,
            queue_depth: 8,
        }
    }
}

/// Resources of a stochastic TG (paper: 719 slices).
pub fn tg_stochastic(p: StochasticTgParams) -> Resources {
    let mut r = Resources::ZERO;
    // Bench of registers, plus shadow copies of six run-time-critical
    // parameters (double buffering for safe updates while running).
    r += register(p.registers * 32);
    r += register(6 * 32);
    // Bus slave with full-width readback.
    r += bus_slave(p.registers, 32);
    // Two LFSRs for random initialization (interval and length draws).
    r += lfsr(p.lfsr_bits, 4) * 2;
    // Packet generation FSM and its working counters.
    r += fsm(8, 4);
    r += counter(32) * 3; // gap, length, budget
    r += comparator(16) * 2; // probability thresholds
                             // Free-running timestamp for release stamping.
    r += register(64);
    // Source queue of packet descriptors (64-bit each).
    r += fifo_lutram(64, p.queue_depth);
    // Network interface: serializer counters and flit-type mux.
    r += counter(16) * 2;
    r += mux(4, FLIT_BITS);
    r
}

/// Parameters of a trace-driven traffic generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceTgParams {
    /// Bus-visible registers.
    pub registers: u64,
    /// Trace event width in bits (cycle, dst, flow, length).
    pub event_bits: u64,
    /// Events held in on-chip trace memory.
    pub trace_depth: u64,
    /// Prefetch FIFO depth in events.
    pub prefetch_depth: u64,
}

impl Default for TraceTgParams {
    fn default() -> Self {
        TraceTgParams {
            registers: 12,
            event_bits: 80,
            trace_depth: 4_096,
            prefetch_depth: 16,
        }
    }
}

/// Resources of a trace-driven TG (paper: 652 slices).
pub fn tg_trace_driven(p: TraceTgParams) -> Resources {
    let mut r = Resources::ZERO;
    r += register(p.registers * 32);
    r += bus_slave(p.registers, 32);
    // Trace storage in BRAM plus its address counter.
    r += memory_bram(p.event_bits, p.trace_depth);
    r += counter(16);
    // Prefetch FIFO and double-buffered event decode registers.
    r += fifo_lutram(p.event_bits, p.prefetch_depth);
    r += register(p.event_bits * 2);
    r += register(p.event_bits * 2); // decode pipeline
    r += register(p.event_bits * 2); // loop-replay history (trace wraparound)
                                     // Replay timing: cycle comparator and timestamp offset.
    r += comparator(32);
    r += register(64);
    // Source queue + network interface (same as the stochastic TG).
    r += fifo_lutram(64, 8);
    r += counter(16) * 2;
    r += mux(4, FLIT_BITS);
    r
}

/// Parameters of a stochastic receptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StochasticTrParams {
    /// Histogram bins per histogram (two histograms: packet length and
    /// inter-arrival).
    pub histogram_bins: u64,
    /// Bus-visible registers.
    pub registers: u64,
}

impl Default for StochasticTrParams {
    fn default() -> Self {
        StochasticTrParams {
            histogram_bins: 32,
            registers: 8,
        }
    }
}

/// Resources of a stochastic TR (paper: 371 slices).
pub fn tr_stochastic(p: StochasticTrParams) -> Resources {
    let mut r = Resources::ZERO;
    // Reassembly state and sequence checking.
    r += register(64);
    r += comparator(32) * 2;
    // Running counters: flits, packets, first/last activity.
    r += counter(48) * 4;
    // Two histograms in distributed RAM plus bin-index arithmetic.
    let hist_luts = (p.histogram_bins * 32).div_ceil(16);
    r += Resources::new(hist_luts, 0) * 2;
    r += adder(16) * 2;
    r += register(2 * 32); // last-arrival / scratch registers
    r += bus_slave(p.registers, 32);
    r
}

/// Parameters of a trace-driven receptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceTrParams {
    /// Log2 latency-histogram bins.
    pub latency_bins: u64,
    /// Congestion counters (monitored links).
    pub congestion_counters: u64,
    /// Bus-visible registers.
    pub registers: u64,
    /// In-flight packet table depth (timestamp matching).
    pub inflight_depth: u64,
}

impl Default for TraceTrParams {
    fn default() -> Self {
        TraceTrParams {
            latency_bins: 32,
            congestion_counters: 4,
            registers: 16,
            inflight_depth: 16,
        }
    }
}

/// Resources of a trace-driven TR (paper: 690 slices).
pub fn tr_trace_driven(p: TraceTrParams) -> Resources {
    let mut r = Resources::ZERO;
    // Reassembly state and sequence checking.
    r += register(64);
    r += comparator(32);
    // Latency analyzer: accumulator, extremes, count, log2 histogram.
    r += counter(48); // sample count
    r += adder(48) + register(48); // latency sum
    r += register(2 * 32) + comparator(16) * 2; // min / max
    let hist_luts = (p.latency_bins * 32).div_ceil(16);
    r += Resources::new(hist_luts + 16, 0); // histogram + priority encoder
                                            // Congestion counters.
    r += counter(48) * p.congestion_counters;
    // In-flight timestamp matching table.
    r += fifo_lutram(64, p.inflight_depth);
    // Register bench and bus slave.
    r += register(p.registers * 32);
    r += bus_slave(p.registers, 32);
    r
}

/// Resources of the control module (paper: 18 slices).
///
/// Only the start/stop handshake and the cycle prescaler live in
/// fabric; the counters software polls are mirrored through the
/// processor bridge, which is why the paper's control module is tiny.
pub fn control_module() -> Resources {
    register(4) + counter(20) + Resources::new(4, 0)
}

/// Parameters of one switch instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchParams {
    /// Input ports.
    pub inputs: u64,
    /// Output ports.
    pub outputs: u64,
    /// Input buffer depth in flits, *per virtual channel*.
    pub fifo_depth: u64,
    /// Routing-table entries (flows).
    pub flows: u64,
    /// Virtual channels per physical port. 1 reproduces the paper's
    /// single-VC Xpipes switch (Table 1); higher values replicate the
    /// per-VC buffers and per-(output, VC) credit/worm state the
    /// platform's multi-VC switch model carries.
    pub num_vcs: u64,
}

impl SwitchParams {
    /// The default parameterization used by the paper platform
    /// (buffer depth 4, 8 flow entries, one VC).
    pub fn new(inputs: u64, outputs: u64) -> Self {
        SwitchParams {
            inputs,
            outputs,
            fifo_depth: 4,
            flows: 8,
            num_vcs: 1,
        }
    }

    /// The same switch with `num_vcs` virtual channels per port.
    ///
    /// # Panics
    ///
    /// Panics if `num_vcs == 0`.
    #[must_use]
    pub fn with_vcs(mut self, num_vcs: u64) -> Self {
        assert!(num_vcs >= 1, "a switch needs at least one VC");
        self.num_vcs = num_vcs;
        self
    }
}

/// Resources of one Xpipes-style switch.
///
/// Buffer area scales with `num_vcs × fifo_depth` per input (one FIFO
/// per VC), and every output replicates its credit counter, wormhole
/// state and VC-allocation arbiter per VC — the Table 1 gap the
/// ROADMAP noted after the virtual-channel refactor. With one VC the
/// model is unchanged from the calibrated Table 1 reproduction.
pub fn switch(p: SwitchParams) -> Resources {
    assert!(p.num_vcs >= 1, "a switch needs at least one VC");
    let mut r = Resources::ZERO;
    // Per input: per-VC buffers and worm state, CRC check, routing
    // table, pipeline register.
    let route_table_luts = (p.flows * 4).div_ceil(16).max(1);
    let per_input = fifo_lutram(FLIT_BITS, p.fifo_depth) * p.num_vcs
        + Resources::new(20, 0) // CRC check
        + Resources::new(route_table_luts, 8 * p.num_vcs) // table + per-VC worm state
        + register(FLIT_BITS) // input pipeline stage
        + PORT_CONTROL_OVERHEAD;
    r += per_input * p.inputs;
    // Per output: per-VC credit counters and VC-allocation arbiters
    // (over input VCs), one switch-allocation stage, crossbar column,
    // retransmission buffer, CRC generate, output register.
    let per_output = Resources::new(2 * p.inputs * p.num_vcs, 2 * p.num_vcs) // arbiters
        + counter(3) * p.num_vcs // per-VC credits
        + mux(p.inputs, FLIT_BITS) // crossbar column
        + fifo_lutram(FLIT_BITS, 2 * p.fifo_depth) // retransmission buffer
        + Resources::new(20, 0) // CRC generate
        + register(FLIT_BITS)
        + PORT_CONTROL_OVERHEAD;
    r += per_output * p.outputs;
    // Switch allocation adds a per-output VC round-robin pointer once
    // more than one VC competes for the physical link.
    if p.num_vcs > 1 {
        r += (register(8) + mux(p.num_vcs, 4)) * p.outputs;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fpga::XC2VP20;

    /// Relative error helper.
    fn within(actual: u64, expected: u64, tolerance: f64) -> bool {
        let a = actual as f64;
        let e = expected as f64;
        (a - e).abs() / e <= tolerance
    }

    #[test]
    fn tg_stochastic_matches_table1() {
        let slices = XC2VP20.slices_for(tg_stochastic(StochasticTgParams::default()));
        assert!(
            within(slices, 719, 0.12),
            "TG stochastic: {slices} slices vs paper 719"
        );
    }

    #[test]
    fn tg_trace_matches_table1() {
        let slices = XC2VP20.slices_for(tg_trace_driven(TraceTgParams::default()));
        assert!(
            within(slices, 652, 0.12),
            "TG trace driven: {slices} slices vs paper 652"
        );
    }

    #[test]
    fn tr_stochastic_matches_table1() {
        let slices = XC2VP20.slices_for(tr_stochastic(StochasticTrParams::default()));
        assert!(
            within(slices, 371, 0.12),
            "TR stochastic: {slices} slices vs paper 371"
        );
    }

    #[test]
    fn tr_trace_matches_table1() {
        let slices = XC2VP20.slices_for(tr_trace_driven(TraceTrParams::default()));
        assert!(
            within(slices, 690, 0.12),
            "TR trace driven: {slices} slices vs paper 690"
        );
    }

    #[test]
    fn control_module_matches_table1() {
        let slices = XC2VP20.slices_for(control_module());
        assert!(
            within(slices.max(1), 18, 0.25),
            "control module: {slices} slices vs paper 18"
        );
    }

    #[test]
    fn device_ranking_matches_paper() {
        // Table 1 ordering: TG stoch > TR trace > TG trace > TR stoch
        // >> control.
        let tg_s = XC2VP20.slices_for(tg_stochastic(StochasticTgParams::default()));
        let tg_t = XC2VP20.slices_for(tg_trace_driven(TraceTgParams::default()));
        let tr_s = XC2VP20.slices_for(tr_stochastic(StochasticTrParams::default()));
        let tr_t = XC2VP20.slices_for(tr_trace_driven(TraceTrParams::default()));
        let ctl = XC2VP20.slices_for(control_module());
        assert!(tg_s > tg_t, "TG stochastic bigger than trace TG");
        assert!(tr_t > tr_s, "trace TR bigger than stochastic TR");
        assert!(ctl < tr_s / 5, "control is tiny");
    }

    #[test]
    fn switch_scales_with_ports_and_depth() {
        let base = XC2VP20.slices_for(switch(SwitchParams::new(3, 3)));
        let radix = XC2VP20.slices_for(switch(SwitchParams::new(6, 6)));
        assert!(radix > 3 * base / 2, "radix scaling: {base} -> {radix}");
        let deep = XC2VP20.slices_for(switch(SwitchParams {
            fifo_depth: 16,
            ..SwitchParams::new(3, 3)
        }));
        assert!(deep > base, "buffer scaling: {base} -> {deep}");
    }

    #[test]
    fn switch_scales_with_virtual_channels() {
        let one = switch(SwitchParams::new(4, 4));
        let two = switch(SwitchParams::new(4, 4).with_vcs(2));
        let four = switch(SwitchParams::new(4, 4).with_vcs(4));
        // More VCs replicate buffers and credit state: strictly more
        // area, and the input-buffer contribution grows linearly.
        assert!(two.luts > one.luts && two.ffs > one.ffs);
        assert!(four.luts > two.luts && four.ffs > two.ffs);
        let buffer = |vcs: u64| fifo_lutram(FLIT_BITS, 4).luts * vcs * 4;
        assert!(
            four.luts - one.luts >= buffer(4) - buffer(1),
            "per-VC buffers must dominate the VC cost"
        );
        // A 2-VC switch with half-depth buffers stays close to the
        // single-VC switch: total buffering is the trade-off knob.
        let two_half = switch(SwitchParams {
            fifo_depth: 2,
            ..SwitchParams::new(4, 4).with_vcs(2)
        });
        assert!(
            two_half.luts < two.luts,
            "halving per-VC depth must shed buffer area"
        );
    }

    #[test]
    fn single_vc_switch_cost_is_unchanged_from_table1_calibration() {
        // Pinned regression: the exact resource count of the paper
        // setup's 4x3 switch before the VC extension. The num_vcs == 1
        // path of `switch()` must keep producing it bit for bit, or
        // the Table 1 calibration silently drifts.
        let r = switch(SwitchParams::new(4, 3));
        assert_eq!(
            (r.luts, r.ffs, r.bram_bits),
            (789, 588, 0),
            "single-VC switch area drifted: {r:?}"
        );
        assert_eq!(r, switch(SwitchParams::new(4, 3).with_vcs(1)));
    }

    #[test]
    fn paper_platform_switch_mix_totals_about_3000_slices() {
        // Port counts of the paper-setup switches (see
        // nocem-topology::builders::paper_setup).
        let mix = [(3, 2), (4, 3), (2, 4), (3, 2), (4, 3), (2, 4)];
        let total: u64 = mix
            .iter()
            .map(|&(i, o)| XC2VP20.slices_for(switch(SwitchParams::new(i, o))))
            .sum();
        // Table 1 implies 7387 - 4x719 - 4x371 - 18 = 3009 slices for
        // the six switches.
        assert!(
            within(total, 3_009, 0.10),
            "six switches: {total} slices vs implied 3009"
        );
    }
}
