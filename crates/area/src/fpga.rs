//! FPGA device models: slice packing and utilization for the
//! Virtex-II Pro family the paper targets.

use crate::primitives::Resources;

/// A Virtex-II Pro part.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FpgaDevice {
    /// Part name (e.g. `"XC2VP20"`).
    pub name: &'static str,
    /// Total slices (each 2 LUTs + 2 FFs).
    pub slices: u64,
    /// Total block-RAM bits.
    pub bram_bits: u64,
}

/// XC2VP7: 4 928 slices.
pub const XC2VP7: FpgaDevice = FpgaDevice {
    name: "XC2VP7",
    slices: 4_928,
    bram_bits: 44 * 18 * 1024,
};

/// XC2VP20: 9 280 slices — the part whose utilization percentages
/// match the paper's Table 1 (719 slices = 7.8 %, platform 7 387
/// slices ≈ 80 %).
pub const XC2VP20: FpgaDevice = FpgaDevice {
    name: "XC2VP20",
    slices: 9_280,
    bram_bits: 88 * 18 * 1024,
};

/// XC2VP30: 13 696 slices (the larger part of the same board family).
pub const XC2VP30: FpgaDevice = FpgaDevice {
    name: "XC2VP30",
    slices: 13_696,
    bram_bits: 136 * 18 * 1024,
};

/// XC2VP50: 23 616 slices ("with larger FPGAs, it will be possible to
/// emulate very large NoCs").
pub const XC2VP50: FpgaDevice = FpgaDevice {
    name: "XC2VP50",
    slices: 23_616,
    bram_bits: 232 * 18 * 1024,
};

/// All modelled parts, smallest first.
pub const ALL_DEVICES: [FpgaDevice; 4] = [XC2VP7, XC2VP20, XC2VP30, XC2VP50];

impl FpgaDevice {
    /// Maps a resource bag to occupied slices.
    ///
    /// A Virtex-II slice holds 2 LUTs and 2 FFs. Perfect LUT/FF
    /// pairing would give `max(luts, ffs) / 2`; real placements pack
    /// imperfectly, so half of the smaller resource is assumed not to
    /// share slices with the larger one:
    ///
    /// ```text
    /// slices = ceil((max(l, f) + min(l, f) / 2) / 2)
    /// ```
    pub fn slices_for(&self, r: Resources) -> u64 {
        let hi = r.luts.max(r.ffs);
        let lo = r.luts.min(r.ffs);
        (hi + lo / 2).div_ceil(2)
    }

    /// Utilization of this part by `r`, as a fraction of total slices.
    pub fn utilization(&self, r: Resources) -> f64 {
        self.slices_for(r) as f64 / self.slices as f64
    }

    /// Whether the design fits (slices and BRAM).
    pub fn fits(&self, r: Resources) -> bool {
        self.slices_for(r) <= self.slices && r.bram_bits <= self.bram_bits
    }

    /// The smallest modelled part that fits `r`, if any.
    pub fn smallest_fitting(r: Resources) -> Option<FpgaDevice> {
        ALL_DEVICES.into_iter().find(|d| d.fits(r))
    }
}

/// Estimated clock for a platform on Virtex-II Pro (-6 speed grade).
///
/// The critical path of the emulated switch is route lookup →
/// arbitration → crossbar traversal. Each stage costs one logic level
/// per two inputs arbitrated, at roughly 1.5 ns per level plus 6 ns of
/// base clock-to-out, routing and setup — calibrated so that the
/// paper's 4-in/4-out switches run at the reported 50 MHz with
/// headroom.
pub fn estimate_clock_mhz(max_switch_ports: u64) -> f64 {
    let levels = 3 + (64 - max_switch_ports.max(2).leading_zeros() as u64) * 2;
    let ns = 6.0 + 1.5 * levels as f64;
    1_000.0 / ns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_packing_formula() {
        // Perfectly paired: 100 LUT + 100 FF -> (100 + 50)/2 = 75.
        assert_eq!(XC2VP20.slices_for(Resources::new(100, 100)), 75);
        // FF heavy.
        assert_eq!(XC2VP20.slices_for(Resources::new(0, 100)), 50);
        // Rounds up.
        assert_eq!(XC2VP20.slices_for(Resources::new(3, 0)), 2);
    }

    #[test]
    fn utilization_fraction() {
        let r = Resources::new(0, XC2VP20.slices * 2);
        assert!((XC2VP20.utilization(r) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fitting_considers_bram() {
        let fits = Resources::new(100, 100).with_bram_bits(1024);
        assert!(XC2VP7.fits(fits));
        let too_much_bram = Resources::new(10, 10).with_bram_bits(u64::MAX / 2);
        assert!(!XC2VP50.fits(too_much_bram));
    }

    #[test]
    fn smallest_fitting_walks_up() {
        let small = Resources::new(100, 100);
        assert_eq!(FpgaDevice::smallest_fitting(small).unwrap().name, "XC2VP7");
        let medium = Resources::new(12_000, 12_000);
        assert_eq!(
            FpgaDevice::smallest_fitting(medium).unwrap().name,
            "XC2VP20"
        );
        let huge = Resources::new(1_000_000, 0);
        assert_eq!(FpgaDevice::smallest_fitting(huge), None);
    }

    #[test]
    fn clock_estimate_brackets_paper_speed() {
        // 4-port switches: the paper runs at 50 MHz; the estimate
        // should be in the same regime and above 50 MHz.
        let mhz = estimate_clock_mhz(4);
        assert!(
            (50.0..100.0).contains(&mhz),
            "4-port clock estimate {mhz} MHz"
        );
        // Bigger radix -> slower clock.
        assert!(estimate_clock_mhz(16) < estimate_clock_mhz(4));
    }

    #[test]
    fn device_family_is_ordered() {
        for w in ALL_DEVICES.windows(2) {
            assert!(w[0].slices < w[1].slices);
        }
    }
}
