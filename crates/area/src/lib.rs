//! # nocem-area — FPGA resource and timing estimation
//!
//! The synthesis substrate behind the paper's Table 1 ("FPGA
//! reports"): structural resource models of every platform device,
//! Virtex-II Pro part definitions with slice packing, a clock
//! estimate, and a report renderer that prints the same columns as the
//! paper.
//!
//! * [`primitives`] — LUT/FF/BRAM costs of registers, counters,
//!   muxes, LFSRs, FIFOs, bus slaves;
//! * [`devices`] — per-device estimators (stochastic/trace TG and TR,
//!   control module, Xpipes-style switch), calibrated against Table 1;
//! * [`fpga`] — Virtex-II Pro parts, slice packing, utilization and
//!   the clock model;
//! * [`report`] — the Table 1 renderer.
//!
//! # Examples
//!
//! ```
//! use nocem_area::devices::{tg_stochastic, StochasticTgParams};
//! use nocem_area::fpga::XC2VP20;
//!
//! let slices = XC2VP20.slices_for(tg_stochastic(StochasticTgParams::default()));
//! // The paper reports 719 slices for the stochastic TG.
//! assert!((640..=800).contains(&slices));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod devices;
pub mod fpga;
pub mod primitives;
pub mod report;

pub use devices::{
    StochasticTgParams, StochasticTrParams, SwitchParams, TraceTgParams, TraceTrParams,
};
pub use fpga::{estimate_clock_mhz, FpgaDevice, XC2VP20, XC2VP30};
pub use primitives::Resources;
pub use report::SynthesisReport;
