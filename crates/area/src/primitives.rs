//! Primitive resource costs: from RTL structure to LUT/FF/BRAM counts.
//!
//! The estimators here follow standard Virtex-II technology-mapping
//! rules (4-input LUTs, slice = 2 LUTs + 2 FFs, distributed RAM at 16
//! bits per LUT, block RAM at 18 kbit per BRAM). They are intentionally
//! simple: the goal is to reproduce the *relative* sizes of the
//! paper's devices and their scaling with parameters, not a synthesis
//! netlist.

use core::iter::Sum;
use core::ops::{Add, AddAssign, Mul};

/// A bag of FPGA resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Resources {
    /// 4-input look-up tables.
    pub luts: u64,
    /// D flip-flops.
    pub ffs: u64,
    /// Block-RAM bits.
    pub bram_bits: u64,
}

impl Resources {
    /// No resources.
    pub const ZERO: Resources = Resources {
        luts: 0,
        ffs: 0,
        bram_bits: 0,
    };

    /// Creates a LUT/FF bag with no BRAM.
    pub const fn new(luts: u64, ffs: u64) -> Self {
        Resources {
            luts,
            ffs,
            bram_bits: 0,
        }
    }

    /// Adds BRAM bits to the bag.
    #[must_use]
    pub const fn with_bram_bits(mut self, bits: u64) -> Self {
        self.bram_bits = bits;
        self
    }
}

impl Add for Resources {
    type Output = Resources;
    fn add(self, rhs: Resources) -> Resources {
        Resources {
            luts: self.luts + rhs.luts,
            ffs: self.ffs + rhs.ffs,
            bram_bits: self.bram_bits + rhs.bram_bits,
        }
    }
}

impl AddAssign for Resources {
    fn add_assign(&mut self, rhs: Resources) {
        *self = *self + rhs;
    }
}

impl Mul<u64> for Resources {
    type Output = Resources;
    fn mul(self, n: u64) -> Resources {
        Resources {
            luts: self.luts * n,
            ffs: self.ffs * n,
            bram_bits: self.bram_bits * n,
        }
    }
}

impl Sum for Resources {
    fn sum<I: Iterator<Item = Resources>>(iter: I) -> Resources {
        iter.fold(Resources::ZERO, |a, b| a + b)
    }
}

/// A plain register bank: `bits` flip-flops.
pub fn register(bits: u64) -> Resources {
    Resources::new(0, bits)
}

/// A binary counter: one FF and one LUT (the increment logic) per bit.
pub fn counter(bits: u64) -> Resources {
    Resources::new(bits, bits)
}

/// A ripple-carry adder/subtractor: one LUT per bit (carry chains are
/// free in the slice).
pub fn adder(bits: u64) -> Resources {
    Resources::new(bits, 0)
}

/// An equality/magnitude comparator: two bits per LUT.
pub fn comparator(bits: u64) -> Resources {
    Resources::new(bits.div_ceil(2), 0)
}

/// A `ways:1` multiplexer of `width` bits: `ceil(ways / 2)` LUTs per
/// bit (Virtex-II F5/F6 mux chaining).
pub fn mux(ways: u64, width: u64) -> Resources {
    if ways <= 1 {
        return Resources::ZERO;
    }
    Resources::new(width * ways.div_ceil(2), 0)
}

/// A Galois LFSR: one FF per bit, one LUT per feedback tap (plus the
/// shift enable).
pub fn lfsr(bits: u64, taps: u64) -> Resources {
    Resources::new(taps + 1, bits)
}

/// A FIFO in distributed RAM: 16 bits of storage per LUT, plus
/// read/write pointers, the occupancy counter and full/empty logic.
pub fn fifo_lutram(width: u64, depth: u64) -> Resources {
    let storage = (width * depth).div_ceil(16);
    let ptr_bits = 64 - (depth.max(2) - 1).leading_zeros() as u64;
    let pointers = counter(ptr_bits) * 2;
    let occupancy = counter(ptr_bits + 1);
    let flags = Resources::new(4, 2);
    Resources::new(storage, 0) + pointers + occupancy + flags
}

/// A memory in block RAM: counts only BRAM bits plus address/control
/// logic in fabric.
pub fn memory_bram(width: u64, depth: u64) -> Resources {
    let addr_bits = 64 - (depth.max(2) - 1).leading_zeros() as u64;
    Resources::new(4 + addr_bits, addr_bits).with_bram_bits(width * depth)
}

/// A Moore FSM: one-hot state register plus next-state/output logic.
pub fn fsm(states: u64, transitions_per_state: u64) -> Resources {
    Resources::new(states * transitions_per_state, states)
}

/// A bus slave interface: address decoder plus full-width readback
/// multiplexer over `regs` registers of `width` bits.
pub fn bus_slave(regs: u64, width: u64) -> Resources {
    let decode = comparator(10) + Resources::new(regs.div_ceil(4), 0);
    decode + mux(regs, width) + Resources::new(0, width) // output register
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_ops() {
        let a = Resources::new(10, 20).with_bram_bits(100);
        let b = Resources::new(1, 2);
        assert_eq!(a + b, Resources::new(11, 22).with_bram_bits(100));
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        assert_eq!(b * 3, Resources::new(3, 6));
        let total: Resources = [a, b].into_iter().sum();
        assert_eq!(total, a + b);
    }

    #[test]
    fn register_is_ff_only() {
        assert_eq!(register(32), Resources::new(0, 32));
    }

    #[test]
    fn counter_pairs_lut_and_ff() {
        assert_eq!(counter(8), Resources::new(8, 8));
    }

    #[test]
    fn comparator_packs_two_bits_per_lut() {
        assert_eq!(comparator(32).luts, 16);
        assert_eq!(comparator(3).luts, 2);
    }

    #[test]
    fn mux_scaling() {
        assert_eq!(mux(1, 32), Resources::ZERO);
        assert_eq!(mux(2, 32).luts, 32);
        assert_eq!(mux(4, 32).luts, 64);
        assert_eq!(mux(8, 1).luts, 4);
    }

    #[test]
    fn lfsr_costs() {
        let r = lfsr(32, 4);
        assert_eq!(r.ffs, 32);
        assert_eq!(r.luts, 5);
    }

    #[test]
    fn fifo_storage_dominates_at_depth() {
        let small = fifo_lutram(32, 4);
        let big = fifo_lutram(32, 16);
        assert!(big.luts > small.luts);
        // 32x4 = 128 bits -> 8 LUTs of storage.
        assert!(small.luts >= 8);
    }

    #[test]
    fn bram_memory_uses_bram_bits() {
        let m = memory_bram(32, 1024);
        assert_eq!(m.bram_bits, 32 * 1024);
        assert!(m.luts < 32); // only control logic in fabric
    }

    #[test]
    fn bus_slave_readback_mux_dominates() {
        let small = bus_slave(4, 32);
        let big = bus_slave(20, 32);
        assert!(big.luts > 2 * small.luts);
    }

    #[test]
    fn fsm_scales_with_states() {
        assert!(fsm(8, 3).ffs == 8);
        assert!(fsm(8, 3).luts == 24);
    }
}
