//! Synthesis reports: the machinery behind Table 1.
//!
//! A [`SynthesisReport`] lists per-device resources, maps them onto a
//! target FPGA, and renders the same rows as the paper's "FPGA
//! reports" slide (device, slice count, percentage of the part), plus
//! the platform total and the estimated clock.

use crate::fpga::{estimate_clock_mhz, FpgaDevice};
use crate::primitives::Resources;
use nocem_common::table::{Align, TextTable};

/// One synthesized component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportEntry {
    /// Component label (e.g. `"TG stochastic"`).
    pub label: String,
    /// How many instances the platform holds.
    pub instances: u64,
    /// Resources of a single instance.
    pub unit: Resources,
}

/// A full platform synthesis report.
#[derive(Debug, Clone)]
pub struct SynthesisReport {
    target: FpgaDevice,
    entries: Vec<ReportEntry>,
    max_switch_ports: u64,
}

impl SynthesisReport {
    /// Starts a report against `target`.
    pub fn new(target: FpgaDevice) -> Self {
        SynthesisReport {
            target,
            entries: Vec::new(),
            max_switch_ports: 2,
        }
    }

    /// Adds `instances` copies of a component.
    pub fn add(&mut self, label: impl Into<String>, instances: u64, unit: Resources) -> &mut Self {
        self.entries.push(ReportEntry {
            label: label.into(),
            instances,
            unit,
        });
        self
    }

    /// Records the largest switch radix (drives the clock estimate).
    pub fn set_max_switch_ports(&mut self, ports: u64) -> &mut Self {
        self.max_switch_ports = self.max_switch_ports.max(ports);
        self
    }

    /// The targeted part.
    pub fn target(&self) -> FpgaDevice {
        self.target
    }

    /// All entries.
    pub fn entries(&self) -> &[ReportEntry] {
        &self.entries
    }

    /// Total platform resources.
    pub fn total(&self) -> Resources {
        self.entries.iter().map(|e| e.unit * e.instances).sum()
    }

    /// Total platform slices on the target.
    pub fn total_slices(&self) -> u64 {
        // Summing per-instance slices models per-component placement
        // (components do not share slices), like the paper's report.
        self.entries
            .iter()
            .map(|e| self.target.slices_for(e.unit) * e.instances)
            .sum()
    }

    /// Platform utilization of the target part.
    pub fn utilization(&self) -> f64 {
        self.total_slices() as f64 / self.target.slices as f64
    }

    /// Whether the platform fits the target part.
    pub fn fits(&self) -> bool {
        self.total_slices() <= self.target.slices && self.total().bram_bits <= self.target.bram_bits
    }

    /// Estimated platform clock in MHz.
    pub fn clock_mhz(&self) -> f64 {
        estimate_clock_mhz(self.max_switch_ports)
    }

    /// Renders the Table 1 style report.
    pub fn render(&self) -> String {
        let mut t = TextTable::with_columns(&["Device", "Number of slices", "FPGA percentage (%)"]);
        t.title(format!("Synthesis report — target {}", self.target.name));
        t.align(1, Align::Right);
        t.align(2, Align::Right);
        for e in &self.entries {
            let slices = self.target.slices_for(e.unit);
            t.row(vec![
                e.label.clone(),
                slices.to_string(),
                format!("{:.1}", 100.0 * slices as f64 / self.target.slices as f64),
            ]);
        }
        let mut out = t.to_string();
        out.push_str(&format!(
            "platform total: {} slices ({:.0}% of {}), estimated clock {:.0} MHz\n",
            self.total_slices(),
            100.0 * self.utilization(),
            self.target.name,
            self.clock_mhz(),
        ));
        out
    }
}

impl std::fmt::Display for SynthesisReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::{
        control_module, switch, tg_stochastic, tr_stochastic, StochasticTgParams,
        StochasticTrParams, SwitchParams,
    };
    use crate::fpga::XC2VP20;

    fn paper_report() -> SynthesisReport {
        let mut r = SynthesisReport::new(XC2VP20);
        r.add(
            "TG stochastic",
            4,
            tg_stochastic(StochasticTgParams::default()),
        );
        r.add(
            "TR stochastic",
            4,
            tr_stochastic(StochasticTrParams::default()),
        );
        r.add("Control module", 1, control_module());
        for (i, o) in [(3, 2), (4, 3), (2, 4), (3, 2), (4, 3), (2, 4)] {
            r.add(
                format!("Switch {i}x{o}"),
                1,
                switch(SwitchParams::new(i, o)),
            );
            r.set_max_switch_ports(i.max(o));
        }
        r
    }

    #[test]
    fn platform_utilization_matches_paper() {
        let r = paper_report();
        // Paper: 7387 slices = 80% of the part.
        let total = r.total_slices();
        assert!(
            (6_800..=8_000).contains(&total),
            "platform total {total} slices"
        );
        assert!(
            (0.73..=0.86).contains(&r.utilization()),
            "{}",
            r.utilization()
        );
        assert!(r.fits());
    }

    #[test]
    fn clock_estimate_covers_50mhz() {
        let r = paper_report();
        assert!(r.clock_mhz() >= 50.0, "clock {} MHz", r.clock_mhz());
    }

    #[test]
    fn render_contains_table1_columns() {
        let s = paper_report().render();
        assert!(s.contains("Number of slices"));
        assert!(s.contains("FPGA percentage"));
        assert!(s.contains("TG stochastic"));
        assert!(s.contains("platform total"));
    }

    #[test]
    fn totals_accumulate_instances() {
        let mut r = SynthesisReport::new(XC2VP20);
        r.add("x", 2, Resources::new(10, 10));
        assert_eq!(r.total(), Resources::new(20, 20));
        assert_eq!(
            r.total_slices(),
            2 * XC2VP20.slices_for(Resources::new(10, 10))
        );
        assert!(r.fits());
        assert_eq!(r.entries().len(), 1);
        assert_eq!(r.target().name, "XC2VP20");
    }
}
