//! Property-based tests of the synthesis model: resource estimates are
//! monotone in their parameters, slice packing is consistent, and the
//! report arithmetic balances.

use nocem_area::devices::{
    switch, tg_stochastic, tg_trace_driven, tr_stochastic, tr_trace_driven, StochasticTgParams,
    StochasticTrParams, SwitchParams, TraceTgParams, TraceTrParams,
};
use nocem_area::fpga::{estimate_clock_mhz, FpgaDevice, ALL_DEVICES, XC2VP20};
use nocem_area::primitives::{fifo_lutram, mux, register, Resources};
use nocem_area::report::SynthesisReport;
use proptest::prelude::*;

proptest! {
    /// Slice packing: monotone in both LUTs and FFs, never below the
    /// perfect-packing bound, never above one slice per resource.
    #[test]
    fn slice_packing_is_sane(luts in 0u64..100_000, ffs in 0u64..100_000) {
        let r = Resources::new(luts, ffs);
        let s = XC2VP20.slices_for(r);
        let hi = luts.max(ffs);
        prop_assert!(s >= hi.div_ceil(2), "below perfect packing");
        prop_assert!(s <= hi, "more slices than resources");
        // Monotonicity.
        let bigger = XC2VP20.slices_for(Resources::new(luts + 100, ffs));
        prop_assert!(bigger >= s);
        let bigger = XC2VP20.slices_for(Resources::new(luts, ffs + 100));
        prop_assert!(bigger >= s);
    }

    /// Deeper source queues cost more TG slices; all other parameters
    /// held equal.
    #[test]
    fn tg_cost_is_monotone_in_queue_depth(d in 1u64..64) {
        let small = tg_stochastic(StochasticTgParams { queue_depth: d, ..Default::default() });
        let large = tg_stochastic(StochasticTgParams { queue_depth: d + 8, ..Default::default() });
        prop_assert!(XC2VP20.slices_for(large) >= XC2VP20.slices_for(small));
    }

    /// More histogram bins cost more TR slices.
    #[test]
    fn tr_cost_is_monotone_in_bins(bins in 2u64..64) {
        let small = tr_stochastic(StochasticTrParams { histogram_bins: bins, ..Default::default() });
        let large = tr_stochastic(StochasticTrParams { histogram_bins: bins * 2, ..Default::default() });
        prop_assert!(XC2VP20.slices_for(large) > XC2VP20.slices_for(small));
    }

    /// Switch cost grows with port count and buffer depth — the
    /// paper's "switch parameters" (inputs, outputs, buffer size).
    #[test]
    fn switch_cost_is_monotone(inputs in 1u64..8, outputs in 1u64..8, depth in 1u64..16) {
        let base = SwitchParams { fifo_depth: depth, ..SwitchParams::new(inputs, outputs) };
        let more_ports = SwitchParams { fifo_depth: depth, ..SwitchParams::new(inputs + 1, outputs + 1) };
        let deeper = SwitchParams { fifo_depth: depth + 4, ..SwitchParams::new(inputs, outputs) };
        let s0 = XC2VP20.slices_for(switch(base));
        prop_assert!(XC2VP20.slices_for(switch(more_ports)) > s0);
        prop_assert!(XC2VP20.slices_for(switch(deeper)) > s0);
    }

    /// Report totals equal the sum of their entries (instances
    /// included). Slices are summed per component (components do not
    /// share slices after placement), so the platform's slice count is
    /// the per-entry sum, never less than packing the merged bag.
    #[test]
    fn report_arithmetic_balances(tg in 1u64..8, sw in 1u64..10) {
        let tg_unit = tg_stochastic(StochasticTgParams::default());
        let sw_unit = switch(SwitchParams::new(4, 4));
        let mut rep = SynthesisReport::new(XC2VP20);
        rep.add("tg", tg, tg_unit);
        rep.add("sw", sw, sw_unit);
        let manual = tg_unit * tg + sw_unit * sw;
        prop_assert_eq!(rep.total(), manual);
        let per_entry = XC2VP20.slices_for(tg_unit) * tg + XC2VP20.slices_for(sw_unit) * sw;
        prop_assert_eq!(rep.total_slices(), per_entry);
        prop_assert!(rep.total_slices() >= XC2VP20.slices_for(manual));
        let util = rep.utilization();
        prop_assert!((util - per_entry as f64 / XC2VP20.slices as f64).abs() < 1e-12);
        prop_assert_eq!(
            rep.fits(),
            per_entry <= XC2VP20.slices && manual.bram_bits <= XC2VP20.bram_bits
        );
    }

    /// The estimated clock decreases (or holds) as switches grow —
    /// wider arbitration means longer critical paths.
    #[test]
    fn clock_estimate_is_antitone_in_ports(ports in 1u64..16) {
        prop_assert!(estimate_clock_mhz(ports + 1) <= estimate_clock_mhz(ports));
        prop_assert!(estimate_clock_mhz(ports) > 0.0);
    }

    /// `smallest_fitting` returns the first part that fits, and
    /// anything it rejects really does not fit.
    #[test]
    fn smallest_fitting_is_tight(slices_needed in 1u64..50_000) {
        // Construct a resource bag that packs to roughly the target.
        let r = Resources::new(slices_needed * 2, slices_needed * 2);
        match FpgaDevice::smallest_fitting(r) {
            Some(dev) => {
                prop_assert!(dev.fits(r));
                for smaller in ALL_DEVICES.iter().take_while(|d| d.slices < dev.slices) {
                    prop_assert!(!smaller.fits(r), "{} also fits", smaller.name);
                }
            }
            None => {
                for dev in ALL_DEVICES {
                    prop_assert!(!dev.fits(r));
                }
            }
        }
    }

    /// Primitive costs scale linearly-ish: a register of 2n bits costs
    /// exactly twice a register of n bits; FIFOs and muxes are
    /// monotone in width and depth.
    #[test]
    fn primitive_costs_scale(n in 1u64..512) {
        prop_assert_eq!(register(2 * n).ffs, 2 * register(n).ffs);
        let f1 = fifo_lutram(34, n);
        let f2 = fifo_lutram(34, n + 8);
        prop_assert!(f2.luts >= f1.luts);
        let m1 = mux(4, n);
        let m2 = mux(8, n);
        prop_assert!(m2.luts >= m1.luts);
    }
}

/// The calibrated defaults reproduce the paper's Table 1 ranking:
/// TG stochastic > TR trace > TG trace > TR stochastic > control.
#[test]
fn table1_ranking_holds() {
    let tg_s = XC2VP20.slices_for(tg_stochastic(StochasticTgParams::default()));
    let tg_t = XC2VP20.slices_for(tg_trace_driven(TraceTgParams::default()));
    let tr_s = XC2VP20.slices_for(tr_stochastic(StochasticTrParams::default()));
    let tr_t = XC2VP20.slices_for(tr_trace_driven(TraceTrParams::default()));
    let ctl = XC2VP20.slices_for(nocem_area::devices::control_module());
    assert!(
        tg_s > tg_t,
        "stochastic TG ({tg_s}) above trace TG ({tg_t})"
    );
    assert!(
        tr_t > tr_s,
        "trace TR ({tr_t}) above stochastic TR ({tr_s})"
    );
    assert!(
        tg_t > tr_s,
        "trace TG ({tg_t}) above stochastic TR ({tr_s})"
    );
    assert!(ctl < tr_s / 4, "control module is tiny ({ctl})");
    // And the absolute calibration stays within 10% of Table 1.
    for (got, paper) in [
        (tg_s, 719u64),
        (tg_t, 652),
        (tr_s, 371),
        (tr_t, 690),
        (ctl, 18),
    ] {
        let err = (got as f64 - paper as f64).abs() / paper as f64;
        assert!(err < 0.10, "calibration drifted: {got} vs paper {paper}");
    }
}
