//! Criterion bench: ablations over the design choices DESIGN.md calls
//! out — buffer depth, routing possibilities, arbitration policy and
//! source-queue bound.
//! The measured quantity is wall-clock per complete paper-platform run
//! (2 000 packets), which tracks how much congestion each choice
//! produces.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nocem::config::{PaperConfig, PaperRouting, PlatformConfig};
use nocem_switch::arbiter::ArbiterKind;

const PACKETS: u64 = 2_000;

fn run(cfg: &PlatformConfig) -> u64 {
    let mut emu = nocem::engine::build(cfg).expect("compiles");
    emu.run().expect("runs");
    emu.now().raw()
}

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);

    for depth in [2u8, 4, 16] {
        group.bench_with_input(
            BenchmarkId::new("fifo_depth", depth),
            &depth,
            |b, &depth| {
                let mut cfg = PaperConfig::new().total_packets(PACKETS).burst(8);
                cfg.switch.fifo_depth = depth;
                b.iter(|| run(&cfg));
            },
        );
    }

    group.bench_function(BenchmarkId::new("routing", "single"), |b| {
        let cfg = PaperConfig::new().total_packets(PACKETS).burst(8);
        b.iter(|| run(&cfg));
    });
    group.bench_function(BenchmarkId::new("routing", "dual"), |b| {
        let cfg = PaperConfig::new()
            .total_packets(PACKETS)
            .routing(PaperRouting::Dual {
                secondary_probability: 0.5,
            })
            .burst(8);
        b.iter(|| run(&cfg));
    });

    for (label, kind) in [
        ("round_robin", ArbiterKind::RoundRobin),
        ("fixed_priority", ArbiterKind::FixedPriority),
    ] {
        group.bench_function(BenchmarkId::new("arbiter", label), |b| {
            let mut cfg = PaperConfig::new().total_packets(PACKETS).burst(8);
            cfg.switch.arbiter = kind;
            b.iter(|| run(&cfg));
        });
    }

    // Source-queue bound: smaller queues push burstiness back into the
    // generators (clock-gating stalls) instead of absorbing it.
    for capacity in [2usize, 8, 32] {
        group.bench_with_input(
            BenchmarkId::new("source_queue", capacity),
            &capacity,
            |b, &capacity| {
                let mut cfg = PaperConfig::new().total_packets(PACKETS).burst(16);
                cfg.source_queue_capacity = capacity;
                b.iter(|| run(&cfg));
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
