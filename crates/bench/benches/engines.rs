//! Criterion bench: cycles-per-second of the three engines on the
//! paper platform (the measurement behind Table 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nocem_bench::endless_paper_config;
use nocem_rtl::model::RtlEngine;
use nocem_tlm::model::TlmEngine;

const CYCLES_PER_ITER: u64 = 10_000;

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("engines");
    group.throughput(Throughput::Elements(CYCLES_PER_ITER));
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("emulation", "paper"), |b| {
        let mut emu = nocem::engine::build(&endless_paper_config()).expect("compiles");
        b.iter(|| {
            for _ in 0..CYCLES_PER_ITER {
                emu.step().expect("step");
            }
        });
    });

    group.bench_function(BenchmarkId::new("tlm", "paper"), |b| {
        let elab = nocem::compile::elaborate(&endless_paper_config()).expect("compiles");
        let mut engine = TlmEngine::new(elab);
        b.iter(|| {
            for _ in 0..CYCLES_PER_ITER {
                engine.step().expect("step");
            }
        });
    });

    group.bench_function(BenchmarkId::new("rtl", "paper"), |b| {
        let elab = nocem::compile::elaborate(&endless_paper_config()).expect("compiles");
        let mut engine = RtlEngine::new(elab);
        b.iter(|| {
            for _ in 0..CYCLES_PER_ITER {
                engine.step().expect("step");
            }
        });
    });

    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
