//! Criterion micro-bench: the switch model's decide/commit hot path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nocem_common::flit::PacketDescriptor;
use nocem_common::ids::{EndpointId, FlowId, PacketId, PortId};
use nocem_common::time::Cycle;
use nocem_switch::config::SwitchConfigBuilder;
use nocem_switch::switch::{Switch, CREDITS_INFINITE};

fn saturated_switch(ports: u8) -> Switch {
    let cfg = SwitchConfigBuilder::new(ports, ports).fifo_depth(8).build();
    // Flow i exits on port i.
    let routes: Vec<Vec<PortId>> = (0..ports).map(|p| vec![PortId::new(p)]).collect();
    Switch::new(cfg, routes, vec![CREDITS_INFINITE; ports as usize], 1).expect("valid switch")
}

fn refill(sw: &mut Switch, ports: u8, next_id: &mut u64) {
    for p in 0..ports {
        while sw.occupancy(PortId::new(p)) < 8 {
            let desc = PacketDescriptor {
                id: PacketId::new(*next_id),
                src: EndpointId::new(0),
                dst: EndpointId::new(1),
                flow: FlowId::new(u32::from(p)),
                len_flits: 1,
                release: Cycle::ZERO,
            };
            *next_id += 1;
            for f in desc.flits() {
                sw.accept(PortId::new(p), f).expect("space checked");
            }
        }
    }
}

fn bench_switch(c: &mut Criterion) {
    let mut group = c.benchmark_group("switch");
    for ports in [2u8, 4, 8] {
        group.throughput(Throughput::Elements(u64::from(ports)));
        group.bench_with_input(
            BenchmarkId::new("decide_commit_saturated", ports),
            &ports,
            |b, &ports| {
                let mut sw = saturated_switch(ports);
                let mut next_id = 0u64;
                refill(&mut sw, ports, &mut next_id);
                b.iter(|| {
                    sw.decide();
                    let sends = sw.commit_sends();
                    if sw.occupancy(PortId::new(0)) < 2 {
                        refill(&mut sw, ports, &mut next_id);
                    }
                    sends.len()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_switch);
criterion_main!(benches);
