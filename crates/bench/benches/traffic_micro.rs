//! Criterion micro-bench: traffic-model tick rates and NI
//! serialization.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nocem_common::flit::PacketDescriptor;
use nocem_common::ids::{EndpointId, FlowId, PacketId};
use nocem_common::time::Cycle;
use nocem_traffic::generator::{DestinationModel, TrafficGenerator};
use nocem_traffic::ni::SourceNi;
use nocem_traffic::stochastic::{BurstConfig, StochasticTg, UniformConfig};

fn dst() -> DestinationModel {
    DestinationModel::Fixed {
        dst: EndpointId::new(1),
        flow: FlowId::new(0),
    }
}

fn bench_traffic(c: &mut Criterion) {
    let mut group = c.benchmark_group("traffic");
    group.throughput(Throughput::Elements(1_000));

    group.bench_function("uniform_tick_1k", |b| {
        let mut tg = StochasticTg::uniform(UniformConfig::with_load(0.45, 8, None, dst()), 1);
        let mut t = 0u64;
        b.iter(|| {
            let mut released = 0u32;
            for _ in 0..1_000 {
                if tg.tick(Cycle::new(t)).is_some() {
                    released += 1;
                }
                t += 1;
            }
            released
        });
    });

    group.bench_function("burst_tick_1k", |b| {
        let mut tg = StochasticTg::burst(BurstConfig::with_load(0.45, 8, 8, None, dst()), 1);
        let mut t = 0u64;
        b.iter(|| {
            let mut released = 0u32;
            for _ in 0..1_000 {
                if tg.tick(Cycle::new(t)).is_some() {
                    released += 1;
                }
                t += 1;
            }
            released
        });
    });

    group.bench_function("ni_serialize_1k_flits", |b| {
        let mut ni = SourceNi::new(64, u32::MAX);
        let mut next = 0u64;
        b.iter(|| {
            let mut sent = 0u32;
            while sent < 1_000 {
                if ni.queue_len() < 32 {
                    let desc = PacketDescriptor {
                        id: PacketId::new(next),
                        src: EndpointId::new(0),
                        dst: EndpointId::new(1),
                        flow: FlowId::new(0),
                        len_flits: 8,
                        release: Cycle::ZERO,
                    };
                    next += 1;
                    ni.offer(desc);
                }
                if ni.tick_send().is_some() {
                    sent += 1;
                }
            }
            sent
        });
    });

    group.finish();
}

criterion_group!(benches, bench_traffic);
criterion_main!(benches);
