//! **Engine throughput** — flits per wall-clock second of the
//! interpreted emulation engine, the compiled data-oriented engine,
//! and the two sharded engines (interpreted and compiled, 2 shards)
//! on identical traffic: the acceptance measurement for the compiled
//! engine's "elaborate once, run flat arrays" design and a first look
//! at the sharded engines' coordination cost.
//!
//! ```text
//! cargo run --release -p nocem-bench --bin engine_throughput
//! cargo run --release -p nocem-bench --bin engine_throughput -- --smoke
//! ```
//!
//! The full run measures the engines on uniform-random traffic over
//! mesh4x4, mesh8x8, torus8x8 and a mesh16x16 scale point at 5% and
//! 40% offered load, prints a table, and writes
//! `BENCH_throughput.json` (one row per engine × topology × load with
//! cycle counts and the host core count stamped) into the repository
//! root so the numbers are versioned alongside the code that produced
//! them. The headline figure is the mesh8x8 @ 40% speedup, where both
//! single-threaded engines are saturated with real switching work.
//! Parallel speedup ratios (sharded vs its single-threaded parent)
//! are recorded **only when the host has more than one core** — on a
//! 1-core host the sharded rows measure coordination overhead, so the
//! bench warns and skips those ratios instead of recording misleading
//! numbers (dedicated scaling measurements live in
//! `BENCH_sharding.json`, written by the `shard_scaling` bench).
//!
//! `--smoke` (the CI configuration) measures mesh4x4 @ 40% with short
//! windows and asserts the compiled engine clears 3× — loose enough
//! for contended shared runners, tight enough to catch a regression
//! back to interpreted-engine speed.

use nocem::clock::SteppableEngine;
use nocem::compile::elaborate;
use nocem::config::{PlatformConfig, TrafficModel};
use nocem::engine::build;
use nocem::profile::{PhaseReport, ProfileConfig};
use nocem::shard::ShardedEngine;
use nocem::shard_compiled::ShardedCompiledEngine;
use nocem::CompiledEngine;
use nocem_scenarios::registry::ScenarioRegistry;
use nocem_scenarios::scenario::TopologySpec;
use std::time::Instant;

/// One measured cell: an engine on a topology at a load.
struct Row {
    engine: &'static str,
    topology: &'static str,
    load: f64,
    cycles: u64,
    seconds: f64,
    flits: u64,
    flits_per_sec: f64,
    cycles_per_sec: f64,
    /// Phase profile from a separate short profiled run of the same
    /// cell (the throughput numbers above stay unprofiled).
    profile: PhaseReport,
}

/// An endless uniform-random config on `topo` at `load`: budgets and
/// stop conditions removed so the engines can be measured in steady
/// state for as long as the wall clock requires.
fn endless_uniform(topo: TopologySpec, load: f64) -> PlatformConfig {
    let mut cfg = ScenarioRegistry::builtin()
        .resolve("uniform_random")
        .expect("builtin scenario")
        .build_config(topo, load, 4, 1_000)
        .expect("scenario config compiles");
    for g in &mut cfg.generators {
        if let TrafficModel::Uniform(u) = g {
            u.budget = None;
        }
    }
    cfg.stop.delivered_packets = None;
    cfg.stop.cycle_limit = u64::MAX;
    cfg
}

/// Steps `engine` for `warmup` cycles, then measures delivered flits
/// and cycles over at least `min_seconds` of wall clock.
fn measure(
    engine: &mut dyn SteppableEngine,
    warmup: u64,
    chunk: u64,
    min_seconds: f64,
) -> (u64, f64, u64) {
    for _ in 0..warmup {
        engine.step().expect("engine fault during warmup");
    }
    let flits_before = engine.summary().delivered_flits;
    let t0 = Instant::now();
    let mut cycles = 0u64;
    loop {
        for _ in 0..chunk {
            engine.step().expect("engine fault during measurement");
        }
        cycles += chunk;
        if t0.elapsed().as_secs_f64() >= min_seconds {
            break;
        }
    }
    let seconds = t0.elapsed().as_secs_f64().max(1e-9);
    let flits = engine.summary().delivered_flits - flits_before;
    (cycles, seconds, flits)
}

fn build_engine(engine_name: &str, cfg: &PlatformConfig) -> Box<dyn SteppableEngine> {
    match engine_name {
        "emulation" => Box::new(build(cfg).expect("config compiles")),
        "compiled" => Box::new(CompiledEngine::new(
            elaborate(cfg).expect("config compiles"),
        )),
        "sharded" => Box::new(ShardedEngine::with_shards(cfg, 2).expect("config compiles")),
        "sharded-compiled" => {
            Box::new(ShardedCompiledEngine::with_shards(cfg, 2, 16).expect("config compiles"))
        }
        other => unreachable!("unknown engine {other}"),
    }
}

/// Profiles one cell over a short fixed run: phase accumulators only
/// (spans off), separate from the throughput measurement so the
/// headline flits/s stay untouched by instrumentation.
fn profile_cell(engine_name: &str, topo: TopologySpec, load: f64, cycles: u64) -> PhaseReport {
    let mut cfg = endless_uniform(topo, load);
    cfg.profile = Some(ProfileConfig::default().without_spans());
    let mut engine = build_engine(engine_name, &cfg);
    for _ in 0..cycles {
        engine.step().expect("engine fault during profiling");
    }
    engine.profile().expect("profiling was enabled")
}

fn measure_cell(
    engine_name: &'static str,
    topology: &'static str,
    topo: TopologySpec,
    load: f64,
    warmup: u64,
    min_seconds: f64,
) -> Row {
    let cfg = endless_uniform(topo, load);
    let mut engine = build_engine(engine_name, &cfg);
    let (cycles, seconds, flits) = measure(engine.as_mut(), warmup, 10_000, min_seconds);
    let profile = profile_cell(engine_name, topo, load, warmup.max(2_000));
    Row {
        engine: engine_name,
        topology,
        load,
        cycles,
        seconds,
        flits,
        flits_per_sec: flits as f64 / seconds,
        cycles_per_sec: cycles as f64 / seconds,
        profile,
    }
}

fn json(rows: &[Row], cores: usize, speedups: &[(String, f64)]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"engine_throughput\",\n");
    out.push_str("  \"unit\": \"flits_per_second\",\n");
    out.push_str(&format!("  \"host_cores\": {cores},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"engine\": \"{}\", \"topology\": \"{}\", \"load\": {:.2}, \
             \"cycles\": {}, \"seconds\": {:.4}, \"flits\": {}, \
             \"flits_per_sec\": {:.1}, \"cycles_per_sec\": {:.1}, \
             \"profile\": {}}}{}\n",
            r.engine,
            r.topology,
            r.load,
            r.cycles,
            r.seconds,
            r.flits,
            r.flits_per_sec,
            r.cycles_per_sec,
            r.profile.to_json(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"speedup\": {\n");
    for (i, (key, v)) in speedups.iter().enumerate() {
        out.push_str(&format!(
            "    \"{key}\": {v:.2}{}\n",
            if i + 1 < speedups.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let quick = nocem_bench::quick_mode();
    let cores = nocem_bench::num_threads();

    if smoke {
        let (warmup, min_seconds) = (2_000, 0.25);
        let mesh4 = TopologySpec::Mesh {
            width: 4,
            height: 4,
        };
        let emu = measure_cell("emulation", "mesh4x4", mesh4, 0.40, warmup, min_seconds);
        let comp = measure_cell("compiled", "mesh4x4", mesh4, 0.40, warmup, min_seconds);
        let speedup = comp.flits_per_sec / emu.flits_per_sec;
        println!(
            "smoke: mesh4x4 @40%  emulation {:.0} flits/s  compiled {:.0} flits/s  ({speedup:.2}x)",
            emu.flits_per_sec, comp.flits_per_sec
        );
        assert!(
            speedup >= 3.0,
            "compiled engine must be at least 3x the interpreted engine \
             on mesh4x4 @40% (measured {speedup:.2}x)"
        );
        // Profile sections must be present and valid JSON...
        for row in [&emu, &comp] {
            nocem_telemetry::validate_json(&row.profile.to_json())
                .expect("profile section must be valid JSON");
            assert!(row.profile.stepped_cycles > 0, "profile counted no cycles");
            assert!(
                row.profile.step_ns() > 0,
                "profile accumulated no step time"
            );
        }
        // ...and profiling must not change behaviour: a profiler-on
        // run stays ledger-identical to profiler-off.
        let cfg_off = endless_uniform(mesh4, 0.40);
        let mut cfg_on = cfg_off.clone();
        cfg_on.profile = Some(ProfileConfig::default());
        for engine in ["emulation", "compiled"] {
            let mut off = build_engine(engine, &cfg_off);
            let mut on = build_engine(engine, &cfg_on);
            for _ in 0..5_000 {
                off.step().expect("engine fault (profiler off)");
                on.step().expect("engine fault (profiler on)");
            }
            assert_eq!(
                off.summary(),
                on.summary(),
                "{engine}: profiler-on run must stay ledger-identical"
            );
        }
        println!("smoke: profile sections valid; profiler-on ledger-identical to profiler-off");
        return;
    }

    let (warmup, min_seconds) = if quick { (2_000, 0.25) } else { (20_000, 2.0) };
    let cells: &[(&'static str, TopologySpec)] = &[
        (
            "mesh4x4",
            TopologySpec::Mesh {
                width: 4,
                height: 4,
            },
        ),
        (
            "mesh8x8",
            TopologySpec::Mesh {
                width: 8,
                height: 8,
            },
        ),
        (
            "torus8x8",
            TopologySpec::Torus {
                width: 8,
                height: 8,
            },
        ),
        (
            "mesh16x16",
            TopologySpec::Mesh {
                width: 16,
                height: 16,
            },
        ),
    ];

    let mut rows = Vec::new();
    for &(name, topo) in cells {
        for load in [0.05, 0.40] {
            for engine in ["emulation", "compiled", "sharded", "sharded-compiled"] {
                let row = measure_cell(engine, name, topo, load, warmup, min_seconds);
                println!(
                    "{:>16}  {:>9} @ {:>2.0}%  {:>12.0} flits/s  {:>12.0} cycles/s",
                    row.engine,
                    row.topology,
                    row.load * 100.0,
                    row.flits_per_sec,
                    row.cycles_per_sec
                );
                rows.push(row);
            }
        }
    }

    let mut speedups = Vec::new();
    for &(name, _) in cells {
        for load in [0.05, 0.40] {
            let fps = |engine: &str| {
                rows.iter()
                    .find(|r| r.engine == engine && r.topology == name && r.load == load)
                    .expect("cell measured")
                    .flits_per_sec
            };
            let s = fps("compiled") / fps("emulation");
            speedups.push((format!("{name}_load{:02.0}", load * 100.0), s));
            println!("speedup {name} @ {:>2.0}%: {s:.2}x", load * 100.0);
            // Sharded-vs-parent ratios only mean something when the
            // shard workers actually get their own cores; on a 1-core
            // host they would record coordination overhead as if it
            // were (negative) parallel speedup.
            if cores > 1 {
                let p = fps("sharded-compiled") / fps("compiled");
                speedups.push((format!("{name}_load{:02.0}_parallel2", load * 100.0), p));
                println!(
                    "parallel speedup (2 shards) {name} @ {:>2.0}%: {p:.2}x",
                    load * 100.0
                );
            }
        }
    }
    if cores == 1 {
        println!(
            "warning: host has 1 core — sharded rows record coordination \
             overhead; parallel speedup ratios skipped"
        );
    }

    let content = json(&rows, cores, &speedups);
    std::fs::write("BENCH_throughput.json", &content).expect("write BENCH_throughput.json");
    println!("wrote BENCH_throughput.json");

    let headline = speedups
        .iter()
        .find(|(k, _)| k == "mesh8x8_load40")
        .expect("headline cell")
        .1;
    println!("headline: compiled is {headline:.2}x emulation on mesh8x8 @40%");
}
