//! **Figure 2 reproduction** — run-time vs. number of sent packets,
//! uniform vs. burst stochastic traffic.
//!
//! The paper's observation: at identical offered load (45 % per TG),
//! burst traffic congests the NoC more than uniform traffic, so the
//! same packet count takes more cycles to deliver.
//!
//! ```text
//! cargo run --release -p nocem-bench --bin fig2_runtime
//! ```

use nocem::config::PaperConfig;
use nocem::sweep::{run_sweep, SweepPoint};
use nocem_bench::scaled;
use nocem_common::csv::CsvWriter;
use nocem_common::table::{Align, TextTable};

fn main() {
    let packet_counts: Vec<u64> = [2_000u64, 4_000, 8_000, 16_000, 32_000, 64_000, 128_000]
        .iter()
        .map(|&p| scaled(p))
        .collect();

    let mut points = Vec::new();
    for &n in &packet_counts {
        points.push(SweepPoint::new(
            format!("uniform/{n}"),
            PaperConfig::new().total_packets(n).uniform(),
        ));
        points.push(SweepPoint::new(
            format!("burst/{n}"),
            PaperConfig::new().total_packets(n).burst(8),
        ));
    }
    let results = run_sweep(&points, nocem_bench::num_threads()).expect("sweep runs");

    let mut t = TextTable::with_columns(&[
        "packets sent",
        "uniform run-time (cyc)",
        "burst run-time (cyc)",
        "burst/uniform",
    ]);
    t.title("Figure 2 — run-time vs number of sent packets (45% load, 8-flit packets)");
    for c in 1..4 {
        t.align(c, Align::Right);
    }
    let mut csv = CsvWriter::new(&["packets", "uniform_cycles", "burst_cycles"]);
    csv.comment("paper fig: run-time vs packets; burst congests more than uniform");
    for &n in &packet_counts {
        let uniform = lookup(&results, &format!("uniform/{n}"));
        let burst = lookup(&results, &format!("burst/{n}"));
        t.row(vec![
            n.to_string(),
            uniform.to_string(),
            burst.to_string(),
            format!("{:.2}", burst as f64 / uniform as f64),
        ]);
        csv.record_display(&[&n, &uniform, &burst]);
    }
    println!("{t}");
    println!("expected shape: both curves grow linearly in the packet count;");
    println!("the burst curve lies above the uniform curve (more congestion).");
    let path = nocem_bench::save_csv("fig2_runtime.csv", csv.as_str());
    println!("data written to {}", path.display());
}

fn lookup(results: &[(String, nocem::results::EmulationResults)], label: &str) -> u64 {
    results
        .iter()
        .find(|(l, _)| l == label)
        .map(|(_, r)| r.cycles)
        .expect("label present")
}
