//! **Figure 3 reproduction** — congestion rate vs. packets per burst,
//! one curve per flits-per-packet value, with trace-driven traffic.
//!
//! The paper measures "congestion according to burst's length in
//! flits": longer bursts and longer packets raise the congestion rate
//! on the 90 %-loaded links.
//!
//! ```text
//! cargo run --release -p nocem-bench --bin fig3_congestion
//! ```

use nocem::config::PaperConfig;
use nocem::sweep::{run_sweep, SweepPoint};
use nocem_bench::scaled;
use nocem_common::csv::CsvWriter;
use nocem_common::table::{Align, TextTable};

const PACKETS_PER_BURST: [u32; 7] = [1, 2, 4, 8, 16, 32, 64];
const FLITS_PER_PACKET: [u16; 4] = [2, 4, 8, 16];

fn main() {
    let total_packets = scaled(20_000);
    let hot = PaperConfig::new().setup().hot_links.to_vec();

    let mut points = Vec::new();
    for &f in &FLITS_PER_PACKET {
        for &b in &PACKETS_PER_BURST {
            points.push(SweepPoint::new(
                format!("f{f}/b{b}"),
                PaperConfig::new()
                    .total_packets(total_packets)
                    .packet_flits(f)
                    .trace_bursty(b),
            ));
        }
    }
    let results = run_sweep(&points, nocem_bench::num_threads()).expect("sweep runs");

    let mut header = vec!["packets/burst".to_string()];
    header.extend(FLITS_PER_PACKET.iter().map(|f| format!("{f} flits/pkt")));
    let mut t = TextTable::new(header);
    t.title("Figure 3 — hot-link congestion rate vs packets per burst (trace-driven)");
    for c in 1..=FLITS_PER_PACKET.len() {
        t.align(c, Align::Right);
    }
    let mut csv = CsvWriter::new(&["packets_per_burst", "flits_per_packet", "congestion_rate"]);
    for &b in &PACKETS_PER_BURST {
        let mut row = vec![b.to_string()];
        for &f in &FLITS_PER_PACKET {
            let r = results
                .iter()
                .find(|(l, _)| l == &format!("f{f}/b{b}"))
                .map(|(_, r)| r)
                .expect("label present");
            let rate = r.congestion_rate(&hot);
            row.push(format!("{rate:.3}"));
            csv.record_display(&[&b, &f, &rate]);
        }
        t.row(row);
    }
    println!("{t}");
    println!("expected shape: congestion grows with burst length (and with");
    println!("packet length), saturating for long bursts — the paper's Figure 3.");
    let path = nocem_bench::save_csv("fig3_congestion.csv", csv.as_str());
    println!("data written to {}", path.display());
}
