//! **Figure 4 reproduction** — average latency vs. packets per burst
//! with trace-driven traffic.
//!
//! The paper's observation: average packet latency grows with burst
//! length and **reaches a maximum** set by the congestion of the
//! 90 %-loaded links.
//!
//! ```text
//! cargo run --release -p nocem-bench --bin fig4_latency
//! ```

use nocem::config::PaperConfig;
use nocem::sweep::{run_sweep, SweepPoint};
use nocem_bench::scaled;
use nocem_common::csv::CsvWriter;
use nocem_common::table::{Align, TextTable};

const PACKETS_PER_BURST: [u32; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

fn main() {
    let total_packets = scaled(20_000);
    let flits = 8u16;
    let hot = PaperConfig::new().setup().hot_links.to_vec();

    let points: Vec<SweepPoint> = PACKETS_PER_BURST
        .iter()
        .map(|&b| {
            SweepPoint::new(
                format!("b{b}"),
                PaperConfig::new()
                    .total_packets(total_packets)
                    .packet_flits(flits)
                    .trace_bursty(b),
            )
        })
        .collect();
    let results = run_sweep(&points, nocem_bench::num_threads()).expect("sweep runs");

    let mut t = TextTable::with_columns(&[
        "packets/burst",
        "mean net latency (cyc)",
        "max net latency (cyc)",
        "hot-link congestion",
    ]);
    t.title(format!(
        "Figure 4 — average latency vs packets per burst ({flits} flits/pkt, trace-driven)"
    ));
    for c in 1..4 {
        t.align(c, Align::Right);
    }
    let mut csv = CsvWriter::new(&[
        "packets_per_burst",
        "mean_network_latency",
        "max_network_latency",
        "hot_congestion",
    ]);
    let mut means = Vec::new();
    for &b in &PACKETS_PER_BURST {
        let r = results
            .iter()
            .find(|(l, _)| l == &format!("b{b}"))
            .map(|(_, r)| r)
            .expect("label present");
        let mean = r.network_latency.mean().unwrap_or(0.0);
        let max = r.network_latency.max().unwrap_or(0);
        let cong = r.congestion_rate(&hot);
        means.push(mean);
        t.row(vec![
            b.to_string(),
            format!("{mean:.1}"),
            max.to_string(),
            format!("{cong:.3}"),
        ]);
        csv.record_display(&[&b, &mean, &max, &cong]);
    }
    println!("{t}");

    // Saturation check: the latency gain from the last doubling is far
    // smaller than from the first.
    let first_gain = means[1] - means[0];
    let last_gain = means[means.len() - 1] - means[means.len() - 2];
    println!(
        "expected shape: latency rises with burst length then saturates — \
         first doubling gained {first_gain:.1} cyc, last doubling {last_gain:.1} cyc"
    );
    println!("(the maximum is a function of the 90% hot-link congestion, as the paper notes)");
    let path = nocem_bench::save_csv("fig4_latency.csv", csv.as_str());
    println!("data written to {}", path.display());
}
