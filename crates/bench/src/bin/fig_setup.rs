//! **Figure 1 / experimental-setup reproduction** — prints the
//! 6-switch platform of slide 19 with its flows, routing possibilities
//! and predicted link loads, and verifies the 45 % / 90 % numbers by
//! emulation.
//!
//! ```text
//! cargo run --release -p nocem-bench --bin fig_setup
//! ```

use nocem::config::PaperConfig;
use nocem::engine::build;
use nocem_bench::scaled;
use nocem_common::table::{Align, TextTable};
use nocem_topology::analysis::{predict_link_loads, SplitModel};
use nocem_topology::graph::LinkEnd;

fn main() {
    let setup = PaperConfig::new();
    let p = setup.setup();

    println!("experimental setup: {}", p.topology.name());
    println!(
        "{} switches, {} TGs, {} TRs, {} links ({} inter-switch)\n",
        p.topology.switch_count(),
        p.topology.generators().len(),
        p.topology.receptors().len(),
        p.topology.link_count(),
        p.topology.links().filter(|l| l.is_inter_switch()).count(),
    );

    println!("   TG0            TG1");
    println!("    |              |");
    println!("   [S0] -------- [S1] -------- [S2] --> TR0, TR1");
    println!("    |              |             |");
    println!("   [S3] -------- [S4] -------- [S5] --> TR2, TR3");
    println!("    |              |");
    println!("   TG2            TG3\n");

    let mut t = TextTable::with_columns(&["flow", "primary path", "secondary path"]);
    for (fp_primary, fp_dual) in p.primary_paths.iter().zip(&p.dual_paths) {
        let fmt = |path: &[nocem_common::ids::SwitchId]| {
            path.iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(" -> ")
        };
        t.row(vec![
            format!("TG{0} -> TR{0}", fp_primary.spec.flow.raw()),
            fmt(&fp_primary.paths[0]),
            fmt(&fp_dual.paths[1]),
        ]);
    }
    println!("{t}");

    // Predicted loads per inter-switch link.
    let loads = predict_link_loads(
        &p.topology,
        &p.primary_paths,
        &[0.45; 4],
        SplitModel::PrimaryOnly,
    );
    let mut t = TextTable::with_columns(&["link", "predicted load", "hot?"]);
    t.align(1, Align::Right);
    for l in p.topology.links().filter(|l| l.is_inter_switch()) {
        let (LinkEnd::Switch { switch: a, .. }, LinkEnd::Switch { switch: b, .. }) = (l.src, l.dst)
        else {
            continue;
        };
        if loads[l.id.index()] == 0.0 {
            continue;
        }
        t.row(vec![
            format!("{a} -> {b}"),
            format!("{:.2}", loads[l.id.index()]),
            if p.hot_links.contains(&l.id) {
                "90% HOT".into()
            } else {
                String::new()
            },
        ]);
    }
    println!("loaded inter-switch links (primary routing):\n{t}");

    // Verify by emulation.
    let packets = scaled(20_000);
    let cfg = PaperConfig::new().total_packets(packets).uniform();
    let mut emu = build(&cfg).expect("paper config compiles");
    emu.run().expect("run completes");
    let cycles = emu.now().raw();
    let cc = emu.congestion();
    println!("measured over {cycles} cycles ({packets} packets):");
    for h in p.hot_links {
        println!(
            "  hot link {}: utilization {:.3} (predicted 0.90)",
            h,
            cc.utilization(h, cycles)
        );
    }
}
