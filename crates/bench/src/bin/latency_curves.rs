//! **Latency–throughput curves** — the canonical NoC evaluation the
//! paper's 6-switch setup never produced: for each (scenario,
//! topology), ramp the offered load to saturation, bisect the
//! saturation point, and emit the classic latency-vs-offered-load
//! curve with windowed steady-state statistics.
//!
//! ```text
//! cargo run --release -p nocem-bench --bin latency_curves
//! cargo run --release -p nocem-bench --bin latency_curves -- --smoke
//! ```
//!
//! The default sweep runs uniform_random / transpose / tornado on
//! mesh4x4, mesh8x8 and torus8x8 — nine curves — and demonstrates the
//! scale machinery end to end: every point runs **clock-gated**
//! (PR 3), and the 8×8 topologies run on the **sharded engine** with
//! two workers (PR 4). Neither changes a single measured value (the
//! ledger is proven identical across modes and engines); they only
//! change how fast the sweep finishes. Results land in
//! `results/latency_curves.csv`.
//!
//! Every point runs with **windowed telemetry** enabled (W = 1024),
//! so besides `latency_curves.csv` the sweep emits
//! `results/link_heat.csv` — the per-point top-k most-blocked links
//! that localize each curve's bottleneck.
//!
//! `--smoke` (the CI configuration) runs the mesh4x4 uniform_random
//! curve with the coarse ramp only and asserts that the search
//! terminates, that accepted throughput is monotone non-decreasing
//! below the saturation point, that the hottest link of the
//! saturated point crosses a bisection of the mesh, and that the
//! telemetry overhead stays under the CI bound (typical overhead at
//! W = 1024 is under 5%; CI asserts ≤ 25% to absorb shared-runner
//! noise). `NOCEM_QUICK=1` shrinks the measurement windows.

use nocem::clock::ClockMode;
use nocem::config::EngineKind;
use nocem_common::table::{Align, TextTable};
use nocem_curves::measure::{measure_config, MeasureConfig};
use nocem_curves::runner::{run_curve_specs, CurveSetOutcome};
use nocem_curves::search::{Curve, CurveSpec, SearchConfig};
use nocem_scenarios::registry::ScenarioRegistry;
use nocem_scenarios::scenario::TopologySpec;
use nocem_telemetry::TelemetryConfig;

fn measure_windows() -> MeasureConfig {
    if nocem_bench::quick_mode() {
        MeasureConfig {
            warmup_cycles: 512,
            measure_cycles: 2_048,
        }
    } else {
        MeasureConfig {
            warmup_cycles: 2_048,
            measure_cycles: 8_192,
        }
    }
}

/// Telemetry overhead bound the CI smoke asserts. The typical
/// overhead of W = 1024 windowed probing is under 5% (one
/// counters-snapshot every 1024 cycles); the asserted bound is far
/// looser because shared CI runners time noisily.
const SMOKE_OVERHEAD_BOUND: f64 = 0.25;

/// Asserts the paper-classic localization result: on a mesh under
/// uniform-random traffic past saturation, the most-blocked link is an
/// inter-switch link crossing a bisection of the grid (for XY routing
/// the vertical cut, where every x-traversal funnels through).
fn assert_top_link_crosses_bisection(curve: &Curve) {
    let topo = curve.topology.build().expect("mesh builds");
    let grid = topo.grid().expect("mesh carries grid metadata").clone();
    let point = curve.points.last().expect("measured points");
    assert!(point.saturated, "the ramp must end on a saturated point");
    let tel = point
        .measurement
        .telemetry
        .as_ref()
        .expect("smoke runs with telemetry on");
    let hot = tel.hottest().expect("a saturated mesh blocks somewhere");
    let link = topo.link(hot.link);
    let (a, b) = match (link.from_switch(), link.to_switch()) {
        (Some(a), Some(b)) => (a, b),
        _ => panic!("hottest link {} is not inter-switch", hot.link),
    };
    let (ax, ay) = grid.coords(a);
    let (bx, by) = grid.coords(b);
    let crosses_x = (ax < grid.width / 2) != (bx < grid.width / 2);
    let crosses_y = (ay < grid.height / 2) != (by < grid.height / 2);
    assert!(
        crosses_x || crosses_y,
        "hottest link s{}({ax},{ay})->s{}({bx},{by}) does not cross a bisection",
        a.raw(),
        b.raw(),
    );
    println!(
        "smoke OK: hottest link s{}->s{} crosses the bisection \
         (blocked {} cycles, rate {:.3})",
        a.raw(),
        b.raw(),
        hot.blocked,
        hot.rate()
    );
}

/// Measures the wall-clock overhead of W = 1024 windowed telemetry on
/// one mesh4x4 load point (best of three runs each way) and asserts
/// it stays under [`SMOKE_OVERHEAD_BOUND`].
fn assert_overhead_under_bound() {
    let registry = ScenarioRegistry::builtin();
    let measure = MeasureConfig {
        warmup_cycles: 512,
        measure_cycles: 8_192,
    };
    let base_cfg = registry
        .resolve("uniform_random")
        .expect("builtin scenario")
        .build_config(
            TopologySpec::Mesh {
                width: 4,
                height: 4,
            },
            0.30,
            4,
            1_000_000,
        )
        .expect("uniform_random applies to mesh4x4");
    let mut telemetry_cfg = base_cfg.clone();
    telemetry_cfg.telemetry = Some(TelemetryConfig::windowed(1024));
    let time_best_of = |cfg: &nocem::PlatformConfig| {
        (0..3)
            .map(|_| {
                let t0 = std::time::Instant::now();
                let m = measure_config(cfg, None, &measure, 0.30).expect("point measures");
                assert!(m.packets_measured > 0);
                t0.elapsed().as_secs_f64()
            })
            .fold(f64::MAX, f64::min)
    };
    let off = time_best_of(&base_cfg);
    let on = time_best_of(&telemetry_cfg);
    let overhead = (on - off) / off;
    println!(
        "smoke: telemetry overhead at W=1024: {:.1}% (off {:.3}s, on {:.3}s; bound {:.0}%)",
        overhead * 100.0,
        off,
        on,
        SMOKE_OVERHEAD_BOUND * 100.0
    );
    assert!(
        overhead <= SMOKE_OVERHEAD_BOUND,
        "telemetry overhead {:.1}% exceeds the {:.0}% CI bound",
        overhead * 100.0,
        SMOKE_OVERHEAD_BOUND * 100.0
    );
}

/// The CI smoke configuration: mesh4x4 uniform_random, coarse ramp
/// only, telemetry on. Asserts the controller's two load-bearing
/// promises plus the observability ones (bisection bottleneck,
/// bounded overhead).
fn smoke() {
    let registry = ScenarioRegistry::builtin();
    let spec = CurveSpec {
        measure: MeasureConfig {
            warmup_cycles: 512,
            measure_cycles: 2_048,
        },
        search: SearchConfig {
            bisect: false,
            ..SearchConfig::default()
        },
        telemetry: Some(TelemetryConfig::windowed(256)),
        ..CurveSpec::new(
            "uniform_random",
            TopologySpec::Mesh {
                width: 4,
                height: 4,
            },
        )
    };
    let curve = spec.run(&registry).expect("smoke curve runs");
    println!(
        "smoke: {} points, saturation load {:.3} (found: {})",
        curve.points.len(),
        curve.saturation.saturation_load,
        curve.saturation.found
    );
    assert!(
        !curve.points.is_empty(),
        "saturation search must terminate with measured points"
    );
    // Below saturation, accepted throughput tracks offered load, so it
    // must grow with the ramp (a 0.01 flits/cycle/node allowance
    // absorbs stochastic-gap jitter, far below the 0.05 ramp step).
    let below: Vec<_> = curve
        .points
        .iter()
        .filter(|p| !p.saturated && p.load < curve.saturation.saturation_load)
        .collect();
    assert!(!below.is_empty(), "at least one stable point");
    for pair in below.windows(2) {
        assert!(
            pair[1].measurement.accepted >= pair[0].measurement.accepted - 0.01,
            "accepted throughput must be monotone non-decreasing below saturation: \
             {:.4} @ {:.2} -> {:.4} @ {:.2}",
            pair[0].measurement.accepted,
            pair[0].load,
            pair[1].measurement.accepted,
            pair[1].load,
        );
    }
    println!("smoke OK: monotone accepted throughput below saturation");
    assert_top_link_crosses_bisection(&curve);
    assert_overhead_under_bound();
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }

    let registry = ScenarioRegistry::builtin();
    let measure = measure_windows();
    let scenarios = ["uniform_random", "transpose", "tornado"];
    let topologies = [
        TopologySpec::Mesh {
            width: 4,
            height: 4,
        },
        TopologySpec::Mesh {
            width: 8,
            height: 8,
        },
        TopologySpec::Torus {
            width: 8,
            height: 8,
        },
    ];

    let mut specs = Vec::new();
    for scenario in scenarios {
        for topology in topologies {
            // The scale machinery, end to end: everything gated, the
            // 64-switch topologies sharded across two workers.
            let engine = match topology {
                TopologySpec::Mesh { width: 8, .. } | TopologySpec::Torus { width: 8, .. } => {
                    EngineKind::Sharded { shards: 2 }
                }
                _ => EngineKind::SingleThread,
            };
            specs.push(CurveSpec {
                engine,
                clock_mode: ClockMode::Gated,
                measure,
                telemetry: Some(TelemetryConfig::windowed(1024)),
                ..CurveSpec::new(scenario, topology)
            });
        }
    }

    let threads = std::thread::available_parallelism().map_or(2, usize::from);
    let curves = run_curve_specs(&registry, &specs, threads).expect("curve sweep runs");

    let mut table = TextTable::with_columns(&[
        "curve",
        "shards",
        "points",
        "saturation load",
        "accepted@stable",
        "zero-load latency",
        "hottest link",
    ]);
    table.title("Latency-throughput curves — saturation summary".to_string());
    for c in 1..6 {
        table.align(c, Align::Right);
    }
    for curve in &curves {
        let s = &curve.saturation;
        table.row(vec![
            curve.label(),
            curve.shards.to_string(),
            curve.points.len().to_string(),
            if s.found {
                format!("{:.3}", s.saturation_load)
            } else {
                format!(">{:.3}", s.saturation_load)
            },
            format!("{:.3}", s.accepted_at_stable),
            s.zero_load_latency
                .map_or_else(|| "-".into(), |l| format!("{l:.1}")),
            hottest_link_name(curve),
        ]);
    }
    println!("{table}");

    let outcome = CurveSetOutcome {
        curves,
        skipped: Vec::new(),
    };
    let path = nocem_bench::save_csv("latency_curves.csv", &outcome.to_csv());
    println!("data written to {}", path.display());
    let heat_path = nocem_bench::save_csv("link_heat.csv", &outcome.link_heat_csv());
    println!("link heat written to {}", heat_path.display());
    let accepted_path = nocem_bench::save_csv("latency_accepted.csv", &outcome.to_accepted_csv());
    println!(
        "latency-vs-accepted plot data written to {}",
        accepted_path.display()
    );
}

/// The most-blocked link of a curve's highest-load point, rendered
/// `s<a>-><b>` (`-` when telemetry was off or nothing blocked).
fn hottest_link_name(curve: &Curve) -> String {
    let hot = curve
        .points
        .last()
        .and_then(|p| p.measurement.telemetry.as_ref())
        .and_then(|t| t.hottest());
    let (Some(hot), Ok(topo)) = (hot, curve.topology.build()) else {
        return "-".into();
    };
    let link = topo.link(hot.link);
    match (link.from_switch(), link.to_switch()) {
        (Some(a), Some(b)) => format!("{a}->{b}"),
        _ => hot.link.to_string(),
    }
}
