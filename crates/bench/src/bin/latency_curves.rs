//! **Latency–throughput curves** — the canonical NoC evaluation the
//! paper's 6-switch setup never produced: for each (scenario,
//! topology), ramp the offered load to saturation, bisect the
//! saturation point, and emit the classic latency-vs-offered-load
//! curve with windowed steady-state statistics.
//!
//! ```text
//! cargo run --release -p nocem-bench --bin latency_curves
//! cargo run --release -p nocem-bench --bin latency_curves -- --smoke
//! ```
//!
//! The default sweep runs uniform_random / transpose / tornado on
//! mesh4x4, mesh8x8 and torus8x8 — nine curves — and demonstrates the
//! scale machinery end to end: every point runs **clock-gated**
//! (PR 3), and the 8×8 topologies run on the **sharded engine** with
//! two workers (PR 4). Neither changes a single measured value (the
//! ledger is proven identical across modes and engines); they only
//! change how fast the sweep finishes. Results land in
//! `results/latency_curves.csv`.
//!
//! `--smoke` (the CI configuration) runs the mesh4x4 uniform_random
//! curve with the coarse ramp only and asserts that the search
//! terminates and that accepted throughput is monotone non-decreasing
//! below the saturation point. `NOCEM_QUICK=1` shrinks the
//! measurement windows.

use nocem::clock::ClockMode;
use nocem::config::EngineKind;
use nocem_common::table::{Align, TextTable};
use nocem_curves::measure::MeasureConfig;
use nocem_curves::runner::{run_curve_specs, CurveSetOutcome};
use nocem_curves::search::{CurveSpec, SearchConfig};
use nocem_scenarios::registry::ScenarioRegistry;
use nocem_scenarios::scenario::TopologySpec;

fn measure_windows() -> MeasureConfig {
    if nocem_bench::quick_mode() {
        MeasureConfig {
            warmup_cycles: 512,
            measure_cycles: 2_048,
        }
    } else {
        MeasureConfig {
            warmup_cycles: 2_048,
            measure_cycles: 8_192,
        }
    }
}

/// The CI smoke configuration: mesh4x4 uniform_random, coarse ramp
/// only. Asserts the controller's two load-bearing promises.
fn smoke() {
    let registry = ScenarioRegistry::builtin();
    let spec = CurveSpec {
        measure: MeasureConfig {
            warmup_cycles: 512,
            measure_cycles: 2_048,
        },
        search: SearchConfig {
            bisect: false,
            ..SearchConfig::default()
        },
        ..CurveSpec::new(
            "uniform_random",
            TopologySpec::Mesh {
                width: 4,
                height: 4,
            },
        )
    };
    let curve = spec.run(&registry).expect("smoke curve runs");
    println!(
        "smoke: {} points, saturation load {:.3} (found: {})",
        curve.points.len(),
        curve.saturation.saturation_load,
        curve.saturation.found
    );
    assert!(
        !curve.points.is_empty(),
        "saturation search must terminate with measured points"
    );
    // Below saturation, accepted throughput tracks offered load, so it
    // must grow with the ramp (a 0.01 flits/cycle/node allowance
    // absorbs stochastic-gap jitter, far below the 0.05 ramp step).
    let below: Vec<_> = curve
        .points
        .iter()
        .filter(|p| !p.saturated && p.load < curve.saturation.saturation_load)
        .collect();
    assert!(!below.is_empty(), "at least one stable point");
    for pair in below.windows(2) {
        assert!(
            pair[1].measurement.accepted >= pair[0].measurement.accepted - 0.01,
            "accepted throughput must be monotone non-decreasing below saturation: \
             {:.4} @ {:.2} -> {:.4} @ {:.2}",
            pair[0].measurement.accepted,
            pair[0].load,
            pair[1].measurement.accepted,
            pair[1].load,
        );
    }
    println!("smoke OK: monotone accepted throughput below saturation");
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }

    let registry = ScenarioRegistry::builtin();
    let measure = measure_windows();
    let scenarios = ["uniform_random", "transpose", "tornado"];
    let topologies = [
        TopologySpec::Mesh {
            width: 4,
            height: 4,
        },
        TopologySpec::Mesh {
            width: 8,
            height: 8,
        },
        TopologySpec::Torus {
            width: 8,
            height: 8,
        },
    ];

    let mut specs = Vec::new();
    for scenario in scenarios {
        for topology in topologies {
            // The scale machinery, end to end: everything gated, the
            // 64-switch topologies sharded across two workers.
            let engine = match topology {
                TopologySpec::Mesh { width: 8, .. } | TopologySpec::Torus { width: 8, .. } => {
                    EngineKind::Sharded { shards: 2 }
                }
                _ => EngineKind::SingleThread,
            };
            specs.push(CurveSpec {
                engine,
                clock_mode: ClockMode::Gated,
                measure,
                ..CurveSpec::new(scenario, topology)
            });
        }
    }

    let threads = std::thread::available_parallelism().map_or(2, usize::from);
    let curves = run_curve_specs(&registry, &specs, threads).expect("curve sweep runs");

    let mut table = TextTable::with_columns(&[
        "curve",
        "shards",
        "points",
        "saturation load",
        "accepted@stable",
        "zero-load latency",
    ]);
    table.title("Latency-throughput curves — saturation summary".to_string());
    for c in 1..6 {
        table.align(c, Align::Right);
    }
    for curve in &curves {
        let s = &curve.saturation;
        table.row(vec![
            curve.label(),
            curve.shards.to_string(),
            curve.points.len().to_string(),
            if s.found {
                format!("{:.3}", s.saturation_load)
            } else {
                format!(">{:.3}", s.saturation_load)
            },
            format!("{:.3}", s.accepted_at_stable),
            s.zero_load_latency
                .map_or_else(|| "-".into(), |l| format!("{l:.1}")),
        ]);
    }
    println!("{table}");

    let outcome = CurveSetOutcome {
        curves,
        skipped: Vec::new(),
    };
    let path = nocem_bench::save_csv("latency_curves.csv", &outcome.to_csv());
    println!("data written to {}", path.display());
}
