//! **Scenario matrix** — the experiment the paper's single 6-switch
//! setup never had: every applicable synthetic pattern and core-graph
//! workload, across meshes, tori and a ring, at several offered
//! loads, run in parallel and aggregated into one CSV.
//!
//! ```text
//! cargo run --release -p nocem-bench --bin scenario_matrix
//! ```
//!
//! Rings and tori route *minimally* on two virtual channels with a
//! dateline assignment, so their wrap-around links carry traffic; the
//! 3×3 torus is in the matrix precisely because every distance-2 hop
//! there is shorter around the wrap. `NOCEM_QUICK=1` shrinks the
//! per-point packet budget for smoke testing. The full default matrix
//! expands to 100 combinations, of which a handful are inapplicable
//! (transpose on non-square topologies, bit patterns on
//! non-power-of-two switch counts) and are reported as skips in the
//! CSV trailer.
//!
//! A second, **scale** section runs uniform-random traffic on 16×16
//! and 32×32 meshes across the matrix's `shards` axis (1, 2 and 4
//! worker threads), sequentially and individually wall-clocked, so
//! the CSV records the sharded engine's measured speedup over the
//! single-threaded engine on topologies too big for one core. The
//! shard counts change only `wall_ms`: the sharded engine is
//! ledger-identical to the single-threaded one (asserted here per
//! topology).

use nocem::clock::ClockMode;
use nocem_bench::scaled;
use nocem_common::table::{Align, TextTable};
use nocem_scenarios::matrix::MatrixSpec;
use nocem_scenarios::registry::ScenarioRegistry;
use nocem_scenarios::scenario::TopologySpec;

fn main() {
    let registry = ScenarioRegistry::builtin();
    let spec = MatrixSpec {
        scenarios: registry.names().iter().map(|&n| n.to_owned()).collect(),
        topologies: vec![
            TopologySpec::Mesh {
                width: 4,
                height: 4,
            },
            TopologySpec::Torus {
                width: 4,
                height: 4,
            },
            // Odd-sized torus: every distance-2 dimension hop wraps,
            // so the minimal + dateline routing exercises wrap-around
            // links in nearly every flow.
            TopologySpec::Torus {
                width: 3,
                height: 3,
            },
            TopologySpec::Mesh {
                width: 8,
                height: 2,
            },
            TopologySpec::Ring { switches: 8 },
        ],
        loads: vec![0.10, 0.30],
        shards: vec![1],
        packet_flits: 4,
        packets_per_point: scaled(8_000),
        // Hybrid clock gating: cycle-equivalent to EveryCycle (the
        // lockstep tests prove it) and much faster on the low-load
        // half of the matrix; the CSV records the per-point win.
        clock_mode: ClockMode::Gated,
    };
    println!(
        "expanding {} scenarios x {} topologies x {} loads = {} combinations",
        spec.scenarios.len(),
        spec.topologies.len(),
        spec.loads.len(),
        spec.combinations()
    );

    let threads = nocem_bench::num_threads();
    let started = std::time::Instant::now();
    let outcome = spec.run(&registry, threads).expect("matrix runs");
    let elapsed = started.elapsed();

    let mut t = TextTable::with_columns(&[
        "scenario",
        "topology",
        "load",
        "cycles",
        "skipped",
        "speedup",
        "throughput (flit/cyc)",
        "mean net latency (cyc)",
    ]);
    t.title(format!(
        "Scenario matrix — {} points run on {} threads in {:.2?} ({} skipped)",
        outcome.rows.len(),
        threads,
        elapsed,
        outcome.skipped.len()
    ));
    for c in 2..8 {
        t.align(c, Align::Right);
    }
    for row in &outcome.rows {
        t.row(vec![
            row.scenario.clone(),
            row.topology.clone(),
            format!("{:.2}", row.load),
            row.results.cycles.to_string(),
            row.results.cycles_skipped.to_string(),
            format!("{:.2}x", row.results.gating_speedup()),
            format!("{:.4}", row.results.throughput()),
            format!("{:.1}", row.results.network_latency.mean().unwrap_or(0.0)),
        ]);
    }
    println!("{t}");
    let total_cycles: u64 = outcome.rows.iter().map(|r| r.results.cycles).sum();
    let total_skipped: u64 = outcome.rows.iter().map(|r| r.results.cycles_skipped).sum();
    println!(
        "clock gating skipped {total_skipped} of {total_cycles} simulated cycles ({:.2}x effective speedup)",
        nocem::clock::effective_speedup(total_cycles, total_skipped)
    );
    for s in &outcome.skipped {
        println!("skipped {}: {}", s.label, s.reason);
    }

    // --- Scale section: the sharded engine on 16x16 / 32x32 meshes.
    //
    // Runs with threads = 1 so the shard workers own the cores and
    // the wall-clock per point is a fair single-point measurement.
    let scale = MatrixSpec {
        scenarios: vec!["uniform_random".into()],
        topologies: vec![
            TopologySpec::Mesh {
                width: 16,
                height: 16,
            },
            TopologySpec::Mesh {
                width: 32,
                height: 32,
            },
        ],
        loads: vec![0.10],
        shards: vec![1, 2, 4],
        packet_flits: 4,
        packets_per_point: scaled(20_000),
        clock_mode: ClockMode::Gated,
    };
    println!(
        "\nscale section: {} sharded points (sequential, wall-clocked)",
        scale.combinations()
    );
    let scale_outcome = scale.run(&registry, 1).expect("scale matrix runs");
    let mut st = TextTable::with_columns(&[
        "topology",
        "shards",
        "cycles",
        "wall (ms)",
        "speedup vs 1 shard",
    ]);
    st.title("Sharded-engine scaling — uniform_random @ 10% load".to_string());
    for c in 1..5 {
        st.align(c, Align::Right);
    }
    for row in &scale_outcome.rows {
        let reference = scale_outcome
            .rows
            .iter()
            .find(|r| r.topology == row.topology && r.shards == 1)
            .expect("shards axis starts at 1, so the baseline ran first");
        // The shards axis must never change the simulation itself.
        assert_eq!(
            reference.results, row.results,
            "sharded run diverged from the single-threaded engine on {}",
            row.label
        );
        st.row(vec![
            row.topology.clone(),
            row.shards.to_string(),
            row.results.cycles.to_string(),
            format!("{:.1}", row.wall_ms),
            format!("{:.2}x", reference.wall_ms / row.wall_ms),
        ]);
    }
    println!("{st}");

    let mut combined = outcome;
    combined.rows.extend(scale_outcome.rows);
    combined.skipped.extend(scale_outcome.skipped);
    let path = nocem_bench::save_csv("scenario_matrix.csv", &combined.to_csv());
    println!("data written to {}", path.display());
}
