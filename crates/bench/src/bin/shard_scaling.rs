//! **Shard scaling** — flits per wall-clock second of the sharded
//! compiled engine across topology size × shard count × exchange
//! batch × offered load, against the single-threaded compiled engine
//! baseline. The acceptance measurement for the batched boundary
//! exchange: the JSON records the coordinator synchronization-round
//! count per row, which must fall ~`batch`× when batching is on.
//!
//! ```text
//! cargo run --release -p nocem-bench --bin shard_scaling
//! cargo run --release -p nocem-bench --bin shard_scaling -- --smoke
//! ```
//!
//! The full run measures mesh16x16, mesh32x32 and mesh64x64 at 5% and
//! 40% load, prints a table, and writes `BENCH_sharding.json` (host
//! core count stamped) into the repository root. The two smaller
//! meshes run uniform-random; the mesh64x64 scale point runs the
//! transpose permutation instead — all-pairs route tables for 4096
//! nodes (~16.7M flows) take minutes **per elaboration** and every
//! shard worker re-elaborates, while transpose keeps the flow count
//! linear in nodes yet still crosses every stripe boundary. The
//! scenario is stamped per row. **Read the numbers honestly**: on a single-core
//! host the sharded rows measure coordination overhead, not speedup —
//! the `host_cores` stamp is there so a reader can tell which regime
//! produced the file, and speedup claims are only meaningful when
//! `host_cores` exceeds the shard count.
//!
//! `--smoke` (the CI configuration) runs mesh16x16 with 2 shards at
//! batch 1 and 8, asserting the synchronization protocol (one round
//! per cycle at batch 1, ~8× fewer at batch 8) and the JSON shape —
//! but never speedup, which a contended 1-core runner cannot measure.

use nocem::clock::SteppableEngine;
use nocem::compile::elaborate;
use nocem::config::{PlatformConfig, TrafficModel};
use nocem::profile::{PhaseReport, ProfileConfig};
use nocem::shard_compiled::ShardedCompiledEngine;
use nocem::CompiledEngine;
use nocem_scenarios::registry::ScenarioRegistry;
use nocem_scenarios::scenario::TopologySpec;
use std::time::Instant;

/// One measured cell.
struct Row {
    engine: &'static str,
    topology: &'static str,
    scenario: &'static str,
    shards: usize,
    batch: u64,
    load: f64,
    cycles: u64,
    seconds: f64,
    flits: u64,
    flits_per_sec: f64,
    cycles_per_sec: f64,
    /// Coordinator synchronization rounds during the measurement
    /// window (0 for the single-threaded baseline, which has none).
    sync_rounds: u64,
    /// Phase profile from a separate short profiled run of the same
    /// cell (the throughput numbers above stay unprofiled). For
    /// sharded rows the exchange/coordinator-wait phases quantify the
    /// sync-wait share, with per-worker sub-reports.
    profile: PhaseReport,
}

/// An endless config for `scenario` on `topo` at `load`: budgets and
/// stop conditions removed so the engines run in steady state. This
/// also keeps the measurement honest for batching — a
/// delivered-packet target would cap windows near the target (the
/// zero-overshoot guarantee), understating the amortization.
fn endless(scenario: &str, topo: TopologySpec, load: f64) -> PlatformConfig {
    let mut cfg = ScenarioRegistry::builtin()
        .resolve(scenario)
        .expect("builtin scenario")
        .build_config(topo, load, 4, 1_000)
        .expect("scenario config compiles");
    for g in &mut cfg.generators {
        if let TrafficModel::Uniform(u) = g {
            u.budget = None;
        }
    }
    cfg.stop.delivered_packets = None;
    cfg.stop.cycle_limit = u64::MAX;
    cfg
}

/// Steps an engine for `warmup` cycles, then measures delivered flits
/// and cycles over at least `min_seconds` of wall clock, returning
/// `(cycles, seconds, flits, sync_rounds)`.
fn drive(
    mut step: impl FnMut(),
    summary: impl Fn() -> u64,
    rounds: impl Fn() -> u64,
    warmup: u64,
    min_seconds: f64,
) -> (u64, f64, u64, u64) {
    for _ in 0..warmup {
        step();
    }
    let flits_before = summary();
    let rounds_before = rounds();
    let t0 = Instant::now();
    let mut cycles = 0u64;
    loop {
        for _ in 0..1_000 {
            step();
        }
        cycles += 1_000;
        if t0.elapsed().as_secs_f64() >= min_seconds {
            break;
        }
    }
    let seconds = t0.elapsed().as_secs_f64().max(1e-9);
    (
        cycles,
        seconds,
        summary() - flits_before,
        rounds() - rounds_before,
    )
}

/// Steps a freshly built profiled engine for `cycles` cycles and
/// returns its phase report (accumulators only, spans off) — separate
/// from the throughput measurement so the flits/s stay unprofiled.
fn profile_run(mut engine: Box<dyn SteppableEngine>, cycles: u64) -> PhaseReport {
    for _ in 0..cycles {
        engine.step().expect("engine fault during profiling");
    }
    engine.profile().expect("profiling was enabled")
}

fn measure_baseline(
    topology: &'static str,
    topo: TopologySpec,
    scenario: &'static str,
    load: f64,
    warmup: u64,
    min_seconds: f64,
) -> Row {
    let cfg = endless(scenario, topo, load);
    let eng = std::cell::RefCell::new(CompiledEngine::new(
        elaborate(&cfg).expect("config compiles"),
    ));
    let (cycles, seconds, flits, _) = drive(
        || eng.borrow_mut().step().expect("engine fault"),
        || SteppableEngine::summary(&*eng.borrow()).delivered_flits,
        || 0,
        warmup,
        min_seconds,
    );
    let mut pcfg = endless(scenario, topo, load);
    pcfg.profile = Some(ProfileConfig::default().without_spans());
    let profile = profile_run(
        Box::new(CompiledEngine::new(
            elaborate(&pcfg).expect("config compiles"),
        )),
        warmup.max(500),
    );
    Row {
        engine: "compiled",
        topology,
        scenario,
        shards: 1,
        batch: 1,
        load,
        cycles,
        seconds,
        flits,
        flits_per_sec: flits as f64 / seconds,
        cycles_per_sec: cycles as f64 / seconds,
        sync_rounds: 0,
        profile,
    }
}

fn measure_sharded(
    topology: &'static str,
    topo: TopologySpec,
    scenario: &'static str,
    shards: usize,
    batch: u64,
    load: f64,
    (warmup, min_seconds): (u64, f64),
) -> Row {
    let cfg = endless(scenario, topo, load);
    let eng = std::cell::RefCell::new(
        ShardedCompiledEngine::with_shards(&cfg, shards, batch).expect("config compiles"),
    );
    let (cycles, seconds, flits, sync_rounds) = drive(
        || SteppableEngine::step(&mut *eng.borrow_mut()).expect("engine fault"),
        || SteppableEngine::summary(&*eng.borrow()).delivered_flits,
        || eng.borrow().sync_rounds(),
        warmup,
        min_seconds,
    );
    let mut pcfg = endless(scenario, topo, load);
    pcfg.profile = Some(ProfileConfig::default().without_spans());
    let profile = profile_run(
        Box::new(
            ShardedCompiledEngine::with_shards(&pcfg, shards, batch).expect("config compiles"),
        ),
        warmup.max(500),
    );
    Row {
        engine: "sharded-compiled",
        topology,
        scenario,
        shards,
        batch,
        load,
        cycles,
        seconds,
        flits,
        flits_per_sec: flits as f64 / seconds,
        cycles_per_sec: cycles as f64 / seconds,
        sync_rounds,
        profile,
    }
}

fn json(rows: &[Row], cores: usize, reductions: &[(String, f64)]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"shard_scaling\",\n");
    out.push_str("  \"unit\": \"flits_per_second\",\n");
    out.push_str(&format!("  \"host_cores\": {cores},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"engine\": \"{}\", \"topology\": \"{}\", \"scenario\": \"{}\", \
             \"shards\": {}, \
             \"batch\": {}, \"load\": {:.2}, \"cycles\": {}, \"seconds\": {:.4}, \
             \"flits\": {}, \"flits_per_sec\": {:.1}, \"cycles_per_sec\": {:.1}, \
             \"sync_rounds\": {}, \"profile\": {}}}{}\n",
            r.engine,
            r.topology,
            r.scenario,
            r.shards,
            r.batch,
            r.load,
            r.cycles,
            r.seconds,
            r.flits,
            r.flits_per_sec,
            r.cycles_per_sec,
            r.sync_rounds,
            r.profile.to_json(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"barrier_reduction\": {\n");
    for (i, (key, v)) in reductions.iter().enumerate() {
        out.push_str(&format!(
            "    \"{key}\": {v:.2}{}\n",
            if i + 1 < reductions.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    out
}

const BATCHES: [u64; 2] = [1, 16];

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let quick = nocem_bench::quick_mode();
    let cores = nocem_bench::num_threads();

    if smoke {
        let mesh16 = TopologySpec::Mesh {
            width: 16,
            height: 16,
        };
        let r1 = measure_sharded(
            "mesh16x16",
            mesh16,
            "uniform_random",
            2,
            1,
            0.40,
            (500, 0.25),
        );
        let r8 = measure_sharded(
            "mesh16x16",
            mesh16,
            "uniform_random",
            2,
            8,
            0.40,
            (500, 0.25),
        );
        println!(
            "smoke: mesh16x16 @40% 2 shards  batch 1: {} rounds / {} cycles  \
             batch 8: {} rounds / {} cycles",
            r1.sync_rounds, r1.cycles, r8.sync_rounds, r8.cycles
        );
        assert_eq!(
            r1.sync_rounds, r1.cycles,
            "batch=1 must synchronize exactly once per cycle"
        );
        // Steps may be served from a buffered window, so allow a
        // couple of rounds of slack around the perfect cycles/8.
        assert!(
            r8.sync_rounds.abs_diff(r8.cycles.div_ceil(8)) <= 2,
            "batch=8 must synchronize ~cycles/8 times ({} rounds for {} cycles)",
            r8.sync_rounds,
            r8.cycles
        );
        // The JSON shape check: every contract key is present.
        let content = json(&[r1, r8], cores, &[("smoke".into(), 8.0)]);
        for key in [
            "\"host_cores\"",
            "\"sync_rounds\"",
            "\"barrier_reduction\"",
            "\"flits_per_sec\"",
            "\"shards\"",
            "\"batch\"",
            "\"profile\"",
            "\"coordinator-wait\"",
        ] {
            assert!(content.contains(key), "JSON is missing {key}");
        }
        println!("smoke: protocol and JSON shape OK (no speedup asserted on this host)");
        return;
    }

    let (warmup, min_seconds) = if quick { (500, 0.2) } else { (2_000, 0.6) };
    let cells: &[(&'static str, TopologySpec, &'static str)] = &[
        (
            "mesh16x16",
            TopologySpec::Mesh {
                width: 16,
                height: 16,
            },
            "uniform_random",
        ),
        (
            "mesh32x32",
            TopologySpec::Mesh {
                width: 32,
                height: 32,
            },
            "uniform_random",
        ),
        (
            "mesh64x64",
            TopologySpec::Mesh {
                width: 64,
                height: 64,
            },
            "transpose",
        ),
    ];

    let mut rows = Vec::new();
    for &(name, topo, scenario) in cells {
        for load in [0.05, 0.40] {
            let base = measure_baseline(name, topo, scenario, load, warmup, min_seconds);
            println!(
                "{:>16}  {:>9} @ {:>2.0}%  1 shard            {:>12.0} flits/s",
                base.engine,
                base.topology,
                base.load * 100.0,
                base.flits_per_sec
            );
            rows.push(base);
            for shards in [1usize, 2, 4] {
                for batch in BATCHES {
                    let row = measure_sharded(
                        name,
                        topo,
                        scenario,
                        shards,
                        batch,
                        load,
                        (warmup, min_seconds),
                    );
                    println!(
                        "{:>16}  {:>9} @ {:>2.0}%  {} shards batch {:>2}  {:>12.0} flits/s  \
                         {:>9} sync rounds",
                        row.engine,
                        row.topology,
                        row.load * 100.0,
                        row.shards,
                        row.batch,
                        row.flits_per_sec,
                        row.sync_rounds
                    );
                    rows.push(row);
                }
            }
        }
    }

    // Synchronization rounds per cycle at batch=1 over batch=16, per
    // (topology, shards, load) — the measured barrier amortization
    // (≈16 when batching works, independent of core count).
    let mut reductions = Vec::new();
    for &(name, _, _) in cells {
        for load in [0.05, 0.40] {
            for shards in [2usize, 4] {
                let rpc = |batch: u64| {
                    let r = rows
                        .iter()
                        .find(|r| {
                            r.engine == "sharded-compiled"
                                && r.topology == name
                                && r.shards == shards
                                && r.batch == batch
                                && r.load == load
                        })
                        .expect("cell measured");
                    r.sync_rounds as f64 / r.cycles as f64
                };
                let reduction = rpc(1) / rpc(16);
                reductions.push((
                    format!("{name}_s{shards}_load{:02.0}", load * 100.0),
                    reduction,
                ));
            }
        }
    }

    let content = json(&rows, cores, &reductions);
    std::fs::write("BENCH_sharding.json", &content).expect("write BENCH_sharding.json");
    println!("wrote BENCH_sharding.json (host_cores = {cores})");
    if cores == 1 {
        println!(
            "warning: single-core host — the sharded rows measure coordination \
             overhead, not parallel speedup"
        );
    }
}
