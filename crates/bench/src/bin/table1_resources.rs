//! **Table 1 reproduction** — "FPGA reports": slices and utilization
//! per device, and the full 4 TG / 4 TR / 6-switch platform.
//!
//! ```text
//! cargo run --release -p nocem-bench --bin table1_resources
//! ```

use nocem::config::PaperConfig;
use nocem::flow::synthesize;
use nocem_area::devices::{
    control_module, tg_stochastic, tg_trace_driven, tr_stochastic, tr_trace_driven,
    StochasticTgParams, StochasticTrParams, TraceTgParams, TraceTrParams,
};
use nocem_area::fpga::XC2VP20;
use nocem_bench::{PAPER_PLATFORM_SLICES, PAPER_PLATFORM_UTILIZATION, PAPER_TABLE1};
use nocem_common::csv::CsvWriter;
use nocem_common::table::{Align, TextTable};

fn main() {
    let target = XC2VP20;
    let model_slices = |label: &str| -> u64 {
        let r = match label {
            "TG stochastic" => tg_stochastic(StochasticTgParams::default()),
            "TG trace driven" => tg_trace_driven(TraceTgParams::default()),
            "TR stochastic" => tr_stochastic(StochasticTrParams::default()),
            "TR trace driven" => tr_trace_driven(TraceTrParams::default()),
            "Control module" => control_module(),
            other => panic!("unknown device {other}"),
        };
        target.slices_for(r)
    };

    let mut t = TextTable::with_columns(&[
        "Device",
        "paper slices",
        "paper %",
        "model slices",
        "model %",
        "error",
    ]);
    t.title(format!("Table 1 — FPGA reports (target {})", target.name));
    for c in 1..6 {
        t.align(c, Align::Right);
    }
    let mut csv = CsvWriter::new(&["device", "paper_slices", "model_slices", "rel_error"]);
    for (label, paper_slices, paper_pct) in PAPER_TABLE1 {
        let model = model_slices(label);
        let err = (model as f64 - paper_slices as f64) / paper_slices as f64;
        t.row(vec![
            label.to_string(),
            paper_slices.to_string(),
            format!("{paper_pct:.1}"),
            model.to_string(),
            format!("{:.1}", 100.0 * model as f64 / target.slices as f64),
            format!("{:+.1}%", 100.0 * err),
        ]);
        csv.record(&[
            label,
            &paper_slices.to_string(),
            &model.to_string(),
            &format!("{err:.4}"),
        ]);
    }
    println!("{t}");

    // Full platform (stochastic devices, the six paper switches).
    let cfg = PaperConfig::new().uniform();
    let elab = nocem::compile::elaborate(&cfg).expect("paper config compiles");
    let report = synthesize(&elab, target);
    println!("{report}");
    println!(
        "paper platform: {} slices ({:.0}% of the part) at {:.0} MHz",
        PAPER_PLATFORM_SLICES,
        100.0 * PAPER_PLATFORM_UTILIZATION,
        nocem_bench::PAPER_CLOCK_MHZ,
    );
    println!(
        "model platform: {} slices ({:.0}%), estimated clock {:.0} MHz",
        report.total_slices(),
        100.0 * report.utilization(),
        report.clock_mhz(),
    );
    let path = nocem_bench::save_csv("table1_resources.csv", csv.as_str());
    println!("\ndata written to {}", path.display());
}
