//! **Table 2 reproduction** — simulation speed of the three engines
//! and the time to simulate 16 M and 1000 M packets.
//!
//! The paper's "Our Emulation 50 M cycles/s" row *is* the FPGA clock:
//! an emulation platform executes one platform cycle per FPGA clock by
//! construction. Our substitute reports (a) the estimated clock of the
//! synthesized platform (the FPGA-equivalent emulation speed) and (b)
//! the measured speed of this reproduction's software engines:
//! the fast emulation engine, the SystemC-analog TLM engine and the
//! ModelSim-analog RTL engine — all executing cycle-identical work.
//!
//! ```text
//! cargo run --release -p nocem-bench --bin table2_speed
//! ```

use nocem::config::PaperConfig;
use nocem::flow::synthesize;
use nocem_area::fpga::XC2VP20;
use nocem_bench::{
    measure_emulation_speed, measure_rtl_speed, measure_tlm_speed, quick_mode,
    PAPER_CYCLES_PER_PACKET, PAPER_TABLE2,
};
use nocem_common::csv::CsvWriter;
use nocem_common::table::{Align, TextTable};
use nocem_common::time::{format_duration, format_speed};

fn main() {
    let budget = if quick_mode() { 0.3 } else { 2.0 };

    // FPGA-equivalent speed: the estimated platform clock.
    let cfg = PaperConfig::new().uniform();
    let elab = nocem::compile::elaborate(&cfg).expect("paper config compiles");
    let clock_hz = synthesize(&elab, XC2VP20).clock_mhz() * 1e6;

    println!("measuring engine speeds ({budget:.1}s per engine)...");
    let emu = measure_emulation_speed(budget).expect("emulation measurement");
    let tlm = measure_tlm_speed(budget).expect("tlm measurement");
    let rtl = measure_rtl_speed(budget).expect("rtl measurement");

    let rows: Vec<(&str, f64)> = vec![
        ("FPGA emulation (estimated clock)", clock_hz),
        ("This reproduction: fast engine", emu.cycles_per_second),
        (
            "This reproduction: TLM (SystemC analog)",
            tlm.cycles_per_second,
        ),
        (
            "This reproduction: RTL (ModelSim analog)",
            rtl.cycles_per_second,
        ),
    ];

    let time_for_packets = |cps: f64, packets: f64| -> String {
        format_duration(packets * PAPER_CYCLES_PER_PACKET / cps)
    };

    let mut t = TextTable::with_columns(&[
        "Simulation mode",
        "Speed (cycles/sec)",
        "Time for 16 Mpackets",
        "Time for 1000 Mpackets",
    ]);
    t.title("Table 2 — simulation speed (16 Mpackets = 160 Mcycles at 10 cyc/pkt)");
    for c in 1..4 {
        t.align(c, Align::Right);
    }
    let mut csv = CsvWriter::new(&["mode", "cycles_per_sec", "t_16m_s", "t_1000m_s"]);
    for (label, cps) in PAPER_TABLE2 {
        t.row(vec![
            format!("paper: {label}"),
            format_speed(cps),
            time_for_packets(cps, 16e6),
            time_for_packets(cps, 1000e6),
        ]);
        csv.record_display(&[
            &format!("paper:{label}"),
            &cps,
            &(16e6 * PAPER_CYCLES_PER_PACKET / cps),
            &(1000e6 * PAPER_CYCLES_PER_PACKET / cps),
        ]);
    }
    for (label, cps) in &rows {
        t.row(vec![
            (*label).to_string(),
            format_speed(*cps),
            time_for_packets(*cps, 16e6),
            time_for_packets(*cps, 1000e6),
        ]);
        csv.record_display(&[
            label,
            cps,
            &(16e6 * PAPER_CYCLES_PER_PACKET / cps),
            &(1000e6 * PAPER_CYCLES_PER_PACKET / cps),
        ]);
    }
    println!("{t}");

    println!(
        "shape check: emulation-vs-RTL factor — paper {:.0}x, this reproduction {:.0}x \
         (FPGA-equivalent vs RTL engine)",
        50e6 / 3.2e3,
        clock_hz / rtl.cycles_per_second
    );
    println!(
        "engine ordering: fast {:.2} M > TLM {:.2} M > RTL {:.2} M cycles/s",
        emu.cycles_per_second / 1e6,
        tlm.cycles_per_second / 1e6,
        rtl.cycles_per_second / 1e6
    );
    let path = nocem_bench::save_csv("table2_speed.csv", csv.as_str());
    println!("data written to {}", path.display());
}
