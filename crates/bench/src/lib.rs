//! Shared harness utilities for the experiment-reproduction binaries
//! and Criterion benches.
//!
//! Every table and figure of the paper has one binary in `src/bin/`;
//! they share the measurement and reporting helpers defined here. Run
//! them with `--release`; set `NOCEM_QUICK=1` to shrink the sweeps for
//! smoke testing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use nocem::config::{PaperConfig, PlatformConfig, TrafficModel};
use nocem::engine::build;
use nocem::error::EmulationError;
use nocem_rtl::model::RtlEngine;
use nocem_tlm::model::TlmEngine;
use std::time::Instant;

/// The paper's Table 2 reference rows: `(label, cycles per second)`.
pub const PAPER_TABLE2: [(&str, f64); 3] = [
    ("Our Emulation", 50e6),
    ("SystemC (MPARM)", 20e3),
    ("Verilog (ModelSim)", 3.2e3),
];

/// Cycles per packet implied by the paper's Table 2 (16 Mpackets in
/// 3.2 s at 50 Mcycles/s → 10 cycles per packet).
pub const PAPER_CYCLES_PER_PACKET: f64 = 10.0;

/// Paper Table 1 reference: `(device, slices, percent)`.
pub const PAPER_TABLE1: [(&str, u64, f64); 5] = [
    ("TG stochastic", 719, 7.8),
    ("TG trace driven", 652, 7.0),
    ("TR stochastic", 371, 4.0),
    ("TR trace driven", 690, 7.4),
    ("Control module", 18, 0.2),
];

/// Paper Table 1 platform total (4 TG + 4 TR + 6 switches).
pub const PAPER_PLATFORM_SLICES: u64 = 7_387;
/// Paper Table 1 platform utilization.
pub const PAPER_PLATFORM_UTILIZATION: f64 = 0.80;
/// Paper platform clock in MHz.
pub const PAPER_CLOCK_MHZ: f64 = 50.0;

/// Whether quick (smoke-test) mode is active (`NOCEM_QUICK=1`).
pub fn quick_mode() -> bool {
    std::env::var("NOCEM_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Worker count for parallel sweeps: available parallelism, or 4
/// when it cannot be determined.
pub fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Scales a sweep size down in quick mode.
pub fn scaled(full: u64) -> u64 {
    if quick_mode() {
        (full / 20).max(100)
    } else {
        full
    }
}

/// An unbounded paper-platform configuration for speed measurement
/// (generators never exhaust).
pub fn endless_paper_config() -> PlatformConfig {
    let mut cfg = PaperConfig::new().uniform();
    for g in &mut cfg.generators {
        if let TrafficModel::Uniform(u) = g {
            u.budget = None;
        }
    }
    cfg.stop.delivered_packets = None;
    cfg.stop.cycle_limit = u64::MAX;
    cfg
}

/// Measured simulation speed of one engine.
#[derive(Debug, Clone, Copy)]
pub struct MeasuredSpeed {
    /// Simulated cycles per wall-clock second.
    pub cycles_per_second: f64,
    /// Cycles simulated during the measurement.
    pub cycles: u64,
    /// Wall-clock seconds spent.
    pub seconds: f64,
}

fn measure<S>(
    mut step: S,
    min_cycles: u64,
    min_seconds: f64,
) -> Result<MeasuredSpeed, EmulationError>
where
    S: FnMut() -> Result<(), EmulationError>,
{
    // Warm up caches and branch predictors.
    for _ in 0..min_cycles / 10 {
        step()?;
    }
    let t0 = Instant::now();
    let mut cycles = 0u64;
    loop {
        for _ in 0..min_cycles {
            step()?;
        }
        cycles += min_cycles;
        if t0.elapsed().as_secs_f64() >= min_seconds {
            break;
        }
    }
    let seconds = t0.elapsed().as_secs_f64().max(1e-9);
    Ok(MeasuredSpeed {
        cycles_per_second: cycles as f64 / seconds,
        cycles,
        seconds,
    })
}

/// Measures the fast emulation engine on the endless paper platform.
///
/// # Errors
///
/// Propagates engine faults (which a correct build never produces).
pub fn measure_emulation_speed(min_seconds: f64) -> Result<MeasuredSpeed, EmulationError> {
    let mut emu = build(&endless_paper_config()).expect("paper config compiles");
    measure(|| emu.step(), 50_000, min_seconds)
}

/// Measures the TLM (SystemC-analog) engine.
///
/// # Errors
///
/// Propagates engine faults.
pub fn measure_tlm_speed(min_seconds: f64) -> Result<MeasuredSpeed, EmulationError> {
    let elab = nocem::compile::elaborate(&endless_paper_config()).expect("config compiles");
    let mut engine = TlmEngine::new(elab);
    measure(|| engine.step(), 20_000, min_seconds)
}

/// Measures the RTL (ModelSim-analog) engine.
///
/// # Errors
///
/// Propagates engine faults.
pub fn measure_rtl_speed(min_seconds: f64) -> Result<MeasuredSpeed, EmulationError> {
    let elab = nocem::compile::elaborate(&endless_paper_config()).expect("config compiles");
    let mut engine = RtlEngine::new(elab);
    measure(|| engine.step(), 10_000, min_seconds)
}

/// Per-cycle work of each engine on identical traffic — the
/// load-independent proxy behind the Table 2 ordering: the engines do
/// the same *simulation* work, so their relative speed is set by how
/// much *machinery* they run per simulated cycle. These are counted
/// operations, deterministic for a given configuration and seed, and
/// immune to wall-clock noise from a contended CPU.
#[derive(Debug, Clone, Copy)]
pub struct EngineWorkPerCycle {
    /// Fast emulation engine: a flat sweep over every component (TGs,
    /// NIs, switches) with no scheduling machinery at all — its
    /// per-cycle work is the component count.
    pub emulation: f64,
    /// TLM engine: scheduler process activations, committed channel
    /// updates and watcher calls per cycle.
    pub tlm: f64,
    /// RTL engine: kernel process activations, dispatched signal
    /// events and delta cycles per cycle.
    pub rtl: f64,
}

/// Counts each engine's machinery operations over `cycles` simulated
/// cycles of the endless paper platform.
///
/// # Errors
///
/// Propagates engine faults (which a correct build never produces).
///
/// # Panics
///
/// Panics if `cycles == 0`.
pub fn measure_work_per_cycle(cycles: u64) -> Result<EngineWorkPerCycle, EmulationError> {
    assert!(cycles > 0, "need at least one cycle");
    let cfg = endless_paper_config();

    let elab = nocem::compile::elaborate(&cfg).expect("paper config compiles");
    let emulation = (elab.tgs.len() + elab.nis.len() + elab.switches.len()) as f64;

    let mut tlm = TlmEngine::new(elab);
    for _ in 0..cycles {
        tlm.step()?;
    }
    let s = tlm.summary().scheduler;
    let tlm_work = (s.activations + s.channel_updates + s.watcher_calls) as f64 / cycles as f64;

    let mut rtl = RtlEngine::new(nocem::compile::elaborate(&cfg).expect("paper config compiles"));
    for _ in 0..cycles {
        rtl.step()?;
    }
    let k = rtl.summary().kernel;
    let rtl_work = (k.activations + k.signal_events + k.delta_cycles) as f64 / cycles as f64;

    Ok(EngineWorkPerCycle {
        emulation,
        tlm: tlm_work,
        rtl: rtl_work,
    })
}

/// Writes an experiment CSV under `results/`, creating the directory.
///
/// # Panics
///
/// Panics when the filesystem refuses the write — harness output is
/// non-optional.
pub fn save_csv(name: &str, content: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("create results directory");
    let path = dir.join(name);
    std::fs::write(&path, content).expect("write experiment csv");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endless_config_never_exhausts() {
        let cfg = endless_paper_config();
        let mut emu = build(&cfg).unwrap();
        for _ in 0..5_000 {
            emu.step().unwrap();
        }
        assert!(!emu.finished());
        assert!(emu.delivered() > 0);
    }

    #[test]
    fn speed_measurement_is_positive() {
        let s = measure_emulation_speed(0.05).unwrap();
        assert!(s.cycles_per_second > 10_000.0, "{s:?}");
        assert!(s.cycles > 0);
    }

    #[test]
    fn engine_speed_ordering_holds() {
        // The Table 2 shape: emulation > TLM > RTL in speed, i.e.
        // emulation < TLM < RTL in machinery per simulated cycle. The
        // counted proxy is deterministic — no wall clock, no retry
        // loop, no sensitivity to parallel test binaries on one CPU.
        let w = measure_work_per_cycle(4_096).unwrap();
        assert!(
            w.emulation < w.tlm,
            "fast engine must be the leanest: emulation {:.1} vs TLM {:.1} ops/cycle",
            w.emulation,
            w.tlm
        );
        assert!(
            w.tlm < w.rtl,
            "RTL pays per-signal events on top of TLM's channels: TLM {:.1} vs RTL {:.1} ops/cycle",
            w.tlm,
            w.rtl
        );
    }

    #[test]
    fn work_per_cycle_is_deterministic() {
        let a = measure_work_per_cycle(512).unwrap();
        let b = measure_work_per_cycle(512).unwrap();
        assert_eq!(a.emulation, b.emulation);
        assert_eq!(a.tlm, b.tlm);
        assert_eq!(a.rtl, b.rtl);
    }

    #[test]
    fn quick_scaling() {
        // Without the env var, scaled is identity.
        if !quick_mode() {
            assert_eq!(scaled(1_000), 1_000);
        }
    }
}
