//! Minimal CSV writing/parsing for experiment data export.
//!
//! The benchmark harness saves every figure's data series as CSV so the
//! curves can be re-plotted outside the workspace. Only the small
//! subset of CSV we produce is supported: comma separation, no quoting
//! (fields are identifiers and numbers), `#`-prefixed comment lines.

use std::fmt::Write as _;

/// A CSV document under construction.
///
/// # Examples
///
/// ```
/// use nocem_common::csv::CsvWriter;
/// let mut w = CsvWriter::new(&["packets", "cycles"]);
/// w.record(&["1000", "2500"]);
/// w.comment("uniform traffic, 45% load");
/// let text = w.finish();
/// assert!(text.starts_with("packets,cycles\n"));
/// ```
#[derive(Debug, Clone)]
pub struct CsvWriter {
    out: String,
    columns: usize,
}

impl CsvWriter {
    /// Starts a document with a header row.
    pub fn new(header: &[&str]) -> Self {
        let mut w = CsvWriter {
            out: String::new(),
            columns: header.len(),
        };
        w.write_fields(header);
        w
    }

    /// Appends a `#` comment line.
    pub fn comment(&mut self, text: &str) -> &mut Self {
        let _ = writeln!(self.out, "# {text}");
        self
    }

    /// Appends a data record.
    ///
    /// # Panics
    ///
    /// Panics if the record width differs from the header width —
    /// a malformed experiment export is a harness bug, not an input
    /// error.
    pub fn record(&mut self, fields: &[&str]) -> &mut Self {
        assert_eq!(
            fields.len(),
            self.columns,
            "record width {} does not match header width {}",
            fields.len(),
            self.columns
        );
        self.write_fields(fields);
        self
    }

    /// Appends a record of `Display` values.
    pub fn record_display(&mut self, fields: &[&dyn std::fmt::Display]) -> &mut Self {
        let strings: Vec<String> = fields.iter().map(|f| f.to_string()).collect();
        let refs: Vec<&str> = strings.iter().map(String::as_str).collect();
        self.record(&refs)
    }

    fn write_fields(&mut self, fields: &[&str]) {
        for (i, f) in fields.iter().enumerate() {
            debug_assert!(
                !f.contains(',') && !f.contains('\n'),
                "field {f:?} needs quoting, which this writer does not support"
            );
            if i > 0 {
                self.out.push(',');
            }
            self.out.push_str(f);
        }
        self.out.push('\n');
    }

    /// Returns the finished document.
    pub fn finish(self) -> String {
        self.out
    }

    /// Returns the document so far without consuming the writer.
    pub fn as_str(&self) -> &str {
        &self.out
    }
}

/// A parsed CSV document: header plus records, comments skipped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvDocument {
    /// Column names from the header row.
    pub header: Vec<String>,
    /// Data records, each as wide as the header.
    pub records: Vec<Vec<String>>,
}

/// Error produced when parsing a CSV document fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCsvError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl std::fmt::Display for ParseCsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "csv parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseCsvError {}

impl CsvDocument {
    /// Parses a document produced by [`CsvWriter`].
    ///
    /// # Errors
    ///
    /// Returns [`ParseCsvError`] if the document is empty or a record's
    /// width differs from the header's.
    pub fn parse(text: &str) -> Result<Self, ParseCsvError> {
        let mut lines = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim_start().starts_with('#') && !l.trim().is_empty());
        let (_, header_line) = lines.next().ok_or(ParseCsvError {
            line: 1,
            message: "document has no header row".into(),
        })?;
        let header: Vec<String> = header_line.split(',').map(str::to_owned).collect();
        let mut records = Vec::new();
        for (idx, line) in lines {
            let rec: Vec<String> = line.split(',').map(str::to_owned).collect();
            if rec.len() != header.len() {
                return Err(ParseCsvError {
                    line: idx + 1,
                    message: format!(
                        "record has {} fields, header has {}",
                        rec.len(),
                        header.len()
                    ),
                });
            }
            records.push(rec);
        }
        Ok(CsvDocument { header, records })
    }

    /// Returns the index of a named column, if present.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.header.iter().position(|h| h == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut w = CsvWriter::new(&["a", "b"]);
        w.comment("hello");
        w.record(&["1", "2"]);
        w.record(&["3", "4"]);
        let doc = CsvDocument::parse(w.as_str()).unwrap();
        assert_eq!(doc.header, ["a", "b"]);
        assert_eq!(doc.records.len(), 2);
        assert_eq!(doc.records[1], ["3", "4"]);
    }

    #[test]
    #[should_panic(expected = "record width")]
    fn wrong_width_record_panics() {
        CsvWriter::new(&["a", "b"]).record(&["only"]);
    }

    #[test]
    fn parse_rejects_ragged_records() {
        let err = CsvDocument::parse("a,b\n1,2,3\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("3 fields"));
    }

    #[test]
    fn parse_rejects_empty() {
        assert!(CsvDocument::parse("").is_err());
        assert!(CsvDocument::parse("# only a comment\n").is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let doc = CsvDocument::parse("# c\n\na,b\n# mid\n1,2\n").unwrap();
        assert_eq!(doc.records, vec![vec!["1".to_owned(), "2".to_owned()]]);
    }

    #[test]
    fn column_lookup() {
        let doc = CsvDocument::parse("x,y,z\n1,2,3\n").unwrap();
        assert_eq!(doc.column("y"), Some(1));
        assert_eq!(doc.column("w"), None);
    }

    #[test]
    fn record_display_formats_values() {
        let mut w = CsvWriter::new(&["n", "v"]);
        w.record_display(&[&12u32, &3.5f64]);
        assert!(w.as_str().contains("12,3.5"));
    }
}
