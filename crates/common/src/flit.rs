//! Flits and packets — the unit of transport of the emulated NoC.
//!
//! The platform emulates *packet-switching* NoCs with wormhole flow
//! control: the network interface of a traffic generator chops each
//! packet into **flits** (flow-control digits). A packet of `n >= 2`
//! flits is serialized as one [`FlitKind::Head`], `n - 2`
//! [`FlitKind::Body`] flits and one [`FlitKind::Tail`]; a single-flit
//! packet travels as [`FlitKind::Single`].
//!
//! The head flit carries everything a switch needs to route the packet
//! (destination, flow id); body/tail flits simply follow the wormhole
//! opened by their head. To keep the three simulation engines
//! exchangeable, the same [`Flit`] value type is used by all of them.

use crate::ids::{EndpointId, FlowId, PacketId, VcId};
use crate::time::Cycle;
use core::fmt;

/// Position of a flit within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlitKind {
    /// First flit of a multi-flit packet; opens the wormhole.
    Head,
    /// Intermediate flit.
    Body,
    /// Last flit of a multi-flit packet; closes the wormhole.
    Tail,
    /// Entire single-flit packet (opens and closes in one cycle).
    Single,
}

impl FlitKind {
    /// Whether this flit carries routing information (head or single).
    #[inline]
    pub const fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::Single)
    }

    /// Whether this flit releases the wormhole (tail or single).
    #[inline]
    pub const fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::Single)
    }
}

impl fmt::Display for FlitKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FlitKind::Head => "H",
            FlitKind::Body => "B",
            FlitKind::Tail => "T",
            FlitKind::Single => "S",
        };
        f.write_str(s)
    }
}

/// One flow-control digit travelling through the network.
///
/// `Flit` is deliberately small and `Copy`: the fast emulation engine
/// moves millions of these per second. The payload word models the
/// data-path width of the emulated NoC (32 bits in the paper's
/// platform) and is used by conservation checks to detect corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Flit {
    /// Packet this flit belongs to.
    pub packet: PacketId,
    /// Position within the packet.
    pub kind: FlitKind,
    /// Index of this flit within its packet (0-based).
    pub seq: u16,
    /// Flow (source, destination) of the packet; routing key.
    pub flow: FlowId,
    /// Destination endpoint, carried by every flit so receptors can
    /// verify delivery without keeping per-wormhole state.
    pub dst: EndpointId,
    /// Virtual channel the flit currently travels on. Network
    /// interfaces inject on [`VcId::ZERO`]; each switch rewrites the
    /// field to the output VC its allocation chose before the flit
    /// enters the next link, so the downstream switch knows which VC
    /// buffer to land it in.
    pub vc: VcId,
    /// Payload word (deterministic function of packet id and sequence
    /// number at generation time; checked at reception).
    pub payload: u32,
}

impl Flit {
    /// The payload word that generators put into flit `seq` of packet
    /// `packet`, and that receptors verify on reception.
    ///
    /// A cheap non-linear mix so that swapped or duplicated flits are
    /// detected with high probability.
    #[inline]
    pub fn expected_payload(packet: PacketId, seq: u16) -> u32 {
        let mut x = packet.raw().wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ u64::from(seq) << 17;
        x ^= x >> 31;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        (x >> 32) as u32
    }

    /// Whether the payload matches what the generator must have put in.
    #[inline]
    pub fn payload_is_valid(&self) -> bool {
        self.payload == Self::expected_payload(self.packet, self.seq)
    }
}

impl fmt::Display for Flit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}.{}→{}]",
            self.kind, self.packet, self.seq, self.dst
        )
    }
}

/// A packet as requested by a traffic model, before serialization into
/// flits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketDescriptor {
    /// Unique packet id.
    pub id: PacketId,
    /// Source endpoint.
    pub src: EndpointId,
    /// Destination endpoint.
    pub dst: EndpointId,
    /// Flow the packet belongs to.
    pub flow: FlowId,
    /// Packet length in flits (`>= 1`).
    pub len_flits: u16,
    /// Cycle at which the traffic model released the packet (start of
    /// the total-latency measurement).
    pub release: Cycle,
}

impl PacketDescriptor {
    /// Serializes the descriptor into its flit sequence.
    ///
    /// # Examples
    ///
    /// ```
    /// use nocem_common::flit::{FlitKind, PacketDescriptor};
    /// use nocem_common::ids::{EndpointId, FlowId, PacketId};
    /// use nocem_common::time::Cycle;
    ///
    /// let d = PacketDescriptor {
    ///     id: PacketId::new(1),
    ///     src: EndpointId::new(0),
    ///     dst: EndpointId::new(3),
    ///     flow: FlowId::new(0),
    ///     len_flits: 4,
    ///     release: Cycle::ZERO,
    /// };
    /// let flits: Vec<_> = d.flits().collect();
    /// assert_eq!(flits.len(), 4);
    /// assert_eq!(flits[0].kind, FlitKind::Head);
    /// assert_eq!(flits[3].kind, FlitKind::Tail);
    /// assert!(flits.iter().all(|f| f.payload_is_valid()));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `len_flits == 0`; zero-length packets are rejected at
    /// configuration time.
    pub fn flits(&self) -> Flits {
        assert!(self.len_flits >= 1, "packet must contain at least one flit");
        Flits {
            desc: *self,
            next: 0,
        }
    }
}

/// Iterator over the flits of a [`PacketDescriptor`], in wire order.
#[derive(Debug, Clone)]
pub struct Flits {
    desc: PacketDescriptor,
    next: u16,
}

impl Iterator for Flits {
    type Item = Flit;

    fn next(&mut self) -> Option<Flit> {
        if self.next >= self.desc.len_flits {
            return None;
        }
        let seq = self.next;
        self.next += 1;
        let kind = match (seq, self.desc.len_flits) {
            (_, 1) => FlitKind::Single,
            (0, _) => FlitKind::Head,
            (s, n) if s + 1 == n => FlitKind::Tail,
            _ => FlitKind::Body,
        };
        Some(Flit {
            packet: self.desc.id,
            kind,
            seq,
            flow: self.desc.flow,
            dst: self.desc.dst,
            vc: VcId::ZERO,
            payload: Flit::expected_payload(self.desc.id, seq),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.desc.len_flits - self.next) as usize;
        (left, Some(left))
    }
}

impl ExactSizeIterator for Flits {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{EndpointId, FlowId, PacketId};

    fn desc(len: u16) -> PacketDescriptor {
        PacketDescriptor {
            id: PacketId::new(7),
            src: EndpointId::new(0),
            dst: EndpointId::new(1),
            flow: FlowId::new(2),
            len_flits: len,
            release: Cycle::new(5),
        }
    }

    #[test]
    fn single_flit_packet() {
        let flits: Vec<_> = desc(1).flits().collect();
        assert_eq!(flits.len(), 1);
        assert_eq!(flits[0].kind, FlitKind::Single);
        assert!(flits[0].kind.is_head());
        assert!(flits[0].kind.is_tail());
    }

    #[test]
    fn two_flit_packet_has_head_and_tail() {
        let kinds: Vec<_> = desc(2).flits().map(|f| f.kind).collect();
        assert_eq!(kinds, [FlitKind::Head, FlitKind::Tail]);
    }

    #[test]
    fn long_packet_structure() {
        let kinds: Vec<_> = desc(5).flits().map(|f| f.kind).collect();
        assert_eq!(
            kinds,
            [
                FlitKind::Head,
                FlitKind::Body,
                FlitKind::Body,
                FlitKind::Body,
                FlitKind::Tail
            ]
        );
    }

    #[test]
    fn sequence_numbers_are_dense() {
        let seqs: Vec<_> = desc(8).flits().map(|f| f.seq).collect();
        assert_eq!(seqs, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn exact_size_iterator() {
        let mut it = desc(4).flits();
        assert_eq!(it.len(), 4);
        it.next();
        assert_eq!(it.len(), 3);
    }

    #[test]
    fn flits_are_injected_on_vc_zero() {
        assert!(desc(3).flits().all(|f| f.vc == VcId::ZERO));
    }

    #[test]
    fn payload_detects_tampering() {
        let mut f = desc(3).flits().next().unwrap();
        assert!(f.payload_is_valid());
        f.payload ^= 1;
        assert!(!f.payload_is_valid());
    }

    #[test]
    fn payload_differs_across_packets_and_seqs() {
        let a = Flit::expected_payload(PacketId::new(1), 0);
        let b = Flit::expected_payload(PacketId::new(2), 0);
        let c = Flit::expected_payload(PacketId::new(1), 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_length_packet_panics() {
        let _ = desc(0).flits();
    }

    #[test]
    fn display_is_compact() {
        let f = desc(2).flits().next().unwrap();
        assert_eq!(f.to_string(), "H[pkt7.0→e1]");
    }
}
