//! Strongly-typed identifiers used across the emulation platform.
//!
//! Every entity that can be referred to from more than one crate gets a
//! newtype here ([`NodeId`], [`PortId`], [`PacketId`], …) so that, for
//! instance, a switch index can never be confused with a port index
//! (C-NEWTYPE). All ids are cheap `Copy` wrappers over small integers
//! and implement the full set of common traits.

use core::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident($repr:ty), $prefix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub $repr);

        impl $name {
            /// Creates the identifier from its raw index.
            ///
            /// # Examples
            ///
            /// ```
            /// use nocem_common::ids::NodeId;
            /// let n = NodeId::new(3);
            /// assert_eq!(n.index(), 3);
            /// ```
            #[inline]
            pub const fn new(raw: $repr) -> Self {
                Self(raw)
            }

            /// Returns the raw index as a `usize`, suitable for direct
            /// indexing into per-entity vectors.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the raw underlying value.
            #[inline]
            pub const fn raw(self) -> $repr {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$repr> for $name {
            fn from(raw: $repr) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for $repr {
            fn from(id: $name) -> $repr {
                id.0
            }
        }
    };
}

id_type! {
    /// A node of the emulated network: either a switch or an endpoint
    /// (traffic generator / receptor). Node ids are dense indices
    /// assigned by the topology builder.
    NodeId(u32), "n"
}

id_type! {
    /// A switch instance within a topology (dense, topology-local).
    SwitchId(u32), "s"
}

id_type! {
    /// An endpoint (TG or TR) attached to a switch port.
    EndpointId(u32), "e"
}

id_type! {
    /// A port of a switch. Local to the switch that owns it.
    PortId(u8), "p"
}

id_type! {
    /// A unidirectional link between two ports in the topology.
    LinkId(u32), "l"
}

id_type! {
    /// A virtual channel multiplexed onto a physical link. Every flit
    /// travels on exactly one VC; a single-VC platform uses only
    /// [`VcId::ZERO`].
    VcId(u8), "v"
}

impl VcId {
    /// Virtual channel 0, the only VC of a single-VC platform and the
    /// VC every packet starts on under the dateline scheme.
    pub const ZERO: VcId = VcId::new(0);
}

id_type! {
    /// A packet injected by a traffic generator. Unique per emulation
    /// run (monotonically increasing across all generators).
    PacketId(u64), "pkt"
}

id_type! {
    /// A traffic flow (source endpoint, destination endpoint) pair,
    /// used to index routing alternatives and per-flow statistics.
    FlowId(u32), "f"
}

id_type! {
    /// One of the (up to four) internal buses of the platform.
    BusId(u8), "b"
}

id_type! {
    /// A device attached to an internal bus (up to 1024 per bus).
    DeviceId(u16), "d"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_raw() {
        let id = PacketId::new(42);
        assert_eq!(id.raw(), 42);
        assert_eq!(id.index(), 42);
        assert_eq!(u64::from(id), 42);
        assert_eq!(PacketId::from(42u64), id);
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(NodeId::new(7).to_string(), "n7");
        assert_eq!(PortId::new(2).to_string(), "p2");
        assert_eq!(BusId::new(1).to_string(), "b1");
        assert_eq!(DeviceId::new(1023).to_string(), "d1023");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(SwitchId::new(1) < SwitchId::new(2));
        assert_eq!(FlowId::default(), FlowId::new(0));
    }

    #[test]
    fn ids_are_distinct_types() {
        // Compile-time property: this function only accepts NodeId.
        fn takes_node(n: NodeId) -> usize {
            n.index()
        }
        assert_eq!(takes_node(NodeId::new(9)), 9);
    }

    #[test]
    fn hash_and_eq_consistent() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(LinkId::new(5));
        set.insert(LinkId::new(5));
        set.insert(LinkId::new(6));
        assert_eq!(set.len(), 2);
    }
}
