//! # nocem-common — shared vocabulary of the nocem workspace
//!
//! This crate holds the types every other crate of the **nocem**
//! Network-on-Chip emulation framework agrees on:
//!
//! * [`ids`] — strongly-typed identifiers (nodes, ports, packets,
//!   buses, devices, …);
//! * [`flit`] — flits and packet descriptors, the unit of transport;
//! * [`route`] — routing-table hop entries (output port + virtual
//!   channel) shared by the switch model and the topology compiler;
//! * [`time`] — the [`time::Cycle`] clock and the paper-style duration
//!   formatting used by Table 2;
//! * [`rng`] — deterministic, hardware-faithful random sources (LFSRs
//!   as synthesized into the FPGA traffic generators, plus software
//!   generators for trace synthesis);
//! * [`table`] / [`csv`] — report rendering and data export.
//!
//! The crate is dependency-free and deliberately small: it defines
//! *contracts*, not behaviour. The behavioural contracts of the
//! emulated hardware live in `nocem-switch` (switch microarchitecture)
//! and `nocem-platform` (register-level interface).
//!
//! # Examples
//!
//! ```
//! use nocem_common::flit::{FlitKind, PacketDescriptor};
//! use nocem_common::ids::{EndpointId, FlowId, PacketId};
//! use nocem_common::time::Cycle;
//!
//! // Serialize a 3-flit packet the way a network interface would.
//! let desc = PacketDescriptor {
//!     id: PacketId::new(0),
//!     src: EndpointId::new(0),
//!     dst: EndpointId::new(5),
//!     flow: FlowId::new(1),
//!     len_flits: 3,
//!     release: Cycle::ZERO,
//! };
//! let kinds: Vec<FlitKind> = desc.flits().map(|f| f.kind).collect();
//! assert_eq!(kinds, [FlitKind::Head, FlitKind::Body, FlitKind::Tail]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod flit;
pub mod ids;
pub mod rng;
pub mod route;
pub mod table;
pub mod time;

pub use flit::{Flit, FlitKind, PacketDescriptor};
pub use ids::{
    BusId, DeviceId, EndpointId, FlowId, LinkId, NodeId, PacketId, PortId, SwitchId, VcId,
};
pub use rng::{Pcg32, RandomSource};
pub use route::RouteHop;
pub use time::Cycle;
