//! Hardware-style pseudo-random number generators.
//!
//! The paper's stochastic traffic generators contain "a bench of
//! registers … for random initialization": on the FPGA, randomness
//! comes from linear-feedback shift registers seeded through the
//! memory-mapped register file. This module provides the same
//! primitives in software:
//!
//! * [`Lfsr16`] / [`Lfsr32`] — Galois LFSRs with maximal-length taps,
//!   bit-exact models of what a synthesized TG would contain;
//! * [`SplitMix64`] — a fast 64-bit mixer used for seeding;
//! * [`Pcg32`] — the general-purpose generator used by software-side
//!   components (trace synthesis, destination selection) where LFSR
//!   quality would be insufficient.
//!
//! All generators are deterministic given their seed, which is what
//! makes the three simulation engines cycle-equivalent and every
//! experiment in the paper reproducible.

/// Minimal uniform random source used across the workspace.
///
/// The trait is object-safe so heterogeneous devices can share a
/// `&mut dyn RandomSource`.
pub trait RandomSource {
    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift reduction (no modulo bias beyond
    /// 2^-32, which is far below the resolution of any statistic the
    /// platform reports).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "bound must be positive");
        ((u64::from(self.next_u32()) * u64::from(bound)) >> 32) as u32
    }

    /// Returns a uniformly distributed value in the inclusive range
    /// `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    fn in_range(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo <= hi, "empty range");
        lo + self.below(hi - lo + 1)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // Compare against a 32-bit threshold, exactly like the
        // synthesized comparator in the hardware TG.
        let threshold = (p * f64::from(u32::MAX)) as u32;
        self.next_u32() <= threshold
    }

    /// Samples a geometric random variable: the number of failures
    /// before the first success of a Bernoulli(`p`) trial. Used for
    /// Poisson-process inter-arrival gaps in discrete time.
    ///
    /// Returns `u32::MAX` when `p` is so small the sample overflows.
    fn geometric(&mut self, p: f64) -> u32 {
        if p >= 1.0 {
            return 0;
        }
        if p <= 0.0 {
            return u32::MAX;
        }
        // Inversion method: floor(ln(U) / ln(1-p)).
        let u = (f64::from(self.next_u32()) + 0.5) / 4_294_967_296.0;
        let g = u.ln() / (1.0 - p).ln();
        if g >= f64::from(u32::MAX) {
            u32::MAX
        } else {
            g as u32
        }
    }
}

/// 16-bit Galois LFSR with taps `x^16 + x^15 + x^13 + x^4 + 1`
/// (maximal length: period 2^16 - 1).
///
/// This is the bit-exact software model of the shift register a
/// hardware traffic generator clocks once per random draw.
///
/// # Examples
///
/// ```
/// use nocem_common::rng::Lfsr16;
/// let mut a = Lfsr16::new(0xACE1);
/// let mut b = Lfsr16::new(0xACE1);
/// assert_eq!(a.step(), b.step()); // fully deterministic
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lfsr16 {
    state: u16,
}

impl Lfsr16 {
    /// Feedback mask for `x^16 + x^15 + x^13 + x^4 + 1`.
    pub const TAPS: u16 = 0xD008;

    /// Creates the LFSR from a seed; a zero seed (the lock-up state)
    /// is silently replaced by `0xACE1`, mirroring the hardware's
    /// seed-or-default initialization.
    pub const fn new(seed: u16) -> Self {
        Lfsr16 {
            state: if seed == 0 { 0xACE1 } else { seed },
        }
    }

    /// Advances one clock and returns the new state.
    #[inline]
    pub fn step(&mut self) -> u16 {
        let lsb = self.state & 1;
        self.state >>= 1;
        if lsb == 1 {
            self.state ^= Self::TAPS;
        }
        self.state
    }

    /// Current register contents (what a status register read returns).
    #[inline]
    pub const fn state(&self) -> u16 {
        self.state
    }
}

/// 32-bit Galois LFSR with taps `x^32 + x^22 + x^2 + x^1 + 1`
/// (maximal length: period 2^32 - 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lfsr32 {
    state: u32,
}

impl Lfsr32 {
    /// Feedback mask for `x^32 + x^22 + x^2 + x + 1`.
    pub const TAPS: u32 = 0x8020_0003;

    /// Creates the LFSR from a seed; zero is replaced by `0xDEAD_BEEF`.
    pub const fn new(seed: u32) -> Self {
        Lfsr32 {
            state: if seed == 0 { 0xDEAD_BEEF } else { seed },
        }
    }

    /// Advances one clock and returns the new state.
    #[inline]
    pub fn step(&mut self) -> u32 {
        let lsb = self.state & 1;
        self.state >>= 1;
        if lsb == 1 {
            self.state ^= Self::TAPS;
        }
        self.state
    }

    /// Current register contents.
    #[inline]
    pub const fn state(&self) -> u32 {
        self.state
    }
}

impl RandomSource for Lfsr32 {
    fn next_u32(&mut self) -> u32 {
        // A Galois LFSR shifts one bit per clock; hardware TGs clock the
        // register 32 times between draws to decorrelate consecutive
        // values. We model the cheap version actually used: two steps
        // and a rotate, which is what the reference RTL does to meet
        // timing. Statistical quality is adequate for traffic shaping.
        let a = self.step();
        let b = self.step();
        a.rotate_left(16) ^ b
    }
}

/// SplitMix64: the standard 64-bit seed expander.
///
/// Used to derive independent per-device seeds from a single platform
/// seed register, so that adding a device never perturbs the random
/// streams of existing devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the mixer from a seed (all values permitted).
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit value.
    ///
    /// (Named after the reference SplitMix64 routine; this type is a
    /// mixer, not an `Iterator`, so the inherent method is intended.)
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl RandomSource for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

/// PCG-XSH-RR 32-bit generator (Melissa O'Neill's PCG32).
///
/// The workhorse generator for software-side randomness: destination
/// selection, trace synthesis, property-test corpora. Small state,
/// excellent statistical quality, and—critically for the
/// cross-engine equivalence tests—identical output on every engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

impl Pcg32 {
    const MULTIPLIER: u64 = 6_364_136_223_846_793_005;

    /// Creates a generator from a seed and a stream id.
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut rng = Pcg32 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Creates a generator from a seed on the default stream.
    pub fn seeded(seed: u64) -> Self {
        Self::new(seed, 0xda3e_39cb_94b9_5bdb)
    }
}

impl RandomSource for Pcg32 {
    fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(Self::MULTIPLIER).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lfsr16_has_full_period() {
        let mut lfsr = Lfsr16::new(1);
        let start = lfsr.state();
        let mut period = 0u32;
        loop {
            lfsr.step();
            period += 1;
            if lfsr.state() == start {
                break;
            }
            assert!(period <= 65_535, "period exceeds maximal length");
        }
        assert_eq!(period, 65_535, "taps are not maximal-length");
    }

    #[test]
    fn lfsr16_never_reaches_zero() {
        let mut lfsr = Lfsr16::new(0xBEEF);
        for _ in 0..70_000 {
            assert_ne!(lfsr.step(), 0);
        }
    }

    #[test]
    fn lfsr_zero_seed_is_replaced() {
        assert_ne!(Lfsr16::new(0).state(), 0);
        assert_ne!(Lfsr32::new(0).state(), 0);
    }

    #[test]
    fn lfsr32_is_deterministic_and_nonzero() {
        let mut a = Lfsr32::new(123);
        let mut b = Lfsr32::new(123);
        for _ in 0..1000 {
            let x = a.next_u32();
            assert_eq!(x, b.next_u32());
        }
        assert_ne!(a.state(), 0);
    }

    #[test]
    fn splitmix_known_vector() {
        // Reference values for seed 1234567 (from the public-domain
        // reference implementation).
        let mut sm = SplitMix64::new(1_234_567);
        let first = sm.next();
        let mut sm2 = SplitMix64::new(1_234_567);
        assert_eq!(first, sm2.next());
        assert_ne!(sm.next(), first);
    }

    #[test]
    fn pcg_streams_are_independent() {
        let mut a = Pcg32::new(42, 1);
        let mut b = Pcg32::new(42, 2);
        let same = (0..100).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 3, "streams look correlated: {same} collisions");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Pcg32::seeded(7);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = rng.below(8);
            assert!(v < 8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "some values never produced");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_bound_panics() {
        Pcg32::seeded(1).below(0);
    }

    #[test]
    fn in_range_inclusive_bounds() {
        let mut rng = Pcg32::seeded(3);
        for _ in 0..1000 {
            let v = rng.in_range(5, 7);
            assert!((5..=7).contains(&v));
        }
        // Degenerate single-value range.
        assert_eq!(rng.in_range(9, 9), 9);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Pcg32::seeded(11);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn chance_probability_is_roughly_respected() {
        let mut rng = Pcg32::seeded(99);
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "p=0.3 gave {hits}/10000");
    }

    #[test]
    fn geometric_mean_matches_theory() {
        let mut rng = Pcg32::seeded(5);
        let p = 0.2;
        let n = 20_000;
        let total: u64 = (0..n).map(|_| u64::from(rng.geometric(p))).sum();
        let mean = total as f64 / n as f64;
        // E[G] = (1-p)/p = 4.0
        assert!((mean - 4.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn geometric_extremes() {
        let mut rng = Pcg32::seeded(5);
        assert_eq!(rng.geometric(1.0), 0);
        assert_eq!(rng.geometric(0.0), u32::MAX);
    }
}
