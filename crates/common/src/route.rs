//! Routing-table value types shared by the switch model and the
//! topology compiler.
//!
//! A routing table maps a flow to the set of admissible [`RouteHop`]s
//! at each switch: the output port to take and the virtual channel to
//! continue on. The types live here (rather than in `nocem-topology`)
//! so that `nocem-switch` — the behavioural contract of the platform —
//! can consume tables without depending on the topology crate.
//!
//! Per-switch tables are [`RouteTable`]s: *sparse*, flow-sorted,
//! CSR-packed. Sparseness is what lets all-to-all traffic scale — a
//! uniform-random pattern on an `n`-switch topology has `n·(n-1)`
//! flows, and a dense flow-indexed `Vec` per switch would cost
//! `O(n³)` memory (tens of gigabytes at 32×32) for entries that are
//! overwhelmingly empty. A switch only stores the flows that actually
//! traverse it.

use crate::ids::{FlowId, PortId, VcId};

/// One admissible continuation of a flow at a switch: the output port
/// to take and the virtual channel to take it on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RouteHop {
    /// Output port of the switch.
    pub port: PortId,
    /// Virtual channel on the link behind that port.
    pub vc: VcId,
}

impl RouteHop {
    /// A hop on VC 0 (the only kind a single-VC platform has).
    pub const fn vc0(port: PortId) -> Self {
        RouteHop {
            port,
            vc: VcId::ZERO,
        }
    }
}

impl core::fmt::Display for RouteHop {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}/{}", self.port, self.vc)
    }
}

/// The admissible-hop table of one switch, stored sparsely.
///
/// Entries are kept sorted by flow id in a compressed (CSR) layout:
/// one `(flow, offset)` record per flow that visits the switch and one
/// shared hop pool, so memory is proportional to the *route incidences*
/// at the switch, never to the platform-wide flow count. Lookup is a
/// binary search — and the switch model performs it once per packet
/// per hop (the selection is sticky), not once per cycle.
///
/// # Examples
///
/// ```
/// use nocem_common::ids::{FlowId, PortId};
/// use nocem_common::route::{RouteHop, RouteTable};
///
/// let mut table = RouteTable::new();
/// table.push_hop(FlowId::new(7), RouteHop::vc0(PortId::new(1)));
/// assert_eq!(table.lookup(FlowId::new(7)).len(), 1);
/// assert!(table.lookup(FlowId::new(3)).is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouteTable {
    /// Flow ids with entries, ascending.
    flows: Vec<u32>,
    /// CSR offsets into `hops`; `offsets.len() == flows.len() + 1`
    /// (the leading 0 is implicit when empty).
    offsets: Vec<u32>,
    /// Hop pool, grouped by flow.
    hops: Vec<RouteHop>,
}

impl RouteTable {
    /// An empty table.
    pub fn new() -> Self {
        RouteTable::default()
    }

    /// Builds a table from a dense flow-indexed vector (empty entries
    /// are dropped). This is the compatibility path for callers that
    /// spell small tables out by hand; large-scale builders should
    /// [`RouteTable::push_hop`] directly.
    pub fn from_dense(dense: Vec<Vec<RouteHop>>) -> Self {
        let mut table = RouteTable::new();
        for (flow, hops) in dense.into_iter().enumerate() {
            for hop in hops {
                table.push_hop(FlowId::new(flow as u32), hop);
            }
        }
        table
    }

    /// Adds an admissible hop for `flow`, ignoring exact duplicates.
    ///
    /// Appending in non-decreasing flow order is `O(1)` amortized (the
    /// order every table builder naturally produces); out-of-order
    /// flows fall back to a sorted insert.
    pub fn push_hop(&mut self, flow: FlowId, hop: RouteHop) {
        let f = flow.raw();
        if self.flows.is_empty() {
            self.flows.push(f);
            self.offsets = vec![0, 1];
            self.hops.push(hop);
            return;
        }
        let last = *self.flows.last().expect("non-empty");
        if f == last {
            let start = self.offsets[self.flows.len() - 1] as usize;
            if !self.hops[start..].contains(&hop) {
                self.hops.push(hop);
                *self.offsets.last_mut().expect("non-empty") += 1;
            }
            return;
        }
        if f > last {
            self.flows.push(f);
            self.hops.push(hop);
            self.offsets.push(self.hops.len() as u32);
            return;
        }
        // Out-of-order insert (rare: explicit paths given unsorted).
        match self.flows.binary_search(&f) {
            Ok(i) => {
                let (start, end) = (self.offsets[i] as usize, self.offsets[i + 1] as usize);
                if !self.hops[start..end].contains(&hop) {
                    self.hops.insert(end, hop);
                    for o in &mut self.offsets[i + 1..] {
                        *o += 1;
                    }
                }
            }
            Err(i) => {
                let at = self.offsets[i] as usize;
                self.flows.insert(i, f);
                self.hops.insert(at, hop);
                self.offsets.insert(i + 1, at as u32);
                for o in &mut self.offsets[i + 1..] {
                    *o += 1;
                }
            }
        }
    }

    /// The admissible hops of `flow` (empty if the flow never visits
    /// this switch).
    pub fn lookup(&self, flow: FlowId) -> &[RouteHop] {
        match self.flows.binary_search(&flow.raw()) {
            Ok(i) => &self.hops[self.offsets[i] as usize..self.offsets[i + 1] as usize],
            Err(_) => &[],
        }
    }

    /// Iterates `(flow, hops)` over every stored entry, ascending by
    /// flow.
    pub fn entries(&self) -> impl Iterator<Item = (FlowId, &[RouteHop])> + '_ {
        self.flows.iter().enumerate().map(move |(i, &f)| {
            (
                FlowId::new(f),
                &self.hops[self.offsets[i] as usize..self.offsets[i + 1] as usize],
            )
        })
    }

    /// Number of flows with at least one entry.
    pub fn flow_entries(&self) -> usize {
        self.flows.len()
    }

    /// Whether no flow has an entry.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Total stored hops.
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }

    /// The highest VC any stored hop uses (`None` when empty).
    pub fn max_vc(&self) -> Option<u8> {
        self.hops.iter().map(|h| h.vc.raw()).max()
    }

    /// The most alternatives any single flow holds (0 when empty).
    pub fn max_alternatives(&self) -> usize {
        (0..self.flows.len())
            .map(|i| (self.offsets[i + 1] - self.offsets[i]) as usize)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vc0_constructor() {
        let h = RouteHop::vc0(PortId::new(3));
        assert_eq!(h.port, PortId::new(3));
        assert_eq!(h.vc, VcId::ZERO);
    }

    #[test]
    fn display_is_compact() {
        let h = RouteHop {
            port: PortId::new(1),
            vc: VcId::new(1),
        };
        assert_eq!(h.to_string(), "p1/v1");
    }

    fn hop(port: u8, vc: u8) -> RouteHop {
        RouteHop {
            port: PortId::new(port),
            vc: VcId::new(vc),
        }
    }

    #[test]
    fn sparse_table_round_trips_dense() {
        let dense = vec![
            vec![hop(0, 0)],
            vec![],
            vec![hop(1, 0), hop(2, 1)],
            vec![],
            vec![hop(3, 0)],
        ];
        let table = RouteTable::from_dense(dense.clone());
        for (f, hops) in dense.iter().enumerate() {
            assert_eq!(table.lookup(FlowId::new(f as u32)), hops.as_slice());
        }
        assert_eq!(table.flow_entries(), 3, "empty entries are not stored");
        assert_eq!(table.hop_count(), 4);
        assert_eq!(table.max_vc(), Some(1));
        assert_eq!(table.max_alternatives(), 2);
        assert!(table.lookup(FlowId::new(99)).is_empty());
    }

    #[test]
    fn duplicate_hops_are_ignored() {
        let mut t = RouteTable::new();
        t.push_hop(FlowId::new(1), hop(0, 0));
        t.push_hop(FlowId::new(1), hop(0, 0));
        t.push_hop(FlowId::new(1), hop(1, 0));
        assert_eq!(t.lookup(FlowId::new(1)), &[hop(0, 0), hop(1, 0)]);
        assert_eq!(t.hop_count(), 2);
    }

    #[test]
    fn out_of_order_inserts_keep_entries_sorted() {
        let mut t = RouteTable::new();
        t.push_hop(FlowId::new(5), hop(0, 0));
        t.push_hop(FlowId::new(2), hop(1, 0));
        t.push_hop(FlowId::new(9), hop(2, 0));
        t.push_hop(FlowId::new(2), hop(3, 1));
        t.push_hop(FlowId::new(5), hop(0, 0)); // duplicate, dropped
        let flows: Vec<u32> = t.entries().map(|(f, _)| f.raw()).collect();
        assert_eq!(flows, vec![2, 5, 9]);
        assert_eq!(t.lookup(FlowId::new(2)), &[hop(1, 0), hop(3, 1)]);
        assert_eq!(t.lookup(FlowId::new(5)), &[hop(0, 0)]);
        assert_eq!(t.lookup(FlowId::new(9)), &[hop(2, 0)]);
    }

    #[test]
    fn empty_table_behaves() {
        let t = RouteTable::new();
        assert!(t.is_empty());
        assert_eq!(t.max_vc(), None);
        assert_eq!(t.max_alternatives(), 0);
        assert!(t.lookup(FlowId::new(0)).is_empty());
        assert_eq!(t.entries().count(), 0);
    }
}
