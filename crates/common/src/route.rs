//! Routing-table value types shared by the switch model and the
//! topology compiler.
//!
//! A routing table maps a flow to the set of admissible [`RouteHop`]s
//! at each switch: the output port to take and the virtual channel to
//! continue on. The type lives here (rather than in `nocem-topology`)
//! so that `nocem-switch` — the behavioural contract of the platform —
//! can consume tables without depending on the topology crate.

use crate::ids::{PortId, VcId};

/// One admissible continuation of a flow at a switch: the output port
/// to take and the virtual channel to take it on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RouteHop {
    /// Output port of the switch.
    pub port: PortId,
    /// Virtual channel on the link behind that port.
    pub vc: VcId,
}

impl RouteHop {
    /// A hop on VC 0 (the only kind a single-VC platform has).
    pub const fn vc0(port: PortId) -> Self {
        RouteHop {
            port,
            vc: VcId::ZERO,
        }
    }
}

impl core::fmt::Display for RouteHop {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}/{}", self.port, self.vc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vc0_constructor() {
        let h = RouteHop::vc0(PortId::new(3));
        assert_eq!(h.port, PortId::new(3));
        assert_eq!(h.vc, VcId::ZERO);
    }

    #[test]
    fn display_is_compact() {
        let h = RouteHop {
            port: PortId::new(1),
            vc: VcId::new(1),
        };
        assert_eq!(h.to_string(), "p1/v1");
    }
}
