//! Plain-text table rendering for monitor output and reports.
//!
//! The paper's "monitor" displays emulation statistics on the user's PC
//! screen; every harness binary in this workspace renders its results
//! through [`TextTable`] so tables look uniform and can be diffed
//! against `EXPERIMENTS.md`.

use core::fmt;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Align {
    /// Left-aligned (default; textual columns).
    #[default]
    Left,
    /// Right-aligned (numeric columns).
    Right,
}

/// A simple monospace table builder.
///
/// # Examples
///
/// ```
/// use nocem_common::table::{Align, TextTable};
/// let mut t = TextTable::new(vec!["Device".into(), "Slices".into()]);
/// t.align(1, Align::Right);
/// t.row(vec!["TG stochastic".into(), "719".into()]);
/// t.row(vec!["Control module".into(), "18".into()]);
/// let s = t.to_string();
/// assert!(s.contains("TG stochastic"));
/// assert!(s.lines().count() >= 4);
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    aligns: Vec<Align>,
    title: Option<String>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        let aligns = vec![Align::Left; header.len()];
        TextTable {
            header,
            rows: Vec::new(),
            aligns,
            title: None,
        }
    }

    /// Convenience constructor from string slices.
    pub fn with_columns(cols: &[&str]) -> Self {
        Self::new(cols.iter().map(|c| (*c).to_owned()).collect())
    }

    /// Sets a title printed above the table.
    pub fn title(&mut self, title: impl Into<String>) -> &mut Self {
        self.title = Some(title.into());
        self
    }

    /// Sets the alignment of column `col`.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of bounds.
    pub fn align(&mut self, col: usize, align: Align) -> &mut Self {
        self.aligns[col] = align;
        self
    }

    /// Appends a row. Shorter rows are padded with empty cells; longer
    /// rows are truncated to the header width.
    pub fn row(&mut self, mut cells: Vec<String>) -> &mut Self {
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Appends a row built from `Display` values.
    pub fn row_display(&mut self, cells: &[&dyn fmt::Display]) -> &mut Self {
        self.row(cells.iter().map(|c| c.to_string()).collect())
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.chars().count());
            }
        }
        w
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = widths[i].saturating_sub(cell.chars().count());
                match self.aligns[i] {
                    Align::Left => {
                        line.push_str(cell);
                        line.extend(std::iter::repeat_n(' ', pad));
                    }
                    Align::Right => {
                        line.extend(std::iter::repeat_n(' ', pad));
                        line.push_str(cell);
                    }
                }
            }
            writeln!(f, "{}", line.trim_end())
        };

        if let Some(title) = &self.title {
            writeln!(f, "{title}")?;
        }
        write_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_separator_rows() {
        let mut t = TextTable::with_columns(&["a", "b"]);
        t.row(vec!["x".into(), "y".into()]);
        let s = t.to_string();
        let lines: Vec<_> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    fn right_alignment_pads_left() {
        let mut t = TextTable::with_columns(&["name", "value"]);
        t.align(1, Align::Right);
        t.row(vec!["x".into(), "7".into()]);
        t.row(vec!["y".into(), "1234".into()]);
        let s = t.to_string();
        assert!(s.contains("    7"), "short value right-aligned:\n{s}");
    }

    #[test]
    fn short_rows_are_padded_long_rows_truncated() {
        let mut t = TextTable::with_columns(&["a", "b"]);
        t.row(vec!["only".into()]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        assert_eq!(t.len(), 2);
        let s = t.to_string();
        assert!(!s.contains('3'), "extra cell must be dropped:\n{s}");
    }

    #[test]
    fn title_is_printed_first() {
        let mut t = TextTable::with_columns(&["a"]);
        t.title("Table 1");
        t.row(vec!["v".into()]);
        assert!(t.to_string().starts_with("Table 1\n"));
    }

    #[test]
    fn empty_table_reports_empty() {
        let t = TextTable::with_columns(&["a"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn row_display_accepts_mixed_types() {
        let mut t = TextTable::with_columns(&["k", "v"]);
        t.row_display(&[&"speed", &50_000_000u64]);
        assert!(t.to_string().contains("50000000"));
    }
}
