//! Emulated time: clock cycles and wall-clock duration formatting.
//!
//! The emulation platform is fully synchronous: everything advances in
//! units of one platform clock cycle. [`Cycle`] is a newtype over `u64`
//! so that cycle counts are never confused with packet counts or flit
//! counts.
//!
//! [`format_duration`] renders durations the way the paper's Table 2
//! does (`3'20''`, `13h53'`, `36 days 4h`), so harness output can be
//! compared side by side with the published numbers.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A point in emulated time, measured in platform clock cycles.
///
/// # Examples
///
/// ```
/// use nocem_common::time::Cycle;
/// let t = Cycle::new(100) + 20;
/// assert_eq!(t.raw(), 120);
/// assert_eq!(t - Cycle::new(100), 20);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// Time zero (reset).
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a cycle timestamp from a raw count.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Cycle(raw)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the next cycle.
    #[inline]
    #[must_use]
    pub const fn next(self) -> Self {
        Cycle(self.0 + 1)
    }

    /// Saturating difference `self - earlier`, in cycles.
    #[inline]
    pub const fn since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Converts a cycle count to seconds given a clock frequency in Hz.
    ///
    /// # Examples
    ///
    /// ```
    /// use nocem_common::time::Cycle;
    /// // 160 Mcycles at the paper's 50 MHz platform clock = 3.2 s.
    /// assert_eq!(Cycle::new(160_000_000).to_seconds(50_000_000.0), 3.2);
    /// ```
    #[inline]
    pub fn to_seconds(self, clock_hz: f64) -> f64 {
        self.0 as f64 / clock_hz
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: Cycle) -> u64 {
        self.0 - rhs.0
    }
}

impl From<u64> for Cycle {
    fn from(raw: u64) -> Self {
        Cycle(raw)
    }
}

impl From<Cycle> for u64 {
    fn from(c: Cycle) -> u64 {
        c.0
    }
}

/// Formats a duration in seconds in the style of the paper's Table 2.
///
/// * below one minute: `3.2 sec`
/// * below one hour: `3'20''` (minutes and seconds)
/// * below one day: `13h53'` (hours and minutes)
/// * one day and above: `36 days 4h`
///
/// # Examples
///
/// ```
/// use nocem_common::time::format_duration;
/// assert_eq!(format_duration(3.2), "3.2 sec");
/// assert_eq!(format_duration(200.0), "3'20''");
/// assert_eq!(format_duration(50_000.0), "13h53'");
/// assert_eq!(format_duration(3_125_000.0), "36 days 4h");
/// ```
pub fn format_duration(seconds: f64) -> String {
    if !seconds.is_finite() || seconds < 0.0 {
        return String::from("n/a");
    }
    if seconds < 60.0 {
        // Keep one decimal, dropping a trailing ".0" for round values.
        let s = format!("{seconds:.1}");
        let s = s.strip_suffix(".0").unwrap_or(&s);
        return format!("{s} sec");
    }
    let total = seconds.round() as u64;
    if total < 3600 {
        return format!("{}'{:02}''", total / 60, total % 60);
    }
    if total < 86_400 {
        return format!("{}h{:02}'", total / 3600, (total % 3600) / 60);
    }
    let days = total / 86_400;
    let hours = (total % 86_400 + 1800) / 3600; // round to nearest hour
    let (days, hours) = if hours == 24 {
        (days + 1, 0)
    } else {
        (days, hours)
    };
    let day_word = if days == 1 { "day" } else { "days" };
    format!("{days} {day_word} {hours}h")
}

/// Formats a simulation speed in cycles per second using engineering
/// notation matching the paper (`50M`, `20K`, `3.2K`).
///
/// # Examples
///
/// ```
/// use nocem_common::time::format_speed;
/// assert_eq!(format_speed(50_000_000.0), "50M");
/// assert_eq!(format_speed(20_000.0), "20K");
/// assert_eq!(format_speed(3_200.0), "3.2K");
/// ```
pub fn format_speed(cycles_per_second: f64) -> String {
    fn short(v: f64) -> String {
        let s = format!("{v:.1}");
        s.strip_suffix(".0").map(str::to_owned).unwrap_or(s)
    }
    if cycles_per_second >= 1e9 {
        format!("{}G", short(cycles_per_second / 1e9))
    } else if cycles_per_second >= 1e6 {
        format!("{}M", short(cycles_per_second / 1e6))
    } else if cycles_per_second >= 1e3 {
        format!("{}K", short(cycles_per_second / 1e3))
    } else {
        short(cycles_per_second)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic() {
        let mut t = Cycle::ZERO;
        t += 10;
        assert_eq!(t, Cycle::new(10));
        assert_eq!(t.next(), Cycle::new(11));
        assert_eq!(t.since(Cycle::new(4)), 6);
        assert_eq!(t.since(Cycle::new(40)), 0, "since saturates");
        assert_eq!(Cycle::new(40) - t, 30);
    }

    #[test]
    fn display_mentions_unit() {
        assert_eq!(Cycle::new(5).to_string(), "5 cyc");
    }

    #[test]
    fn paper_table2_durations_render_exactly() {
        // Emulation: 16 Mpackets -> 160 Mcycles @50 MHz.
        assert_eq!(format_duration(3.2), "3.2 sec");
        // Emulation: 1000 Mpackets -> 10 Gcycles @50 MHz = 200 s.
        assert_eq!(format_duration(200.0), "3'20''");
        // SystemC 16 Mpackets: 160e6 / 20e3 = 8000 s.
        assert_eq!(format_duration(8000.0), "2h13'");
        // SystemC 1000 Mpackets: 1e10 / 20e3 = 500_000 s.
        assert_eq!(format_duration(500_000.0), "5 days 19h");
        // Verilog 16 Mpackets: 160e6 / 3.2e3 = 50_000 s.
        assert_eq!(format_duration(50_000.0), "13h53'");
        // Verilog 1000 Mpackets: 1e10 / 3.2e3 = 3_125_000 s.
        assert_eq!(format_duration(3_125_000.0), "36 days 4h");
    }

    #[test]
    fn duration_edge_cases() {
        assert_eq!(format_duration(0.0), "0 sec");
        assert_eq!(format_duration(59.9), "59.9 sec");
        assert_eq!(format_duration(60.0), "1'00''");
        assert_eq!(format_duration(3599.0), "59'59''");
        assert_eq!(format_duration(3600.0), "1h00'");
        assert_eq!(format_duration(86_400.0), "1 day 0h");
        assert_eq!(format_duration(f64::NAN), "n/a");
        assert_eq!(format_duration(-1.0), "n/a");
    }

    #[test]
    fn duration_rounds_days_up_at_midnight_boundary() {
        // 1 day 23h40' rounds the hour part to 24 -> carries into days.
        let secs = 86_400.0 + 23.0 * 3600.0 + 40.0 * 60.0;
        assert_eq!(format_duration(secs), "2 days 0h");
    }

    #[test]
    fn speed_formatting() {
        assert_eq!(format_speed(50e6), "50M");
        assert_eq!(format_speed(20e3), "20K");
        assert_eq!(format_speed(3.2e3), "3.2K");
        assert_eq!(format_speed(1.5e9), "1.5G");
        assert_eq!(format_speed(999.0), "999");
    }

    #[test]
    fn to_seconds_at_50mhz() {
        assert!((Cycle::new(10_000_000_000).to_seconds(50e6) - 200.0).abs() < 1e-9);
    }
}
