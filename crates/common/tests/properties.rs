//! Property-based tests for the shared vocabulary: flit serialization,
//! the hardware-style PRNGs and the time formatting helpers.

use nocem_common::flit::{FlitKind, PacketDescriptor};
use nocem_common::ids::{EndpointId, FlowId, PacketId};
use nocem_common::rng::{Lfsr16, Lfsr32, Pcg32, RandomSource, SplitMix64};
use nocem_common::time::{format_duration, Cycle};
use proptest::prelude::*;

fn descriptor(id: u64, len: u16) -> PacketDescriptor {
    PacketDescriptor {
        id: PacketId::new(id),
        src: EndpointId::new(0),
        dst: EndpointId::new(1),
        flow: FlowId::new(0),
        len_flits: len,
        release: Cycle::ZERO,
    }
}

proptest! {
    /// Serialization of any packet yields exactly `len` flits, with
    /// the wormhole framing the switches rely on: a single Single
    /// flit, or Head..Body..Tail with monotonically increasing `seq`.
    #[test]
    fn packet_serialization_framing(id in 0u64..1_000_000, len in 1u16..500) {
        let flits: Vec<_> = descriptor(id, len).flits().collect();
        prop_assert_eq!(flits.len(), usize::from(len));
        if len == 1 {
            prop_assert_eq!(flits[0].kind, FlitKind::Single);
        } else {
            prop_assert_eq!(flits[0].kind, FlitKind::Head);
            prop_assert_eq!(flits[len as usize - 1].kind, FlitKind::Tail);
            for f in &flits[1..len as usize - 1] {
                prop_assert_eq!(f.kind, FlitKind::Body);
            }
        }
        for (i, f) in flits.iter().enumerate() {
            prop_assert_eq!(usize::from(f.seq), i);
            prop_assert!(f.payload_is_valid(), "flit {} corrupt", i);
            prop_assert_eq!(f.packet, PacketId::new(id));
        }
        // Exactly one head-carrying and one tail-carrying flit.
        prop_assert_eq!(flits.iter().filter(|f| f.kind.is_head()).count(), 1);
        prop_assert_eq!(flits.iter().filter(|f| f.kind.is_tail()).count(), 1);
    }

    /// The flit iterator reports an exact length at every point.
    #[test]
    fn flit_iterator_len_is_exact(len in 1u16..100) {
        let mut it = descriptor(7, len).flits();
        for remaining in (1..=usize::from(len)).rev() {
            prop_assert_eq!(it.len(), remaining);
            prop_assert!(it.next().is_some());
        }
        prop_assert_eq!(it.len(), 0);
        prop_assert!(it.next().is_none());
    }

    /// Corrupting the payload of any flit is detected.
    #[test]
    fn payload_corruption_is_detected(id in 0u64..100_000, len in 1u16..64, bit in 0u32..32) {
        let mut flits: Vec<_> = descriptor(id, len).flits().collect();
        let victim = (id as usize) % flits.len();
        flits[victim].payload ^= 1 << bit;
        prop_assert!(!flits[victim].payload_is_valid());
    }

    /// A maximal-length LFSR never reaches the all-zero lock-up state
    /// from a nonzero seed, and is deterministic per seed.
    #[test]
    fn lfsr16_stays_nonzero_and_deterministic(seed in 1u16..=u16::MAX) {
        let mut a = Lfsr16::new(seed);
        let mut b = Lfsr16::new(seed);
        for _ in 0..1_000 {
            let x = a.step();
            prop_assert_eq!(x, b.step());
            prop_assert_ne!(x, 0, "LFSR locked up");
        }
    }

    /// Same for the 32-bit variant.
    #[test]
    fn lfsr32_stays_nonzero_and_deterministic(seed in 1u32..=u32::MAX) {
        let mut a = Lfsr32::new(seed);
        let mut b = Lfsr32::new(seed);
        for _ in 0..1_000 {
            let x = a.step();
            prop_assert_eq!(x, b.step());
            prop_assert_ne!(x, 0);
        }
    }

    /// `below` always respects its bound, for any generator state.
    #[test]
    fn pcg_below_respects_bound(seed in any::<u64>(), bound in 1u32..=u32::MAX, draws in 1usize..50) {
        let mut rng = Pcg32::seeded(seed);
        for _ in 0..draws {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    /// `in_range` is inclusive on both ends and never escapes.
    #[test]
    fn pcg_in_range_is_inclusive(seed in any::<u64>(), lo in 0u32..1000, width in 0u32..1000) {
        let hi = lo + width;
        let mut rng = Pcg32::seeded(seed);
        for _ in 0..50 {
            let v = rng.in_range(lo, hi);
            prop_assert!(v >= lo && v <= hi);
        }
    }

    /// Probability edge cases are exact, not approximate.
    #[test]
    fn chance_edges_are_exact(seed in any::<u64>()) {
        let mut rng = Pcg32::seeded(seed);
        for _ in 0..100 {
            prop_assert!(!rng.chance(0.0));
            prop_assert!(rng.chance(1.0));
        }
        prop_assert_eq!(rng.geometric(1.0), 0);
        prop_assert_eq!(rng.geometric(0.0), u32::MAX);
    }

    /// Geometric sampling has (approximately) the right mean: the
    /// number of failures before a success of Bernoulli(p) averages
    /// `(1-p)/p`.
    #[test]
    fn geometric_mean_matches(seed in any::<u64>()) {
        let p = 0.25;
        let mut rng = Pcg32::seeded(seed);
        let n = 4_000;
        let sum: u64 = (0..n).map(|_| u64::from(rng.geometric(p))).sum();
        let mean = sum as f64 / f64::from(n);
        let expect = (1.0 - p) / p; // 3.0
        prop_assert!((mean - expect).abs() < 0.5, "mean {mean}");
    }

    /// SplitMix64 streams with different seeds diverge immediately
    /// (used to derive per-device seeds from the platform seed).
    #[test]
    fn splitmix_streams_diverge(seed in any::<u64>()) {
        let mut a = SplitMix64::new(seed);
        let mut b = SplitMix64::new(seed ^ 1);
        prop_assert_ne!(a.next(), b.next());
    }

    /// Duration formatting is total: every finite non-negative input
    /// renders to a non-empty string with a recognized unit.
    #[test]
    fn duration_formatting_is_total(secs in 0.0f64..1e9) {
        let s = format_duration(secs);
        prop_assert!(!s.is_empty());
        prop_assert!(
            s.contains("sec") || s.contains('\'') || s.contains('h') || s.contains("day"),
            "unrecognized format {s:?}"
        );
    }

    /// Cycle arithmetic: `since` is the saturating inverse of `+`.
    #[test]
    fn cycle_since_inverts_add(base in 0u64..1_000_000_000, delta in 0u64..1_000_000) {
        let t0 = Cycle::new(base);
        let t1 = t0 + delta;
        prop_assert_eq!(t1.since(t0), delta);
        prop_assert_eq!(t0.since(t1), 0, "since saturates backwards");
        prop_assert_eq!(t1 - t0, delta);
    }
}

/// The 16-bit LFSR with maximal taps has period 2^16 - 1: it visits
/// every nonzero state exactly once.
#[test]
fn lfsr16_has_maximal_period() {
    let mut lfsr = Lfsr16::new(1);
    let mut seen = vec![false; 1 << 16];
    for _ in 0..(1u32 << 16) - 1 {
        let v = lfsr.step();
        assert!(!seen[usize::from(v)], "state {v:#06x} repeated early");
        seen[usize::from(v)] = true;
    }
    assert!(!seen[0], "zero state must be unreachable");
    assert_eq!(seen.iter().filter(|&&s| s).count(), (1 << 16) - 1);
}
