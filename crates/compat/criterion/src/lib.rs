//! Offline stand-in for the [`criterion`](https://docs.rs/criterion)
//! benchmark harness.
//!
//! The build environment has no crates.io access, so the workspace's
//! Criterion benches link against this minimal API-compatible subset.
//! Statistics are deliberately simple: each benchmark runs a short
//! warm-up iteration followed by a fixed sample loop and reports the
//! mean wall-clock time per iteration. That is enough to compare the
//! three engines and spot order-of-magnitude regressions; it makes no
//! attempt at Criterion's outlier analysis or HTML reports.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark inside a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from a bare parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to benchmark closures; runs the measured routine.
pub struct Bencher {
    samples: u32,
    last_mean: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of samples and
    /// records the mean.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up run outside the measurement.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.last_mean = start.elapsed() / self.samples.max(1);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u32,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u32).max(1);
        self
    }

    /// Sets an (informational) measurement-time budget. Accepted for
    /// API compatibility; this shim's loop count is fixed by
    /// [`Self::sample_size`].
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Attaches a throughput annotation to subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        let mean = run_one(self.sample_size, f);
        report(&label, mean, self.throughput);
        let _ = &self.criterion;
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let mean = run_one(self.sample_size, |b| f(b, input));
        report(&label, mean, self.throughput);
        self
    }

    /// Ends the group (report flushing is a no-op here).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accepts CLI configuration; a no-op in this shim.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let label = id.to_string();
        let mean = run_one(10, f);
        report(&label, mean, None);
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Final report hook (no-op).
    pub fn final_summary(&mut self) {}
}

fn run_one<F: FnOnce(&mut Bencher)>(samples: u32, f: F) -> Duration {
    let mut b = Bencher {
        samples,
        last_mean: Duration::ZERO,
    };
    f(&mut b);
    b.last_mean
}

fn report(label: &str, mean: Duration, throughput: Option<Throughput>) {
    match throughput {
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            let rate = n as f64 / mean.as_secs_f64();
            println!("bench {label:<48} {mean:>12.2?}/iter  {rate:>14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
            let rate = n as f64 / mean.as_secs_f64();
            println!("bench {label:<48} {mean:>12.2?}/iter  {rate:>14.0} B/s");
        }
        _ => println!("bench {label:<48} {mean:>12.2?}/iter"),
    }
}

/// Groups benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("standalone", |b| b.iter(|| black_box(2 + 2)));
        let mut group = c.benchmark_group("group");
        group.sample_size(3);
        group.throughput(Throughput::Elements(4));
        group.bench_function("inner", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
