//! Offline stand-in for the [`proptest`](https://docs.rs/proptest)
//! crate.
//!
//! The build environment of this workspace has no access to crates.io,
//! so the property-based test suites link against this API-compatible
//! subset instead. It keeps the shape of the real thing — `proptest!`,
//! `prop_assert*!`, strategies built from ranges / tuples / `any` /
//! `prop_map` / `collection::vec` — but swaps the engine for a small
//! deterministic sampler:
//!
//! * every test case is sampled from a [SplitMix64-seeded] generator
//!   whose seed derives from the module path, test name and case
//!   index, so runs are fully reproducible without a persistence file;
//! * there is **no shrinking**: a failing case reports its index and
//!   the failed assertion, which together with determinism is enough
//!   to replay it under a debugger.
//!
//! [SplitMix64-seeded]: test_runner::TestRng

#![forbid(unsafe_code)]

pub mod strategy {
    //! Strategy trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of type [`Strategy::Value`].
    ///
    /// Unlike real proptest there is no value tree / shrinking — a
    /// strategy is just a deterministic sampler.
    pub trait Strategy {
        /// The type of value produced.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_ranges {
        ($($t:ty => $u:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // Wrapping-subtract through the unsigned twin so
                    // negative starts (signed ranges) don't overflow.
                    let span = self.end.wrapping_sub(self.start) as $u as u128;
                    let off = rng.below_u128(span);
                    self.start.wrapping_add(off as $t)
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = hi.wrapping_sub(lo) as $u as u128 + 1;
                    let off = rng.below_u128(span);
                    lo.wrapping_add(off as $t)
                }
            }
        )*};
    }
    impl_int_ranges!(
        u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
        i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
    );

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let u = rng.unit_f64();
            self.start + u * (self.end - self.start)
        }
    }

    impl Strategy for ::std::ops::Range<f32> {
        type Value = f32;

        fn sample(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            let u = rng.unit_f64() as f32;
            self.start + u * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident / $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A / 0);
    impl_tuple_strategy!(A / 0, B / 1);
    impl_tuple_strategy!(A / 0, B / 1, C / 2);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(::std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy over every value of `T` (for the primitive types this
    /// shim supports).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(::std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Number-of-elements specification: an exact size or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<::std::ops::Range<usize>> for SizeRange {
        fn from(r: ::std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<::std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: ::std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u128;
            let len = self.size.lo + rng.below_u128(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Deterministic case runner plumbing used by the
    //! [`proptest!`](crate::proptest) macro expansion.

    /// Configuration accepted through `#![proptest_config(..)]`.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        /// 128 cases — half of upstream proptest's 256, chosen so the
        /// full workspace property suite stays inside a few seconds.
        fn default() -> Self {
            ProptestConfig { cases: 128 }
        }
    }

    /// Failure of a single test case (raised by `prop_assert*!`).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Creates a failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl ::std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// SplitMix64 sampler seeding each test case.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the generator for one (test, case) pair.
        pub fn deterministic(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next 64 uniform bits (SplitMix64 step).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero and
        /// fit the sampled widths used by the strategies above.
        pub fn below_u128(&mut self, bound: u128) -> u128 {
            assert!(bound > 0, "bound must be positive");
            if bound == 1 {
                return 0;
            }
            // 128-bit multiply-shift over a 64-bit draw keeps bias
            // far below anything a test could observe.
            (u128::from(self.next_u64()) * bound) >> 64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Stable seed for (module, test, case). FNV-1a over the names,
    /// mixed with the case index.
    pub fn case_seed(module: &str, test: &str, case: u32) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in module.bytes().chain([b':']).chain(test.bytes()) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^ (u64::from(case) << 1)
    }
}

pub mod prelude {
    //! The glob-importable surface mirroring `proptest::prelude`.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests.
///
/// Supports the subset of the real macro's grammar this workspace
/// uses: an optional leading `#![proptest_config(expr)]`, then any
/// number of `#[test] fn name(pat in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(
                        $crate::test_runner::case_seed(module_path!(), stringify!($name), __case),
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )*
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        panic!(
                            "proptest {}::{} failed at case {}/{}: {}",
                            module_path!(),
                            stringify!($name),
                            __case,
                            __cfg.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{} (left: `{:?}`, right: `{:?}`)",
                    format!($($fmt)+), l, r
                ),
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} (both: `{:?}`)", format!($($fmt)+), l),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::deterministic(1);
        for _ in 0..1_000 {
            let v = (3u32..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let w = (5u16..=5).sample(&mut rng);
            assert_eq!(w, 5);
            let f = (0.25f64..0.75).sample(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn signed_ranges_sample_in_bounds() {
        // Regression: negative range starts used to underflow the
        // span computation.
        let mut rng = TestRng::deterministic(7);
        let mut saw_negative = false;
        for _ in 0..1_000 {
            let v = (-5i32..5).sample(&mut rng);
            assert!((-5..5).contains(&v));
            saw_negative |= v < 0;
            let w = (i8::MIN..=i8::MAX).sample(&mut rng);
            let _ = w; // full-domain range must not panic
            let x = (-100i64..-50).sample(&mut rng);
            assert!((-100..-50).contains(&x));
        }
        assert!(saw_negative, "negative half of the range never sampled");
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::deterministic(2);
        for _ in 0..200 {
            let v = crate::collection::vec(0u8..10, 2..6).sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            let exact = crate::collection::vec(0u8..10, 4usize).sample(&mut rng);
            assert_eq!(exact.len(), 4);
        }
    }

    #[test]
    fn determinism_per_seed() {
        let mut a = TestRng::deterministic(9);
        let mut b = TestRng::deterministic(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: bindings, tuples, maps, prop_asserts.
        #[test]
        fn macro_end_to_end(
            x in 1u32..100,
            (a, b) in (0u8..4, any::<bool>()),
            v in crate::collection::vec((0u16..3).prop_map(|n| n * 2), 1..5),
        ) {
            prop_assert!((1..100).contains(&x));
            prop_assert!(a < 4, "a out of range: {}", a);
            prop_assert_eq!(b, b);
            prop_assert_ne!(x, 0);
            for e in v {
                prop_assert_eq!(e % 2, 0);
            }
        }
    }
}
