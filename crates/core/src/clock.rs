//! Clock control: hybrid clock-gated emulation.
//!
//! The paper's platform (and the original engines here) steps every
//! cycle even when the network is empty, which wastes most of the wall
//! clock on the low-load points of a scenario matrix. Following the
//! hybrid clock-gating idea of EmuNoC (see PAPERS.md), this module
//! lets all three engines *jump* the clock over provably idle windows
//! without changing any observable behaviour:
//!
//! * traffic generators expose their next event
//!   ([`TrafficGenerator::next_event_cycle`]) and can replay skipped
//!   no-op ticks in one jump ([`TrafficGenerator::skip_to`]);
//! * switches expose [`Switch::is_quiescent`] (no flit in any per-VC
//!   FIFO, no worm in progress, all credits home) and network
//!   interfaces [`SourceNi::is_idle`] + [`SourceNi::credits_home`];
//! * [`platform_quiescent`] combines these into the platform-wide
//!   predicate, and [`fast_forward`] — the fast-forward kernel — jumps
//!   to the earliest future event when it holds.
//!
//! Gating is opt-in via [`ClockMode`]: `EveryCycle` is bit-identical
//! to the original platform, `Gated` is proven cycle-equivalent (same
//! delivery cycles, same packet ledger) by the gated-vs-ungated and
//! cross-engine lockstep tests. Skipped cycles are counted separately
//! ([`SteppableEngine::cycles_skipped`]) so latency and throughput
//! statistics, the packet ledger and the Table 2 work-per-cycle proxy
//! stay exact.
//!
//! The engines are unified behind the [`SteppableEngine`] trait,
//! so the run loops ([`run_engine`], [`run_engine_with_progress`]),
//! the engine-generic sweep (`crate::sweep::run_sweep_engine`) and the
//! cross-engine lockstep tests are written once instead of three
//! times.
//!
//! # Quiescence invariants
//!
//! A fast-forward jump is sound because the quiescence predicate is
//! *exhaustive*: when it holds, the only state a skipped cycle would
//! change is TG countdowns, which [`TrafficGenerator::skip_to`]
//! replays. Each clause closes one leak:
//!
//! * **no parked TG request** — a parked request retries every cycle
//!   and could be accepted at any of them, so it pins the clock;
//! * **every NI idle with all credits home** — an NI holding a
//!   queued or half-serialized packet injects on future cycles; a
//!   missing credit means a flit still occupies (or a credit is in
//!   flight from) the downstream buffer, i.e. the network is not
//!   empty;
//! * **every switch quiescent** — empty per-VC FIFOs *and* no open
//!   wormhole on either side *and* per-output-VC credits at their
//!   caps; a quiescent switch's `decide` computes no grant and steps
//!   no arbiter, pointer or LFSR, so skipping it is exact;
//! * **no in-flight packet in the ledger** — a belt over the braces:
//!   any flit anywhere implies an undelivered packet.
//!
//! # Sharded engines: the cross-shard event horizon
//!
//! The sharded engines (`crate::shard`, `crate::shard_compiled`)
//! apply the same protocol per shard: every worker reports its local
//! quiescence and its TGs' earliest future event each cycle, and the
//! coordinator may jump only when **all** shards are quiescent (plus
//! the ledger clause), and only to the *minimum* next-event over all
//! shards — the cross-shard event horizon. A shard therefore never
//! fast-forwards past a cycle at which another shard could have
//! produced traffic that would reach it; the jump is replayed in
//! every worker with the same [`TrafficGenerator::skip_to`] contract
//! as [`fast_forward`]. Because the gating decision is a per-cycle
//! platform-wide predicate, the batched sharded compiled engine
//! clamps its exchange batch to 1 under [`ClockMode::Gated`] rather
//! than diverge.

use crate::error::EmulationError;
use nocem_common::time::Cycle;
use nocem_stats::latency::LatencyAnalyzer;
use nocem_stats::ledger::PacketLedger;
use nocem_switch::switch::Switch;
use nocem_traffic::generator::{PacketRequest, TrafficGenerator};
use nocem_traffic::ni::SourceNi;

/// How an engine advances the platform clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClockMode {
    /// Step every cycle — bit-identical to the original platform.
    #[default]
    EveryCycle,
    /// Hybrid clock gating: whenever the whole platform is quiescent,
    /// jump the clock to the earliest future traffic-generator event
    /// in one step. Cycle-equivalent to [`ClockMode::EveryCycle`]
    /// (same deliveries at the same cycles, same ledger); only the
    /// wall-clock cost and the machinery counters shrink.
    Gated,
}

/// The platform-wide quiescence predicate: nothing in the network, no
/// component owes or awaits anything.
///
/// * every parked TG request (`pending`) is absent — a parked request
///   retries every cycle, so it pins the clock;
/// * every NI holds no queued or half-serialized packet *and* has all
///   its credits home (a missing credit means a flit of ours still
///   sits downstream or the credit is in flight on the return wire);
/// * every switch is [`Switch::is_quiescent`];
/// * the ledger carries no in-flight packet (a cheap belt over the
///   braces above — a flit inside any channel or buffer implies an
///   undelivered packet).
///
/// When this holds, stepping the platform is a pure no-op apart from
/// TG cooldown countdowns, which [`fast_forward`] replays exactly.
pub fn platform_quiescent(
    switches: &[Switch],
    nis: &[SourceNi],
    pending: &[Option<PacketRequest>],
    in_flight: u64,
) -> bool {
    in_flight == 0
        && pending.iter().all(Option::is_none)
        && nis.iter().all(|n| n.is_idle() && n.credits_home())
        && switches.iter().all(Switch::is_quiescent)
}

/// The fast-forward kernel.
///
/// Call on a *quiescent* platform about to execute cycle `now`:
/// computes the earliest future TG event, replays the skipped no-op
/// ticks inside every generator ([`TrafficGenerator::skip_to`]) and
/// returns how many cycles the caller must advance its own clock
/// (0 = an event is due now, nothing to skip).
///
/// The jump is clamped to `cycle_limit` so a gated run that would
/// exceed the limit executes its final (no-op) cycle at exactly
/// `cycle_limit` and raises the same error an ungated run raises, with
/// the same delivery count at the same cycle.
pub fn fast_forward(
    now: Cycle,
    cycle_limit: u64,
    tgs: &mut [Box<dyn TrafficGenerator + Send>],
) -> u64 {
    let earliest = tgs
        .iter()
        .map(|tg| tg.next_event_cycle(now).cycle_or_max())
        .min()
        .unwrap_or(u64::MAX);
    let target = earliest.min(cycle_limit);
    if target <= now.raw() {
        return 0;
    }
    let target = Cycle::new(target);
    for tg in tgs.iter_mut() {
        tg.skip_to(now, target);
    }
    target - now
}

/// Effective speedup of a gated run: simulated cycles per cycle
/// actually stepped. 1.0 when nothing was skipped.
pub fn effective_speedup(cycles: u64, cycles_skipped: u64) -> f64 {
    let stepped = cycles.saturating_sub(cycles_skipped);
    if cycles == 0 || stepped == 0 {
        1.0
    } else {
        cycles as f64 / stepped as f64
    }
}

/// A structured, machine-visible warning an engine raised while
/// coming up or running — the replacement for ad-hoc stderr prints,
/// surfaced on [`EngineSummary::warnings`] and
/// [`SteppableEngine::warnings`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineWarning {
    /// Clock gating needs a per-cycle cross-shard horizon, so the
    /// sharded-compiled engine clamped the requested exchange batch
    /// to 1.
    GatedBatchClamp {
        /// The batch the configuration asked for.
        requested: u64,
    },
}

impl std::fmt::Display for EngineWarning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineWarning::GatedBatchClamp { requested } => write!(
                f,
                "clock gating needs a per-cycle cross-shard horizon; \
                 clamping sharded-compiled batch {requested} to 1"
            ),
        }
    }
}

/// Engine-agnostic end-of-run summary — the comparison tuple of the
/// cross-engine and gated-vs-ungated equivalence tests.
///
/// Equality deliberately ignores [`EngineSummary::warnings`]: a
/// warning describes the *machinery* (a clamped knob), not the
/// emulated behaviour, and the equivalence tests compare behaviour.
#[derive(Debug, Clone)]
pub struct EngineSummary {
    /// Simulated cycles (skipped ones included — identical across
    /// clock modes).
    pub cycles: u64,
    /// Cycles the fast-forward kernel jumped over (0 when ungated).
    pub cycles_skipped: u64,
    /// Packets released by the traffic models.
    pub released: u64,
    /// Packets whose head entered the network.
    pub injected: u64,
    /// Packets fully delivered.
    pub delivered: u64,
    /// Flits fully delivered.
    pub delivered_flits: u64,
    /// Network latency (injection → delivery) statistics.
    pub network_latency: LatencyAnalyzer,
    /// Total latency (release → delivery) statistics.
    pub total_latency: LatencyAnalyzer,
    /// Structured warnings the engine raised (excluded from
    /// equality).
    pub warnings: Vec<EngineWarning>,
}

impl PartialEq for EngineSummary {
    fn eq(&self, other: &Self) -> bool {
        self.cycles == other.cycles
            && self.cycles_skipped == other.cycles_skipped
            && self.released == other.released
            && self.injected == other.injected
            && self.delivered == other.delivered
            && self.delivered_flits == other.delivered_flits
            && self.network_latency == other.network_latency
            && self.total_latency == other.total_latency
    }
}

impl EngineSummary {
    /// Builds the summary from an engine's clocks, flit counter and
    /// packet ledger — the one construction every engine shares.
    pub fn from_ledger(
        cycles: u64,
        cycles_skipped: u64,
        delivered_flits: u64,
        ledger: &PacketLedger,
    ) -> EngineSummary {
        EngineSummary {
            cycles,
            cycles_skipped,
            released: ledger.released(),
            injected: ledger.injected(),
            delivered: ledger.delivered(),
            delivered_flits,
            network_latency: ledger.network_latency().clone(),
            total_latency: ledger.total_latency().clone(),
            warnings: Vec::new(),
        }
    }

    /// The summary with the engine's warnings attached
    /// (builder-style; engines call this inside
    /// [`SteppableEngine::summary`]).
    #[must_use]
    pub fn with_warnings(mut self, warnings: &[EngineWarning]) -> EngineSummary {
        self.warnings = warnings.to_vec();
        self
    }

    /// Effective speedup of the run under gating (1.0 when ungated).
    pub fn gating_speedup(&self) -> f64 {
        effective_speedup(self.cycles, self.cycles_skipped)
    }

    /// The summary with the machinery-only gating counter cleared —
    /// what the cross-mode equivalence tests compare, since skipping
    /// is the one *intended* difference between the modes.
    #[must_use]
    pub fn behavioral(&self) -> EngineSummary {
        EngineSummary {
            cycles_skipped: 0,
            ..self.clone()
        }
    }
}

/// The common stepping contract of the three simulation engines (fast
/// emulation, TLM, RTL).
///
/// One `step` call advances the engine by one *stepped* cycle; under
/// [`ClockMode::Gated`] that step may first jump the clock across a
/// quiescent window, which is why [`SteppableEngine::now`] can grow by
/// more than one per call. The trait is object-safe so harnesses can
/// drive heterogeneous engines in lockstep through `dyn
/// SteppableEngine`.
pub trait SteppableEngine {
    /// Advances one cycle (plus any preceding fast-forward jump).
    ///
    /// # Errors
    ///
    /// Returns [`EmulationError`] on protocol violations or when the
    /// cycle limit is exceeded.
    fn step(&mut self) -> Result<(), EmulationError>;

    /// The current cycle.
    fn now(&self) -> Cycle;

    /// Whether the stop condition holds.
    fn finished(&self) -> bool;

    /// Packets delivered so far.
    fn delivered(&self) -> u64;

    /// Cycles skipped by the fast-forward kernel so far.
    fn cycles_skipped(&self) -> u64;

    /// Snapshot of the run summary.
    fn summary(&self) -> EngineSummary;

    /// Snapshot of the packet ledger (for exact per-packet
    /// equivalence checks).
    fn packet_ledger(&self) -> PacketLedger;

    /// The windowed telemetry collector, when the config enabled one.
    ///
    /// Engines probe their counters at window boundaries inside
    /// [`SteppableEngine::step`] — always at the *start* of the cycle,
    /// after any clock-gated fast-forward — so the collector's series
    /// are engine-invariant without callers doing anything.
    fn telemetry(&self) -> Option<&nocem_telemetry::Collector> {
        None
    }

    /// Flushes the trailing partial telemetry window and freezes the
    /// collector (no-op without telemetry or when already sealed).
    /// Call once the run (or measurement interval) is over; after
    /// sealing, series totals equal the lifetime counters.
    fn seal_telemetry(&mut self) {}

    /// The per-phase self-profiling report, when the config enabled
    /// profiling ([`crate::config::PlatformConfig::profile`]).
    ///
    /// Takes `&mut self` because sharded engines fetch their workers'
    /// accumulators over the command channels on demand.
    fn profile(&mut self) -> Option<crate::profile::PhaseReport> {
        None
    }

    /// The merged wall-clock span timeline (Chrome-trace material),
    /// when the config enabled profiling with spans on. Draining is
    /// destructive on sharded engines — call once, at the end.
    fn span_trace(&mut self) -> Option<nocem_telemetry::SpanTrace> {
        None
    }

    /// The stall watchdog's latched forensic report, if profiling ran
    /// with a [`crate::profile::StallConfig`] and the watchdog
    /// tripped.
    fn stall_report(&self) -> Option<&crate::profile::StallReport> {
        None
    }

    /// Structured warnings the engine raised while coming up or
    /// running (configuration clamps and the like).
    fn warnings(&self) -> &[EngineWarning] {
        &[]
    }
}

/// Runs any engine to its stop condition.
///
/// This drives the engine purely through the stepping contract. It
/// does *not* touch engine-specific peripherals — in particular, the
/// fast engine's memory-mapped control module (`running`/`done` bits)
/// is only maintained by `Emulation::run`/`run_with_progress`/
/// `run_programmed`; register-polling software should run through
/// those paths.
///
/// # Errors
///
/// Propagates [`EmulationError`] from [`SteppableEngine::step`].
pub fn run_engine<E: SteppableEngine + ?Sized>(engine: &mut E) -> Result<(), EmulationError> {
    while !engine.finished() {
        engine.step()?;
    }
    Ok(())
}

/// Runs any engine until its clock reaches at least `cycle` (or its
/// stop condition holds first, whichever comes earlier).
///
/// This is the measurement-window primitive of the latency–throughput
/// curve harness: a steady-state point runs open-loop (no packet
/// budget) for warm-up-plus-window cycles and is then read out
/// through the ledger. Under [`ClockMode::Gated`] a final
/// fast-forward jump may overshoot `cycle`; that is harmless — the
/// overshot window is provably quiescent, so no observable event
/// lands in it.
///
/// # Errors
///
/// Propagates [`EmulationError`] from [`SteppableEngine::step`].
pub fn run_engine_until<E: SteppableEngine + ?Sized>(
    engine: &mut E,
    cycle: u64,
) -> Result<(), EmulationError> {
    while engine.now().raw() < cycle && !engine.finished() {
        engine.step()?;
    }
    Ok(())
}

/// Runs any engine to its stop condition, invoking `progress` at every
/// multiple of `interval` cycles with `(cycle, delivered)`.
///
/// The promised granularity survives clock gating: when a fast-forward
/// jump crosses one or more reporting boundaries, the callback fires
/// once per crossed boundary. That is exact, not approximate — a jump
/// only happens while the platform is quiescent, so the delivered
/// count at every skipped boundary equals the delivered count after
/// the jump.
///
/// # Errors
///
/// Propagates [`EmulationError`] from [`SteppableEngine::step`].
pub fn run_engine_with_progress<E: SteppableEngine + ?Sized>(
    engine: &mut E,
    interval: u64,
    mut progress: impl FnMut(Cycle, u64),
) -> Result<(), EmulationError> {
    let interval = interval.max(1);
    let mut next_report = (engine.now().raw() / interval + 1) * interval;
    while !engine.finished() {
        engine.step()?;
        while engine.now().raw() >= next_report {
            progress(Cycle::new(next_report), engine.delivered());
            next_report += interval;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocem_common::ids::{EndpointId, FlowId};
    use nocem_traffic::generator::DestinationModel;
    use nocem_traffic::stochastic::{StochasticTg, UniformConfig};
    use nocem_traffic::trace::{Trace, TraceDrivenTg, TraceEvent};

    fn uniform_tg(budget: u64, gap: u32, seed: u64) -> Box<dyn TrafficGenerator + Send> {
        Box::new(StochasticTg::uniform(
            UniformConfig {
                length: nocem_traffic::generator::LengthModel::Fixed(2),
                gap: (gap, gap),
                budget: Some(budget),
                destination: DestinationModel::Fixed {
                    dst: EndpointId::new(1),
                    flow: FlowId::new(0),
                },
            },
            seed,
        ))
    }

    #[test]
    fn fast_forward_takes_the_earliest_event() {
        let mut tgs = vec![uniform_tg(4, 10, 1), uniform_tg(4, 6, 2)];
        // Burn the cycle-0 releases so both TGs sit in their cooldown.
        for tg in &mut tgs {
            assert!(tg.tick(Cycle::ZERO).is_some());
        }
        let now = Cycle::new(1);
        let e0 = tgs[0].next_event_cycle(now).cycle_or_max();
        let e1 = tgs[1].next_event_cycle(now).cycle_or_max();
        let skipped = fast_forward(now, u64::MAX, &mut tgs);
        assert_eq!(skipped, e0.min(e1) - 1, "jump lands on the nearer event");
        // Both generators replayed the same number of no-op ticks.
        let at = Cycle::new(now.raw() + skipped);
        assert_eq!(
            tgs.iter()
                .map(|t| t.next_event_cycle(at).cycle_or_max())
                .min(),
            Some(at.raw())
        );
    }

    #[test]
    fn fast_forward_clamps_to_the_cycle_limit() {
        let mut tgs = vec![uniform_tg(2, 1_000, 1)];
        assert!(tgs[0].tick(Cycle::ZERO).is_some());
        let skipped = fast_forward(Cycle::new(1), 50, &mut tgs);
        assert_eq!(skipped, 49, "clamped jump stops at the limit cycle");
    }

    #[test]
    fn fast_forward_without_events_jumps_to_the_limit() {
        let mut tgs: Vec<Box<dyn TrafficGenerator + Send>> = vec![Box::new(TraceDrivenTg::new(
            &Trace::from_events(Vec::new()),
            EndpointId::new(0),
        ))];
        assert_eq!(fast_forward(Cycle::new(3), 20, &mut tgs), 17);
    }

    #[test]
    fn fast_forward_refuses_due_events() {
        let trace = Trace::from_events(vec![TraceEvent {
            at: Cycle::new(5),
            src: EndpointId::new(0),
            dst: EndpointId::new(1),
            flow: FlowId::new(0),
            len_flits: 1,
        }]);
        let mut tgs: Vec<Box<dyn TrafficGenerator + Send>> =
            vec![Box::new(TraceDrivenTg::new(&trace, EndpointId::new(0)))];
        assert_eq!(fast_forward(Cycle::new(5), u64::MAX, &mut tgs), 0);
        assert_eq!(fast_forward(Cycle::new(2), u64::MAX, &mut tgs), 3);
    }

    #[test]
    fn speedup_formula() {
        assert_eq!(effective_speedup(0, 0), 1.0);
        assert_eq!(effective_speedup(100, 0), 1.0);
        assert_eq!(effective_speedup(100, 50), 2.0);
        assert_eq!(effective_speedup(100, 100), 1.0, "degenerate guard");
    }
}
