//! Platform compilation: from a [`PlatformConfig`] to instantiated
//! components (step 1 of the paper's emulation flow).
//!
//! [`elaborate`] validates the configuration, computes routing tables,
//! checks deadlock freedom, predicts link loads, instantiates every
//! component (switches, network interfaces, traffic generators,
//! receptors) with seeds derived from the platform seed, and allocates
//! the bus address map.
//!
//! The result, [`Elaboration`], is engine-agnostic: the fast emulation
//! engine, the RTL baseline and the TLM baseline all consume the same
//! elaboration, which is what makes their runs comparable flit for
//! flit.

use crate::config::{PlatformConfig, RoutingSpec, TrafficModel};
use crate::error::CompileError;
use nocem_common::ids::{EndpointId, LinkId, PortId};
use nocem_common::rng::SplitMix64;
use nocem_platform::bus::{AddressMap, DeviceClass};
use nocem_stats::receptor::{StochasticReceptor, TraceReceptor};
use nocem_stats::TrKind;
use nocem_switch::config::SwitchConfigBuilder;
use nocem_switch::switch::{Switch, CREDITS_INFINITE};
use nocem_topology::analysis::{predict_link_loads, SplitModel};
use nocem_topology::deadlock::check_routing_deadlock_freedom;
use nocem_topology::graph::LinkEnd;
use nocem_topology::routing::RoutingTables;
use nocem_traffic::generator::TrafficGenerator;
use nocem_traffic::ni::SourceNi;
use nocem_traffic::stochastic::StochasticTg;
use nocem_traffic::trace::TraceDrivenTg;

/// Destination of a switch output port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutTarget {
    /// Another switch's input port.
    Switch {
        /// Downstream switch index.
        switch: usize,
        /// Its input port.
        port: PortId,
    },
    /// A traffic receptor.
    Receptor {
        /// Receptor index (dense, receptor order).
        index: usize,
    },
}

/// Source feeding a switch input port (for credit returns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InSource {
    /// Another switch's output port.
    Switch {
        /// Upstream switch index.
        switch: usize,
        /// Its output port.
        port: PortId,
    },
    /// A traffic generator's network interface.
    Generator {
        /// Generator index (dense, generator order).
        index: usize,
    },
}

/// Precomputed wiring lookups the engines use every cycle.
#[derive(Debug, Clone)]
pub struct Wiring {
    /// `[switch][output port] -> target`.
    pub out_target: Vec<Vec<OutTarget>>,
    /// `[switch][input port] -> source`.
    pub in_source: Vec<Vec<InSource>>,
    /// `[switch][input port] -> link id` (congestion attribution).
    pub in_link: Vec<Vec<LinkId>>,
    /// Per generator: `(switch index, input port)` it injects into,
    /// and the injection link id.
    pub injection: Vec<(usize, PortId, LinkId)>,
    /// Per receptor: the ejection link id.
    pub ejection_link: Vec<LinkId>,
    /// Endpoint id → receptor index (None for generators).
    pub receptor_of_endpoint: Vec<Option<usize>>,
}

/// A receptor device instance.
#[derive(Debug, Clone)]
pub enum ReceptorDevice {
    /// Histogram-collecting receptor.
    Stochastic(StochasticReceptor),
    /// Latency-analyzing receptor.
    Trace(TraceReceptor),
}

impl ReceptorDevice {
    /// The receptor kind.
    pub fn kind(&self) -> TrKind {
        match self {
            ReceptorDevice::Stochastic(_) => TrKind::Stochastic,
            ReceptorDevice::Trace(_) => TrKind::TraceDriven,
        }
    }

    /// The endpoint this receptor serves.
    pub fn id(&self) -> EndpointId {
        match self {
            ReceptorDevice::Stochastic(r) => r.id(),
            ReceptorDevice::Trace(r) => r.id(),
        }
    }
}

/// The compiled platform: every component instantiated and wired.
pub struct Elaboration {
    /// The configuration this was elaborated from.
    pub config: PlatformConfig,
    /// Routing tables (paths retained for analyses).
    pub routing: RoutingTables,
    /// Switch instances, in switch-id order.
    pub switches: Vec<Switch>,
    /// Network interfaces, one per generator.
    pub nis: Vec<SourceNi>,
    /// Traffic generators, one per generator endpoint.
    pub tgs: Vec<Box<dyn TrafficGenerator + Send>>,
    /// Receptor devices, one per receptor endpoint.
    pub receptors: Vec<ReceptorDevice>,
    /// The bus address map (control, TGs, TRs, switches).
    pub map: AddressMap,
    /// Precomputed wiring.
    pub wiring: Wiring,
    /// Predicted per-link offered loads, when all generators have
    /// fixed destinations (`None` otherwise).
    pub predicted_loads: Option<Vec<f64>>,
}

impl std::fmt::Debug for Elaboration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Elaboration")
            .field("name", &self.config.name)
            .field("switches", &self.switches.len())
            .field("generators", &self.tgs.len())
            .field("receptors", &self.receptors.len())
            .finish_non_exhaustive()
    }
}

/// Validates the cheap structural invariants of a configuration
/// (traffic model / endpoint counts, queue capacities).
fn validate(config: &PlatformConfig) -> Result<(), CompileError> {
    let generators = config.topology.generators();
    let receptors = config.topology.receptors();
    if config.generators.len() != generators.len() {
        return Err(CompileError::TrafficMismatch {
            reason: format!(
                "{} traffic models for {} generator endpoints",
                config.generators.len(),
                generators.len()
            ),
        });
    }
    if config.receptors.len() != receptors.len() {
        return Err(CompileError::TrafficMismatch {
            reason: format!(
                "{} receptor kinds for {} receptor endpoints",
                config.receptors.len(),
                receptors.len()
            ),
        });
    }
    if config.source_queue_capacity == 0 {
        return Err(CompileError::TrafficMismatch {
            reason: "source queue capacity must be at least 1".into(),
        });
    }
    Ok(())
}

/// Computes (and fully validates) the routing tables of a
/// configuration: path computation, VC labelling per the configured
/// policy, the VC-range check and the per-(link, VC) deadlock check.
///
/// This is the expensive, *load-independent* half of elaboration — on
/// huge meshes route computation and the channel-dependency check
/// dominate compile time. Callers that elaborate the same topology ×
/// flow set many times (the scenario matrix's `shards` axis, a
/// saturation search's load ramp) compute the tables once and reuse
/// them through [`elaborate_routed`].
///
/// # Errors
///
/// Returns [`CompileError`] for unroutable flows, VC overflow or a
/// cyclic channel-dependency graph.
pub fn compute_routing(config: &PlatformConfig) -> Result<RoutingTables, CompileError> {
    let topo = &config.topology;
    let routing = match &config.routing {
        RoutingSpec::Algorithm(algo) => {
            RoutingTables::compute_with(topo, &config.flows, *algo, config.vc_policy)?
        }
        RoutingSpec::Explicit(paths) => {
            RoutingTables::from_paths_with(topo, paths.clone(), config.vc_policy)?
        }
    };
    if routing.max_vc() >= config.switch.num_vcs {
        return Err(CompileError::VcOverflow {
            max_vc: routing.max_vc(),
            num_vcs: config.switch.num_vcs,
        });
    }
    check_routing_deadlock_freedom(topo, &routing)?;
    Ok(routing)
}

/// Compiles a platform configuration into components.
///
/// # Errors
///
/// Returns [`CompileError`] when the configuration is inconsistent
/// (traffic/topology mismatch), unroutable, or could deadlock.
pub fn elaborate(config: &PlatformConfig) -> Result<Elaboration, CompileError> {
    validate(config)?;
    let routing = compute_routing(config)?;
    elaborate_routed(config, routing)
}

/// Like [`elaborate`], but reuses routing tables previously produced
/// by [`compute_routing`] for a configuration with the same topology,
/// flows, routing spec and VC policy (only loads, traffic models,
/// seeds, stop conditions, clock mode or engine kind may differ — none
/// of which routing depends on). The deadlock check is *not* re-run:
/// the tables were proven deadlock-free when computed.
///
/// # Errors
///
/// Returns [`CompileError`] when the configuration is structurally
/// inconsistent or the tables reference more VCs than the switches
/// have.
pub fn elaborate_routed(
    config: &PlatformConfig,
    routing: RoutingTables,
) -> Result<Elaboration, CompileError> {
    let topo = &config.topology;
    let generators = topo.generators();
    let receptors = topo.receptors();
    validate(config)?;
    if routing.max_vc() >= config.switch.num_vcs {
        return Err(CompileError::VcOverflow {
            max_vc: routing.max_vc(),
            num_vcs: config.switch.num_vcs,
        });
    }

    // Predicted link loads (only meaningful with fixed destinations).
    let fixed_loads: Option<Vec<f64>> = config
        .generators
        .iter()
        .map(|g| match g {
            TrafficModel::Uniform(u) => matches!(
                u.destination,
                nocem_traffic::generator::DestinationModel::Fixed { .. }
            )
            .then(|| u.offered_load()),
            TrafficModel::Burst(b) => matches!(
                b.destination,
                nocem_traffic::generator::DestinationModel::Fixed { .. }
            )
            .then(|| b.offered_load()),
            TrafficModel::Poisson(_) | TrafficModel::Trace(_) => None,
        })
        .collect();
    let predicted_loads = fixed_loads
        .map(|loads| predict_link_loads(topo, routing.flows(), &loads, SplitModel::PrimaryOnly));

    // Seeds derive from the platform seed; adding devices never
    // perturbs earlier streams.
    let mut seeder = SplitMix64::new(config.seed);

    // Switches. Credits are per (output, VC): each VC of an
    // inter-switch link gets the depth of its downstream VC buffer;
    // every VC of an ejection port is infinite (receptors always
    // accept).
    let num_vcs = config.switch.num_vcs;
    let mut switches = Vec::with_capacity(topo.switch_count());
    for s in topo.switch_ids() {
        let info = topo.switch(s);
        let sw_config = SwitchConfigBuilder::new(info.inputs, info.outputs)
            .fifo_depth(config.switch.fifo_depth)
            .num_vcs(num_vcs)
            .arbiter(config.switch.arbiter)
            .selection(config.switch.selection)
            .build();
        let credits: Vec<Vec<u32>> = (0..info.outputs)
            .map(|p| {
                let link = topo.out_link(s, PortId::new(p));
                let per_vc = match topo.link(link).dst {
                    LinkEnd::Switch { .. } => u32::from(config.switch.fifo_depth),
                    LinkEnd::Endpoint(_) => CREDITS_INFINITE,
                };
                vec![per_vc; num_vcs as usize]
            })
            .collect();
        let lfsr_seed = (seeder.next() & 0xFFFF) as u16;
        let sw = Switch::new_table(
            sw_config,
            routing.switch_table(s).clone(),
            credits,
            lfsr_seed,
        )
        .map_err(|source| CompileError::Switch { switch: s, source })?;
        switches.push(sw);
    }

    // Generators and their network interfaces.
    let mut tgs: Vec<Box<dyn TrafficGenerator + Send>> = Vec::with_capacity(generators.len());
    let mut nis = Vec::with_capacity(generators.len());
    for (i, &g) in generators.iter().enumerate() {
        let seed = seeder.next();
        let tg: Box<dyn TrafficGenerator + Send> = match &config.generators[i] {
            TrafficModel::Uniform(c) => Box::new(StochasticTg::uniform(c.clone(), seed)),
            TrafficModel::Burst(c) => Box::new(StochasticTg::burst(c.clone(), seed)),
            TrafficModel::Poisson(c) => Box::new(StochasticTg::poisson(c.clone(), seed)),
            TrafficModel::Trace(t) => Box::new(TraceDrivenTg::new(t, g)),
        };
        tgs.push(tg);
        nis.push(SourceNi::new(
            config.source_queue_capacity,
            u32::from(config.switch.fifo_depth),
        ));
    }

    // Receptors.
    let receptor_devices: Vec<ReceptorDevice> = receptors
        .iter()
        .zip(&config.receptors)
        .map(|(&r, kind)| match kind {
            TrKind::Stochastic => ReceptorDevice::Stochastic(StochasticReceptor::new(r)),
            TrKind::TraceDriven => ReceptorDevice::Trace(TraceReceptor::new(r)),
        })
        .collect();

    // Address map: control first, then TGs, TRs, switches.
    let mut map = AddressMap::new();
    map.allocate(DeviceClass::Control, "ctrl")
        .map_err(|_| CompileError::AddressMapFull)?;
    for i in 0..generators.len() {
        map.allocate(DeviceClass::TrafficGenerator, format!("tg{i}"))
            .map_err(|_| CompileError::AddressMapFull)?;
    }
    for i in 0..receptors.len() {
        map.allocate(DeviceClass::TrafficReceptor, format!("tr{i}"))
            .map_err(|_| CompileError::AddressMapFull)?;
    }
    for s in topo.switch_ids() {
        map.allocate(DeviceClass::Switch, format!("sw{}", s.raw()))
            .map_err(|_| CompileError::AddressMapFull)?;
    }
    // The telemetry monitor always occupies the slot after the
    // switches (reads return zeros while telemetry is disabled), so
    // software can locate it without knowing the run configuration.
    map.allocate(DeviceClass::Monitor, "mon")
        .map_err(|_| CompileError::AddressMapFull)?;

    // Wiring lookups.
    let mut receptor_of_endpoint = vec![None; topo.endpoint_count()];
    for (idx, &r) in receptors.iter().enumerate() {
        receptor_of_endpoint[r.index()] = Some(idx);
    }
    let mut generator_of_endpoint = vec![None; topo.endpoint_count()];
    for (idx, &g) in generators.iter().enumerate() {
        generator_of_endpoint[g.index()] = Some(idx);
    }

    let mut out_target = Vec::with_capacity(topo.switch_count());
    let mut in_source = Vec::with_capacity(topo.switch_count());
    let mut in_link = Vec::with_capacity(topo.switch_count());
    for s in topo.switch_ids() {
        let info = topo.switch(s);
        let mut outs = Vec::with_capacity(info.outputs as usize);
        for p in 0..info.outputs {
            let link = topo.link(topo.out_link(s, PortId::new(p)));
            outs.push(match link.dst {
                LinkEnd::Switch { switch, port } => OutTarget::Switch {
                    switch: switch.index(),
                    port,
                },
                LinkEnd::Endpoint(e) => OutTarget::Receptor {
                    index: receptor_of_endpoint[e.index()]
                        .expect("link into an endpoint targets a receptor"),
                },
            });
        }
        out_target.push(outs);

        let mut ins = Vec::with_capacity(info.inputs as usize);
        let mut inl = Vec::with_capacity(info.inputs as usize);
        for p in 0..info.inputs {
            let link_id = topo.in_link(s, PortId::new(p));
            let link = topo.link(link_id);
            ins.push(match link.src {
                LinkEnd::Switch { switch, port } => InSource::Switch {
                    switch: switch.index(),
                    port,
                },
                LinkEnd::Endpoint(e) => InSource::Generator {
                    index: generator_of_endpoint[e.index()]
                        .expect("link out of an endpoint comes from a generator"),
                },
            });
            inl.push(link_id);
        }
        in_source.push(ins);
        in_link.push(inl);
    }

    let injection: Vec<(usize, PortId, LinkId)> = generators
        .iter()
        .map(|&g| {
            let info = topo.endpoint(g);
            let port = topo
                .injection_port(info.switch, g)
                .expect("generator endpoint has an injection port");
            (info.switch.index(), port, info.link)
        })
        .collect();
    let ejection_link: Vec<LinkId> = receptors.iter().map(|&r| topo.endpoint(r).link).collect();

    Ok(Elaboration {
        config: config.clone(),
        routing,
        switches,
        nis,
        tgs,
        receptors: receptor_devices,
        map,
        wiring: Wiring {
            out_target,
            in_source,
            in_link,
            injection,
            ejection_link,
            receptor_of_endpoint,
        },
        predicted_loads,
    })
}

impl Elaboration {
    /// Fails when the predicted offered load exceeds link capacity —
    /// call before runs that assume an unsaturated network.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Overloaded`] with the worst predicted
    /// load.
    pub fn ensure_not_overloaded(&self) -> Result<(), CompileError> {
        if let Some(loads) = &self.predicted_loads {
            let worst = loads.iter().copied().fold(0.0_f64, f64::max);
            if worst > 1.0 + 1e-9 {
                return Err(CompileError::Overloaded { worst_load: worst });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PaperConfig;
    use nocem_topology::builders::mesh;

    #[test]
    fn paper_uniform_elaborates() {
        let cfg = PaperConfig::new().total_packets(100).uniform();
        let e = elaborate(&cfg).unwrap();
        assert_eq!(e.switches.len(), 6);
        assert_eq!(e.tgs.len(), 4);
        assert_eq!(e.receptors.len(), 4);
        assert_eq!(e.nis.len(), 4);
        assert_eq!(
            e.map.devices().len(),
            1 + 4 + 4 + 6 + 1,
            "ctrl + tgs + trs + switches + monitor"
        );
        e.ensure_not_overloaded().unwrap();
        // The hot links are predicted at 90%.
        let loads = e.predicted_loads.as_ref().unwrap();
        let hot = PaperConfig::new().setup().hot_links;
        for h in hot {
            assert!(
                (loads[h.index()] - 0.90).abs() < 0.03,
                "{}",
                loads[h.index()]
            );
        }
        assert!(format!("{e:?}").contains("switches"));
    }

    #[test]
    fn traffic_model_count_mismatch_fails() {
        let mut cfg = PaperConfig::new().uniform();
        cfg.generators.pop();
        let err = elaborate(&cfg).unwrap_err();
        assert!(matches!(err, CompileError::TrafficMismatch { .. }));
    }

    #[test]
    fn receptor_count_mismatch_fails() {
        let mut cfg = PaperConfig::new().uniform();
        cfg.receptors.pop();
        assert!(matches!(
            elaborate(&cfg),
            Err(CompileError::TrafficMismatch { .. })
        ));
    }

    #[test]
    fn zero_queue_capacity_fails() {
        let mut cfg = PaperConfig::new().uniform();
        cfg.source_queue_capacity = 0;
        assert!(elaborate(&cfg).is_err());
    }

    #[test]
    fn injection_wiring_points_at_generator_switches() {
        let cfg = PaperConfig::new().uniform();
        let e = elaborate(&cfg).unwrap();
        let expected: Vec<usize> = vec![0, 1, 3, 4]; // TGs on S0, S1, S3, S4
        let actual: Vec<usize> = e.wiring.injection.iter().map(|&(s, _, _)| s).collect();
        assert_eq!(actual, expected);
    }

    #[test]
    fn ejection_credits_are_infinite() {
        let cfg = PaperConfig::new().uniform();
        let e = elaborate(&cfg).unwrap();
        // S2 hosts TR0/TR1; its ejection outputs have infinite credits.
        for (s, outs) in e.wiring.out_target.iter().enumerate() {
            for (p, t) in outs.iter().enumerate() {
                if matches!(t, OutTarget::Receptor { .. }) {
                    assert_eq!(
                        e.switches[s].credits(PortId::new(p as u8)),
                        CREDITS_INFINITE
                    );
                }
            }
        }
    }

    #[test]
    fn trace_config_builds_trace_tgs() {
        let cfg = PaperConfig::new().total_packets(40).trace_bursty(4);
        let e = elaborate(&cfg).unwrap();
        for tg in &e.tgs {
            assert_eq!(tg.kind(), nocem_traffic::generator::TgKind::TraceDriven);
        }
        for r in &e.receptors {
            assert_eq!(r.kind(), TrKind::TraceDriven);
        }
        assert!(e.predicted_loads.is_none(), "trace loads are not predicted");
    }

    #[test]
    fn mesh_baseline_elaborates() {
        let cfg = crate::config::PlatformConfig::baseline("m", mesh(3, 3).unwrap()).unwrap();
        let e = elaborate(&cfg).unwrap();
        assert_eq!(e.switches.len(), 9);
        assert_eq!(e.tgs.len(), 9);
    }

    #[test]
    fn routed_elaboration_matches_direct_elaboration() {
        let cfg = PaperConfig::new().total_packets(200).uniform();
        let routing = compute_routing(&cfg).unwrap();
        // Reuse the tables for a *different load point* of the same
        // topology/flows (the saturation-search pattern): the runs
        // must be identical to direct elaboration.
        let mut run_direct = crate::engine::build(&cfg).unwrap();
        run_direct.run().unwrap();
        let mut run_routed =
            crate::engine::Emulation::new(elaborate_routed(&cfg, routing).unwrap());
        run_routed.run().unwrap();
        assert_eq!(run_routed.ledger(), run_direct.ledger());
        assert_eq!(run_routed.results(), run_direct.results());
    }

    #[test]
    fn routed_elaboration_still_checks_vc_overflow() {
        let mut cfg = PaperConfig::new().uniform();
        let routing = compute_routing(&cfg).unwrap();
        cfg.switch.num_vcs = 0;
        assert!(matches!(
            elaborate_routed(&cfg, routing),
            Err(CompileError::VcOverflow { .. })
        ));
    }

    #[test]
    fn elaboration_is_deterministic() {
        let cfg = PaperConfig::new().total_packets(50).uniform();
        let a = elaborate(&cfg).unwrap();
        let b = elaborate(&cfg).unwrap();
        // Same seeds => same initial switch state (spot check via
        // credits and counters) and same maps.
        assert_eq!(a.map.devices().len(), b.map.devices().len());
        assert_eq!(a.switches.len(), b.switches.len());
    }
}
