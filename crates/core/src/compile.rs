//! Platform compilation: from a [`PlatformConfig`] to instantiated
//! components (step 1 of the paper's emulation flow).
//!
//! [`elaborate`] validates the configuration, computes routing tables,
//! checks deadlock freedom, predicts link loads, instantiates every
//! component (switches, network interfaces, traffic generators,
//! receptors) with seeds derived from the platform seed, and allocates
//! the bus address map.
//!
//! The result, [`Elaboration`], is engine-agnostic: the fast emulation
//! engine, the RTL baseline and the TLM baseline all consume the same
//! elaboration, which is what makes their runs comparable flit for
//! flit.

use crate::config::{PlatformConfig, RoutingSpec, TrafficModel};
use crate::error::CompileError;
use nocem_common::ids::{EndpointId, LinkId, PortId, VcId};
use nocem_common::rng::{Lfsr16, SplitMix64};
use nocem_common::route::RouteHop;
use nocem_platform::bus::{AddressMap, DeviceClass};
use nocem_stats::receptor::{StochasticReceptor, TraceReceptor};
use nocem_stats::TrKind;
use nocem_switch::arbiter::ArbiterKind;
use nocem_switch::config::{SelectionPolicy, SwitchConfigBuilder};
use nocem_switch::switch::{Switch, CREDITS_INFINITE};
use nocem_topology::analysis::{predict_link_loads, SplitModel};
use nocem_topology::deadlock::check_routing_deadlock_freedom;
use nocem_topology::graph::LinkEnd;
use nocem_topology::routing::RoutingTables;
use nocem_traffic::generator::TrafficGenerator;
use nocem_traffic::ni::SourceNi;
use nocem_traffic::stochastic::StochasticTg;
use nocem_traffic::trace::TraceDrivenTg;

/// Destination of a switch output port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutTarget {
    /// Another switch's input port.
    Switch {
        /// Downstream switch index.
        switch: usize,
        /// Its input port.
        port: PortId,
    },
    /// A traffic receptor.
    Receptor {
        /// Receptor index (dense, receptor order).
        index: usize,
    },
}

/// Source feeding a switch input port (for credit returns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InSource {
    /// Another switch's output port.
    Switch {
        /// Upstream switch index.
        switch: usize,
        /// Its output port.
        port: PortId,
    },
    /// A traffic generator's network interface.
    Generator {
        /// Generator index (dense, generator order).
        index: usize,
    },
}

/// Precomputed wiring lookups the engines use every cycle.
#[derive(Debug, Clone)]
pub struct Wiring {
    /// `[switch][output port] -> target`.
    pub out_target: Vec<Vec<OutTarget>>,
    /// `[switch][input port] -> source`.
    pub in_source: Vec<Vec<InSource>>,
    /// `[switch][input port] -> link id` (congestion attribution).
    pub in_link: Vec<Vec<LinkId>>,
    /// Per generator: `(switch index, input port)` it injects into,
    /// and the injection link id.
    pub injection: Vec<(usize, PortId, LinkId)>,
    /// Per receptor: the ejection link id.
    pub ejection_link: Vec<LinkId>,
    /// Endpoint id → receptor index (None for generators).
    pub receptor_of_endpoint: Vec<Option<usize>>,
}

/// A receptor device instance.
#[derive(Debug, Clone)]
pub enum ReceptorDevice {
    /// Histogram-collecting receptor.
    Stochastic(StochasticReceptor),
    /// Latency-analyzing receptor.
    Trace(TraceReceptor),
}

impl ReceptorDevice {
    /// The receptor kind.
    pub fn kind(&self) -> TrKind {
        match self {
            ReceptorDevice::Stochastic(_) => TrKind::Stochastic,
            ReceptorDevice::Trace(_) => TrKind::TraceDriven,
        }
    }

    /// The endpoint this receptor serves.
    pub fn id(&self) -> EndpointId {
        match self {
            ReceptorDevice::Stochastic(r) => r.id(),
            ReceptorDevice::Trace(r) => r.id(),
        }
    }
}

/// The compiled platform: every component instantiated and wired.
pub struct Elaboration {
    /// The configuration this was elaborated from.
    pub config: PlatformConfig,
    /// Routing tables (paths retained for analyses).
    pub routing: RoutingTables,
    /// Switch instances, in switch-id order.
    pub switches: Vec<Switch>,
    /// Network interfaces, one per generator.
    pub nis: Vec<SourceNi>,
    /// Traffic generators, one per generator endpoint.
    pub tgs: Vec<Box<dyn TrafficGenerator + Send>>,
    /// Receptor devices, one per receptor endpoint.
    pub receptors: Vec<ReceptorDevice>,
    /// The bus address map (control, TGs, TRs, switches).
    pub map: AddressMap,
    /// Precomputed wiring.
    pub wiring: Wiring,
    /// Predicted per-link offered loads, when all generators have
    /// fixed destinations (`None` otherwise).
    pub predicted_loads: Option<Vec<f64>>,
    /// Wall-clock nanoseconds [`elaborate_routed`] took to build this
    /// elaboration (seeds the `elaborate` phase of the profilers).
    pub elaborate_ns: u64,
}

impl std::fmt::Debug for Elaboration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Elaboration")
            .field("name", &self.config.name)
            .field("switches", &self.switches.len())
            .field("generators", &self.tgs.len())
            .field("receptors", &self.receptors.len())
            .finish_non_exhaustive()
    }
}

/// Validates the cheap structural invariants of a configuration
/// (traffic model / endpoint counts, queue capacities).
fn validate(config: &PlatformConfig) -> Result<(), CompileError> {
    let generators = config.topology.generators();
    let receptors = config.topology.receptors();
    if config.generators.len() != generators.len() {
        return Err(CompileError::TrafficMismatch {
            reason: format!(
                "{} traffic models for {} generator endpoints",
                config.generators.len(),
                generators.len()
            ),
        });
    }
    if config.receptors.len() != receptors.len() {
        return Err(CompileError::TrafficMismatch {
            reason: format!(
                "{} receptor kinds for {} receptor endpoints",
                config.receptors.len(),
                receptors.len()
            ),
        });
    }
    if config.source_queue_capacity == 0 {
        return Err(CompileError::TrafficMismatch {
            reason: "source queue capacity must be at least 1".into(),
        });
    }
    Ok(())
}

/// Computes (and fully validates) the routing tables of a
/// configuration: path computation, VC labelling per the configured
/// policy, the VC-range check and the per-(link, VC) deadlock check.
///
/// This is the expensive, *load-independent* half of elaboration — on
/// huge meshes route computation and the channel-dependency check
/// dominate compile time. Callers that elaborate the same topology ×
/// flow set many times (the scenario matrix's `shards` axis, a
/// saturation search's load ramp) compute the tables once and reuse
/// them through [`elaborate_routed`].
///
/// # Errors
///
/// Returns [`CompileError`] for unroutable flows, VC overflow or a
/// cyclic channel-dependency graph.
pub fn compute_routing(config: &PlatformConfig) -> Result<RoutingTables, CompileError> {
    let topo = &config.topology;
    let routing = match &config.routing {
        RoutingSpec::Algorithm(algo) => {
            RoutingTables::compute_with(topo, &config.flows, *algo, config.vc_policy)?
        }
        RoutingSpec::Explicit(paths) => {
            RoutingTables::from_paths_with(topo, paths.clone(), config.vc_policy)?
        }
    };
    if routing.max_vc() >= config.switch.num_vcs {
        return Err(CompileError::VcOverflow {
            max_vc: routing.max_vc(),
            num_vcs: config.switch.num_vcs,
        });
    }
    check_routing_deadlock_freedom(topo, &routing)?;
    Ok(routing)
}

/// Compiles a platform configuration into components.
///
/// # Errors
///
/// Returns [`CompileError`] when the configuration is inconsistent
/// (traffic/topology mismatch), unroutable, or could deadlock.
pub fn elaborate(config: &PlatformConfig) -> Result<Elaboration, CompileError> {
    validate(config)?;
    let routing = compute_routing(config)?;
    elaborate_routed(config, routing)
}

/// Like [`elaborate`], but reuses routing tables previously produced
/// by [`compute_routing`] for a configuration with the same topology,
/// flows, routing spec and VC policy (only loads, traffic models,
/// seeds, stop conditions, clock mode or engine kind may differ — none
/// of which routing depends on). The deadlock check is *not* re-run:
/// the tables were proven deadlock-free when computed.
///
/// # Errors
///
/// Returns [`CompileError`] when the configuration is structurally
/// inconsistent or the tables reference more VCs than the switches
/// have.
pub fn elaborate_routed(
    config: &PlatformConfig,
    routing: RoutingTables,
) -> Result<Elaboration, CompileError> {
    let elaborate_start = std::time::Instant::now();
    let topo = &config.topology;
    let generators = topo.generators();
    let receptors = topo.receptors();
    validate(config)?;
    if routing.max_vc() >= config.switch.num_vcs {
        return Err(CompileError::VcOverflow {
            max_vc: routing.max_vc(),
            num_vcs: config.switch.num_vcs,
        });
    }

    // Predicted link loads (only meaningful with fixed destinations).
    let fixed_loads: Option<Vec<f64>> = config
        .generators
        .iter()
        .map(|g| match g {
            TrafficModel::Uniform(u) => matches!(
                u.destination,
                nocem_traffic::generator::DestinationModel::Fixed { .. }
            )
            .then(|| u.offered_load()),
            TrafficModel::Burst(b) => matches!(
                b.destination,
                nocem_traffic::generator::DestinationModel::Fixed { .. }
            )
            .then(|| b.offered_load()),
            TrafficModel::Poisson(_) | TrafficModel::Trace(_) => None,
        })
        .collect();
    let predicted_loads = fixed_loads
        .map(|loads| predict_link_loads(topo, routing.flows(), &loads, SplitModel::PrimaryOnly));

    // Seeds derive from the platform seed; adding devices never
    // perturbs earlier streams.
    let mut seeder = SplitMix64::new(config.seed);

    // Switches. Credits are per (output, VC): each VC of an
    // inter-switch link gets the depth of its downstream VC buffer;
    // every VC of an ejection port is infinite (receptors always
    // accept) unless `ejection_credits` caps them for stall-forensics
    // fixtures.
    let num_vcs = config.switch.num_vcs;
    let mut switches = Vec::with_capacity(topo.switch_count());
    for s in topo.switch_ids() {
        let info = topo.switch(s);
        let sw_config = SwitchConfigBuilder::new(info.inputs, info.outputs)
            .fifo_depth(config.switch.fifo_depth)
            .num_vcs(num_vcs)
            .arbiter(config.switch.arbiter)
            .selection(config.switch.selection)
            .build();
        let credits: Vec<Vec<u32>> = (0..info.outputs)
            .map(|p| {
                let link = topo.out_link(s, PortId::new(p));
                let per_vc = match topo.link(link).dst {
                    LinkEnd::Switch { .. } => u32::from(config.switch.fifo_depth),
                    LinkEnd::Endpoint(_) => {
                        config.switch.ejection_credits.unwrap_or(CREDITS_INFINITE)
                    }
                };
                vec![per_vc; num_vcs as usize]
            })
            .collect();
        let lfsr_seed = (seeder.next() & 0xFFFF) as u16;
        let sw = Switch::new_table(
            sw_config,
            routing.switch_table(s).clone(),
            credits,
            lfsr_seed,
        )
        .map_err(|source| CompileError::Switch { switch: s, source })?;
        switches.push(sw);
    }

    // Generators and their network interfaces.
    let mut tgs: Vec<Box<dyn TrafficGenerator + Send>> = Vec::with_capacity(generators.len());
    let mut nis = Vec::with_capacity(generators.len());
    for (i, &g) in generators.iter().enumerate() {
        let seed = seeder.next();
        let tg: Box<dyn TrafficGenerator + Send> = match &config.generators[i] {
            TrafficModel::Uniform(c) => Box::new(StochasticTg::uniform(c.clone(), seed)),
            TrafficModel::Burst(c) => Box::new(StochasticTg::burst(c.clone(), seed)),
            TrafficModel::Poisson(c) => Box::new(StochasticTg::poisson(c.clone(), seed)),
            TrafficModel::Trace(t) => Box::new(TraceDrivenTg::new(t, g)),
        };
        tgs.push(tg);
        nis.push(SourceNi::new(
            config.source_queue_capacity,
            u32::from(config.switch.fifo_depth),
        ));
    }

    // Receptors.
    let receptor_devices: Vec<ReceptorDevice> = receptors
        .iter()
        .zip(&config.receptors)
        .map(|(&r, kind)| match kind {
            TrKind::Stochastic => ReceptorDevice::Stochastic(StochasticReceptor::new(r)),
            TrKind::TraceDriven => ReceptorDevice::Trace(TraceReceptor::new(r)),
        })
        .collect();

    // Address map: control first, then TGs, TRs, switches. The
    // paper's control plane addresses at most 4 buses x 1024 devices;
    // a platform whose device count exceeds that capacity (mesh40x40
    // and up) still emulates — it just has no bus-programmable control
    // plane, so the map stays empty and every bus access reports
    // `Unmapped`. Mapping is all-or-nothing: a partial map would break
    // the monitor-after-switches slot convention and silently strand
    // the tail of the device list.
    let mut map = AddressMap::new();
    let needed = 2 + generators.len() + receptors.len() + topo.switch_count();
    if needed <= AddressMap::capacity() {
        let full = |_| unreachable!("address map capacity checked above");
        map.allocate(DeviceClass::Control, "ctrl")
            .unwrap_or_else(full);
        for i in 0..generators.len() {
            map.allocate(DeviceClass::TrafficGenerator, format!("tg{i}"))
                .unwrap_or_else(full);
        }
        for i in 0..receptors.len() {
            map.allocate(DeviceClass::TrafficReceptor, format!("tr{i}"))
                .unwrap_or_else(full);
        }
        for s in topo.switch_ids() {
            map.allocate(DeviceClass::Switch, format!("sw{}", s.raw()))
                .unwrap_or_else(full);
        }
        // The telemetry monitor always occupies the slot after the
        // switches (reads return zeros while telemetry is disabled),
        // so software can locate it without knowing the run
        // configuration.
        map.allocate(DeviceClass::Monitor, "mon")
            .unwrap_or_else(full);
    }

    // Wiring lookups.
    let mut receptor_of_endpoint = vec![None; topo.endpoint_count()];
    for (idx, &r) in receptors.iter().enumerate() {
        receptor_of_endpoint[r.index()] = Some(idx);
    }
    let mut generator_of_endpoint = vec![None; topo.endpoint_count()];
    for (idx, &g) in generators.iter().enumerate() {
        generator_of_endpoint[g.index()] = Some(idx);
    }

    let mut out_target = Vec::with_capacity(topo.switch_count());
    let mut in_source = Vec::with_capacity(topo.switch_count());
    let mut in_link = Vec::with_capacity(topo.switch_count());
    for s in topo.switch_ids() {
        let info = topo.switch(s);
        let mut outs = Vec::with_capacity(info.outputs as usize);
        for p in 0..info.outputs {
            let link = topo.link(topo.out_link(s, PortId::new(p)));
            outs.push(match link.dst {
                LinkEnd::Switch { switch, port } => OutTarget::Switch {
                    switch: switch.index(),
                    port,
                },
                LinkEnd::Endpoint(e) => OutTarget::Receptor {
                    index: receptor_of_endpoint[e.index()]
                        .expect("link into an endpoint targets a receptor"),
                },
            });
        }
        out_target.push(outs);

        let mut ins = Vec::with_capacity(info.inputs as usize);
        let mut inl = Vec::with_capacity(info.inputs as usize);
        for p in 0..info.inputs {
            let link_id = topo.in_link(s, PortId::new(p));
            let link = topo.link(link_id);
            ins.push(match link.src {
                LinkEnd::Switch { switch, port } => InSource::Switch {
                    switch: switch.index(),
                    port,
                },
                LinkEnd::Endpoint(e) => InSource::Generator {
                    index: generator_of_endpoint[e.index()]
                        .expect("link out of an endpoint comes from a generator"),
                },
            });
            inl.push(link_id);
        }
        in_source.push(ins);
        in_link.push(inl);
    }

    let injection: Vec<(usize, PortId, LinkId)> = generators
        .iter()
        .map(|&g| {
            let info = topo.endpoint(g);
            let port = topo
                .injection_port(info.switch, g)
                .expect("generator endpoint has an injection port");
            (info.switch.index(), port, info.link)
        })
        .collect();
    let ejection_link: Vec<LinkId> = receptors.iter().map(|&r| topo.endpoint(r).link).collect();

    Ok(Elaboration {
        config: config.clone(),
        routing,
        switches,
        nis,
        tgs,
        receptors: receptor_devices,
        map,
        wiring: Wiring {
            out_target,
            in_source,
            in_link,
            injection,
            ejection_link,
            receptor_of_endpoint,
        },
        predicted_loads,
        elaborate_ns: u64::try_from(elaborate_start.elapsed().as_nanos()).unwrap_or(u64::MAX),
    })
}

impl Elaboration {
    /// Fails when the predicted offered load exceeds link capacity —
    /// call before runs that assume an unsaturated network.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Overloaded`] with the worst predicted
    /// load.
    pub fn ensure_not_overloaded(&self) -> Result<(), CompileError> {
        if let Some(loads) = &self.predicted_loads {
            let worst = loads.iter().copied().fold(0.0_f64, f64::max);
            if worst > 1.0 + 1e-9 {
                return Err(CompileError::Overloaded { worst_load: worst });
            }
        }
        Ok(())
    }
}

/// Sentinel for "no entry" in the lowered index arrays (`allocated`,
/// `chosen`, `busy_with` and the per-cycle grant arrays).
pub const LOWERED_NONE: u32 = u32::MAX;

/// Entry budget for [`LoweredPlatform::route_direct`] (4M single-byte
/// entries): small and mid-size platforms get O(1) route lookups,
/// huge ones keep the memory-proportional CSR.
pub const ROUTE_DIRECT_MAX: usize = 1 << 22;

/// [`LoweredPlatform::route_direct`] entry: the flow has no routing
/// entry at this switch.
pub const ROUTE_NONE: u8 = 0xFF;

/// [`LoweredPlatform::route_direct`] entry: the flow's route is
/// multi-hop (or its encoding exceeds a byte) — resolve through the
/// CSR and run the selection policy.
pub const ROUTE_MULTI: u8 = 0xFE;

/// Sentinel for "no slot" in the packed per-slot records
/// ([`InSlotState::allocated`], [`InSlotState::chosen`],
/// [`OutSlotState::busy_with`]). Switch-local slot indices are
/// `port * num_vcs + vc` with both factors below 256, so `u16::MAX`
/// can never be a real slot.
pub const SLOT_NONE: u16 = u16::MAX;

/// Tail flag of a [`LoweredPlatform::fifo_arena`] flit handle: set for
/// tail and single flits — the ones that close a wormhole.
pub const HANDLE_TAIL: u32 = 1 << 30;

/// Head flag of a [`LoweredPlatform::fifo_arena`] flit handle: set for
/// head and single flits — the ones that carry routing information.
pub const HANDLE_HEAD: u32 = 1 << 31;

/// Pool-index mask of a [`LoweredPlatform::fifo_arena`] flit handle.
pub const HANDLE_IDX: u32 = HANDLE_TAIL - 1;

/// Hot per-input-slot state, packed into one 8-byte record so the
/// engine's decide loop reads a slot's entire cursor/wormhole state
/// with a single cache access (the arrays-of-u32 layout touched five
/// cache lines per slot and overflowed L1 on a 64-switch platform).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InSlotState {
    /// Ring-buffer head index (`< fifo_depth`).
    pub head: u8,
    /// Buffered flit count (`<= fifo_depth`).
    pub len: u8,
    /// Alternation pointer for [`SelectionPolicy::Alternate`].
    pub alternate: u8,
    /// Reserved padding (keeps the record at 8 bytes explicitly).
    pub pad: u8,
    /// Output slot allocated to the crossing worm as a switch-local
    /// `port * num_vcs + vc` ([`SLOT_NONE`] when free).
    pub allocated: u16,
    /// Hop selected for the pending head, sticky until VC allocation
    /// ([`SLOT_NONE`] when none), same encoding as `allocated`.
    pub chosen: u16,
}

impl InSlotState {
    /// The initial (empty FIFO, no worm, no selection) record.
    pub const EMPTY: InSlotState = InSlotState {
        head: 0,
        len: 0,
        alternate: 0,
        pad: 0,
        allocated: SLOT_NONE,
        chosen: SLOT_NONE,
    };
}

/// Hot per-output-slot state, packed into one 8-byte record (credit
/// count, wormhole owner, VC-allocation arbiter pointer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutSlotState {
    /// Credits toward the downstream buffer ([`CREDITS_INFINITE`] on
    /// ejection ports).
    pub credits: u32,
    /// Wormhole owner as a switch-local input slot
    /// `input * num_vcs + vc` ([`SLOT_NONE`] when free).
    pub busy_with: u16,
    /// Round-robin pointer of the VC-allocation arbiter (over
    /// `inputs[s] * num_vcs` request lines).
    pub arb_last: u16,
}

/// Destination of a lowered switch output port (flattened wiring).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoweredOutDest {
    /// A downstream switch input port.
    Switch {
        /// Downstream switch index (for error attribution and
        /// occupancy bookkeeping).
        switch: u32,
        /// Global input-*slot* base of the downstream input port: a
        /// flit arriving on VC `v` lands in FIFO slot `slot_base + v`.
        slot_base: u32,
    },
    /// Ejection into a traffic receptor.
    Receptor {
        /// Receptor index (dense, receptor order).
        index: u32,
    },
}

/// Source feeding a lowered switch input port (for credit returns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoweredInFeed {
    /// An upstream switch output port: the credit for input VC `v`
    /// returns to global output slot `slot_base + v`.
    Switch {
        /// Global output-slot base of the upstream output port.
        slot_base: u32,
    },
    /// A generator's network interface.
    Generator {
        /// Generator index (dense, generator order).
        index: u32,
    },
}

/// The elaboration lowered to flat struct-of-arrays state — the data
/// plane of [`crate::compiled::CompiledEngine`].
///
/// Every per-switch `Vec<Vec<...>>` of the interpreted platform
/// becomes one dense array indexed through per-switch prefix sums, so
/// the engine's hot loops walk contiguous memory with no pointer
/// chasing, no hashing and no per-cycle allocation:
///
/// * **Input slots** — one per `(switch, input port, VC)`, ascending
///   `(switch, port, vc)`. Slot `k` of switch `s` spans
///   `in_slot_base[s] + k`; its ring buffer occupies
///   `fifo_arena[slot * fifo_depth ..][..fifo_depth]`, and its
///   cursor/wormhole state is one packed 8-byte [`InSlotState`]
///   record in `in_state`.
/// * **Output slots** — one per `(switch, output port, VC)`: a packed
///   8-byte [`OutSlotState`] record (credits, wormhole owner,
///   VC-allocation arbiter pointer) in `out_state`, plus the cold
///   `credit_cap`.
/// * **Ports** — per-port arrays (`out_vc_ptr`, `out_link`, wiring)
///   are indexed through `in_port_base`/`out_port_base`.
/// * **Routes** — all per-switch sparse [`RouteTable`]s flattened into
///   one CSR: switch `s` owns `route_flows[route_flow_base[s] ..
///   route_flow_base[s + 1]]` (sorted, binary-searched) and flow entry
///   `f` owns `route_hops[route_hop_start[f] .. route_hop_start[f+1]]`.
///
/// All sizing derives from the *elaboration* (per-switch port counts),
/// never from a uniform config-wide maximum, so heterogeneous
/// topologies (e.g. a star hub next to 2-port leaves) lower without
/// waste or index panics.
///
/// [`RouteTable`]: nocem_common::route::RouteTable
#[derive(Debug, Clone)]
pub struct LoweredPlatform {
    /// Number of switches.
    pub switch_count: usize,
    /// Virtual channels per port (uniform across the platform).
    pub num_vcs: usize,
    /// FIFO depth in flits (uniform across the platform).
    pub fifo_depth: usize,
    /// Per switch: input port count.
    pub inputs: Vec<u32>,
    /// Per switch: output port count.
    pub outputs: Vec<u32>,
    /// Prefix sums of `inputs[s] * num_vcs` (length `switch_count+1`).
    pub in_slot_base: Vec<u32>,
    /// Prefix sums of `outputs[s] * num_vcs` (length `switch_count+1`).
    pub out_slot_base: Vec<u32>,
    /// Prefix sums of `inputs[s]` (length `switch_count + 1`).
    pub in_port_base: Vec<u32>,
    /// Prefix sums of `outputs[s]` (length `switch_count + 1`).
    pub out_port_base: Vec<u32>,
    /// FIFO ring-buffer arena: `fifo_depth` *flit handles* per input
    /// slot. A handle is a pool index into the engine's flit pool with
    /// [`HANDLE_HEAD`]/[`HANDLE_TAIL`] kind flags packed into the top
    /// bits, so a hop moves four bytes and the wormhole open/close
    /// tests never touch the flit itself.
    pub fifo_arena: Vec<u32>,
    /// Per input slot: packed cursor/wormhole record.
    pub in_state: Vec<InSlotState>,
    /// Per switch: range `route_flow_base[s]..route_flow_base[s+1]`
    /// of `route_flows` (length `switch_count + 1`).
    pub route_flow_base: Vec<u32>,
    /// Flow ids with routing entries, sorted within each switch range.
    pub route_flows: Vec<u32>,
    /// CSR offsets into `route_hops` (length `route_flows.len()+1`).
    pub route_hop_start: Vec<u32>,
    /// Admissible output hops, concatenated per flow entry.
    pub route_hops: Vec<RouteHop>,
    /// Direct-mapped route answers for small platforms: entry
    /// `s * route_flow_space + flow` holds the flow's single-hop
    /// answer as an encoded local out-slot `port * num_vcs + vc`
    /// (every deterministic routing function), so the hot lookup is
    /// one byte load with no hop-list traversal and no selection.
    /// [`ROUTE_MULTI`] defers multi-hop flows to the CSR + selection
    /// policy; [`ROUTE_NONE`] marks flows with no entry at `s`. Empty
    /// when `switch_count × flow_space` exceeds [`ROUTE_DIRECT_MAX`]
    /// — then every lookup takes the CSR binary search.
    pub route_direct: Vec<u8>,
    /// Row stride of `route_direct` (max flow id + 1; 0 when the
    /// direct map is disabled).
    pub route_flow_space: usize,
    /// Per output slot: packed credit/wormhole/arbiter record.
    pub out_state: Vec<OutSlotState>,
    /// Per output slot: the initial credit value (cold; used by the
    /// quiescence debug check and inspection).
    pub credit_cap: Vec<u32>,
    /// Per output port: switch-allocation round-robin pointer over VCs.
    pub out_vc_ptr: Vec<u8>,
    /// Per switch: the shared selection LFSR, reseeded identically to
    /// elaboration (the platform seeder draws all switch seeds before
    /// any generator seed, so re-deriving them here is exact).
    pub lfsrs: Vec<Lfsr16>,
    /// Output arbitration policy (uniform across the platform).
    pub arbiter: ArbiterKind,
    /// Multi-path selection policy (uniform across the platform).
    pub selection: SelectionPolicy,
    /// Per output port: where sent flits land.
    pub out_dest: Vec<LoweredOutDest>,
    /// Per input port: where vacated-buffer credits return.
    pub in_feed: Vec<LoweredInFeed>,
    /// Per output port: the raw [`LinkId`] it drives (congestion and
    /// telemetry attribution).
    pub out_link: Vec<u32>,
    /// Per generator: the switch its NI injects into.
    pub inject_switch: Vec<u32>,
    /// Per generator: global input-slot base of its injection port.
    pub inject_slot_base: Vec<u32>,
    /// Largest `inputs[s] * num_vcs` over all switches (scratch sizing).
    pub max_in_slots: usize,
    /// Largest `outputs[s] * num_vcs` over all switches (scratch sizing).
    pub max_out_slots: usize,
    /// Largest `inputs[s]` over all switches (scratch sizing).
    pub max_inputs: usize,
}

impl LoweredPlatform {
    /// The admissible hops of `flow` at switch `s` (empty when the
    /// flow has no entry there) — the CSR equivalent of
    /// [`RoutingTables::lookup`].
    pub fn route_lookup(&self, s: usize, flow: u32) -> &[RouteHop] {
        let lo = self.route_flow_base[s] as usize;
        let hi = self.route_flow_base[s + 1] as usize;
        match self.route_flows[lo..hi].binary_search(&flow) {
            Ok(k) => {
                let f = lo + k;
                let a = self.route_hop_start[f] as usize;
                let b = self.route_hop_start[f + 1] as usize;
                &self.route_hops[a..b]
            }
            Err(_) => &[],
        }
    }

    /// Total input slots (FIFO count) of the lowered platform.
    pub fn total_in_slots(&self) -> usize {
        *self.in_slot_base.last().expect("prefix sums are non-empty") as usize
    }

    /// Total output slots of the lowered platform.
    pub fn total_out_slots(&self) -> usize {
        *self
            .out_slot_base
            .last()
            .expect("prefix sums are non-empty") as usize
    }
}

/// Lowers a *freshly elaborated* platform into flat struct-of-arrays
/// state (see [`LoweredPlatform`] for the layout).
///
/// The pass is pure: it reads the elaboration's topology, routing
/// tables and switch credit state and writes dense arrays sized from
/// the per-switch port counts. It must run before any cycle is
/// stepped — credits are captured as the initial (= cap) values and
/// the selection LFSRs are re-seeded from the platform seed exactly as
/// [`elaborate_routed`] seeded the interpreted switches.
pub fn lower(elab: &Elaboration) -> LoweredPlatform {
    let topo = &elab.config.topology;
    let vcs = usize::from(elab.config.switch.num_vcs);
    let depth = usize::from(elab.config.switch.fifo_depth);
    let n = topo.switch_count();

    let mut inputs = Vec::with_capacity(n);
    let mut outputs = Vec::with_capacity(n);
    let mut in_slot_base = Vec::with_capacity(n + 1);
    let mut out_slot_base = Vec::with_capacity(n + 1);
    let mut in_port_base = Vec::with_capacity(n + 1);
    let mut out_port_base = Vec::with_capacity(n + 1);
    in_slot_base.push(0u32);
    out_slot_base.push(0u32);
    in_port_base.push(0u32);
    out_port_base.push(0u32);
    let mut max_in_slots = 0usize;
    let mut max_out_slots = 0usize;
    let mut max_inputs = 0usize;
    for s in topo.switch_ids() {
        let info = topo.switch(s);
        let (i, o) = (u32::from(info.inputs), u32::from(info.outputs));
        inputs.push(i);
        outputs.push(o);
        in_slot_base.push(in_slot_base.last().unwrap() + i * vcs as u32);
        out_slot_base.push(out_slot_base.last().unwrap() + o * vcs as u32);
        in_port_base.push(in_port_base.last().unwrap() + i);
        out_port_base.push(out_port_base.last().unwrap() + o);
        max_in_slots = max_in_slots.max(i as usize * vcs);
        max_out_slots = max_out_slots.max(o as usize * vcs);
        max_inputs = max_inputs.max(i as usize);
    }
    let total_in_slots = *in_slot_base.last().unwrap() as usize;
    let total_out_slots = *out_slot_base.last().unwrap() as usize;
    let total_out_ports = *out_port_base.last().unwrap() as usize;

    // The arena holds `depth` handle slots per FIFO; unoccupied slots
    // carry a zero handle that no code path ever reads (len/head gate
    // every access).
    let fifo_arena = vec![0u32; total_in_slots * depth];

    // Flatten the per-switch sparse route tables into one CSR.
    let mut route_flow_base = Vec::with_capacity(n + 1);
    route_flow_base.push(0u32);
    let mut route_flows = Vec::new();
    let mut route_hop_start = vec![0u32];
    let mut route_hops: Vec<RouteHop> = Vec::new();
    for s in topo.switch_ids() {
        for (flow, hops) in elab.routing.switch_table(s).entries() {
            route_flows.push(flow.raw());
            route_hops.extend_from_slice(hops);
            route_hop_start.push(route_hops.len() as u32);
        }
        route_flow_base.push(route_flows.len() as u32);
    }
    let mut route_flow_space = route_flows.iter().max().map_or(0, |&m| m as usize + 1);
    let route_direct = if n * route_flow_space <= ROUTE_DIRECT_MAX {
        let mut direct = vec![ROUTE_NONE; n * route_flow_space];
        for s in 0..n {
            let lo = route_flow_base[s] as usize;
            let hi = route_flow_base[s + 1] as usize;
            for f in lo..hi {
                let a = route_hop_start[f] as usize;
                let b = route_hop_start[f + 1] as usize;
                let enc = if b - a == 1 {
                    let hop = route_hops[a];
                    hop.port.index() * vcs + hop.vc.index()
                } else {
                    usize::from(ROUTE_MULTI)
                };
                direct[s * route_flow_space + route_flows[f] as usize] =
                    if enc < usize::from(ROUTE_MULTI) {
                        enc as u8
                    } else {
                        ROUTE_MULTI
                    };
            }
        }
        direct
    } else {
        route_flow_space = 0;
        Vec::new()
    };

    // Output-slot records: credits derived exactly as elaboration
    // derives them (inter-switch: downstream FIFO depth; ejection:
    // infinite unless `ejection_credits` caps them); arbiter pointers
    // start at `width - 1` so the first grant scans from input slot 0.
    let mut out_state = Vec::with_capacity(total_out_slots);
    let mut credit_cap = Vec::with_capacity(total_out_slots);
    for s in topo.switch_ids() {
        let info = topo.switch(s);
        let width = (u32::from(info.inputs) as usize * vcs - 1) as u16;
        for p in 0..info.outputs {
            let link = topo.out_link(s, PortId::new(p));
            let per_vc = match topo.link(link).dst {
                LinkEnd::Switch { .. } => u32::from(elab.config.switch.fifo_depth),
                LinkEnd::Endpoint(_) => elab
                    .config
                    .switch
                    .ejection_credits
                    .unwrap_or(CREDITS_INFINITE),
            };
            for v in 0..vcs {
                debug_assert_eq!(
                    elab.switches[s.index()].credits_vc(PortId::new(p), VcId::new(v as u8)),
                    per_vc,
                    "lowering must start from a freshly elaborated platform"
                );
                out_state.push(OutSlotState {
                    credits: per_vc,
                    busy_with: SLOT_NONE,
                    arb_last: width,
                });
                credit_cap.push(per_vc);
            }
        }
    }

    // Selection LFSR seeds: elaboration draws all switch seeds from
    // the platform seeder *before* any generator seed, in switch-id
    // order, so replaying the first `switch_count` draws is exact.
    let mut seeder = SplitMix64::new(elab.config.seed);
    let lfsrs: Vec<Lfsr16> = (0..n)
        .map(|_| Lfsr16::new((seeder.next() & 0xFFFF) as u16))
        .collect();

    // Flattened wiring.
    let mut out_dest = Vec::with_capacity(total_out_ports);
    let mut out_link = Vec::with_capacity(total_out_ports);
    let mut in_feed = Vec::new();
    for s in topo.switch_ids() {
        let si = s.index();
        for (p, target) in elab.wiring.out_target[si].iter().enumerate() {
            out_dest.push(match *target {
                OutTarget::Switch { switch, port } => LoweredOutDest::Switch {
                    switch: switch as u32,
                    slot_base: in_slot_base[switch] + (port.index() * vcs) as u32,
                },
                OutTarget::Receptor { index } => LoweredOutDest::Receptor {
                    index: index as u32,
                },
            });
            out_link.push(topo.out_link(s, PortId::new(p as u8)).raw());
        }
        for source in &elab.wiring.in_source[si] {
            in_feed.push(match *source {
                InSource::Switch { switch, port } => LoweredInFeed::Switch {
                    slot_base: out_slot_base[switch] + (port.index() * vcs) as u32,
                },
                InSource::Generator { index } => LoweredInFeed::Generator {
                    index: index as u32,
                },
            });
        }
    }
    let mut inject_switch = Vec::with_capacity(elab.wiring.injection.len());
    let mut inject_slot_base = Vec::with_capacity(elab.wiring.injection.len());
    for &(s, port, _) in &elab.wiring.injection {
        inject_switch.push(s as u32);
        inject_slot_base.push(in_slot_base[s] + (port.index() * vcs) as u32);
    }

    LoweredPlatform {
        switch_count: n,
        num_vcs: vcs,
        fifo_depth: depth,
        inputs,
        outputs,
        in_state: vec![InSlotState::EMPTY; total_in_slots],
        fifo_arena,
        route_flow_base,
        route_flows,
        route_hop_start,
        route_hops,
        route_direct,
        route_flow_space,
        out_state,
        credit_cap,
        out_vc_ptr: vec![0; total_out_ports],
        lfsrs,
        arbiter: elab.config.switch.arbiter,
        selection: elab.config.switch.selection,
        out_dest,
        in_feed,
        out_link,
        inject_switch,
        inject_slot_base,
        in_slot_base,
        out_slot_base,
        in_port_base,
        out_port_base,
        max_in_slots,
        max_out_slots,
        max_inputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PaperConfig;
    use nocem_topology::builders::mesh;

    #[test]
    fn paper_uniform_elaborates() {
        let cfg = PaperConfig::new().total_packets(100).uniform();
        let e = elaborate(&cfg).unwrap();
        assert_eq!(e.switches.len(), 6);
        assert_eq!(e.tgs.len(), 4);
        assert_eq!(e.receptors.len(), 4);
        assert_eq!(e.nis.len(), 4);
        assert_eq!(
            e.map.devices().len(),
            1 + 4 + 4 + 6 + 1,
            "ctrl + tgs + trs + switches + monitor"
        );
        e.ensure_not_overloaded().unwrap();
        // The hot links are predicted at 90%.
        let loads = e.predicted_loads.as_ref().unwrap();
        let hot = PaperConfig::new().setup().hot_links;
        for h in hot {
            assert!(
                (loads[h.index()] - 0.90).abs() < 0.03,
                "{}",
                loads[h.index()]
            );
        }
        assert!(format!("{e:?}").contains("switches"));
    }

    #[test]
    fn traffic_model_count_mismatch_fails() {
        let mut cfg = PaperConfig::new().uniform();
        cfg.generators.pop();
        let err = elaborate(&cfg).unwrap_err();
        assert!(matches!(err, CompileError::TrafficMismatch { .. }));
    }

    #[test]
    fn receptor_count_mismatch_fails() {
        let mut cfg = PaperConfig::new().uniform();
        cfg.receptors.pop();
        assert!(matches!(
            elaborate(&cfg),
            Err(CompileError::TrafficMismatch { .. })
        ));
    }

    #[test]
    fn zero_queue_capacity_fails() {
        let mut cfg = PaperConfig::new().uniform();
        cfg.source_queue_capacity = 0;
        assert!(elaborate(&cfg).is_err());
    }

    #[test]
    fn injection_wiring_points_at_generator_switches() {
        let cfg = PaperConfig::new().uniform();
        let e = elaborate(&cfg).unwrap();
        let expected: Vec<usize> = vec![0, 1, 3, 4]; // TGs on S0, S1, S3, S4
        let actual: Vec<usize> = e.wiring.injection.iter().map(|&(s, _, _)| s).collect();
        assert_eq!(actual, expected);
    }

    #[test]
    fn ejection_credits_are_infinite() {
        let cfg = PaperConfig::new().uniform();
        let e = elaborate(&cfg).unwrap();
        // S2 hosts TR0/TR1; its ejection outputs have infinite credits.
        for (s, outs) in e.wiring.out_target.iter().enumerate() {
            for (p, t) in outs.iter().enumerate() {
                if matches!(t, OutTarget::Receptor { .. }) {
                    assert_eq!(
                        e.switches[s].credits(PortId::new(p as u8)),
                        CREDITS_INFINITE
                    );
                }
            }
        }
    }

    #[test]
    fn trace_config_builds_trace_tgs() {
        let cfg = PaperConfig::new().total_packets(40).trace_bursty(4);
        let e = elaborate(&cfg).unwrap();
        for tg in &e.tgs {
            assert_eq!(tg.kind(), nocem_traffic::generator::TgKind::TraceDriven);
        }
        for r in &e.receptors {
            assert_eq!(r.kind(), TrKind::TraceDriven);
        }
        assert!(e.predicted_loads.is_none(), "trace loads are not predicted");
    }

    #[test]
    fn mesh_baseline_elaborates() {
        let cfg = crate::config::PlatformConfig::baseline("m", mesh(3, 3).unwrap()).unwrap();
        let e = elaborate(&cfg).unwrap();
        assert_eq!(e.switches.len(), 9);
        assert_eq!(e.tgs.len(), 9);
    }

    #[test]
    fn routed_elaboration_matches_direct_elaboration() {
        let cfg = PaperConfig::new().total_packets(200).uniform();
        let routing = compute_routing(&cfg).unwrap();
        // Reuse the tables for a *different load point* of the same
        // topology/flows (the saturation-search pattern): the runs
        // must be identical to direct elaboration.
        let mut run_direct = crate::engine::build(&cfg).unwrap();
        run_direct.run().unwrap();
        let mut run_routed =
            crate::engine::Emulation::new(elaborate_routed(&cfg, routing).unwrap());
        run_routed.run().unwrap();
        assert_eq!(run_routed.ledger(), run_direct.ledger());
        assert_eq!(run_routed.results(), run_direct.results());
    }

    #[test]
    fn routed_elaboration_still_checks_vc_overflow() {
        let mut cfg = PaperConfig::new().uniform();
        let routing = compute_routing(&cfg).unwrap();
        cfg.switch.num_vcs = 0;
        assert!(matches!(
            elaborate_routed(&cfg, routing),
            Err(CompileError::VcOverflow { .. })
        ));
    }

    #[test]
    fn elaboration_is_deterministic() {
        let cfg = PaperConfig::new().total_packets(50).uniform();
        let a = elaborate(&cfg).unwrap();
        let b = elaborate(&cfg).unwrap();
        // Same seeds => same initial switch state (spot check via
        // credits and counters) and same maps.
        assert_eq!(a.map.devices().len(), b.map.devices().len());
        assert_eq!(a.switches.len(), b.switches.len());
    }
}
