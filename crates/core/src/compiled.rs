//! The compiled data-oriented engine: elaborate once, run flat arrays.
//!
//! [`CompiledEngine`] is the paper's synthesize-then-execute split in
//! software. Where [`crate::engine::Emulation`] interprets the
//! elaborated object graph every cycle (per-switch `Vec<Vec<...>>`
//! buffers, a `Vec<Transfer>` allocated per switch per cycle),
//! this engine [`lower`]s the elaboration once into
//! [`LoweredPlatform`] — one FIFO arena, one shared CSR route table,
//! dense credit/worm arrays — and then steps the whole platform as
//! tight loops over those arrays with no per-cycle allocation and no
//! per-flit virtual dispatch (only the per-TG `tick` stays virtual,
//! which keeps the generators' RNG streams identical by construction).
//!
//! The cycle semantics are *bit-identical* to `Emulation`: each phase
//! below mirrors the corresponding `Switch`/engine code path decision
//! for decision, in the same ascending orders, including arbiter
//! pointer movement and selection-LFSR stepping. The lockstep tests
//! (`tests/compiled_engine.rs`) prove ledger equality cycle by cycle.
//!
//! Speed comes from doing only *event* work, never *structure* work:
//!
//! * **Occupancy bitmasks** — each switch keeps a `u64` mask of its
//!   occupied input slots, so request generation, arbitration, grant
//!   application and congestion accounting iterate set bits
//!   (ascending, preserving the reference order) instead of scanning
//!   every slot. A fully empty switch is skipped in O(1).
//! * **Mask arbiters** — the round-robin arbiter is two bit
//!   operations over the request mask instead of a probe loop.
//! * **No division** — ring-buffer indices and VC arithmetic use
//!   conditional subtraction and precomputed slot→port tables; the
//!   interpreted engine's `%` by runtime FIFO depth and VC count is
//!   one of its largest per-cycle costs.
//! * **Event-deferred traffic models** — a generator whose
//!   [`TrafficGenerator::next_event_cycle`] lies in the future is not
//!   ticked; the skipped pure-countdown window is replayed exactly
//!   with [`TrafficGenerator::skip_to`] right before its next real
//!   tick. Idle network interfaces are skipped the same way.
//! * **No allocation** — grants, requests and transfers live in
//!   persistent scratch reused every cycle.
//!
//! Switches whose port×VC counts exceed 64 slots (a large star hub)
//! fall back to dense scans with identical semantics — the mask path
//! is an optimisation, never a constraint on topology.

use crate::clock::{self, ClockMode, EngineSummary, SteppableEngine};
use crate::compile::{
    lower, Elaboration, LoweredInFeed, LoweredOutDest, LoweredPlatform, OutSlotState,
    ReceptorDevice, HANDLE_HEAD, HANDLE_IDX, HANDLE_TAIL, LOWERED_NONE, ROUTE_MULTI, SLOT_NONE,
};
use crate::config::PlatformConfig;
use crate::error::EmulationError;
use crate::profile::{
    BlockedLink, Phase, PhaseProfiler, PhaseReport, StallReport, StallWatchdog, WaitDest, WaitEdge,
};
use crate::results::{EmulationResults, ReceptorSummary};
use nocem_common::flit::{Flit, PacketDescriptor};
use nocem_common::ids::{EndpointId, FlowId, LinkId, PacketId, SwitchId, VcId};
use nocem_common::rng::Lfsr16;
use nocem_common::route::RouteHop;
use nocem_common::time::Cycle;
use nocem_stats::congestion::{CongestionCounter, VcOccupancy};
use nocem_stats::ledger::PacketLedger;
use nocem_stats::receptor::CompletedPacket;
use nocem_switch::arbiter::ArbiterKind;
use nocem_switch::config::SelectionPolicy;
use nocem_switch::fifo::FifoFullError;
use nocem_switch::switch::CREDITS_INFINITE;
use nocem_telemetry::{Collector, CumulativeProbe};
use nocem_traffic::generator::{PacketRequest, TrafficGenerator};
use nocem_traffic::ni::SourceNi;
use std::time::Instant;

/// The compiled platform: flat arrays stepped by tight loops.
///
/// Built from an [`Elaboration`] via [`CompiledEngine::new`]; selected
/// through [`crate::config::EngineKind::Compiled`] everywhere a config
/// picks an engine ([`crate::shard::build_engine`],
/// [`crate::sweep::AnyEngine`], sweeps, curves).
pub struct CompiledEngine {
    pub(crate) config: PlatformConfig,
    pub(crate) low: LoweredPlatform,
    pub(crate) tgs: Vec<Box<dyn TrafficGenerator + Send>>,
    pub(crate) nis: Vec<SourceNi>,
    pub(crate) receptors: Vec<ReceptorDevice>,
    pub(crate) generator_endpoints: Vec<EndpointId>,
    /// Per generator: injection link id (congestion attribution).
    pub(crate) injection_links: Vec<LinkId>,
    pub(crate) ledger: PacketLedger,
    pub(crate) now: Cycle,
    pub(crate) next_packet: u64,
    /// Per-TG output register: a request the source queue could not
    /// absorb yet (the model is clock-gated while this is occupied).
    pub(crate) pending: Vec<Option<PacketRequest>>,
    /// Per TG: earliest cycle whose tick is not a pure no-op — ticks
    /// strictly before it are deferred and replayed with `skip_to`.
    pub(crate) tg_next_event: Vec<u64>,
    /// Per TG: first cycle whose (deferred) tick has not been
    /// replayed yet.
    pub(crate) tg_synced: Vec<u64>,
    /// Per NI: known non-idle; `tick_send` on an idle NI is a pure
    /// no-op and is skipped.
    pub(crate) ni_active: Vec<bool>,
    pub(crate) stalled: u64,
    pub(crate) delivered_flits: u64,
    pub(crate) cycles_skipped: u64,
    pub(crate) telemetry: Option<Collector>,
    /// Per global output port: cycles some input VC waited on it.
    pub(crate) blocked_out: Vec<u64>,
    /// Per global output port: flits that crossed it.
    pub(crate) forwarded_out: Vec<u64>,
    /// Per `(switch, vc)`: peak fill of any single FIFO of that VC.
    pub(crate) max_vc_occ: Vec<u64>,
    /// Per switch: total buffered flits (the skip-empty gate).
    pub(crate) occ_flits: Vec<u32>,
    /// Per switch: bitmask of occupied local input slots (mask path).
    pub(crate) occ_mask: Vec<u64>,
    /// Per switch: out-slots granted by VC allocation this cycle.
    pub(crate) vcg_mask: Vec<u64>,
    /// Per switch: out-ports granted a transfer this cycle.
    pub(crate) grant_mask: Vec<u64>,
    /// Per switch: all port×VC dims fit the 64-bit mask fast path.
    pub(crate) mask_ok: Vec<bool>,
    /// Platform-wide buffered flits (O(1) quiescence).
    pub(crate) total_occ: u64,
    /// Open wormholes (allocated/busy pairs; O(1) quiescence).
    pub(crate) open_worms: u32,
    /// Outstanding finite credits (cap minus current; O(1) quiescence).
    pub(crate) credit_debt: u64,
    /// Per global output slot: this cycle's VC-allocation winner as a
    /// switch-local input slot ([`SLOT_NONE`] = none).
    pub(crate) vc_granted: Vec<u16>,
    /// Per global output port: this cycle's transfer grant, encoded
    /// `(input_slot << 8) | out_vc` ([`LOWERED_NONE`] = none).
    pub(crate) granted: Vec<u32>,
    /// Per switch: decided this cycle (commit processes only these).
    pub(crate) active: Vec<bool>,
    /// Scratch: per switch-local input slot, the requested switch-local
    /// output slot (valid only for occupied slots).
    pub(crate) requests: Vec<u16>,
    /// Scratch (mask path): per local out-slot, the bitmask of
    /// requesting input slots; set and cleared within one decide.
    pub(crate) slot_reqs: Vec<u64>,
    /// Scratch (dense path): `[local out-slot][local in-slot]` request
    /// lines, set and lazily cleared like the interpreted switch's.
    pub(crate) vc_reqs: Vec<bool>,
    /// Scratch (dense path): per local out-slot, any request.
    pub(crate) vc_req_any: Vec<bool>,
    /// Scratch (dense path): per input port, a grant claimed it.
    pub(crate) input_taken: Vec<bool>,
    /// Lookup: local input slot → input port (hot paths divide by the
    /// VC count through this table instead of the ALU).
    pub(crate) iv_port: Vec<u32>,
    /// Lookup: local output slot → output port.
    pub(crate) slot_port: Vec<u32>,
    /// In-flight flit storage: the arena's handles index this pool, so
    /// a hop moves a four-byte handle instead of a whole [`Flit`]. A
    /// flit is interned at injection and freed at delivery; the free
    /// list recycles pool slots deterministically.
    pub(crate) flit_pool: Vec<Flit>,
    /// Freed pool indices awaiting reuse.
    pub(crate) flit_free: Vec<u32>,
    /// Per-phase self-profiler (None = off, zero timestamp cost).
    pub(crate) profiler: Option<PhaseProfiler>,
    /// Stall watchdog, when the profile config enables one.
    pub(crate) watchdog: Option<StallWatchdog>,
}

impl std::fmt::Debug for CompiledEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledEngine")
            .field("name", &self.config.name)
            .field("cycle", &self.now)
            .field("delivered", &self.ledger.delivered())
            .finish_non_exhaustive()
    }
}

/// One VC-allocation arbiter step over dense request lines — the exact
/// semantics of `nocem-switch`'s arbiters (dense fallback path).
#[inline]
fn arb_grant_dense(kind: ArbiterKind, last: &mut u16, requests: &[bool]) -> Option<usize> {
    match kind {
        ArbiterKind::RoundRobin => {
            let width = requests.len();
            let start = *last as usize;
            for (i, &req) in requests.iter().enumerate().skip(start + 1) {
                if req {
                    *last = i as u16;
                    return Some(i);
                }
            }
            for (i, &req) in requests.iter().enumerate().take(start.min(width - 1) + 1) {
                if req {
                    *last = i as u16;
                    return Some(i);
                }
            }
            None
        }
        ArbiterKind::FixedPriority => requests.iter().position(|&r| r),
    }
}

/// One VC-allocation arbiter step over a non-empty request *mask*:
/// round-robin picks the smallest requesting index strictly above the
/// pointer, wrapping to the smallest overall — exactly the probe loop
/// of `nocem-switch`'s arbiter, in two bit operations.
#[inline]
fn arb_grant_mask(kind: ArbiterKind, last: &mut u16, reqs: u64) -> u16 {
    debug_assert_ne!(reqs, 0, "mask arbiters only run on requested slots");
    match kind {
        ArbiterKind::RoundRobin => {
            let above = match 1u64.checked_shl(u32::from(*last) + 1) {
                Some(bit) => reqs & !(bit - 1),
                None => 0,
            };
            let pick = if above != 0 {
                above.trailing_zeros() as u16
            } else {
                reqs.trailing_zeros() as u16
            };
            *last = pick;
            pick
        }
        ArbiterKind::FixedPriority => reqs.trailing_zeros() as u16,
    }
}

/// The multi-path selection policy — the exact semantics of
/// `Switch::select` over the switch-local credit view.
#[inline]
fn select_hop(
    policy: SelectionPolicy,
    hops: &[RouteHop],
    out_state: &[OutSlotState],
    vcs: usize,
    alternate_ptr: &mut u8,
    lfsr: &mut Lfsr16,
) -> RouteHop {
    if hops.len() == 1 {
        return hops[0];
    }
    match policy {
        SelectionPolicy::First => hops[0],
        SelectionPolicy::Alternate => {
            let idx = (*alternate_ptr as usize) % hops.len();
            *alternate_ptr = alternate_ptr.wrapping_add(1);
            hops[idx]
        }
        SelectionPolicy::Random {
            secondary_threshold,
        } => {
            let draw = lfsr.step();
            if draw < secondary_threshold {
                hops[1 + (draw as usize) % (hops.len() - 1)]
            } else {
                hops[0]
            }
        }
        SelectionPolicy::Adaptive => {
            let mut best = hops[0];
            let mut best_credit = out_state[best.port.index() * vcs + best.vc.index()].credits;
            for &h in &hops[1..] {
                let c = out_state[h.port.index() * vcs + h.vc.index()].credits;
                if c > best_credit {
                    best = h;
                    best_credit = c;
                }
            }
            best
        }
    }
}

impl CompiledEngine {
    /// Lowers `elab` and wraps it into a runnable compiled engine.
    ///
    /// The traffic generators, network interfaces and receptors are
    /// *moved out of* the elaboration and reused as-is — their
    /// per-device state (RNG streams, serializers, histograms) is what
    /// makes the compiled run release- and delivery-identical to the
    /// interpreted one by construction. Only the switches are
    /// re-expressed as flat arrays.
    pub fn new(mut elab: Elaboration) -> Self {
        let lower_start = Instant::now();
        let low = lower(&elab);
        let lower_ns = u64::try_from(lower_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let profiler = elab.config.profile.as_ref().map(|_| {
            let mut p = PhaseProfiler::new();
            p.add_ns(Phase::Elaborate, elab.elaborate_ns);
            p.add_ns(Phase::Lower, lower_ns);
            p
        });
        let watchdog = elab
            .config
            .profile
            .as_ref()
            .and_then(|p| p.stall)
            .map(StallWatchdog::new);
        let generator_endpoints = elab.config.topology.generators();
        let telemetry = elab.config.telemetry.as_ref().map(|t| {
            Collector::new(
                t,
                elab.config.topology.link_count(),
                usize::from(elab.config.switch.num_vcs),
            )
        });
        let tgs = std::mem::take(&mut elab.tgs);
        let nis = std::mem::take(&mut elab.nis);
        let receptors = std::mem::take(&mut elab.receptors);
        let injection_links = elab.wiring.injection.iter().map(|&(_, _, l)| l).collect();
        let config = elab.config;
        let total_out_slots = low.total_out_slots();
        let total_out_ports = *low.out_port_base.last().expect("prefix sums") as usize;
        let vcs = low.num_vcs;
        let mask_ok = (0..low.switch_count)
            .map(|s| {
                low.inputs[s] as usize * vcs <= 64
                    && low.outputs[s] as usize * vcs <= 64
                    && low.outputs[s] as usize <= 64
            })
            .collect();
        let tg_next_event = tgs
            .iter()
            .map(|t| t.next_event_cycle(Cycle::ZERO).cycle_or_max())
            .collect();
        CompiledEngine {
            ledger: PacketLedger::new(),
            now: Cycle::ZERO,
            next_packet: 0,
            pending: vec![None; tgs.len()],
            tg_next_event,
            tg_synced: vec![0; tgs.len()],
            ni_active: vec![false; nis.len()],
            stalled: 0,
            delivered_flits: 0,
            cycles_skipped: 0,
            telemetry,
            blocked_out: vec![0; total_out_ports],
            forwarded_out: vec![0; total_out_ports],
            max_vc_occ: vec![0; low.switch_count * vcs],
            occ_flits: vec![0; low.switch_count],
            occ_mask: vec![0; low.switch_count],
            vcg_mask: vec![0; low.switch_count],
            grant_mask: vec![0; low.switch_count],
            mask_ok,
            total_occ: 0,
            open_worms: 0,
            credit_debt: 0,
            vc_granted: vec![SLOT_NONE; total_out_slots],
            granted: vec![LOWERED_NONE; total_out_ports],
            active: vec![false; low.switch_count],
            requests: vec![0; low.max_in_slots],
            slot_reqs: vec![0; low.max_out_slots],
            vc_reqs: vec![false; low.max_out_slots * low.max_in_slots],
            vc_req_any: vec![false; low.max_out_slots],
            input_taken: vec![false; low.max_inputs],
            iv_port: (0..low.max_in_slots as u32)
                .map(|iv| iv / vcs as u32)
                .collect(),
            slot_port: (0..low.max_out_slots as u32)
                .map(|slot| slot / vcs as u32)
                .collect(),
            flit_pool: Vec::new(),
            flit_free: Vec::new(),
            profiler,
            watchdog,
            generator_endpoints,
            injection_links,
            tgs,
            nis,
            receptors,
            config,
            low,
        }
    }

    /// The current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Packets delivered so far.
    pub fn delivered(&self) -> u64 {
        self.ledger.delivered()
    }

    /// Cycles the fast-forward kernel jumped over so far.
    pub fn cycles_skipped(&self) -> u64 {
        self.cycles_skipped
    }

    /// The packet ledger (read access for tests and reports).
    pub fn ledger(&self) -> &PacketLedger {
        &self.ledger
    }

    /// The lowered platform (read access for inspection and tests).
    pub fn lowered(&self) -> &LoweredPlatform {
        &self.low
    }

    /// Whether the whole platform is quiescent — the O(1) aggregate
    /// form of [`clock::platform_quiescent`]: no packet in flight, no
    /// parked TG request, every NI idle with credits home, no buffered
    /// flit, no open wormhole, every finite credit back at its cap.
    pub fn is_quiescent(&self) -> bool {
        self.ledger.in_flight() == 0
            && self.pending.iter().all(Option::is_none)
            && self.nis.iter().all(|n| n.is_idle() && n.credits_home())
            && self.total_occ == 0
            && self.open_worms == 0
            && self.credit_debt == 0
    }

    /// Replays TG `i`'s deferred pure-countdown window `[synced, now)`
    /// so its next tick observes exactly the state an every-cycle run
    /// would have produced.
    #[inline]
    pub(crate) fn sync_tg(&mut self, i: usize, now: Cycle) {
        if self.tg_synced[i] < now.raw() {
            self.tgs[i].skip_to(Cycle::new(self.tg_synced[i]), now);
        }
        self.tg_synced[i] = now.raw();
    }

    /// Closes a profiling lap: charges `phase` the time since `*t` and
    /// chains the next timestamp. No-op (a single `Option` check) when
    /// profiling is off.
    #[inline]
    fn lap(&mut self, t: &mut Option<Instant>, phase: Phase) {
        if let (Some(prev), Some(p)) = (t.as_mut(), self.profiler.as_mut()) {
            *prev = p.lap(*prev, phase);
        }
    }

    /// Advances one platform cycle — the exact phase order of
    /// [`crate::engine::Emulation::step`] over the flat arrays.
    ///
    /// # Errors
    ///
    /// Returns [`EmulationError`] on wiring/protocol violations (which
    /// a correct build never produces) or when the cycle limit is
    /// exceeded.
    pub fn step(&mut self) -> Result<(), EmulationError> {
        let mut t = self.profiler.as_mut().map(PhaseProfiler::begin_step);
        if self.config.clock_mode == ClockMode::Gated && self.is_quiescent() {
            // The shared fast-forward kernel assumes TGs are ticked up
            // to `now`; replay any deferred countdown windows first.
            let at = self.now;
            for i in 0..self.tgs.len() {
                self.sync_tg(i, at);
            }
            let skipped =
                clock::fast_forward(self.now, self.config.stop.cycle_limit, &mut self.tgs);
            self.now += skipped;
            self.cycles_skipped += skipped;
            if skipped > 0 {
                let at = self.now.raw();
                for i in 0..self.tgs.len() {
                    self.tg_synced[i] = at;
                    self.tg_next_event[i] = self.tgs[i].next_event_cycle(self.now).cycle_or_max();
                }
            }
        }
        self.lap(&mut t, Phase::FastForward);
        if self
            .telemetry
            .as_ref()
            .is_some_and(|t| t.needs_probe(self.now.raw()))
        {
            let probe = self.cumulative_probe();
            let at = self.now.raw();
            self.telemetry
                .as_mut()
                .expect("presence checked above")
                .record(at, &probe);
        }
        self.lap(&mut t, Phase::Probe);
        let now = self.now;

        // 1. Traffic models release packets (parked requests retry
        //    first, exactly like the interpreted engine). TGs whose
        //    next event lies in the future are not ticked: those ticks
        //    are pure countdowns, replayed in one `skip_to` jump right
        //    before the next real tick.
        for i in 0..self.tgs.len() {
            let req = match self.pending[i].take() {
                Some(req) if self.nis[i].can_accept() => {
                    // The tick clock was paused while the request was
                    // parked; re-anchor the event window at the next
                    // tickable cycle.
                    self.tg_synced[i] = now.raw() + 1;
                    self.tg_next_event[i] = self.tgs[i].next_event_cycle(now.next()).cycle_or_max();
                    req
                }
                Some(req) => {
                    self.pending[i] = Some(req);
                    self.stalled += 1;
                    continue;
                }
                None => {
                    if now.raw() < self.tg_next_event[i] {
                        continue;
                    }
                    self.sync_tg(i, now);
                    let released = self.tgs[i].tick(now);
                    self.tg_synced[i] = now.raw() + 1;
                    self.tg_next_event[i] = self.tgs[i].next_event_cycle(now.next()).cycle_or_max();
                    let Some(req) = released else {
                        continue;
                    };
                    if !self.nis[i].can_accept() {
                        self.pending[i] = Some(req);
                        self.stalled += 1;
                        continue;
                    }
                    req
                }
            };
            let id = PacketId::new(self.next_packet);
            let desc = PacketDescriptor {
                id,
                src: self.generator_endpoints[i],
                dst: req.dst,
                flow: req.flow,
                len_flits: req.len_flits,
                release: now,
            };
            let accepted = self.nis[i].offer(desc);
            debug_assert!(accepted, "capacity was checked before the offer");
            self.ni_active[i] = true;
            self.next_packet += 1;
            let ledger_start = self.profiler.as_ref().map(PhaseProfiler::begin);
            self.ledger.release(id, now, req.len_flits)?;
            if let Some(s) = ledger_start {
                self.profiler
                    .as_mut()
                    .expect("timestamp implies profiler")
                    .nested(s, Phase::Ledger);
            }
        }
        self.lap(&mut t, Phase::TgTick);

        // 2. All switches decide on start-of-cycle state. A switch
        //    with no buffered flit can produce no request, move no
        //    pointer and step no LFSR — skip it entirely.
        let vc1 = self.low.num_vcs == 1;
        for s in 0..self.low.switch_count {
            if self.occ_flits[s] == 0 {
                self.active[s] = false;
                continue;
            }
            self.active[s] = true;
            if self.mask_ok[s] {
                if vc1 {
                    self.decide_switch_mask_vc1(s);
                } else {
                    self.decide_switch_mask(s);
                }
            } else {
                self.decide_switch_dense(s);
            }
        }
        self.lap(&mut t, Phase::Decide);

        // 3. Network interfaces inject (visible next cycle). An idle
        //    NI's `tick_send` is a pure no-op — skipped.
        for i in 0..self.nis.len() {
            if !self.ni_active[i] {
                continue;
            }
            let Some(flit) = self.nis[i].tick_send() else {
                if self.nis[i].is_idle() {
                    self.ni_active[i] = false;
                }
                continue;
            };
            if flit.kind.is_head() {
                let ledger_start = self.profiler.as_ref().map(PhaseProfiler::begin);
                self.ledger.inject(flit.packet, now)?;
                if let Some(s) = ledger_start {
                    self.profiler
                        .as_mut()
                        .expect("timestamp implies profiler")
                        .nested(s, Phase::Ledger);
                }
            }
            let (sw, base) = (self.low.inject_switch[i], self.low.inject_slot_base[i]);
            let vc = flit.vc.index();
            let h = self.intern(flit);
            self.accept_flit(sw as usize, base, h, vc)?;
        }
        self.lap(&mut t, Phase::NiInject);

        // 4. All decided switches commit; flits move one hop.
        for s in 0..self.low.switch_count {
            if !self.active[s] {
                continue;
            }
            if self.mask_ok[s] {
                if vc1 {
                    self.commit_switch_mask_vc1(s, now)?;
                } else {
                    self.commit_switch_mask(s, now)?;
                }
            } else {
                self.commit_switch_dense(s, now)?;
            }
        }
        self.lap(&mut t, Phase::Commit);

        // Stall watchdog: feed the ledger counters once per stepped
        // cycle; on the trip, capture the wait-for snapshot.
        let tripped = match self.watchdog.as_mut() {
            Some(w) => w.observe(
                now.raw(),
                self.ledger.released(),
                self.ledger.injected(),
                self.ledger.delivered(),
                self.ledger.in_flight(),
            ),
            None => false,
        };
        if tripped {
            let report = self.capture_stall_report(now.raw());
            self.watchdog
                .as_mut()
                .expect("tripped implies watchdog")
                .latch(report);
        }

        // 5. Advance time.
        self.now = now.next();
        if self.now.raw() > self.config.stop.cycle_limit {
            return Err(EmulationError::CycleLimitExceeded {
                limit: self.config.stop.cycle_limit,
                delivered: self.ledger.delivered(),
            });
        }
        Ok(())
    }

    /// Interns an injected flit into the pool and returns its arena
    /// handle: the pool index with the head/tail kind flags packed into
    /// the top bits. The free list makes reuse deterministic.
    #[inline]
    pub(crate) fn intern(&mut self, flit: Flit) -> u32 {
        let idx = match self.flit_free.pop() {
            Some(i) => {
                self.flit_pool[i as usize] = flit;
                i
            }
            None => {
                self.flit_pool.push(flit);
                (self.flit_pool.len() - 1) as u32
            }
        };
        debug_assert!(
            idx <= HANDLE_IDX,
            "flit pool exceeds the handle index space"
        );
        let mut h = idx;
        if flit.kind.is_head() {
            h |= HANDLE_HEAD;
        }
        if flit.kind.is_tail() {
            h |= HANDLE_TAIL;
        }
        h
    }

    /// Looks up `flow`'s route hops at switch `s` and runs the
    /// selection policy — shared by both decide paths.
    #[inline]
    pub(crate) fn route_and_select(
        low: &mut LoweredPlatform,
        s: usize,
        slot: usize,
        flow: FlowId,
    ) -> u16 {
        let vcs = low.num_vcs;
        if low.route_flow_space != 0 {
            // Single-hop routes (every deterministic routing function)
            // are embedded in the direct map: one byte load answers
            // the lookup with nothing to select.
            let enc = low.route_direct[s * low.route_flow_space + flow.raw() as usize];
            assert!(
                enc != crate::compile::ROUTE_NONE,
                "flow {flow} has no routing entry at this switch"
            );
            if enc != ROUTE_MULTI {
                low.in_state[slot].chosen = u16::from(enc);
                return u16::from(enc);
            }
        }
        let osb = low.out_slot_base[s] as usize;
        let oslots = low.out_slot_base[s + 1] as usize - osb;
        let lo = low.route_flow_base[s] as usize;
        let hi = low.route_flow_base[s + 1] as usize;
        let entry = match low.route_flows[lo..hi].binary_search(&flow.raw()) {
            Ok(k) => (lo + k) as u32,
            Err(_) => LOWERED_NONE,
        };
        let hops: &[RouteHop] = if entry == LOWERED_NONE {
            &[]
        } else {
            let a = low.route_hop_start[entry as usize] as usize;
            let b = low.route_hop_start[entry as usize + 1] as usize;
            &low.route_hops[a..b]
        };
        assert!(
            !hops.is_empty(),
            "flow {flow} has no routing entry at this switch"
        );
        let pick = select_hop(
            low.selection,
            hops,
            &low.out_state[osb..osb + oslots],
            vcs,
            &mut low.in_state[slot].alternate,
            &mut low.lfsrs[s],
        );
        let enc = (pick.port.index() * vcs + pick.vc.index()) as u16;
        low.in_state[slot].chosen = enc;
        enc
    }

    /// Phase 1 of one switch on the 64-bit mask fast path: requests,
    /// VC allocation and switch allocation, iterating occupied and
    /// requested slots only (ascending bit order = the reference's
    /// ascending slot order).
    pub(crate) fn decide_switch_mask(&mut self, s: usize) {
        let low = &mut self.low;
        let vcs = low.num_vcs;
        let depth = low.fifo_depth;
        let isb = low.in_slot_base[s] as usize;
        let osb = low.out_slot_base[s] as usize;
        let opb = low.out_port_base[s] as usize;

        // Requests: worms repeat their allocation; fresh heads route
        // (cached sticky in `chosen`) and select. One request mask per
        // out-slot carries both kinds — safely, because a worm bit can
        // only appear in the mask of its own *busy* out-slot, and the
        // VC-allocation arbiter below only ever reads the masks of
        // free out-slots, which are pure fresh heads.
        let occ = self.occ_mask[s];
        let mut oslot_mask: u64 = 0; // out-slots with any request
        let mut out_mask: u64 = 0; // out-ports with any request
        let mut m = occ;
        while m != 0 {
            let iv = (m.trailing_zeros() & 63) as usize;
            m &= m - 1;
            let slot = isb + iv;
            let st = low.in_state[slot];
            let hop = if st.allocated != SLOT_NONE {
                st.allocated
            } else if st.chosen != SLOT_NONE {
                st.chosen
            } else {
                let h = low.fifo_arena[slot * depth + st.head as usize];
                debug_assert!(
                    h & HANDLE_HEAD != 0,
                    "unallocated input VC must face a head flit (wormhole ordering)"
                );
                let flow = self.flit_pool[(h & HANDLE_IDX) as usize].flow;
                Self::route_and_select(low, s, slot, flow)
            };
            self.slot_reqs[usize::from(hop)] |= 1 << iv;
            oslot_mask |= 1 << hop;
            out_mask |= 1 << self.slot_port[usize::from(hop)];
        }

        // VC allocation: every requested, free, credited output VC
        // picks one head, ascending slot order.
        let mut am = oslot_mask;
        while am != 0 {
            let slot = (am.trailing_zeros() & 63) as usize;
            am &= am - 1;
            let gslot = osb + slot;
            let os = &mut low.out_state[gslot];
            if os.busy_with != SLOT_NONE || os.credits == 0 {
                continue;
            }
            let iv = arb_grant_mask(low.arbiter, &mut os.arb_last, self.slot_reqs[slot]);
            self.vc_granted[gslot] = iv;
            self.vcg_mask[s] |= 1 << slot;
        }

        // Switch allocation: each requested physical output transfers
        // at most one flit; each input port sends at most one.
        let mut granted_ivs: u64 = 0;
        let mut input_taken: u64 = 0;
        let mut om = out_mask;
        while om != 0 {
            let o = om.trailing_zeros() as usize;
            om &= om - 1;
            let gp = opb + o;
            let base = low.out_vc_ptr[gp] as usize;
            let oslot0 = o * vcs;
            for k in 0..vcs {
                let mut ov = base + k;
                if ov >= vcs {
                    ov -= vcs;
                }
                let slot = oslot0 + ov;
                let gslot = osb + slot;
                let fresh = self.vc_granted[gslot];
                let cand = if fresh != SLOT_NONE {
                    // A freshly allocated head (credit was checked
                    // during allocation, this same cycle).
                    fresh
                } else {
                    // A continuing worm whose output VC has a credit.
                    // An occupied owner always re-requests its
                    // allocation, so the occupancy bit is the request.
                    let os = low.out_state[gslot];
                    if os.busy_with != SLOT_NONE && os.credits > 0 && occ & (1 << os.busy_with) != 0
                    {
                        os.busy_with
                    } else {
                        SLOT_NONE
                    }
                };
                if cand == SLOT_NONE {
                    continue;
                }
                let i = self.iv_port[cand as usize];
                if input_taken & (1 << i) != 0 {
                    continue;
                }
                input_taken |= 1 << i;
                granted_ivs |= 1 << cand;
                self.granted[gp] = (u32::from(cand) << 8) | ov as u32;
                self.grant_mask[s] |= 1 << o;
                let mut next = ov + 1;
                if next >= vcs {
                    next = 0;
                }
                low.out_vc_ptr[gp] = next as u8;
                break;
            }
        }

        // Congestion accounting: every waiting input VC that was not
        // granted charges the output its flit requested — one popcount
        // per requested out-slot over the same masks (each occupied VC
        // requests exactly one out-slot). Clearing the request scratch
        // here keeps it all-zero between decides.
        let mut bm = oslot_mask;
        while bm != 0 {
            let slot = (bm.trailing_zeros() & 63) as usize;
            bm &= bm - 1;
            let waiting = self.slot_reqs[slot] & !granted_ivs;
            self.slot_reqs[slot] = 0;
            self.blocked_out[opb + self.slot_port[slot] as usize] +=
                u64::from(waiting.count_ones());
        }
    }

    /// Phase 1 on the mask fast path, specialized for one VC — the
    /// headline configuration. With `num_vcs == 1` a slot *is* a port
    /// (`iv_port`/`slot_port` are the identity), the switch-allocation
    /// VC rotation degenerates to a single probe and the per-port
    /// "one input sends" constraint coincides with the granted-slot
    /// set, so the whole decide runs on three bit masks.
    pub(crate) fn decide_switch_mask_vc1(&mut self, s: usize) {
        let low = &mut self.low;
        let depth = low.fifo_depth;
        let isb = low.in_slot_base[s] as usize;
        let osb = low.out_slot_base[s] as usize;
        let opb = low.out_port_base[s] as usize;

        // Requests: worms repeat their allocation; fresh heads route
        // (cached sticky in `chosen`) and select. One request mask per
        // out-port carries both kinds — safely, because a worm bit can
        // only appear in the mask of its own *busy* output, and the
        // VC-allocation arbiter below only ever reads the masks of
        // free outputs, which are pure fresh heads.
        let occ = self.occ_mask[s];
        let mut out_mask: u64 = 0; // out-ports with any request
        let mut m = occ;
        while m != 0 {
            let iv = (m.trailing_zeros() & 63) as usize;
            m &= m - 1;
            let slot = isb + iv;
            let st = low.in_state[slot];
            let hop = if st.allocated != SLOT_NONE {
                st.allocated
            } else if st.chosen != SLOT_NONE {
                st.chosen
            } else {
                let h = low.fifo_arena[slot * depth + st.head as usize];
                debug_assert!(
                    h & HANDLE_HEAD != 0,
                    "unallocated input VC must face a head flit (wormhole ordering)"
                );
                let flow = self.flit_pool[(h & HANDLE_IDX) as usize].flow;
                Self::route_and_select(low, s, slot, flow)
            };
            self.slot_reqs[usize::from(hop)] |= 1 << iv;
            out_mask |= 1 << hop;
        }

        // VC allocation, switch allocation and congestion accounting
        // fused into one pass per requested output, ascending port
        // order. With one VC an input requests exactly one output, so
        // two outputs can never grant the same input: a VC-allocation
        // winner *is* the switch-allocation winner, and the inputs
        // left waiting at this output are exactly its ungranted
        // request bits. Clearing the request scratch here keeps it
        // all-zero between decides.
        let mut om = out_mask;
        while om != 0 {
            let o = (om.trailing_zeros() & 63) as usize;
            om &= om - 1;
            let gslot = osb + o;
            let reqs = self.slot_reqs[o];
            self.slot_reqs[o] = 0;
            let os = &mut low.out_state[gslot];
            let cand = if os.busy_with != SLOT_NONE {
                // A busy output continues its worm when credited and
                // the worm's next flit has arrived — fresh heads wait.
                if os.credits > 0 && occ & (1 << os.busy_with) != 0 {
                    os.busy_with
                } else {
                    SLOT_NONE
                }
            } else if os.credits > 0 {
                let iv = arb_grant_mask(low.arbiter, &mut os.arb_last, reqs);
                self.vc_granted[gslot] = iv;
                self.vcg_mask[s] |= 1 << o;
                iv
            } else {
                SLOT_NONE
            };
            if cand != SLOT_NONE {
                self.granted[opb + o] = u32::from(cand) << 8;
                self.grant_mask[s] |= 1 << o;
                self.blocked_out[opb + o] += u64::from((reqs & !(1 << cand)).count_ones());
            } else {
                self.blocked_out[opb + o] += u64::from(reqs.count_ones());
            }
        }
    }

    /// Phase 1, dense fallback for switches whose port×VC dims exceed
    /// the 64-bit masks — full scans, identical semantics.
    pub(crate) fn decide_switch_dense(&mut self, s: usize) {
        let low = &mut self.low;
        let vcs = low.num_vcs;
        let depth = low.fifo_depth;
        let inputs = low.inputs[s] as usize;
        let outputs = low.outputs[s] as usize;
        let ivs = inputs * vcs;
        let isb = low.in_slot_base[s] as usize;
        let osb = low.out_slot_base[s] as usize;
        let opb = low.out_port_base[s] as usize;

        self.requests[..ivs].fill(SLOT_NONE);
        for iv in 0..ivs {
            let slot = isb + iv;
            let st = low.in_state[slot];
            if st.len == 0 {
                continue;
            }
            if st.allocated != SLOT_NONE {
                self.requests[iv] = st.allocated;
                continue;
            }
            let h = low.fifo_arena[slot * depth + st.head as usize];
            debug_assert!(
                h & HANDLE_HEAD != 0,
                "unallocated input VC must face a head flit (wormhole ordering)"
            );
            let hop = if st.chosen != SLOT_NONE {
                st.chosen
            } else {
                let flow = self.flit_pool[(h & HANDLE_IDX) as usize].flow;
                Self::route_and_select(low, s, slot, flow)
            };
            self.requests[iv] = hop;
        }

        for iv in 0..ivs {
            if low.in_state[isb + iv].allocated != SLOT_NONE {
                continue;
            }
            let req = self.requests[iv];
            if req != SLOT_NONE {
                let slot = req as usize;
                self.vc_reqs[slot * ivs + iv] = true;
                self.vc_req_any[slot] = true;
            }
        }
        for slot in 0..outputs * vcs {
            let gslot = osb + slot;
            self.vc_granted[gslot] = SLOT_NONE;
            let os = &mut low.out_state[gslot];
            if !self.vc_req_any[slot] || os.busy_with != SLOT_NONE || os.credits == 0 {
                continue;
            }
            self.vc_granted[gslot] = match arb_grant_dense(
                low.arbiter,
                &mut os.arb_last,
                &self.vc_reqs[slot * ivs..(slot + 1) * ivs],
            ) {
                Some(iv) => iv as u16,
                None => SLOT_NONE,
            };
        }
        for iv in 0..ivs {
            if low.in_state[isb + iv].allocated != SLOT_NONE {
                continue;
            }
            let req = self.requests[iv];
            if req != SLOT_NONE {
                let slot = req as usize;
                self.vc_reqs[slot * ivs + iv] = false;
                self.vc_req_any[slot] = false;
            }
        }

        self.input_taken[..inputs].fill(false);
        for o in 0..outputs {
            let gp = opb + o;
            self.granted[gp] = LOWERED_NONE;
            let base = low.out_vc_ptr[gp] as usize;
            for k in 0..vcs {
                let mut ov = base + k;
                if ov >= vcs {
                    ov -= vcs;
                }
                let slot = o * vcs + ov;
                let gslot = osb + slot;
                let fresh = self.vc_granted[gslot];
                let cand = if fresh != SLOT_NONE {
                    fresh
                } else {
                    let os = low.out_state[gslot];
                    if os.busy_with != SLOT_NONE
                        && os.credits > 0
                        && self.requests[os.busy_with as usize] == slot as u16
                    {
                        os.busy_with
                    } else {
                        SLOT_NONE
                    }
                };
                if cand == SLOT_NONE {
                    continue;
                }
                let i = self.iv_port[cand as usize] as usize;
                if self.input_taken[i] {
                    continue;
                }
                self.input_taken[i] = true;
                self.granted[gp] = (u32::from(cand) << 8) | ov as u32;
                let mut next = ov + 1;
                if next >= vcs {
                    next = 0;
                }
                low.out_vc_ptr[gp] = next as u8;
                break;
            }
        }

        for i in 0..inputs {
            let has_flit = (0..vcs).any(|v| low.in_state[isb + i * vcs + v].len > 0);
            if !has_flit {
                continue;
            }
            for v in 0..vcs {
                if low.in_state[isb + i * vcs + v].len == 0 {
                    continue;
                }
                let iv = (i * vcs + v) as u32;
                let vc_sent = (0..outputs).any(|o| {
                    let g = self.granted[opb + o];
                    g != LOWERED_NONE && (g >> 8) == iv
                });
                if vc_sent {
                    continue;
                }
                let req = self.requests[iv as usize];
                if req != SLOT_NONE {
                    self.blocked_out[opb + self.slot_port[req as usize] as usize] += 1;
                }
            }
        }
    }

    /// Pops port `o`'s granted flit of switch `s` and carries the
    /// transfer end to end: wormhole, credit and occupancy bookkeeping
    /// on the popping switch, then the engine-side effects in the
    /// interpreted engine's exact transfer order — return the credit
    /// upstream, land the flit downstream. Shared by the multi-VC mask
    /// and dense commit paths.
    #[inline]
    fn pop_forward(
        &mut self,
        s: usize,
        g: u32,
        o: usize,
        now: Cycle,
    ) -> Result<(), EmulationError> {
        let vcs = self.low.num_vcs;
        let depth = self.low.fifo_depth;
        let isb = self.low.in_slot_base[s] as usize;
        let osb = self.low.out_slot_base[s] as usize;
        let ipb = self.low.in_port_base[s] as usize;
        let opb = self.low.out_port_base[s] as usize;
        let iv = (g >> 8) as usize;
        let ov = (g & 0xFF) as usize;
        let islot = isb + iv;
        let ist = &mut self.low.in_state[islot];
        debug_assert!(ist.len > 0, "granted input VC has a flit at its head");
        let head = ist.head as usize;
        let next = head + 1;
        ist.head = if next == depth { 0 } else { next } as u8;
        let left = ist.len - 1;
        ist.len = left;
        let h = self.low.fifo_arena[islot * depth + head];
        let tail = h & HANDLE_TAIL != 0;
        if tail {
            ist.allocated = SLOT_NONE;
        }
        if left == 0 {
            self.occ_mask[s] &= !(1 << (iv & 63));
        }
        self.occ_flits[s] -= 1;
        self.total_occ -= 1;
        let gslot = osb + o * vcs + ov;
        let ost = &mut self.low.out_state[gslot];
        if ost.credits != CREDITS_INFINITE {
            ost.credits -= 1;
            self.credit_debt += 1;
        }
        if tail {
            ost.busy_with = SLOT_NONE;
            self.open_worms -= 1;
        }
        // The flit continues on the output VC the allocation chose;
        // the downstream switch lands it in that buffer (the VC rides
        // beside the handle, not in the pooled flit).
        self.forwarded_out[opb + o] += 1;
        let i = self.iv_port[iv] as usize;
        let v = iv - i * vcs;
        match self.low.in_feed[ipb + i] {
            LoweredInFeed::Switch { slot_base } => {
                // The upstream output VC the flit occupied is the
                // input VC it just vacated here.
                let up = slot_base as usize + v;
                let ust = &mut self.low.out_state[up];
                if ust.credits != CREDITS_INFINITE {
                    ust.credits += 1;
                    self.credit_debt -= 1;
                    debug_assert!(
                        ust.credits <= self.low.credit_cap[up],
                        "credit overflow on a lowered output slot"
                    );
                }
            }
            LoweredInFeed::Generator { index } => {
                self.nis[index as usize].credit_return();
            }
        }
        match self.low.out_dest[opb + o] {
            LoweredOutDest::Switch { switch, slot_base } => {
                self.accept_flit(switch as usize, slot_base, h, ov)?;
            }
            LoweredOutDest::Receptor { index } => {
                self.deliver(index as usize, h, ov, now)?;
            }
        }
        Ok(())
    }

    /// Phase 2 of one switch on the mask path: apply VC allocations,
    /// then pop-and-forward granted flits, both over this cycle's
    /// grant masks.
    fn commit_switch_mask(&mut self, s: usize, now: Cycle) -> Result<(), EmulationError> {
        let isb = self.low.in_slot_base[s] as usize;
        let osb = self.low.out_slot_base[s] as usize;

        // VC allocations first: the winning head owns its output VC
        // from now on, whether or not its flit also crosses this cycle.
        let mut vm = self.vcg_mask[s];
        self.vcg_mask[s] = 0;
        while vm != 0 {
            let slot = vm.trailing_zeros() as usize;
            vm &= vm - 1;
            let gslot = osb + slot;
            let iv = self.vc_granted[gslot];
            self.vc_granted[gslot] = SLOT_NONE;
            let ist = &mut self.low.in_state[isb + iv as usize];
            ist.allocated = slot as u16;
            ist.chosen = SLOT_NONE;
            self.low.out_state[gslot].busy_with = iv;
            self.open_worms += 1;
        }

        let mut gm = self.grant_mask[s];
        self.grant_mask[s] = 0;
        let opb = self.low.out_port_base[s] as usize;
        while gm != 0 {
            let o = gm.trailing_zeros() as usize;
            gm &= gm - 1;
            let gp = opb + o;
            let g = self.granted[gp];
            self.granted[gp] = LOWERED_NONE;
            self.pop_forward(s, g, o, now)?;
        }
        Ok(())
    }

    /// Phase 2 on the mask fast path, specialized for one VC — the
    /// pop-and-forward is inlined with `ov == 0`, `slot == port`.
    fn commit_switch_mask_vc1(&mut self, s: usize, now: Cycle) -> Result<(), EmulationError> {
        let isb = self.low.in_slot_base[s] as usize;
        let osb = self.low.out_slot_base[s] as usize;
        let ipb = self.low.in_port_base[s] as usize;
        let opb = self.low.out_port_base[s] as usize;
        let depth = self.low.fifo_depth;

        let mut vm = self.vcg_mask[s];
        self.vcg_mask[s] = 0;
        while vm != 0 {
            let o = vm.trailing_zeros() as usize;
            vm &= vm - 1;
            let gslot = osb + o;
            let iv = self.vc_granted[gslot];
            self.vc_granted[gslot] = SLOT_NONE;
            let ist = &mut self.low.in_state[isb + iv as usize];
            ist.allocated = o as u16;
            ist.chosen = SLOT_NONE;
            self.low.out_state[gslot].busy_with = iv;
            self.open_worms += 1;
        }

        let mut gm = self.grant_mask[s];
        self.grant_mask[s] = 0;
        while gm != 0 {
            let o = gm.trailing_zeros() as usize;
            gm &= gm - 1;
            let gp = opb + o;
            let g = self.granted[gp];
            self.granted[gp] = LOWERED_NONE;
            let iv = (g >> 8) as usize;
            let islot = isb + iv;
            let ist = &mut self.low.in_state[islot];
            debug_assert!(ist.len > 0, "granted input VC has a flit at its head");
            let head = ist.head as usize;
            let next = head + 1;
            ist.head = if next == depth { 0 } else { next } as u8;
            let left = ist.len - 1;
            ist.len = left;
            let h = self.low.fifo_arena[islot * depth + head];
            let tail = h & HANDLE_TAIL != 0;
            if tail {
                ist.allocated = SLOT_NONE;
            }
            if left == 0 {
                self.occ_mask[s] &= !(1 << iv);
            }
            self.occ_flits[s] -= 1;
            self.total_occ -= 1;
            let ost = &mut self.low.out_state[osb + o];
            if ost.credits != CREDITS_INFINITE {
                ost.credits -= 1;
                self.credit_debt += 1;
            }
            if tail {
                ost.busy_with = SLOT_NONE;
                self.open_worms -= 1;
            }
            // A 1-VC flit already rides VC 0; no rewrite needed.
            self.forwarded_out[gp] += 1;
            match self.low.in_feed[ipb + iv] {
                LoweredInFeed::Switch { slot_base } => {
                    let up = slot_base as usize;
                    let ust = &mut self.low.out_state[up];
                    if ust.credits != CREDITS_INFINITE {
                        ust.credits += 1;
                        self.credit_debt -= 1;
                        debug_assert!(
                            ust.credits <= self.low.credit_cap[up],
                            "credit overflow on a lowered output slot"
                        );
                    }
                }
                LoweredInFeed::Generator { index } => {
                    self.nis[index as usize].credit_return();
                }
            }
            match self.low.out_dest[gp] {
                LoweredOutDest::Switch { switch, slot_base } => {
                    self.accept_flit(switch as usize, slot_base, h, 0)?;
                }
                LoweredOutDest::Receptor { index } => {
                    self.deliver(index as usize, h, 0, now)?;
                }
            }
        }
        Ok(())
    }

    /// Phase 2, dense fallback — full scans, identical semantics.
    fn commit_switch_dense(&mut self, s: usize, now: Cycle) -> Result<(), EmulationError> {
        let vcs = self.low.num_vcs;
        let outputs = self.low.outputs[s] as usize;
        let isb = self.low.in_slot_base[s] as usize;
        let osb = self.low.out_slot_base[s] as usize;
        let opb = self.low.out_port_base[s] as usize;

        for slot in 0..outputs * vcs {
            let gslot = osb + slot;
            let iv = self.vc_granted[gslot];
            if iv == SLOT_NONE {
                continue;
            }
            self.vc_granted[gslot] = SLOT_NONE;
            let ist = &mut self.low.in_state[isb + iv as usize];
            ist.allocated = slot as u16;
            ist.chosen = SLOT_NONE;
            self.low.out_state[gslot].busy_with = iv;
            self.open_worms += 1;
        }

        for o in 0..outputs {
            let gp = opb + o;
            let g = self.granted[gp];
            if g == LOWERED_NONE {
                continue;
            }
            self.granted[gp] = LOWERED_NONE;
            self.pop_forward(s, g, o, now)?;
        }
        Ok(())
    }

    /// Lands flit handle `h` in the FIFO of `(switch, port base, vc)`
    /// and maintains the occupancy aggregates and per-VC watermarks —
    /// `Switch::accept` over the arena.
    pub(crate) fn accept_flit(
        &mut self,
        switch: usize,
        slot_base: u32,
        h: u32,
        vc: usize,
    ) -> Result<(), EmulationError> {
        let vcs = self.low.num_vcs;
        assert!(vc < vcs, "flit arrived on VC {vc} but switch has {vcs} VCs");
        let slot = slot_base as usize + vc;
        let depth = self.low.fifo_depth;
        let ist = &mut self.low.in_state[slot];
        let len = ist.len as usize;
        if len == depth {
            return Err(EmulationError::FifoOverflow {
                switch: SwitchId::new(switch as u32),
                source: FifoFullError { capacity: depth },
            });
        }
        let mut pos = ist.head as usize + len;
        if pos >= depth {
            pos -= depth;
        }
        ist.len = (len + 1) as u8;
        self.low.fifo_arena[slot * depth + pos] = h;
        if self.mask_ok[switch] {
            let iv = slot - self.low.in_slot_base[switch] as usize;
            self.occ_mask[switch] |= 1 << iv;
        }
        self.occ_flits[switch] += 1;
        self.total_occ += 1;
        let wm = switch * vcs + vc;
        let occ = (len + 1) as u64;
        if occ > self.max_vc_occ[wm] {
            self.max_vc_occ[wm] = occ;
        }
        Ok(())
    }

    /// Ejects flit handle `h` on output VC `vc` into receptor `index`:
    /// reads the pooled flit back (stamping the final VC the way each
    /// hop would have), frees its pool slot and runs the receptor.
    fn deliver(
        &mut self,
        index: usize,
        h: u32,
        vc: usize,
        now: Cycle,
    ) -> Result<(), EmulationError> {
        let idx = h & HANDLE_IDX;
        let mut flit = self.flit_pool[idx as usize];
        flit.vc = VcId::new(vc as u8);
        self.flit_free.push(idx);
        let completed: Option<CompletedPacket> = match &mut self.receptors[index] {
            ReceptorDevice::Stochastic(r) => {
                r.accept(&flit, now)
                    .map_err(|source| EmulationError::Receive {
                        receptor: r.id(),
                        source,
                    })?
            }
            ReceptorDevice::Trace(r) => {
                r.accept(&flit, now)
                    .map_err(|source| EmulationError::Receive {
                        receptor: r.id(),
                        source,
                    })?
            }
        };
        if let Some(pkt) = completed {
            let ledger_start = self.profiler.as_ref().map(PhaseProfiler::begin);
            let lat = self.ledger.deliver(pkt.id, now, pkt.len_flits)?;
            if let Some(s) = ledger_start {
                self.profiler
                    .as_mut()
                    .expect("timestamp implies profiler")
                    .nested(s, Phase::Ledger);
            }
            self.delivered_flits += u64::from(pkt.len_flits);
            if let ReceptorDevice::Trace(r) = &mut self.receptors[index] {
                r.record_latency(lat.network, lat.total);
            }
        }
        Ok(())
    }

    /// Whether the stop condition holds.
    pub fn finished(&self) -> bool {
        match self.config.stop.delivered_packets {
            Some(target) => self.ledger.delivered() >= target,
            None => {
                self.tgs.iter().all(|t| t.is_exhausted())
                    && self.pending.iter().all(Option::is_none)
                    && self.nis.iter().all(|n| n.is_idle())
                    && self.ledger.in_flight() == 0
            }
        }
    }

    /// Runs until the stop condition holds.
    ///
    /// # Errors
    ///
    /// Propagates [`EmulationError`] from [`CompiledEngine::step`].
    pub fn run(&mut self) -> Result<(), EmulationError> {
        clock::run_engine(self)
    }

    /// Builds the per-link congestion counters — value-equal to
    /// [`crate::engine::Emulation::congestion`] (source-side
    /// accounting) over the flat counter arrays.
    pub fn congestion(&self) -> CongestionCounter {
        let mut cc = CongestionCounter::new(self.config.topology.link_count());
        for s in 0..self.low.switch_count {
            let opb = self.low.out_port_base[s] as usize;
            for o in 0..self.low.outputs[s] as usize {
                let gp = opb + o;
                cc.add(
                    LinkId::new(self.low.out_link[gp]),
                    self.blocked_out[gp],
                    self.forwarded_out[gp],
                );
            }
        }
        for (i, ni) in self.nis.iter().enumerate() {
            let c = ni.counters();
            cc.add(self.injection_links[i], c.blocked_cycles, c.injected_flits);
        }
        cc
    }

    /// Snapshot of the cumulative per-link counters plus live per-VC
    /// occupancy (telemetry probe parity with the interpreted engine).
    pub(crate) fn cumulative_probe(&self) -> CumulativeProbe {
        let vcs = self.low.num_vcs;
        let mut p = CumulativeProbe::new(self.config.topology.link_count(), vcs);
        for s in 0..self.low.switch_count {
            let opb = self.low.out_port_base[s] as usize;
            for o in 0..self.low.outputs[s] as usize {
                let gp = opb + o;
                p.add_link(
                    LinkId::new(self.low.out_link[gp]),
                    self.blocked_out[gp],
                    self.forwarded_out[gp],
                );
            }
            let isb = self.low.in_slot_base[s] as usize;
            for v in 0..vcs {
                let mut occ = 0u64;
                for i in 0..self.low.inputs[s] as usize {
                    occ += u64::from(self.low.in_state[isb + i * vcs + v].len);
                }
                p.add_vc(v, occ);
            }
        }
        for (i, ni) in self.nis.iter().enumerate() {
            let c = ni.counters();
            p.add_link(self.injection_links[i], c.blocked_cycles, c.injected_flits);
        }
        p
    }

    /// Assembles the forensic stall snapshot from the flat arrays:
    /// every occupied input slot with a live allocation or routing
    /// choice becomes a wait-for edge, resolved through the lowered
    /// wiring to its downstream switch input or receptor.
    fn capture_stall_report(&self, at_cycle: u64) -> StallReport {
        let vcs = self.low.num_vcs;
        let mut edges = Vec::new();
        for s in 0..self.low.switch_count {
            let isb = self.low.in_slot_base[s] as usize;
            let osb = self.low.out_slot_base[s] as usize;
            let opb = self.low.out_port_base[s] as usize;
            for i in 0..self.low.inputs[s] as usize {
                for v in 0..vcs {
                    let st = &self.low.in_state[isb + i * vcs + v];
                    if st.len == 0 {
                        continue;
                    }
                    let local_out = if st.allocated != SLOT_NONE {
                        st.allocated
                    } else if st.chosen != SLOT_NONE {
                        st.chosen
                    } else {
                        continue;
                    } as usize;
                    let (out_port, out_vc) = (local_out / vcs, local_out % vcs);
                    let gp = opb + out_port;
                    let dest = match self.low.out_dest[gp] {
                        LoweredOutDest::Switch { switch, slot_base } => WaitDest::Switch {
                            switch,
                            input: (slot_base - self.low.in_slot_base[switch as usize])
                                / vcs as u32,
                        },
                        LoweredOutDest::Receptor { index } => WaitDest::Receptor { index },
                    };
                    edges.push(WaitEdge {
                        switch: s as u32,
                        in_port: i as u32,
                        in_vc: v as u8,
                        out_port: out_port as u32,
                        out_vc: out_vc as u8,
                        link: self.low.out_link[gp],
                        occupancy: u32::from(st.len),
                        fifo_depth: self.low.fifo_depth as u32,
                        credits: self.low.out_state[osb + local_out].credits,
                        credit_cap: self.low.credit_cap[osb + local_out],
                        worm_open: st.allocated != SLOT_NONE,
                        dest,
                    });
                }
            }
        }
        let cc = self.congestion();
        let mut blocked: Vec<BlockedLink> = self
            .config
            .topology
            .links()
            .map(|l| BlockedLink {
                link: l.id.raw(),
                blocked: cc.blocked(l.id),
            })
            .filter(|b| b.blocked > 0)
            .collect();
        blocked.sort_by_key(|b| (std::cmp::Reverse(b.blocked), b.link));
        blocked.truncate(5);
        let window = self
            .config
            .profile
            .as_ref()
            .and_then(|p| p.stall)
            .map_or(0, |s| s.no_progress_cycles);
        StallReport::new(at_cycle, window, self.ledger.in_flight(), edges, blocked)
    }

    /// The windowed telemetry collector, when enabled.
    pub fn telemetry(&self) -> Option<&Collector> {
        self.telemetry.as_ref()
    }

    /// Seals the telemetry collector with a final probe at the current
    /// cycle (idempotent; no-op without telemetry).
    pub fn seal_telemetry(&mut self) {
        if self.telemetry.as_ref().is_some_and(|t| !t.is_sealed()) {
            let probe = self.cumulative_probe();
            let at = self.now.raw();
            self.telemetry
                .as_mut()
                .expect("presence checked above")
                .seal(at, &probe);
        }
    }

    /// Collects full run results — value-equal to
    /// [`crate::engine::Emulation::results`] for the same run.
    pub fn results(&self) -> EmulationResults {
        let receptors = self
            .receptors
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let (counters, lat, hists) = match r {
                    ReceptorDevice::Stochastic(r) => (
                        *r.counters(),
                        None,
                        Some((
                            r.length_histogram().clone(),
                            r.interarrival_histogram().clone(),
                        )),
                    ),
                    ReceptorDevice::Trace(r) => (*r.counters(), r.network_latency().mean(), None),
                };
                let (length_histogram, interarrival_histogram) = match hists {
                    Some((l, a)) => (Some(l), Some(a)),
                    None => (None, None),
                };
                ReceptorSummary {
                    label: format!("tr{i}"),
                    packets: counters.packets,
                    flits: counters.flits,
                    running_time: counters.running_time(),
                    mean_network_latency: lat,
                    length_histogram,
                    interarrival_histogram,
                }
            })
            .collect();
        let vcs = self.low.num_vcs;
        let mut vc_occupancy = VcOccupancy::new(vcs);
        for s in 0..self.low.switch_count {
            for vc in 0..vcs {
                vc_occupancy.record(vc, self.max_vc_occ[s * vcs + vc]);
            }
        }
        EmulationResults {
            name: self.config.name.clone(),
            cycles: self.now.raw(),
            cycles_skipped: self.cycles_skipped,
            released: self.ledger.released(),
            injected: self.ledger.injected(),
            delivered: self.ledger.delivered(),
            delivered_flits: self.delivered_flits,
            stalled_cycles: self.stalled,
            network_latency: self.ledger.network_latency().clone(),
            total_latency: self.ledger.total_latency().clone(),
            congestion: self.congestion(),
            vc_occupancy,
            receptors,
        }
    }
}

impl SteppableEngine for CompiledEngine {
    fn step(&mut self) -> Result<(), EmulationError> {
        CompiledEngine::step(self)
    }

    fn now(&self) -> Cycle {
        self.now
    }

    fn finished(&self) -> bool {
        CompiledEngine::finished(self)
    }

    fn delivered(&self) -> u64 {
        self.ledger.delivered()
    }

    fn cycles_skipped(&self) -> u64 {
        self.cycles_skipped
    }

    fn summary(&self) -> EngineSummary {
        EngineSummary::from_ledger(
            self.now.raw(),
            self.cycles_skipped,
            self.delivered_flits,
            &self.ledger,
        )
    }

    fn packet_ledger(&self) -> PacketLedger {
        self.ledger.clone()
    }

    fn telemetry(&self) -> Option<&Collector> {
        CompiledEngine::telemetry(self)
    }

    fn seal_telemetry(&mut self) {
        CompiledEngine::seal_telemetry(self);
    }

    fn profile(&mut self) -> Option<PhaseReport> {
        self.profiler.as_ref().map(|p| p.report("compiled"))
    }

    fn stall_report(&self) -> Option<&StallReport> {
        self.watchdog.as_ref().and_then(StallWatchdog::report)
    }
}

/// Elaborates `config` and builds a compiled engine for it.
///
/// # Errors
///
/// Propagates [`crate::error::CompileError`] from elaboration.
pub fn build_compiled(
    config: &PlatformConfig,
) -> Result<CompiledEngine, crate::error::CompileError> {
    Ok(CompiledEngine::new(crate::compile::elaborate(config)?))
}
