//! Platform configuration: everything the emulation flow needs to
//! build and run a platform.
//!
//! [`PlatformConfig`] is the input of step 1 of the paper's flow
//! ("platform compilation: setup of NoC parameters, type of TG/TR")
//! and step 3 ("platform initialization: setup the software with
//! emulation parameters"). The convenience constructors reproduce the
//! configurations of the paper's experimental section.

use crate::clock::ClockMode;
use nocem_common::ids::EndpointId;
use nocem_stats::TrKind;
use nocem_switch::arbiter::ArbiterKind;
use nocem_switch::config::SelectionPolicy;
use nocem_topology::builders::{paper_setup, PaperSetup, PAPER_OFFERED_LOAD};
use nocem_topology::routing::{FlowPaths, FlowSpec, RouteAlgorithm, VcPolicy};
use nocem_topology::Topology;
use nocem_traffic::generator::DestinationModel;
use nocem_traffic::stochastic::{BurstConfig, PoissonConfig, UniformConfig};
use nocem_traffic::trace::{synthesize_bursty, BurstyTraceSpec, Trace};

/// Traffic model assigned to one generator endpoint.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TrafficModel {
    /// Uniform stochastic TG.
    Uniform(UniformConfig),
    /// Burst (2-state Markov) stochastic TG.
    Burst(BurstConfig),
    /// Poisson stochastic TG.
    Poisson(PoissonConfig),
    /// Trace-driven TG replaying the events of its endpoint.
    Trace(Trace),
}

impl TrafficModel {
    /// Whether the model is trace-driven (drives the TR kind defaults
    /// and the area model).
    pub fn is_trace(&self) -> bool {
        matches!(self, TrafficModel::Trace(_))
    }
}

/// Routing configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum RoutingSpec {
    /// Compute tables with an algorithm.
    Algorithm(RouteAlgorithm),
    /// Use explicitly given paths (the paper setup pins its hot links
    /// this way).
    Explicit(Vec<FlowPaths>),
}

/// Per-switch parameters shared by all switches of the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchSettings {
    /// Input buffer depth in flits, per virtual channel.
    pub fifo_depth: u8,
    /// Virtual channels per physical port (1 = the original single-VC
    /// platform; 2 suffices for dateline routing on rings and tori).
    pub num_vcs: u8,
    /// Output arbitration policy.
    pub arbiter: ArbiterKind,
    /// Multi-path selection policy.
    pub selection: SelectionPolicy,
    /// Initial credits on ejection (receptor-facing) outputs. `None`
    /// — the default, and the paper's platform — models an
    /// always-ready receptor as an infinite credit pool. A finite
    /// value caps the flits a receptor port can ever accept *without
    /// credit return* (receptors do not return credits), which drains
    /// to a guaranteed backpressure stall — the fixture the stall
    /// watchdog's forensics are tested against.
    pub ejection_credits: Option<u32>,
}

impl Default for SwitchSettings {
    fn default() -> Self {
        SwitchSettings {
            fifo_depth: 4,
            num_vcs: 1,
            arbiter: ArbiterKind::RoundRobin,
            selection: SelectionPolicy::First,
            ejection_credits: None,
        }
    }
}

/// Which emulation engine executes the platform.
///
/// All engine kinds implement the same cycle semantics (the behavioural
/// contract in `nocem-switch`); the kind only chooses *how* the work is
/// scheduled. Sweeps and the scenario matrix honour this field through
/// [`crate::sweep::run_config`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum EngineKind {
    /// The single-threaded fast emulation engine
    /// ([`crate::engine::Emulation`]).
    #[default]
    SingleThread,
    /// The sharded engine ([`crate::shard::ShardedEngine`]): switches
    /// are partitioned into `shards` groups, each stepped by its own
    /// worker thread, with flits and credits bridged across shard
    /// boundaries over bounded channels. Cycle-for-cycle identical to
    /// [`EngineKind::SingleThread`] (proven by the lockstep ledger
    /// tests); faster on large topologies (32×32 and up).
    Sharded {
        /// Worker-thread shard count (`>= 1`; `1` is a single worker,
        /// useful for measuring the orchestration overhead).
        shards: usize,
    },
    /// The compiled data-oriented engine
    /// ([`crate::compiled::CompiledEngine`]): the elaboration is
    /// lowered once into flat struct-of-arrays state (a single FIFO
    /// arena, one shared CSR route table, dense credit/worm arrays) and
    /// stepped as tight loops with no dynamic dispatch and no per-cycle
    /// allocation. Cycle-for-cycle identical to
    /// [`EngineKind::SingleThread`] (proven by the lockstep ledger
    /// tests); an order of magnitude faster on busy platforms.
    Compiled,
    /// The sharded *compiled* engine
    /// ([`crate::shard_compiled::ShardedCompiledEngine`]): the two
    /// speed mechanisms composed. The platform is lowered once into
    /// the flat struct-of-arrays state of [`EngineKind::Compiled`],
    /// then partitioned along a [`nocem_topology::partition::PartitionMap`]
    /// so each persistent worker thread steps its own slice of the
    /// arrays with its own flit pool. Cross-shard flits and credits
    /// travel as per-cycle boundary records over neighbor channels
    /// (preserving exact single-cycle link latency), while
    /// *coordinator synchronization* is batched: each worker runs up
    /// to `batch` cycles per coordinator round trip, amortizing the
    /// command/report synchronization `batch`× without changing a
    /// single cycle's semantics. Cycle-for-cycle identical to
    /// [`EngineKind::Compiled`] for every `(shards, batch)` (proven by
    /// the lockstep ledger tests in `tests/sharded_compiled.rs`).
    ShardedCompiled {
        /// Worker-thread shard count (`>= 1`).
        shards: usize,
        /// Cycles per coordinator synchronization round (`>= 1`;
        /// clamped to 1 — with a warning — under
        /// [`ClockMode::Gated`], whose cross-shard event horizon is a
        /// per-cycle global decision).
        batch: u64,
    },
}

/// When the emulation stops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StopCondition {
    /// Stop once this many packets are delivered (`None`: run until
    /// every generator is exhausted and the network drained).
    pub delivered_packets: Option<u64>,
    /// Safety limit in cycles; exceeding it is an error.
    pub cycle_limit: u64,
}

impl Default for StopCondition {
    fn default() -> Self {
        StopCondition {
            delivered_packets: None,
            cycle_limit: 1_000_000_000,
        }
    }
}

/// Full description of an emulation platform plus its run parameters.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// Report name.
    pub name: String,
    /// The NoC structure.
    pub topology: Topology,
    /// The traffic flows.
    pub flows: Vec<FlowSpec>,
    /// How flows are routed.
    pub routing: RoutingSpec,
    /// How the routed paths are labelled with virtual channels
    /// (applies to computed and explicit routing alike). Must stay
    /// within `switch.num_vcs`.
    pub vc_policy: VcPolicy,
    /// Switch parameters.
    pub switch: SwitchSettings,
    /// One traffic model per generator, in `topology.generators()`
    /// order.
    pub generators: Vec<TrafficModel>,
    /// One receptor kind per receptor, in `topology.receptors()`
    /// order.
    pub receptors: Vec<TrKind>,
    /// Source-queue capacity of every network interface, in packets.
    pub source_queue_capacity: usize,
    /// Stop condition.
    pub stop: StopCondition,
    /// Platform seed (register `SEED` of the control module); all
    /// device seeds derive from it.
    pub seed: u64,
    /// Record every accepted packet release into a trace.
    pub record_trace: bool,
    /// How the engines advance the clock: every cycle (bit-identical
    /// to the original platform) or hybrid clock-gated (jump over
    /// provably idle windows; cycle-equivalent, faster at low load).
    pub clock_mode: ClockMode,
    /// Which engine executes the platform (single-threaded or
    /// sharded across worker threads; cycle-equivalent either way).
    pub engine: EngineKind,
    /// Windowed telemetry collection (`None` = off, the default: no
    /// probe overhead). When set, every engine records per-link
    /// forwarded/blocked and per-VC occupancy series.
    pub telemetry: Option<nocem_telemetry::TelemetryConfig>,
    /// Emulator self-profiling (`None` = off, the default: no
    /// timestamp overhead, results unchanged). When set, engines
    /// accumulate per-phase wall time (see [`crate::profile`]), the
    /// sharded engines record span timelines, and the stall watchdog
    /// runs when [`crate::profile::ProfileConfig::stall`] is set.
    pub profile: Option<crate::profile::ProfileConfig>,
}

impl PlatformConfig {
    /// Baseline configuration over a topology: uniform TGs at the
    /// paper's 45 % load with 8-flit packets, one-to-one flows,
    /// shortest-path routing, stochastic receptors.
    ///
    /// # Errors
    ///
    /// Returns [`nocem_topology::TopologyError`] if one-to-one flow
    /// pairing is impossible.
    pub fn baseline(
        name: impl Into<String>,
        topology: Topology,
    ) -> Result<Self, nocem_topology::TopologyError> {
        let flows = FlowSpec::one_to_one(&topology)?;
        let generators = flows
            .iter()
            .map(|f| {
                TrafficModel::Uniform(UniformConfig::with_load(
                    PAPER_OFFERED_LOAD,
                    8,
                    None,
                    DestinationModel::Fixed {
                        dst: f.dst,
                        flow: f.flow,
                    },
                ))
            })
            .collect();
        let receptors = vec![TrKind::Stochastic; topology.receptors().len()];
        Ok(PlatformConfig {
            name: name.into(),
            topology,
            flows,
            routing: RoutingSpec::Algorithm(RouteAlgorithm::Shortest),
            vc_policy: VcPolicy::SingleVc,
            switch: SwitchSettings::default(),
            generators,
            receptors,
            source_queue_capacity: 16,
            stop: StopCondition::default(),
            seed: 0x5EED_0005,
            record_trace: false,
            clock_mode: ClockMode::default(),
            engine: EngineKind::default(),
            telemetry: None,
            profile: None,
        })
    }

    /// Sets the clock mode (builder-style convenience).
    #[must_use]
    pub fn with_clock_mode(mut self, mode: ClockMode) -> Self {
        self.clock_mode = mode;
        self
    }

    /// Sets the engine kind (builder-style convenience).
    #[must_use]
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Enables (or disables) windowed telemetry (builder-style
    /// convenience).
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Option<nocem_telemetry::TelemetryConfig>) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Enables (or disables) emulator self-profiling (builder-style
    /// convenience).
    #[must_use]
    pub fn with_profile(mut self, profile: Option<crate::profile::ProfileConfig>) -> Self {
        self.profile = profile;
        self
    }

    /// The per-generator packet budget that spreads `total_packets`
    /// over `n` generators (first generators absorb the remainder).
    pub fn split_budget(total_packets: u64, n: usize, index: usize) -> u64 {
        let base = total_packets / n as u64;
        let extra = total_packets % n as u64;
        base + u64::from((index as u64) < extra)
    }
}

/// Which routing case of the paper setup to use ("two routing
/// possibilities in two cases").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PaperRouting {
    /// Single (primary) paths: the two hot links carry 2 × 45 %.
    Single,
    /// Both paths active; packets pick the secondary with the given
    /// probability.
    Dual {
        /// Probability of taking the detour path.
        secondary_probability: f64,
    },
}

/// Builder for the paper's experimental-setup configurations.
#[derive(Debug, Clone)]
pub struct PaperConfig {
    setup: PaperSetup,
    routing: PaperRouting,
    packet_flits: u16,
    total_packets: u64,
    seed: u64,
}

impl PaperConfig {
    /// Starts from the paper defaults: 8-flit packets, single-path
    /// routing, 40 000 packets in total.
    pub fn new() -> Self {
        PaperConfig {
            setup: paper_setup(),
            routing: PaperRouting::Single,
            packet_flits: 8,
            total_packets: 40_000,
            seed: 0x00DA_7E05,
        }
    }

    /// The underlying topology/flow setup.
    pub fn setup(&self) -> &PaperSetup {
        &self.setup
    }

    /// Sets the routing case.
    pub fn routing(mut self, routing: PaperRouting) -> Self {
        self.routing = routing;
        self
    }

    /// Sets the packet length in flits.
    ///
    /// # Panics
    ///
    /// Panics if `flits == 0`.
    pub fn packet_flits(mut self, flits: u16) -> Self {
        assert!(flits >= 1, "packets need at least one flit");
        self.packet_flits = flits;
        self
    }

    /// Sets the total number of packets over all four TGs.
    ///
    /// # Panics
    ///
    /// Panics if `packets == 0`.
    pub fn total_packets(mut self, packets: u64) -> Self {
        assert!(packets >= 1, "need at least one packet");
        self.total_packets = packets;
        self
    }

    /// Sets the platform seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn base(
        &self,
        name: String,
        generators: Vec<TrafficModel>,
        receptors: Vec<TrKind>,
    ) -> PlatformConfig {
        let (routing, selection) = match self.routing {
            PaperRouting::Single => (
                RoutingSpec::Explicit(self.setup.primary_paths.clone()),
                SelectionPolicy::First,
            ),
            PaperRouting::Dual {
                secondary_probability,
            } => (
                RoutingSpec::Explicit(self.setup.dual_paths.clone()),
                SelectionPolicy::random(secondary_probability),
            ),
        };
        PlatformConfig {
            name,
            topology: self.setup.topology.clone(),
            flows: self.setup.flows.clone(),
            routing,
            vc_policy: VcPolicy::SingleVc,
            switch: SwitchSettings {
                selection,
                ..SwitchSettings::default()
            },
            generators,
            receptors,
            source_queue_capacity: 16,
            stop: StopCondition {
                delivered_packets: Some(self.total_packets),
                ..StopCondition::default()
            },
            seed: self.seed,
            record_trace: false,
            clock_mode: ClockMode::default(),
            engine: EngineKind::default(),
            telemetry: None,
            profile: None,
        }
    }

    fn destination(&self, i: usize) -> DestinationModel {
        let f = self.setup.flows[i];
        DestinationModel::Fixed {
            dst: f.dst,
            flow: f.flow,
        }
    }

    /// Uniform stochastic traffic at 45 % per TG (Figure 2's baseline
    /// curve).
    pub fn uniform(&self) -> PlatformConfig {
        let generators = (0..4)
            .map(|i| {
                TrafficModel::Uniform(UniformConfig::with_load(
                    PAPER_OFFERED_LOAD,
                    self.packet_flits,
                    Some(PlatformConfig::split_budget(self.total_packets, 4, i)),
                    self.destination(i),
                ))
            })
            .collect();
        self.base(
            format!("paper-uniform-{}pkt", self.total_packets),
            generators,
            vec![TrKind::Stochastic; 4],
        )
    }

    /// Burst stochastic traffic at 45 % per TG (Figure 2's congested
    /// curve).
    ///
    /// # Panics
    ///
    /// Panics if `packets_per_burst == 0`.
    pub fn burst(&self, packets_per_burst: u32) -> PlatformConfig {
        let generators = (0..4)
            .map(|i| {
                TrafficModel::Burst(BurstConfig::with_load(
                    PAPER_OFFERED_LOAD,
                    packets_per_burst,
                    self.packet_flits,
                    Some(PlatformConfig::split_budget(self.total_packets, 4, i)),
                    self.destination(i),
                ))
            })
            .collect();
        self.base(
            format!("paper-burst{}-{}pkt", packets_per_burst, self.total_packets),
            generators,
            vec![TrKind::Stochastic; 4],
        )
    }

    /// Poisson stochastic traffic at 45 % per TG (the "other models"
    /// slide 9 mentions).
    pub fn poisson(&self) -> PlatformConfig {
        let generators = (0..4)
            .map(|i| {
                TrafficModel::Poisson(PoissonConfig::with_load(
                    PAPER_OFFERED_LOAD,
                    self.packet_flits,
                    Some(PlatformConfig::split_budget(self.total_packets, 4, i)),
                    self.destination(i),
                ))
            })
            .collect();
        self.base(
            format!("paper-poisson-{}pkt", self.total_packets),
            generators,
            vec![TrKind::Stochastic; 4],
        )
    }

    /// Trace-driven traffic with synthetic rectangular bursts of
    /// `packets_per_burst` packets (Figures 3 and 4).
    ///
    /// # Panics
    ///
    /// Panics if `packets_per_burst == 0`.
    pub fn trace_bursty(&self, packets_per_burst: u32) -> PlatformConfig {
        let generators = (0..4)
            .map(|i| {
                let f = self.setup.flows[i];
                let trace = synthesize_bursty(&BurstyTraceSpec {
                    src: f.src,
                    dst: f.dst,
                    flow: f.flow,
                    packets_per_burst,
                    flits_per_packet: self.packet_flits,
                    offered_load: PAPER_OFFERED_LOAD,
                    total_packets: PlatformConfig::split_budget(self.total_packets, 4, i),
                    seed: self.seed ^ (i as u64).wrapping_mul(0x9E37_79B9),
                });
                TrafficModel::Trace(trace)
            })
            .collect();
        self.base(
            format!(
                "paper-trace-b{}f{}-{}pkt",
                packets_per_burst, self.packet_flits, self.total_packets
            ),
            generators,
            vec![TrKind::TraceDriven; 4],
        )
    }

    /// The source endpoints, in generator order (for driving custom
    /// traces).
    pub fn sources(&self) -> Vec<EndpointId> {
        self.setup.topology.generators()
    }
}

impl Default for PaperConfig {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocem_topology::builders::mesh;

    #[test]
    fn baseline_mesh_config() {
        let cfg = PlatformConfig::baseline("m", mesh(2, 2).unwrap()).unwrap();
        assert_eq!(cfg.generators.len(), 4);
        assert_eq!(cfg.receptors.len(), 4);
        assert!(matches!(cfg.routing, RoutingSpec::Algorithm(_)));
    }

    #[test]
    fn split_budget_distributes_remainder() {
        let total: u64 = (0..4).map(|i| PlatformConfig::split_budget(10, 4, i)).sum();
        assert_eq!(total, 10);
        assert_eq!(PlatformConfig::split_budget(10, 4, 0), 3);
        assert_eq!(PlatformConfig::split_budget(10, 4, 3), 2);
    }

    #[test]
    fn paper_uniform_config_shape() {
        let cfg = PaperConfig::new().total_packets(1_000).uniform();
        assert_eq!(cfg.generators.len(), 4);
        assert!(cfg.name.contains("uniform"));
        assert_eq!(cfg.stop.delivered_packets, Some(1_000));
        assert!(matches!(cfg.routing, RoutingSpec::Explicit(_)));
        assert_eq!(cfg.switch.selection, SelectionPolicy::First);
        let budgets: u64 = cfg
            .generators
            .iter()
            .map(|g| match g {
                TrafficModel::Uniform(u) => u.budget.unwrap(),
                _ => panic!("uniform expected"),
            })
            .sum();
        assert_eq!(budgets, 1_000);
    }

    #[test]
    fn paper_dual_routing_sets_random_selection() {
        let cfg = PaperConfig::new()
            .routing(PaperRouting::Dual {
                secondary_probability: 0.5,
            })
            .uniform();
        assert!(matches!(
            cfg.switch.selection,
            SelectionPolicy::Random { .. }
        ));
    }

    #[test]
    fn paper_burst_and_poisson_models() {
        let b = PaperConfig::new().burst(8);
        assert!(b
            .generators
            .iter()
            .all(|g| matches!(g, TrafficModel::Burst(_))));
        let p = PaperConfig::new().poisson();
        assert!(p
            .generators
            .iter()
            .all(|g| matches!(g, TrafficModel::Poisson(_))));
    }

    #[test]
    fn paper_trace_config_builds_bursty_traces() {
        let cfg = PaperConfig::new()
            .total_packets(400)
            .packet_flits(4)
            .trace_bursty(8);
        assert!(cfg.generators.iter().all(TrafficModel::is_trace));
        assert_eq!(cfg.receptors, vec![TrKind::TraceDriven; 4]);
        if let TrafficModel::Trace(t) = &cfg.generators[0] {
            assert_eq!(t.len(), 100);
        }
    }

    #[test]
    fn stop_condition_defaults() {
        let s = StopCondition::default();
        assert_eq!(s.delivered_packets, None);
        assert!(s.cycle_limit > 0);
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_flits_rejected() {
        let _ = PaperConfig::new().packet_flits(0);
    }
}
