//! Memory-mapped device views and their typed drivers.
//!
//! Every platform component is visible to the configuration software
//! as a register file (the paper: "the processor can access each
//! component by accessing their specific addresses"). This module
//! defines
//!
//! * the TG register *shadow* ([`TgShadow`]): parameter writes land
//!   here before the run and are turned back into traffic models when
//!   the start bit is set;
//! * read-only register views over TGs, TRs and switches (live
//!   counters);
//! * the typed drivers ([`TgDriver`], [`TrDriver`], [`SwitchDriver`])
//!   — the "software part" that programs and polls the devices over
//!   any [`BusAccess`].

use crate::compile::ReceptorDevice;
use crate::config::TrafficModel;
use crate::engine::Emulation;
use nocem_common::ids::{EndpointId, FlowId};
use nocem_platform::addr::{Address, DeviceAddr};
use nocem_platform::bus::{BusAccess, BusError};
use nocem_platform::regfile::RegFile;
use nocem_stats::receptor::ReceptorCounters;
use nocem_traffic::generator::{DestinationModel, LengthModel, TrafficGenerator};
use nocem_traffic::registers as tgreg;
use nocem_traffic::stochastic::{BurstConfig, PoissonConfig, StochasticTg, UniformConfig};
use nocem_traffic::trace::TraceDrivenTg;

/// Marker for "keep the compiled destination model" in the DST
/// register (used when the destination is not a single endpoint).
const DST_KEEP: u32 = u32::MAX;
/// Marker for an unbounded packet budget.
const BUDGET_UNBOUNDED: u64 = u64::MAX;

/// Encodes a traffic model into `(register, value)` pairs.
pub fn model_register_image(model: &TrafficModel) -> Vec<(u16, u32)> {
    let mut img = Vec::new();
    let push_len = |img: &mut Vec<(u16, u32)>, len: &LengthModel| {
        let (min, max) = match *len {
            LengthModel::Fixed(n) => (n, n),
            LengthModel::UniformRange { min, max } => (min, max),
        };
        img.push((
            tgreg::REG_PACKET_LEN,
            (u32::from(max) << 16) | u32::from(min),
        ));
    };
    let push_budget = |img: &mut Vec<(u16, u32)>, budget: Option<u64>| {
        let b = budget.unwrap_or(BUDGET_UNBOUNDED);
        img.push((tgreg::REG_BUDGET_LO, b as u32));
        img.push((tgreg::REG_BUDGET_HI, (b >> 32) as u32));
    };
    let push_dst = |img: &mut Vec<(u16, u32)>, dst: &DestinationModel| match dst {
        DestinationModel::Fixed { dst, flow } => {
            img.push((tgreg::REG_DST, dst.raw()));
            img.push((tgreg::REG_FLOW, flow.raw()));
        }
        DestinationModel::UniformChoice(_) | DestinationModel::Weighted(_) => {
            // Distribution models live in the software shadow; the
            // register file only knows "keep the elaborated model".
            img.push((tgreg::REG_DST, DST_KEEP));
        }
    };
    match model {
        TrafficModel::Uniform(u) => {
            img.push((tgreg::REG_MODEL, tgreg::ModelCode::Uniform as u32));
            push_len(&mut img, &u.length);
            img.push((tgreg::REG_GAP_MIN, u.gap.0));
            img.push((tgreg::REG_GAP_MAX, u.gap.1));
            push_budget(&mut img, u.budget);
            push_dst(&mut img, &u.destination);
        }
        TrafficModel::Burst(b) => {
            img.push((tgreg::REG_MODEL, tgreg::ModelCode::Burst as u32));
            push_len(&mut img, &b.length);
            img.push((
                tgreg::REG_START_PROB,
                tgreg::prob_to_q16(b.start_probability),
            ));
            img.push((
                tgreg::REG_CONT_PROB,
                tgreg::prob_to_q16(b.continue_probability),
            ));
            push_budget(&mut img, b.budget);
            push_dst(&mut img, &b.destination);
        }
        TrafficModel::Poisson(p) => {
            img.push((tgreg::REG_MODEL, tgreg::ModelCode::Poisson as u32));
            push_len(&mut img, &p.length);
            img.push((
                tgreg::REG_START_PROB,
                tgreg::prob_to_q16(p.start_probability),
            ));
            push_budget(&mut img, p.budget);
            push_dst(&mut img, &p.destination);
        }
        TrafficModel::Trace(_) => {
            img.push((tgreg::REG_MODEL, tgreg::ModelCode::Trace as u32));
        }
    }
    img
}

/// The writable TG parameter registers (configuration shadow).
#[derive(Debug, Clone)]
pub struct TgShadow {
    /// The register values.
    pub regs: RegFile,
    /// Whether software wrote anything since elaboration.
    pub dirty: bool,
}

impl TgShadow {
    /// Builds the shadow matching a compiled traffic model.
    pub fn from_model(model: &TrafficModel) -> Self {
        let mut regs = RegFile::read_write(usize::from(tgreg::TG_REG_COUNT));
        for (reg, value) in model_register_image(model) {
            regs.set(reg, value);
        }
        TgShadow { regs, dirty: false }
    }

    /// Software write into the shadow.
    ///
    /// # Errors
    ///
    /// Returns [`BusError`] for out-of-range registers.
    pub fn bus_write(&mut self, addr: Address, value: u32) -> Result<(), BusError> {
        self.regs.bus_write(addr, value)?;
        self.dirty = true;
        Ok(())
    }

    fn length(&self) -> Result<LengthModel, String> {
        let raw = self.regs.get(tgreg::REG_PACKET_LEN);
        let min = (raw & 0xFFFF) as u16;
        let max = (raw >> 16) as u16;
        if min == 0 || min > max {
            return Err(format!("malformed packet length register {raw:#x}"));
        }
        Ok(if min == max {
            LengthModel::Fixed(min)
        } else {
            LengthModel::UniformRange { min, max }
        })
    }

    fn budget(&self) -> Option<u64> {
        let b = self
            .regs
            .get_u64(tgreg::REG_BUDGET_LO, tgreg::REG_BUDGET_HI);
        (b != BUDGET_UNBOUNDED).then_some(b)
    }

    fn destination(&self, original: &DestinationModel) -> DestinationModel {
        let dst = self.regs.get(tgreg::REG_DST);
        if dst == DST_KEEP {
            original.clone()
        } else {
            DestinationModel::Fixed {
                dst: EndpointId::new(dst),
                flow: FlowId::new(self.regs.get(tgreg::REG_FLOW)),
            }
        }
    }

    /// Decodes the shadow back into a traffic model. `original` is the
    /// compiled model, consulted for state a register cannot encode
    /// (trace contents, destination choice lists).
    ///
    /// # Errors
    ///
    /// Returns [`BusError::InvalidValue`] for malformed register
    /// contents (unknown model code, zero packet length, trace model
    /// selected without a compiled trace).
    pub fn to_model(&self, original: &TrafficModel) -> Result<TrafficModel, BusError> {
        let fault = |reason: String| BusError::InvalidValue {
            // Reported against the model register; precise enough for
            // configuration debugging.
            addr: Address::from_parts(
                nocem_common::ids::BusId::new(0),
                nocem_common::ids::DeviceId::new(0),
                tgreg::REG_MODEL,
            ),
            reason,
        };
        let code = tgreg::ModelCode::from_raw(self.regs.get(tgreg::REG_MODEL))
            .ok_or_else(|| fault("unknown traffic model code".into()))?;
        let original_dst = match original {
            TrafficModel::Uniform(u) => &u.destination,
            TrafficModel::Burst(b) => &b.destination,
            TrafficModel::Poisson(p) => &p.destination,
            TrafficModel::Trace(_) => &DestinationModel::UniformChoice(Vec::new()),
        };
        match code {
            tgreg::ModelCode::Uniform => Ok(TrafficModel::Uniform(UniformConfig {
                length: self.length().map_err(&fault)?,
                gap: (
                    self.regs.get(tgreg::REG_GAP_MIN),
                    self.regs.get(tgreg::REG_GAP_MAX),
                ),
                budget: self.budget(),
                destination: self.destination(original_dst),
            })),
            tgreg::ModelCode::Burst => Ok(TrafficModel::Burst(BurstConfig {
                length: self.length().map_err(&fault)?,
                start_probability: tgreg::q16_to_prob(self.regs.get(tgreg::REG_START_PROB)),
                continue_probability: tgreg::q16_to_prob(self.regs.get(tgreg::REG_CONT_PROB)),
                budget: self.budget(),
                destination: self.destination(original_dst),
            })),
            tgreg::ModelCode::Poisson => Ok(TrafficModel::Poisson(PoissonConfig {
                length: self.length().map_err(&fault)?,
                start_probability: tgreg::q16_to_prob(self.regs.get(tgreg::REG_START_PROB)),
                budget: self.budget(),
                destination: self.destination(original_dst),
            })),
            tgreg::ModelCode::Trace => match original {
                TrafficModel::Trace(t) => Ok(TrafficModel::Trace(t.clone())),
                _ => Err(fault(
                    "trace model selected but no trace was compiled in".into(),
                )),
            },
        }
    }
}

/// Builds a generator instance from a traffic model (used when the
/// register path reprograms a TG).
pub fn build_generator(
    model: &TrafficModel,
    seed: u64,
    src: EndpointId,
) -> Box<dyn TrafficGenerator + Send> {
    match model {
        TrafficModel::Uniform(c) => Box::new(StochasticTg::uniform(c.clone(), seed)),
        TrafficModel::Burst(c) => Box::new(StochasticTg::burst(c.clone(), seed)),
        TrafficModel::Poisson(c) => Box::new(StochasticTg::poisson(c.clone(), seed)),
        TrafficModel::Trace(t) => Box::new(TraceDrivenTg::new(t, src)),
    }
}

// --- Read-only register views over live engine state -----------------

/// TG register read (configuration from the shadow, counters live).
pub(crate) fn tg_read(e: &mut Emulation, i: usize, addr: Address) -> Result<u32, BusError> {
    let reg = addr.reg();
    if reg >= tgreg::TG_REG_COUNT {
        return Err(BusError::RegisterOutOfRange {
            addr,
            regs: tgreg::TG_REG_COUNT,
        });
    }
    let elab = crate::engine::elab(e);
    let ni = &elab.nis[i];
    let c = *ni.counters();
    let tg = &elab.tgs[i];
    let value = match reg {
        tgreg::REG_STATUS => u32::from(tg.is_exhausted()) | (u32::from(ni.is_idle()) << 1),
        tgreg::REG_SENT_LO => c.accepted_packets as u32,
        tgreg::REG_SENT_HI => (c.accepted_packets >> 32) as u32,
        tgreg::REG_FLITS_LO => c.injected_flits as u32,
        tgreg::REG_FLITS_HI => (c.injected_flits >> 32) as u32,
        tgreg::REG_BLOCKED_LO => c.blocked_cycles as u32,
        tgreg::REG_BLOCKED_HI => (c.blocked_cycles >> 32) as u32,
        other => {
            // Configuration registers read back from the shadow.
            let shadow = &e.tg_shadow_ref(i).regs;
            shadow.get(other)
        }
    };
    Ok(value)
}

/// TR device registers.
pub mod trreg {
    /// Status: bit 0 = has received anything.
    pub const REG_STATUS: u16 = 0x0;
    /// Packets received, low half.
    pub const REG_PACKETS_LO: u16 = 0x1;
    /// Packets received, high half.
    pub const REG_PACKETS_HI: u16 = 0x2;
    /// Flits received, low half.
    pub const REG_FLITS_LO: u16 = 0x3;
    /// Flits received, high half.
    pub const REG_FLITS_HI: u16 = 0x4;
    /// Total running time in cycles, low half.
    pub const REG_RUNNING_LO: u16 = 0x5;
    /// Total running time in cycles, high half.
    pub const REG_RUNNING_HI: u16 = 0x6;
    /// Network-latency sample count, low half.
    pub const REG_LAT_COUNT_LO: u16 = 0x7;
    /// Network-latency sample count, high half.
    pub const REG_LAT_COUNT_HI: u16 = 0x8;
    /// Network-latency sum, low half.
    pub const REG_LAT_SUM_LO: u16 = 0x9;
    /// Network-latency sum, high half.
    pub const REG_LAT_SUM_HI: u16 = 0xA;
    /// Minimum network latency (saturates at `u32::MAX`).
    pub const REG_LAT_MIN: u16 = 0xB;
    /// Maximum network latency (saturates at `u32::MAX`).
    pub const REG_LAT_MAX: u16 = 0xC;
    /// Register count of a TR device.
    pub const TR_REG_COUNT: u16 = 0xD;
}

pub(crate) fn tr_read(e: &mut Emulation, i: usize, addr: Address) -> Result<u32, BusError> {
    let reg = addr.reg();
    if reg >= trreg::TR_REG_COUNT {
        return Err(BusError::RegisterOutOfRange {
            addr,
            regs: trreg::TR_REG_COUNT,
        });
    }
    let elab = crate::engine::elab(e);
    let (counters, latency): (ReceptorCounters, Option<&nocem_stats::LatencyAnalyzer>) =
        match &elab.receptors[i] {
            ReceptorDevice::Stochastic(r) => (*r.counters(), None),
            ReceptorDevice::Trace(r) => (*r.counters(), Some(r.network_latency())),
        };
    let sat32 = |v: u64| v.min(u64::from(u32::MAX)) as u32;
    let value = match reg {
        trreg::REG_STATUS => u32::from(counters.flits > 0),
        trreg::REG_PACKETS_LO => counters.packets as u32,
        trreg::REG_PACKETS_HI => (counters.packets >> 32) as u32,
        trreg::REG_FLITS_LO => counters.flits as u32,
        trreg::REG_FLITS_HI => (counters.flits >> 32) as u32,
        trreg::REG_RUNNING_LO => counters.running_time() as u32,
        trreg::REG_RUNNING_HI => (counters.running_time() >> 32) as u32,
        trreg::REG_LAT_COUNT_LO => latency.map_or(0, |l| l.count() as u32),
        trreg::REG_LAT_COUNT_HI => latency.map_or(0, |l| (l.count() >> 32) as u32),
        trreg::REG_LAT_SUM_LO => latency.map_or(0, |l| l.sum() as u32),
        trreg::REG_LAT_SUM_HI => latency.map_or(0, |l| (l.sum() >> 32) as u32),
        trreg::REG_LAT_MIN => latency.and_then(|l| l.min()).map_or(u32::MAX, sat32),
        trreg::REG_LAT_MAX => latency.and_then(|l| l.max()).map_or(0, sat32),
        _ => unreachable!("range checked above"),
    };
    Ok(value)
}

/// Switch statistics registers.
pub mod swreg {
    /// Flits forwarded, low half.
    pub const REG_FORWARDED_LO: u16 = 0x0;
    /// Flits forwarded, high half.
    pub const REG_FORWARDED_HI: u16 = 0x1;
    /// Packets routed (head flits granted), low half.
    pub const REG_PACKETS_LO: u16 = 0x2;
    /// Packets routed, high half.
    pub const REG_PACKETS_HI: u16 = 0x3;
    /// Cycles observed, low half.
    pub const REG_CYCLES_LO: u16 = 0x4;
    /// Cycles observed, high half.
    pub const REG_CYCLES_HI: u16 = 0x5;
    /// Total blocked input-cycles, low half.
    pub const REG_BLOCKED_LO: u16 = 0x6;
    /// Total blocked input-cycles, high half.
    pub const REG_BLOCKED_HI: u16 = 0x7;
    /// Register count of a switch device.
    pub const SW_REG_COUNT: u16 = 0x8;
}

pub(crate) fn switch_read(e: &mut Emulation, i: usize, addr: Address) -> Result<u32, BusError> {
    let reg = addr.reg();
    if reg >= swreg::SW_REG_COUNT {
        return Err(BusError::RegisterOutOfRange {
            addr,
            regs: swreg::SW_REG_COUNT,
        });
    }
    let c = crate::engine::elab(e).switches[i].counters();
    let blocked: u64 = c.blocked_cycles_per_input.iter().sum();
    let value = match reg {
        swreg::REG_FORWARDED_LO => c.forwarded_flits as u32,
        swreg::REG_FORWARDED_HI => (c.forwarded_flits >> 32) as u32,
        swreg::REG_PACKETS_LO => c.packets_routed as u32,
        swreg::REG_PACKETS_HI => (c.packets_routed >> 32) as u32,
        swreg::REG_CYCLES_LO => c.cycles as u32,
        swreg::REG_CYCLES_HI => (c.cycles >> 32) as u32,
        swreg::REG_BLOCKED_LO => blocked as u32,
        swreg::REG_BLOCKED_HI => (blocked >> 32) as u32,
        _ => unreachable!("range checked above"),
    };
    Ok(value)
}

/// Telemetry monitor registers.
///
/// The monitor exposes the windowed congestion collector to the
/// emulated software: select a link via `REG_SELECT`, then poll its
/// most recent window and lifetime totals; `REG_HOT_*` shortcut to
/// the most blocked link without scanning. All counters read as zero
/// while telemetry is disabled (`REG_WINDOW == 0` tells software so).
pub mod monreg {
    /// Telemetry window length in cycles; 0 = telemetry disabled.
    pub const REG_WINDOW: u16 = 0x0;
    /// Windows recorded so far (saturates at `u32::MAX`).
    pub const REG_WINDOWS: u16 = 0x1;
    /// Number of links in the topology.
    pub const REG_LINKS: u16 = 0x2;
    /// Link selector for the `LAST_*`/`TOTAL_*` registers (RW).
    pub const REG_SELECT: u16 = 0x3;
    /// Selected link: flits forwarded in the last window, low half.
    pub const REG_LAST_FORWARDED_LO: u16 = 0x4;
    /// Selected link: flits forwarded in the last window, high half.
    pub const REG_LAST_FORWARDED_HI: u16 = 0x5;
    /// Selected link: blocked cycles in the last window, low half.
    pub const REG_LAST_BLOCKED_LO: u16 = 0x6;
    /// Selected link: blocked cycles in the last window, high half.
    pub const REG_LAST_BLOCKED_HI: u16 = 0x7;
    /// Selected link: lifetime flits forwarded, low half.
    pub const REG_TOTAL_FORWARDED_LO: u16 = 0x8;
    /// Selected link: lifetime flits forwarded, high half.
    pub const REG_TOTAL_FORWARDED_HI: u16 = 0x9;
    /// Selected link: lifetime blocked cycles, low half.
    pub const REG_TOTAL_BLOCKED_LO: u16 = 0xA;
    /// Selected link: lifetime blocked cycles, high half.
    pub const REG_TOTAL_BLOCKED_HI: u16 = 0xB;
    /// Link id with the most lifetime blocked cycles.
    pub const REG_HOT_LINK: u16 = 0xC;
    /// Blocked cycles of the hottest link, low half.
    pub const REG_HOT_BLOCKED_LO: u16 = 0xD;
    /// Blocked cycles of the hottest link, high half.
    pub const REG_HOT_BLOCKED_HI: u16 = 0xE;
    /// Register count of the monitor device.
    pub const MON_REG_COUNT: u16 = 0xF;
}

pub(crate) fn monitor_read(e: &mut Emulation, addr: Address) -> Result<u32, BusError> {
    let reg = addr.reg();
    if reg >= monreg::MON_REG_COUNT {
        return Err(BusError::RegisterOutOfRange {
            addr,
            regs: monreg::MON_REG_COUNT,
        });
    }
    let links = crate::engine::elab(e).config.topology.link_count() as u32;
    let select = crate::engine::monitor_select(e);
    if reg == monreg::REG_LINKS {
        return Ok(links);
    }
    if reg == monreg::REG_SELECT {
        return Ok(select);
    }
    let Some(t) = crate::engine::telemetry_of(e) else {
        return Ok(0);
    };
    let sel = nocem_common::ids::LinkId::new(select);
    let hot = t.hottest();
    let value = match reg {
        monreg::REG_WINDOW => t.window_cycles() as u32,
        monreg::REG_WINDOWS => t.windows_recorded().min(u64::from(u32::MAX)) as u32,
        monreg::REG_LAST_FORWARDED_LO => t.last_forwarded(sel) as u32,
        monreg::REG_LAST_FORWARDED_HI => (t.last_forwarded(sel) >> 32) as u32,
        monreg::REG_LAST_BLOCKED_LO => t.last_blocked(sel) as u32,
        monreg::REG_LAST_BLOCKED_HI => (t.last_blocked(sel) >> 32) as u32,
        monreg::REG_TOTAL_FORWARDED_LO => t.total_forwarded(sel) as u32,
        monreg::REG_TOTAL_FORWARDED_HI => (t.total_forwarded(sel) >> 32) as u32,
        monreg::REG_TOTAL_BLOCKED_LO => t.total_blocked(sel) as u32,
        monreg::REG_TOTAL_BLOCKED_HI => (t.total_blocked(sel) >> 32) as u32,
        monreg::REG_HOT_LINK => hot.map_or(0, |h| h.link.raw()),
        monreg::REG_HOT_BLOCKED_LO => hot.map_or(0, |h| h.blocked as u32),
        monreg::REG_HOT_BLOCKED_HI => hot.map_or(0, |h| (h.blocked >> 32) as u32),
        _ => unreachable!("range checked above"),
    };
    Ok(value)
}

pub(crate) fn monitor_write(e: &mut Emulation, addr: Address, value: u32) -> Result<(), BusError> {
    let reg = addr.reg();
    if reg >= monreg::MON_REG_COUNT {
        return Err(BusError::RegisterOutOfRange {
            addr,
            regs: monreg::MON_REG_COUNT,
        });
    }
    if reg != monreg::REG_SELECT {
        return Err(BusError::ReadOnly(addr));
    }
    let links = crate::engine::elab(e).config.topology.link_count() as u32;
    if value >= links {
        return Err(BusError::InvalidValue {
            addr,
            reason: format!("link {value} out of range (topology has {links} links)"),
        });
    }
    crate::engine::set_monitor_select(e, value);
    Ok(())
}

// --- Typed drivers (the "software part") ------------------------------

/// Driver for a traffic generator device.
#[derive(Debug, Clone, Copy)]
pub struct TgDriver {
    base: DeviceAddr,
}

impl TgDriver {
    /// Binds to the TG at `base`.
    pub fn new(base: DeviceAddr) -> Self {
        TgDriver { base }
    }

    /// Programs a traffic model through the registers.
    ///
    /// # Errors
    ///
    /// Propagates [`BusError`] from the bus.
    pub fn program<B: BusAccess>(&self, bus: &mut B, model: &TrafficModel) -> Result<(), BusError> {
        for (reg, value) in model_register_image(model) {
            bus.write(self.base.reg(reg), value)?;
        }
        Ok(())
    }

    /// Packets accepted into the source queue so far.
    ///
    /// # Errors
    ///
    /// Propagates [`BusError`] from the bus.
    pub fn sent<B: BusAccess>(&self, bus: &mut B) -> Result<u64, BusError> {
        bus.read_u64(
            self.base.reg(tgreg::REG_SENT_LO),
            self.base.reg(tgreg::REG_SENT_HI),
        )
    }

    /// Flits injected so far.
    ///
    /// # Errors
    ///
    /// Propagates [`BusError`] from the bus.
    pub fn injected_flits<B: BusAccess>(&self, bus: &mut B) -> Result<u64, BusError> {
        bus.read_u64(
            self.base.reg(tgreg::REG_FLITS_LO),
            self.base.reg(tgreg::REG_FLITS_HI),
        )
    }

    /// Injection blocked-cycle counter.
    ///
    /// # Errors
    ///
    /// Propagates [`BusError`] from the bus.
    pub fn blocked_cycles<B: BusAccess>(&self, bus: &mut B) -> Result<u64, BusError> {
        bus.read_u64(
            self.base.reg(tgreg::REG_BLOCKED_LO),
            self.base.reg(tgreg::REG_BLOCKED_HI),
        )
    }
}

/// Driver for a traffic receptor device.
#[derive(Debug, Clone, Copy)]
pub struct TrDriver {
    base: DeviceAddr,
}

impl TrDriver {
    /// Binds to the TR at `base`.
    pub fn new(base: DeviceAddr) -> Self {
        TrDriver { base }
    }

    /// Packets fully received.
    ///
    /// # Errors
    ///
    /// Propagates [`BusError`] from the bus.
    pub fn packets<B: BusAccess>(&self, bus: &mut B) -> Result<u64, BusError> {
        bus.read_u64(
            self.base.reg(trreg::REG_PACKETS_LO),
            self.base.reg(trreg::REG_PACKETS_HI),
        )
    }

    /// Flits received.
    ///
    /// # Errors
    ///
    /// Propagates [`BusError`] from the bus.
    pub fn flits<B: BusAccess>(&self, bus: &mut B) -> Result<u64, BusError> {
        bus.read_u64(
            self.base.reg(trreg::REG_FLITS_LO),
            self.base.reg(trreg::REG_FLITS_HI),
        )
    }

    /// The "total running time" statistic.
    ///
    /// # Errors
    ///
    /// Propagates [`BusError`] from the bus.
    pub fn running_time<B: BusAccess>(&self, bus: &mut B) -> Result<u64, BusError> {
        bus.read_u64(
            self.base.reg(trreg::REG_RUNNING_LO),
            self.base.reg(trreg::REG_RUNNING_HI),
        )
    }

    /// Mean network latency, or `None` when no samples exist (also
    /// for stochastic receptors, which have no latency analyzer).
    ///
    /// # Errors
    ///
    /// Propagates [`BusError`] from the bus.
    pub fn mean_network_latency<B: BusAccess>(&self, bus: &mut B) -> Result<Option<f64>, BusError> {
        let count = bus.read_u64(
            self.base.reg(trreg::REG_LAT_COUNT_LO),
            self.base.reg(trreg::REG_LAT_COUNT_HI),
        )?;
        if count == 0 {
            return Ok(None);
        }
        let sum = bus.read_u64(
            self.base.reg(trreg::REG_LAT_SUM_LO),
            self.base.reg(trreg::REG_LAT_SUM_HI),
        )?;
        Ok(Some(sum as f64 / count as f64))
    }
}

/// Driver for a switch statistics device.
#[derive(Debug, Clone, Copy)]
pub struct SwitchDriver {
    base: DeviceAddr,
}

impl SwitchDriver {
    /// Binds to the switch device at `base`.
    pub fn new(base: DeviceAddr) -> Self {
        SwitchDriver { base }
    }

    /// Flits forwarded by the switch.
    ///
    /// # Errors
    ///
    /// Propagates [`BusError`] from the bus.
    pub fn forwarded<B: BusAccess>(&self, bus: &mut B) -> Result<u64, BusError> {
        bus.read_u64(
            self.base.reg(swreg::REG_FORWARDED_LO),
            self.base.reg(swreg::REG_FORWARDED_HI),
        )
    }

    /// Total blocked input-cycles.
    ///
    /// # Errors
    ///
    /// Propagates [`BusError`] from the bus.
    pub fn blocked<B: BusAccess>(&self, bus: &mut B) -> Result<u64, BusError> {
        bus.read_u64(
            self.base.reg(swreg::REG_BLOCKED_LO),
            self.base.reg(swreg::REG_BLOCKED_HI),
        )
    }
}

/// Driver for the telemetry monitor device: the emulated software's
/// window into the hot-link statistics while the run is in flight.
#[derive(Debug, Clone, Copy)]
pub struct MonitorDriver {
    base: DeviceAddr,
}

impl MonitorDriver {
    /// Binds to the monitor device at `base`.
    pub fn new(base: DeviceAddr) -> Self {
        MonitorDriver { base }
    }

    /// The telemetry window length in cycles, or `None` when
    /// telemetry is disabled on this platform.
    ///
    /// # Errors
    ///
    /// Propagates [`BusError`] from the bus.
    pub fn window<B: BusAccess>(&self, bus: &mut B) -> Result<Option<u64>, BusError> {
        let w = bus.read(self.base.reg(monreg::REG_WINDOW))?;
        Ok((w != 0).then_some(u64::from(w)))
    }

    /// Windows recorded so far.
    ///
    /// # Errors
    ///
    /// Propagates [`BusError`] from the bus.
    pub fn windows<B: BusAccess>(&self, bus: &mut B) -> Result<u32, BusError> {
        bus.read(self.base.reg(monreg::REG_WINDOWS))
    }

    /// Number of links the monitor covers.
    ///
    /// # Errors
    ///
    /// Propagates [`BusError`] from the bus.
    pub fn links<B: BusAccess>(&self, bus: &mut B) -> Result<u32, BusError> {
        bus.read(self.base.reg(monreg::REG_LINKS))
    }

    /// Selects the link the `last_*`/`total_*` reads refer to.
    ///
    /// # Errors
    ///
    /// Propagates [`BusError`] from the bus (including
    /// [`BusError::InvalidValue`] for an out-of-range link).
    pub fn select<B: BusAccess>(&self, bus: &mut B, link: u32) -> Result<(), BusError> {
        bus.write(self.base.reg(monreg::REG_SELECT), link)
    }

    /// Flits the selected link forwarded in the most recent window.
    ///
    /// # Errors
    ///
    /// Propagates [`BusError`] from the bus.
    pub fn last_forwarded<B: BusAccess>(&self, bus: &mut B) -> Result<u64, BusError> {
        let (lo, hi) = self.base.reg_u64(monreg::REG_LAST_FORWARDED_LO);
        bus.read_u64(lo, hi)
    }

    /// Blocked cycles of the selected link in the most recent window.
    ///
    /// # Errors
    ///
    /// Propagates [`BusError`] from the bus.
    pub fn last_blocked<B: BusAccess>(&self, bus: &mut B) -> Result<u64, BusError> {
        let (lo, hi) = self.base.reg_u64(monreg::REG_LAST_BLOCKED_LO);
        bus.read_u64(lo, hi)
    }

    /// Lifetime flits forwarded on the selected link.
    ///
    /// # Errors
    ///
    /// Propagates [`BusError`] from the bus.
    pub fn total_forwarded<B: BusAccess>(&self, bus: &mut B) -> Result<u64, BusError> {
        let (lo, hi) = self.base.reg_u64(monreg::REG_TOTAL_FORWARDED_LO);
        bus.read_u64(lo, hi)
    }

    /// Lifetime blocked cycles on the selected link.
    ///
    /// # Errors
    ///
    /// Propagates [`BusError`] from the bus.
    pub fn total_blocked<B: BusAccess>(&self, bus: &mut B) -> Result<u64, BusError> {
        let (lo, hi) = self.base.reg_u64(monreg::REG_TOTAL_BLOCKED_LO);
        bus.read_u64(lo, hi)
    }

    /// The most blocked link and its lifetime blocked cycles.
    ///
    /// # Errors
    ///
    /// Propagates [`BusError`] from the bus.
    pub fn hottest<B: BusAccess>(&self, bus: &mut B) -> Result<(u32, u64), BusError> {
        let link = bus.read(self.base.reg(monreg::REG_HOT_LINK))?;
        let (lo, hi) = self.base.reg_u64(monreg::REG_HOT_BLOCKED_LO);
        Ok((link, bus.read_u64(lo, hi)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocem_common::ids::{EndpointId, FlowId};

    fn fixed_dst() -> DestinationModel {
        DestinationModel::Fixed {
            dst: EndpointId::new(3),
            flow: FlowId::new(1),
        }
    }

    #[test]
    fn uniform_model_register_roundtrip() {
        let model = TrafficModel::Uniform(UniformConfig {
            length: LengthModel::Fixed(8),
            gap: (5, 15),
            budget: Some(1_000),
            destination: fixed_dst(),
        });
        let shadow = TgShadow::from_model(&model);
        let decoded = shadow.to_model(&model).unwrap();
        assert_eq!(decoded, model);
    }

    #[test]
    fn burst_model_register_roundtrip() {
        let model = TrafficModel::Burst(BurstConfig::with_load(0.45, 8, 8, Some(77), fixed_dst()));
        let shadow = TgShadow::from_model(&model);
        let decoded = shadow.to_model(&model).unwrap();
        if let (TrafficModel::Burst(a), TrafficModel::Burst(b)) = (&model, &decoded) {
            assert_eq!(a.length, b.length);
            assert_eq!(a.budget, b.budget);
            // Probabilities go through Q0.16 and may lose < 1e-4.
            assert!((a.start_probability - b.start_probability).abs() < 1e-4);
            assert!((a.continue_probability - b.continue_probability).abs() < 1e-4);
        } else {
            panic!("expected burst models");
        }
    }

    #[test]
    fn length_range_roundtrip() {
        let model = TrafficModel::Poisson(PoissonConfig {
            length: LengthModel::UniformRange { min: 2, max: 9 },
            start_probability: 0.25,
            budget: None,
            destination: fixed_dst(),
        });
        let shadow = TgShadow::from_model(&model);
        match shadow.to_model(&model).unwrap() {
            TrafficModel::Poisson(p) => {
                assert_eq!(p.length, LengthModel::UniformRange { min: 2, max: 9 });
                assert_eq!(p.budget, None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn zero_length_register_faults() {
        let model = TrafficModel::Uniform(UniformConfig {
            length: LengthModel::Fixed(4),
            gap: (0, 0),
            budget: None,
            destination: fixed_dst(),
        });
        let mut shadow = TgShadow::from_model(&model);
        shadow.regs.set(tgreg::REG_PACKET_LEN, 0);
        assert!(matches!(
            shadow.to_model(&model),
            Err(BusError::InvalidValue { .. })
        ));
    }

    #[test]
    fn unknown_model_code_faults() {
        let model = TrafficModel::Uniform(UniformConfig {
            length: LengthModel::Fixed(4),
            gap: (0, 0),
            budget: None,
            destination: fixed_dst(),
        });
        let mut shadow = TgShadow::from_model(&model);
        shadow.regs.set(tgreg::REG_MODEL, 42);
        assert!(shadow.to_model(&model).is_err());
    }

    #[test]
    fn trace_code_requires_compiled_trace() {
        let model = TrafficModel::Uniform(UniformConfig {
            length: LengthModel::Fixed(4),
            gap: (0, 0),
            budget: None,
            destination: fixed_dst(),
        });
        let mut shadow = TgShadow::from_model(&model);
        shadow
            .regs
            .set(tgreg::REG_MODEL, tgreg::ModelCode::Trace as u32);
        let err = shadow.to_model(&model).unwrap_err();
        assert!(err.to_string().contains("no trace"));
    }

    #[test]
    fn dirty_flag_tracks_writes() {
        let model = TrafficModel::Uniform(UniformConfig {
            length: LengthModel::Fixed(4),
            gap: (0, 0),
            budget: None,
            destination: fixed_dst(),
        });
        let mut shadow = TgShadow::from_model(&model);
        assert!(!shadow.dirty);
        let addr = Address::from_parts(
            nocem_common::ids::BusId::new(0),
            nocem_common::ids::DeviceId::new(1),
            tgreg::REG_GAP_MIN,
        );
        shadow.bus_write(addr, 9).unwrap();
        assert!(shadow.dirty);
    }
}
