//! The fast emulation engine — the software stand-in for the FPGA.
//!
//! One call to [`Emulation::step`] is one platform clock cycle. The
//! canonical intra-cycle ordering (which `nocem-rtl` and `nocem-tlm`
//! reproduce through their own scheduling mechanisms) is:
//!
//! 1. **TG tick** — every traffic model may release one packet into
//!    its network interface's source queue (ids are assigned globally
//!    in generator order);
//! 2. **decide** — every switch computes its grants from
//!    start-of-cycle state (ascending switch order);
//! 3. **NI send** — every network interface may inject one flit into
//!    its switch input (visible to `decide` from the next cycle);
//! 4. **commit** — every switch pops its granted flits, returns
//!    credits upstream, pushes flits downstream (visible next cycle)
//!    and delivers ejected flits to receptors *this* cycle;
//! 5. the cycle counter advances and the stop condition is evaluated.
//!
//! The engine also implements [`BusAccess`]: the configuration
//! software (drivers) reads and writes the same memory-mapped
//! registers it would on the paper's FPGA platform.

use crate::clock::{self, ClockMode, EngineSummary, SteppableEngine};
use crate::compile::{Elaboration, InSource, OutTarget, ReceptorDevice};
use crate::devices::{self, TgShadow};
use crate::error::EmulationError;
use crate::profile::{
    BlockedLink, Phase, PhaseProfiler, PhaseReport, StallReport, StallWatchdog, WaitDest, WaitEdge,
};
use crate::results::EmulationResults;
use nocem_common::flit::PacketDescriptor;
use nocem_common::ids::{BusId, DeviceId, EndpointId, PacketId, SwitchId};
use nocem_common::time::Cycle;
use nocem_platform::addr::Address;
use nocem_platform::bus::{AddressMap, BusAccess, BusError, DeviceClass};
use nocem_platform::control::ControlModule;
use nocem_stats::congestion::CongestionCounter;
use nocem_stats::ledger::PacketLedger;
use nocem_stats::receptor::CompletedPacket;
use nocem_telemetry::{Collector, CumulativeProbe, FlitEvent, FlitEventKind, FlitTracer};
use nocem_traffic::generator::PacketRequest;
use nocem_traffic::trace::{TraceEvent, TraceRecorder};
use std::time::Instant;

/// A compiled platform ready to emulate.
pub struct Emulation {
    elab: Elaboration,
    generator_endpoints: Vec<EndpointId>,
    ledger: PacketLedger,
    control: ControlModule,
    tg_shadow: Vec<TgShadow>,
    now: Cycle,
    next_packet: u64,
    /// Per-TG output register: a request the source queue could not
    /// absorb yet (the model is clock-gated while this is occupied).
    pending: Vec<Option<PacketRequest>>,
    stalled: u64,
    delivered_flits: u64,
    /// Cycles the fast-forward kernel jumped over (gated mode only).
    cycles_skipped: u64,
    recorder: Option<TraceRecorder>,
    started: bool,
    /// Windowed per-resource telemetry (None = off, no probe cost).
    telemetry: Option<Collector>,
    /// Bounded flit event tracer (opt-in via the telemetry config).
    tracer: Option<FlitTracer>,
    /// Per-phase self-profiler (None = off, zero timestamp cost).
    profiler: Option<PhaseProfiler>,
    /// Stall watchdog, when the profile config enables one.
    watchdog: Option<StallWatchdog>,
    /// Link selected through the monitor device's `SELECT` register.
    monitor_select: u32,
}

impl std::fmt::Debug for Emulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Emulation")
            .field("name", &self.elab.config.name)
            .field("cycle", &self.now)
            .field("delivered", &self.ledger.delivered())
            .finish_non_exhaustive()
    }
}

impl Emulation {
    /// Wraps an elaboration into a runnable emulation.
    pub fn new(elab: Elaboration) -> Self {
        let generator_endpoints = elab.config.topology.generators();
        let recorder = elab.config.record_trace.then(TraceRecorder::new);
        let tg_shadow = elab
            .config
            .generators
            .iter()
            .map(TgShadow::from_model)
            .collect();
        let telemetry = elab.config.telemetry.as_ref().map(|t| {
            Collector::new(
                t,
                elab.config.topology.link_count(),
                usize::from(elab.config.switch.num_vcs),
            )
        });
        let tracer = elab
            .config
            .telemetry
            .as_ref()
            .filter(|t| t.trace)
            .map(|t| FlitTracer::new(t.trace_capacity));
        let profiler = elab.config.profile.as_ref().map(|_| {
            let mut p = PhaseProfiler::new();
            p.add_ns(Phase::Elaborate, elab.elaborate_ns);
            p
        });
        let watchdog = elab
            .config
            .profile
            .as_ref()
            .and_then(|p| p.stall)
            .map(StallWatchdog::new);
        Emulation {
            generator_endpoints,
            ledger: PacketLedger::new(),
            control: ControlModule::new(),
            tg_shadow,
            now: Cycle::ZERO,
            next_packet: 0,
            pending: vec![None; elab.tgs.len()],
            stalled: 0,
            delivered_flits: 0,
            cycles_skipped: 0,
            recorder,
            started: false,
            telemetry,
            tracer,
            profiler,
            watchdog,
            monitor_select: 0,
            elab,
        }
    }

    /// Closes a profiling lap: charges `phase` the time since `*t` and
    /// chains the next timestamp. No-op (a single `Option` check) when
    /// profiling is off.
    #[inline]
    fn lap(&mut self, t: &mut Option<Instant>, phase: Phase) {
        if let (Some(prev), Some(p)) = (t.as_mut(), self.profiler.as_mut()) {
            *prev = p.lap(*prev, phase);
        }
    }

    /// The current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Packets delivered so far.
    pub fn delivered(&self) -> u64 {
        self.ledger.delivered()
    }

    /// Cycles the fast-forward kernel jumped over so far (always 0
    /// under [`ClockMode::EveryCycle`]).
    pub fn cycles_skipped(&self) -> u64 {
        self.cycles_skipped
    }

    /// Whether the whole platform is quiescent: no parked TG request,
    /// every NI idle with all credits home, every switch quiescent, no
    /// packet in flight. See [`clock::platform_quiescent`].
    pub fn is_quiescent(&self) -> bool {
        clock::platform_quiescent(
            &self.elab.switches,
            &self.elab.nis,
            &self.pending,
            self.ledger.in_flight(),
        )
    }

    /// The elaborated platform (read access for inspection).
    pub fn elaboration(&self) -> &Elaboration {
        &self.elab
    }

    /// The packet ledger (read access for tests and reports).
    pub fn ledger(&self) -> &PacketLedger {
        &self.ledger
    }

    /// Advances one platform cycle.
    ///
    /// # Errors
    ///
    /// Returns [`EmulationError`] on wiring/protocol violations (which
    /// a correct build never produces) or when the cycle limit is
    /// exceeded.
    pub fn step(&mut self) -> Result<(), EmulationError> {
        let mut t = self.profiler.as_mut().map(PhaseProfiler::begin_step);
        // Hybrid clock gating: on a quiescent platform, jump straight
        // to the earliest future TG event instead of stepping empty
        // cycles. The skipped ticks are pure no-ops (proven by the
        // gated-vs-ungated lockstep tests), so the cycle executed
        // below at the jump target is exactly the cycle an every-cycle
        // run would have executed there.
        if self.elab.config.clock_mode == ClockMode::Gated && self.is_quiescent() {
            let skipped = clock::fast_forward(
                self.now,
                self.elab.config.stop.cycle_limit,
                &mut self.elab.tgs,
            );
            self.now += skipped;
            self.cycles_skipped += skipped;
        }
        self.lap(&mut t, Phase::FastForward);
        // Telemetry probe: at the start of the cycle, *after* the
        // fast-forward, the cumulative counters reflect exactly the
        // cycles [0, now) — the same prefix every engine sees here, so
        // the recorded windows are engine- and clock-mode-invariant.
        // A jump that crossed several boundaries records one zero
        // sample per crossed boundary (nothing moves while quiescent).
        if self
            .telemetry
            .as_ref()
            .is_some_and(|t| t.needs_probe(self.now.raw()))
        {
            let probe = self.cumulative_probe();
            let at = self.now.raw();
            self.telemetry
                .as_mut()
                .expect("presence checked above")
                .record(at, &probe);
        }
        self.lap(&mut t, Phase::Probe);
        let now = self.now;
        self.started = true;

        // 1. Traffic models release packets. A model whose request
        //    finds the source queue full is clock-gated: the request
        //    parks in the TG's output register (`pending`) and retries
        //    every cycle until a slot frees, so no packet is dropped
        //    (hardware backpressure via the NI's ready signal).
        for i in 0..self.elab.tgs.len() {
            let req = match self.pending[i].take() {
                Some(req) if self.elab.nis[i].can_accept() => req,
                Some(req) => {
                    self.pending[i] = Some(req);
                    self.stalled += 1;
                    if let Some(tr) = &mut self.tracer {
                        tr.record(FlitEvent {
                            cycle: now.raw(),
                            kind: FlitEventKind::Block,
                            packet: None,
                            switch: Some(self.elab.wiring.injection[i].0 as u32),
                            link: None,
                        });
                    }
                    continue;
                }
                None => {
                    let Some(req) = self.elab.tgs[i].tick(now) else {
                        continue;
                    };
                    if !self.elab.nis[i].can_accept() {
                        self.pending[i] = Some(req);
                        self.stalled += 1;
                        if let Some(tr) = &mut self.tracer {
                            tr.record(FlitEvent {
                                cycle: now.raw(),
                                kind: FlitEventKind::Block,
                                packet: None,
                                switch: Some(self.elab.wiring.injection[i].0 as u32),
                                link: None,
                            });
                        }
                        continue;
                    }
                    req
                }
            };
            let id = PacketId::new(self.next_packet);
            let desc = PacketDescriptor {
                id,
                src: self.generator_endpoints[i],
                dst: req.dst,
                flow: req.flow,
                len_flits: req.len_flits,
                release: now,
            };
            let accepted = self.elab.nis[i].offer(desc);
            debug_assert!(accepted, "capacity was checked before the offer");
            self.next_packet += 1;
            let ledger_start = self.profiler.as_ref().map(PhaseProfiler::begin);
            self.ledger.release(id, now, req.len_flits)?;
            if let Some(s) = ledger_start {
                self.profiler
                    .as_mut()
                    .expect("timestamp implies profiler")
                    .nested(s, Phase::Ledger);
            }
            if let Some(rec) = &mut self.recorder {
                rec.record(TraceEvent {
                    at: now,
                    src: desc.src,
                    dst: desc.dst,
                    flow: desc.flow,
                    len_flits: desc.len_flits,
                });
            }
        }

        self.lap(&mut t, Phase::TgTick);

        // 2. All switches decide on start-of-cycle state.
        for sw in &mut self.elab.switches {
            sw.decide();
        }
        self.lap(&mut t, Phase::Decide);

        // 3. Network interfaces inject (visible next cycle).
        for i in 0..self.elab.nis.len() {
            let Some(flit) = self.elab.nis[i].tick_send() else {
                continue;
            };
            let (s, port, link) = self.elab.wiring.injection[i];
            if flit.kind.is_head() {
                let ledger_start = self.profiler.as_ref().map(PhaseProfiler::begin);
                self.ledger.inject(flit.packet, now)?;
                if let Some(ls) = ledger_start {
                    self.profiler
                        .as_mut()
                        .expect("timestamp implies profiler")
                        .nested(ls, Phase::Ledger);
                }
                if let Some(tr) = &mut self.tracer {
                    tr.record(FlitEvent {
                        cycle: now.raw(),
                        kind: FlitEventKind::Inject,
                        packet: Some(flit.packet.raw()),
                        switch: Some(s as u32),
                        link: Some(link.raw()),
                    });
                }
            }
            self.elab.switches[s].accept(port, flit).map_err(|source| {
                EmulationError::FifoOverflow {
                    switch: SwitchId::new(s as u32),
                    source,
                }
            })?;
        }
        self.lap(&mut t, Phase::NiInject);

        // 4. All switches commit; flits move one hop.
        for s in 0..self.elab.switches.len() {
            let sends = self.elab.switches[s].commit_sends();
            for t in sends {
                match self.elab.wiring.in_source[s][t.input.index()] {
                    InSource::Switch { switch, port } => {
                        // The upstream output VC the flit occupied is
                        // the input VC it just vacated here.
                        self.elab.switches[switch].credit_return(port, t.input_vc);
                    }
                    InSource::Generator { index } => {
                        self.elab.nis[index].credit_return();
                    }
                }
                match self.elab.wiring.out_target[s][t.output.index()] {
                    OutTarget::Switch { switch, port } => {
                        if let Some(tr) = &mut self.tracer {
                            let link = self.elab.config.topology.out_link(
                                SwitchId::new(s as u32),
                                nocem_common::ids::PortId::new(t.output.index() as u8),
                            );
                            tr.record(FlitEvent {
                                cycle: now.raw(),
                                kind: FlitEventKind::Route,
                                packet: Some(t.flit.packet.raw()),
                                switch: Some(s as u32),
                                link: Some(link.raw()),
                            });
                        }
                        self.elab.switches[switch]
                            .accept(port, t.flit)
                            .map_err(|source| EmulationError::FifoOverflow {
                                switch: SwitchId::new(switch as u32),
                                source,
                            })?;
                    }
                    OutTarget::Receptor { index } => {
                        self.deliver(index, t.flit, now)?;
                    }
                }
            }
        }
        self.lap(&mut t, Phase::Commit);

        // Stall watchdog: feed the ledger counters once per stepped
        // cycle; on the trip, capture the wait-for snapshot.
        let tripped = match self.watchdog.as_mut() {
            Some(w) => w.observe(
                now.raw(),
                self.ledger.released(),
                self.ledger.injected(),
                self.ledger.delivered(),
                self.ledger.in_flight(),
            ),
            None => false,
        };
        if tripped {
            let report = self.capture_stall_report(now.raw());
            self.watchdog
                .as_mut()
                .expect("tripped implies watchdog")
                .latch(report);
        }

        // 5. Advance time.
        self.now = now.next();
        if self.now.raw() > self.elab.config.stop.cycle_limit {
            return Err(EmulationError::CycleLimitExceeded {
                limit: self.elab.config.stop.cycle_limit,
                delivered: self.ledger.delivered(),
            });
        }
        Ok(())
    }

    fn deliver(
        &mut self,
        index: usize,
        flit: nocem_common::flit::Flit,
        now: Cycle,
    ) -> Result<(), EmulationError> {
        let completed: Option<CompletedPacket> = match &mut self.elab.receptors[index] {
            ReceptorDevice::Stochastic(r) => {
                r.accept(&flit, now)
                    .map_err(|source| EmulationError::Receive {
                        receptor: r.id(),
                        source,
                    })?
            }
            ReceptorDevice::Trace(r) => {
                r.accept(&flit, now)
                    .map_err(|source| EmulationError::Receive {
                        receptor: r.id(),
                        source,
                    })?
            }
        };
        if let Some(pkt) = completed {
            let ledger_start = self.profiler.as_ref().map(PhaseProfiler::begin);
            let lat = self.ledger.deliver(pkt.id, now, pkt.len_flits)?;
            if let Some(s) = ledger_start {
                self.profiler
                    .as_mut()
                    .expect("timestamp implies profiler")
                    .nested(s, Phase::Ledger);
            }
            self.delivered_flits += u64::from(pkt.len_flits);
            if let Some(tr) = &mut self.tracer {
                tr.record(FlitEvent {
                    cycle: now.raw(),
                    kind: FlitEventKind::Eject,
                    packet: Some(pkt.id.raw()),
                    switch: None,
                    link: None,
                });
            }
            if let ReceptorDevice::Trace(r) = &mut self.elab.receptors[index] {
                r.record_latency(lat.network, lat.total);
            }
        }
        Ok(())
    }

    /// Whether the stop condition holds.
    pub fn finished(&self) -> bool {
        match self.elab.config.stop.delivered_packets {
            Some(target) => self.ledger.delivered() >= target,
            None => {
                self.elab.tgs.iter().all(|t| t.is_exhausted())
                    && self.pending.iter().all(Option::is_none)
                    && self.elab.nis.iter().all(|n| n.is_idle())
                    && self.ledger.in_flight() == 0
            }
        }
    }

    /// Runs until the stop condition holds.
    ///
    /// # Errors
    ///
    /// Propagates [`EmulationError`] from [`Emulation::step`].
    pub fn run(&mut self) -> Result<(), EmulationError> {
        self.control.set_running(true);
        while !self.finished() {
            self.step()?;
        }
        self.refresh_control();
        self.control.set_done();
        Ok(())
    }

    /// Runs like [`Emulation::run`], invoking `progress` at every
    /// multiple of `interval` cycles with `(cycle, delivered)`.
    ///
    /// The granularity survives clock gating: a fast-forward jump that
    /// crosses one or more reporting boundaries fires the callback
    /// once per crossed boundary (with the delivered count of that
    /// boundary, which is exact — nothing delivers inside a quiescent
    /// window).
    ///
    /// # Errors
    ///
    /// Propagates [`EmulationError`] from [`Emulation::step`].
    pub fn run_with_progress(
        &mut self,
        interval: u64,
        progress: impl FnMut(Cycle, u64),
    ) -> Result<(), EmulationError> {
        self.control.set_running(true);
        clock::run_engine_with_progress(self, interval, progress)?;
        self.refresh_control();
        self.control.set_done();
        Ok(())
    }

    /// Applies register-programmed parameters (control module and TG
    /// shadows) and runs. This is the path the paper's software takes:
    /// everything is configured over the bus, then the start bit is
    /// set.
    ///
    /// # Errors
    ///
    /// Returns [`EmulationError::Bus`]-style faults if start was never
    /// requested, otherwise propagates run errors.
    pub fn run_programmed(&mut self) -> Result<(), EmulationError> {
        if !self.control.start_requested() {
            // On an over-capacity platform the map is empty (the start
            // bit can never be set over the bus); report the
            // conventional control slot either way.
            let ctrl = self
                .elab
                .map
                .devices()
                .first()
                .map(|d| d.addr)
                .unwrap_or_else(|| {
                    nocem_platform::DeviceAddr::new(BusId::new(0), DeviceId::new(0))
                });
            return Err(EmulationError::Bus(BusError::InvalidValue {
                addr: ctrl.reg(nocem_platform::control::REG_CTRL),
                reason: "start bit not set".into(),
            }));
        }
        // Control-module overrides.
        if self.control.target() != 0 {
            self.elab.config.stop.delivered_packets = Some(self.control.target());
        }
        if self.control.cycle_limit() != 0 {
            self.elab.config.stop.cycle_limit = self.control.cycle_limit();
        }
        // Rebuild generators whose shadows were written.
        let seed_base = if self.control.seed() != 0 {
            self.control.seed()
        } else {
            self.elab.config.seed
        };
        for i in 0..self.tg_shadow.len() {
            if !self.tg_shadow[i].dirty {
                continue;
            }
            let model = self.tg_shadow[i]
                .to_model(&self.elab.config.generators[i])
                .map_err(EmulationError::Bus)?;
            let seed = seed_base ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            self.elab.tgs[i] = devices::build_generator(&model, seed, self.generator_endpoints[i]);
            self.elab.config.generators[i] = model;
        }
        self.run()
    }

    fn refresh_control(&mut self) {
        self.control.set_cycles(self.now.raw());
        self.control.set_delivered(self.ledger.delivered());
    }

    /// Builds the per-link congestion counters from the switch and NI
    /// counters.
    ///
    /// Every link is accounted at exactly one point — its *source*:
    /// inter-switch and ejection links at the upstream switch output
    /// port (blocked = cycles some flit requested the output and was
    /// not granted; forwarded = flits that crossed), injection links
    /// at the network interface (blocked = credit-starved cycles;
    /// forwarded = injected flits). Source-side accounting is what
    /// makes a 90 %-loaded link show up as congested: the stalls
    /// accumulate where flits *wait to enter* the link, not at its
    /// sink buffer (which drains freely into the receptors).
    pub fn congestion(&self) -> CongestionCounter {
        let topo = &self.elab.config.topology;
        let mut cc = CongestionCounter::new(topo.link_count());
        for (s, sw) in self.elab.switches.iter().enumerate() {
            let counters = sw.counters();
            for o in 0..usize::from(sw.config().outputs) {
                let link = topo.out_link(
                    SwitchId::new(s as u32),
                    nocem_common::ids::PortId::new(o as u8),
                );
                cc.add(
                    link,
                    counters.blocked_cycles_per_output[o],
                    counters.forwarded_per_output[o],
                );
            }
        }
        for (i, ni) in self.elab.nis.iter().enumerate() {
            let (_, _, link) = self.elab.wiring.injection[i];
            let c = ni.counters();
            cc.add(link, c.blocked_cycles, c.injected_flits);
        }
        cc
    }

    /// Snapshot of the cumulative per-link counters plus live per-VC
    /// occupancy, in the source-side accounting of
    /// [`Emulation::congestion`].
    fn cumulative_probe(&self) -> CumulativeProbe {
        let topo = &self.elab.config.topology;
        let vcs = usize::from(self.elab.config.switch.num_vcs);
        let mut p = CumulativeProbe::new(topo.link_count(), vcs);
        for (s, sw) in self.elab.switches.iter().enumerate() {
            let counters = sw.counters();
            for o in 0..usize::from(sw.config().outputs) {
                let link = topo.out_link(
                    SwitchId::new(s as u32),
                    nocem_common::ids::PortId::new(o as u8),
                );
                p.add_link(
                    link,
                    counters.blocked_cycles_per_output[o],
                    counters.forwarded_per_output[o],
                );
            }
            for v in 0..vcs {
                p.add_vc(v, sw.occupancy_of_vc(nocem_common::ids::VcId::new(v as u8)));
            }
        }
        for (i, ni) in self.elab.nis.iter().enumerate() {
            let (_, _, link) = self.elab.wiring.injection[i];
            let c = ni.counters();
            p.add_link(link, c.blocked_cycles, c.injected_flits);
        }
        p
    }

    /// Assembles the forensic stall snapshot: every waiting input VC
    /// as a wait-for edge (resolved through the wiring to its
    /// downstream switch input or receptor), plus the most blocked
    /// links from the cumulative congestion counters.
    fn capture_stall_report(&self, at_cycle: u64) -> StallReport {
        let topo = &self.elab.config.topology;
        let mut edges = Vec::new();
        for (s, sw) in self.elab.switches.iter().enumerate() {
            for w in sw.wait_states() {
                let link = topo.out_link(SwitchId::new(s as u32), w.output);
                let dest = match self.elab.wiring.out_target[s][w.output.index()] {
                    OutTarget::Switch { switch, port } => WaitDest::Switch {
                        switch: switch as u32,
                        input: port.index() as u32,
                    },
                    OutTarget::Receptor { index } => WaitDest::Receptor {
                        index: index as u32,
                    },
                };
                edges.push(WaitEdge {
                    switch: s as u32,
                    in_port: u32::from(w.input.raw()),
                    in_vc: w.in_vc.raw(),
                    out_port: u32::from(w.output.raw()),
                    out_vc: w.out_vc.raw(),
                    link: link.raw(),
                    occupancy: w.occupancy as u32,
                    fifo_depth: w.fifo_depth as u32,
                    credits: w.credits,
                    credit_cap: w.credit_cap,
                    worm_open: w.worm_open,
                    dest,
                });
            }
        }
        let cc = self.congestion();
        let mut blocked: Vec<BlockedLink> = topo
            .links()
            .map(|l| BlockedLink {
                link: l.id.raw(),
                blocked: cc.blocked(l.id),
            })
            .filter(|b| b.blocked > 0)
            .collect();
        blocked.sort_by_key(|b| (std::cmp::Reverse(b.blocked), b.link));
        blocked.truncate(5);
        let window = self
            .elab
            .config
            .profile
            .as_ref()
            .and_then(|p| p.stall)
            .map_or(0, |s| s.no_progress_cycles);
        StallReport::new(at_cycle, window, self.ledger.in_flight(), edges, blocked)
    }

    /// The windowed telemetry collector, when enabled.
    pub fn telemetry(&self) -> Option<&Collector> {
        self.telemetry.as_ref()
    }

    /// The bounded flit event trace, when tracing was enabled.
    pub fn flit_trace(&self) -> Option<&FlitTracer> {
        self.tracer.as_ref()
    }

    /// Flushes the trailing partial window and freezes the collector
    /// (idempotent; no-op without telemetry).
    pub fn seal_telemetry(&mut self) {
        if self.telemetry.as_ref().is_some_and(|t| !t.is_sealed()) {
            let probe = self.cumulative_probe();
            let at = self.now.raw();
            self.telemetry
                .as_mut()
                .expect("presence checked above")
                .seal(at, &probe);
        }
    }

    /// Extracts the results of a finished (or stopped) run.
    pub fn results(&self) -> EmulationResults {
        EmulationResults::collect(self)
    }

    /// Consumes the emulation and returns results plus the recorded
    /// trace, if recording was enabled.
    pub fn into_results(mut self) -> (EmulationResults, Option<nocem_traffic::trace::Trace>) {
        let results = self.results();
        let trace = self.recorder.take().map(TraceRecorder::into_trace);
        (results, trace)
    }

    pub(crate) fn stalled(&self) -> u64 {
        self.stalled
    }

    pub(crate) fn delivered_flits(&self) -> u64 {
        self.delivered_flits
    }

    pub(crate) fn tg_shadow_ref(&self, i: usize) -> &TgShadow {
        &self.tg_shadow[i]
    }

    fn device_ordinal(&self, addr: Address) -> Result<(DeviceClass, usize), BusError> {
        // Platforms too large for the 4x1024 control plane elaborate
        // with an empty map — no device is bus-addressable.
        if self.elab.map.devices().is_empty() {
            return Err(BusError::Unmapped(addr));
        }
        let d = addr.device_addr();
        let n = usize::from(d.bus.raw()) * usize::from(nocem_platform::DEVICES_PER_BUS)
            + usize::from(d.device.raw());
        let g = self.elab.tgs.len();
        let r = self.elab.receptors.len();
        let s = self.elab.switches.len();
        if n == 0 {
            Ok((DeviceClass::Control, 0))
        } else if n < 1 + g {
            Ok((DeviceClass::TrafficGenerator, n - 1))
        } else if n < 1 + g + r {
            Ok((DeviceClass::TrafficReceptor, n - 1 - g))
        } else if n < 1 + g + r + s {
            Ok((DeviceClass::Switch, n - 1 - g - r))
        } else if n == 1 + g + r + s {
            Ok((DeviceClass::Monitor, 0))
        } else {
            Err(BusError::Unmapped(addr))
        }
    }

    /// The address map (for drivers to locate devices).
    pub fn address_map(&self) -> &AddressMap {
        &self.elab.map
    }
}

impl SteppableEngine for Emulation {
    fn step(&mut self) -> Result<(), EmulationError> {
        Emulation::step(self)
    }

    fn now(&self) -> Cycle {
        self.now
    }

    fn finished(&self) -> bool {
        Emulation::finished(self)
    }

    fn delivered(&self) -> u64 {
        self.ledger.delivered()
    }

    fn cycles_skipped(&self) -> u64 {
        self.cycles_skipped
    }

    fn summary(&self) -> EngineSummary {
        EngineSummary::from_ledger(
            self.now.raw(),
            self.cycles_skipped,
            self.delivered_flits,
            &self.ledger,
        )
    }

    fn packet_ledger(&self) -> PacketLedger {
        self.ledger.clone()
    }

    fn telemetry(&self) -> Option<&Collector> {
        Emulation::telemetry(self)
    }

    fn seal_telemetry(&mut self) {
        Emulation::seal_telemetry(self);
    }

    fn profile(&mut self) -> Option<PhaseReport> {
        self.profiler.as_ref().map(|p| p.report("emulation"))
    }

    fn stall_report(&self) -> Option<&StallReport> {
        self.watchdog.as_ref().and_then(StallWatchdog::report)
    }
}

impl BusAccess for Emulation {
    fn read(&mut self, addr: Address) -> Result<u32, BusError> {
        match self.device_ordinal(addr)? {
            (DeviceClass::Control, _) => {
                self.refresh_control();
                self.control.bus_read(addr)
            }
            (DeviceClass::TrafficGenerator, i) => devices::tg_read(self, i, addr),
            (DeviceClass::TrafficReceptor, i) => devices::tr_read(self, i, addr),
            (DeviceClass::Switch, i) => devices::switch_read(self, i, addr),
            (DeviceClass::Monitor, _) => devices::monitor_read(self, addr),
        }
    }

    fn write(&mut self, addr: Address, value: u32) -> Result<(), BusError> {
        match self.device_ordinal(addr)? {
            (DeviceClass::Control, _) => self.control.bus_write(addr, value),
            (DeviceClass::TrafficGenerator, i) => {
                if self.started {
                    return Err(BusError::InvalidValue {
                        addr,
                        reason: "traffic parameters are locked while running".into(),
                    });
                }
                self.tg_shadow[i].bus_write(addr, value)
            }
            (DeviceClass::TrafficReceptor, _) | (DeviceClass::Switch, _) => {
                Err(BusError::ReadOnly(addr))
            }
            (DeviceClass::Monitor, _) => devices::monitor_write(self, addr, value),
        }
    }
}

pub(crate) use accessors::*;

/// Internal read access used by the device register views.
mod accessors {
    use super::*;

    pub(crate) fn elab(e: &Emulation) -> &Elaboration {
        &e.elab
    }

    pub(crate) fn ledger_of(e: &Emulation) -> &PacketLedger {
        &e.ledger
    }

    pub(crate) fn telemetry_of(e: &Emulation) -> Option<&Collector> {
        e.telemetry.as_ref()
    }

    pub(crate) fn monitor_select(e: &Emulation) -> u32 {
        e.monitor_select
    }

    pub(crate) fn set_monitor_select(e: &mut Emulation, link: u32) {
        e.monitor_select = link;
    }
}

/// Convenience: compile and wrap in one call.
///
/// # Errors
///
/// Propagates [`crate::error::CompileError`].
pub fn build(
    config: &crate::config::PlatformConfig,
) -> Result<Emulation, crate::error::CompileError> {
    Ok(Emulation::new(crate::compile::elaborate(config)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PaperConfig, PlatformConfig};
    use nocem_topology::builders::mesh;

    #[test]
    fn paper_uniform_run_delivers_everything() {
        let cfg = PaperConfig::new().total_packets(400).uniform();
        let mut emu = build(&cfg).unwrap();
        emu.run().unwrap();
        assert_eq!(emu.delivered(), 400);
        assert!(emu.now().raw() > 0);
        emu.ledger().verify_drained().unwrap();
    }

    #[test]
    fn drain_stop_condition_empties_network() {
        let mut cfg = PaperConfig::new().total_packets(120).uniform();
        cfg.stop.delivered_packets = None; // drain mode
        let mut emu = build(&cfg).unwrap();
        emu.run().unwrap();
        assert_eq!(emu.delivered(), 120, "budgets still bound the run");
        assert_eq!(emu.ledger().in_flight(), 0);
    }

    #[test]
    fn burst_run_takes_longer_than_uniform() {
        let packets = 2_000;
        let uni = {
            let cfg = PaperConfig::new().total_packets(packets).uniform();
            let mut e = build(&cfg).unwrap();
            e.run().unwrap();
            e.now().raw()
        };
        let bur = {
            let cfg = PaperConfig::new().total_packets(packets).burst(16);
            let mut e = build(&cfg).unwrap();
            e.run().unwrap();
            e.now().raw()
        };
        assert!(
            bur > uni,
            "burst traffic congests more: uniform {uni} vs burst {bur} cycles"
        );
    }

    #[test]
    fn trace_driven_run_completes() {
        let cfg = PaperConfig::new().total_packets(200).trace_bursty(8);
        let mut emu = build(&cfg).unwrap();
        emu.run().unwrap();
        assert_eq!(emu.delivered(), 200);
    }

    #[test]
    fn mesh_baseline_drains() {
        let mut cfg = PlatformConfig::baseline("m", mesh(2, 2).unwrap()).unwrap();
        // Bound the generators so drain mode terminates.
        for (i, g) in cfg.generators.iter_mut().enumerate() {
            if let crate::config::TrafficModel::Uniform(u) = g {
                u.budget = Some(50 + i as u64);
            }
        }
        let mut emu = build(&cfg).unwrap();
        emu.run().unwrap();
        emu.ledger().verify_drained().unwrap();
        assert_eq!(emu.delivered(), 50 + 51 + 52 + 53);
    }

    #[test]
    fn cycle_limit_is_enforced() {
        let mut cfg = PaperConfig::new().total_packets(1_000_000).uniform();
        cfg.stop.cycle_limit = 500;
        let mut emu = build(&cfg).unwrap();
        let err = emu.run().unwrap_err();
        assert!(matches!(err, EmulationError::CycleLimitExceeded { .. }));
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let cfg = PaperConfig::new().total_packets(300).burst(8);
            let mut emu = build(&cfg).unwrap();
            emu.run().unwrap();
            (
                emu.now().raw(),
                emu.ledger().network_latency().sum(),
                emu.ledger().total_latency().sum(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn progress_callback_fires() {
        let cfg = PaperConfig::new().total_packets(100).uniform();
        let mut emu = build(&cfg).unwrap();
        let mut calls = 0;
        emu.run_with_progress(64, |_, _| calls += 1).unwrap();
        assert!(calls > 0);
    }

    #[test]
    fn recorded_trace_replays_identically() {
        let mut cfg = PaperConfig::new().total_packets(150).uniform();
        cfg.record_trace = true;
        let mut emu = build(&cfg).unwrap();
        emu.run().unwrap();
        let first_cycles = emu.now().raw();
        let (_, trace) = emu.into_results();
        let trace = trace.expect("recording enabled");
        assert_eq!(trace.len(), 150);

        // Replay through trace-driven TGs: same traffic, same cycles.
        let mut cfg2 = PaperConfig::new().total_packets(150).uniform();
        let sources = PaperConfig::new().sources();
        cfg2.generators = sources
            .iter()
            .map(|_| crate::config::TrafficModel::Trace(trace.clone()))
            .collect();
        cfg2.receptors = vec![nocem_stats::TrKind::TraceDriven; 4];
        let mut emu2 = build(&cfg2).unwrap();
        emu2.run().unwrap();
        assert_eq!(emu2.delivered(), 150);
        assert_eq!(emu2.now().raw(), first_cycles, "replay is cycle-exact");
    }

    #[test]
    fn dual_routing_uses_both_paths() {
        let cfg = PaperConfig::new()
            .total_packets(800)
            .routing(crate::config::PaperRouting::Dual {
                secondary_probability: 0.5,
            })
            .uniform();
        let mut emu = build(&cfg).unwrap();
        emu.run().unwrap();
        assert_eq!(emu.delivered(), 800);
        // The vertical links (detours) must have carried flits.
        let cc = emu.congestion();
        let setup = PaperConfig::new();
        let p = setup.setup();
        let vertical_flits: u64 = p
            .topology
            .links()
            .filter(|l| l.is_inter_switch() && !p.hot_links.contains(&l.id))
            .map(|l| cc.forwarded(l.id))
            .sum();
        assert!(vertical_flits > 0, "secondary paths unused");
    }

    #[test]
    fn congestion_counters_match_hot_links() {
        let cfg = PaperConfig::new().total_packets(3_000).uniform();
        let mut emu = build(&cfg).unwrap();
        emu.run().unwrap();
        let cc = emu.congestion();
        let setup = PaperConfig::new();
        let hot = setup.setup().hot_links;
        let cycles = emu.now().raw();
        for h in hot {
            let util = cc.utilization(h, cycles);
            assert!(
                (0.75..=1.0).contains(&util),
                "hot link utilization {util} (expected ~0.9)"
            );
        }
    }
}
