//! Error types of the emulation framework.

use nocem_common::ids::{EndpointId, SwitchId};
use nocem_platform::bus::BusError;
use nocem_stats::ledger::LedgerError;
use nocem_stats::receptor::ReceiveError;
use nocem_switch::fifo::FifoFullError;
use nocem_switch::switch::BuildSwitchError;
use nocem_topology::deadlock::DeadlockCycle;
use nocem_topology::TopologyError;

/// Errors detected while compiling a platform configuration.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CompileError {
    /// The topology or routing configuration is invalid.
    Topology(TopologyError),
    /// The routing configuration could deadlock the network.
    Deadlock(DeadlockCycle),
    /// A switch could not be instantiated.
    Switch {
        /// The offending switch.
        switch: SwitchId,
        /// The underlying error.
        source: BuildSwitchError,
    },
    /// The traffic configuration does not match the topology.
    TrafficMismatch {
        /// What is wrong.
        reason: String,
    },
    /// The routing tables use a virtual channel the switches do not
    /// have.
    VcOverflow {
        /// Highest VC any routing entry references (0-based).
        max_vc: u8,
        /// Configured VCs per switch port.
        num_vcs: u8,
    },
    /// The switch graph could not be partitioned for the sharded
    /// engine.
    Partition {
        /// What is wrong (shard count vs. switch count, coverage).
        reason: String,
    },
    /// A configured offered load exceeds link capacity somewhere.
    Overloaded {
        /// The predicted worst link load (flits/cycle).
        worst_load: f64,
    },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Topology(e) => write!(f, "topology error: {e}"),
            CompileError::Deadlock(c) => write!(f, "routing is not deadlock-free: {c}"),
            CompileError::Switch { switch, source } => {
                write!(f, "cannot build switch {switch}: {source}")
            }
            CompileError::TrafficMismatch { reason } => {
                write!(f, "traffic configuration mismatch: {reason}")
            }
            CompileError::Partition { reason } => {
                write!(f, "cannot shard the platform: {reason}")
            }
            CompileError::VcOverflow { max_vc, num_vcs } => write!(
                f,
                "routing uses VC {max_vc} but switches have only {num_vcs} VCs"
            ),
            CompileError::Overloaded { worst_load } => write!(
                f,
                "configured traffic overloads a link ({worst_load:.2} flits/cycle offered)"
            ),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<TopologyError> for CompileError {
    fn from(e: TopologyError) -> Self {
        CompileError::Topology(e)
    }
}

impl From<DeadlockCycle> for CompileError {
    fn from(e: DeadlockCycle) -> Self {
        CompileError::Deadlock(e)
    }
}

/// Errors raised while an emulation runs. Every variant indicates an
/// engine or wiring bug, not a legal traffic condition — the engines
/// are designed so that a correct build can never return one.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EmulationError {
    /// A buffer overflowed: flow-control credits were mis-wired.
    FifoOverflow {
        /// The switch whose buffer overflowed.
        switch: SwitchId,
        /// The underlying error.
        source: FifoFullError,
    },
    /// A receptor detected a protocol violation.
    Receive {
        /// The receptor.
        receptor: EndpointId,
        /// The underlying error.
        source: ReceiveError,
    },
    /// Packet conservation was violated.
    Ledger(LedgerError),
    /// The run hit the safety cycle limit before meeting its stop
    /// condition.
    CycleLimitExceeded {
        /// The configured limit.
        limit: u64,
        /// Packets delivered when the limit was hit.
        delivered: u64,
    },
    /// A register access performed by the run-control software
    /// faulted.
    Bus(BusError),
    /// A shard worker of the sharded engine violated the boundary
    /// protocol or terminated unexpectedly.
    Shard {
        /// The shard that faulted (`usize::MAX` when unattributable).
        shard: usize,
        /// What happened.
        reason: String,
    },
}

impl std::fmt::Display for EmulationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmulationError::FifoOverflow { switch, source } => {
                write!(f, "buffer overflow at switch {switch}: {source}")
            }
            EmulationError::Receive { receptor, source } => {
                write!(f, "reception error at {receptor}: {source}")
            }
            EmulationError::Ledger(e) => write!(f, "packet conservation violated: {e}"),
            EmulationError::CycleLimitExceeded { limit, delivered } => write!(
                f,
                "cycle limit {limit} exceeded with only {delivered} packets delivered"
            ),
            EmulationError::Bus(e) => write!(f, "bus fault: {e}"),
            EmulationError::Shard { shard, reason } => {
                if *shard == usize::MAX {
                    write!(f, "sharded engine fault: {reason}")
                } else {
                    write!(f, "shard {shard} fault: {reason}")
                }
            }
        }
    }
}

impl std::error::Error for EmulationError {}

impl From<LedgerError> for EmulationError {
    fn from(e: LedgerError) -> Self {
        EmulationError::Ledger(e)
    }
}

impl From<BusError> for EmulationError {
    fn from(e: BusError) -> Self {
        EmulationError::Bus(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocem_common::ids::FlowId;

    #[test]
    fn display_messages() {
        let e = CompileError::Topology(TopologyError::NoRoute {
            flow: FlowId::new(1),
        });
        assert!(e.to_string().contains("no route"));
        let e = CompileError::Overloaded { worst_load: 1.5 };
        assert!(e.to_string().contains("1.50"));
        let e = EmulationError::CycleLimitExceeded {
            limit: 100,
            delivered: 7,
        };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains('7'));
    }

    #[test]
    fn conversions() {
        let ce: CompileError = TopologyError::Empty.into();
        assert!(matches!(ce, CompileError::Topology(_)));
        let ee: EmulationError = LedgerError::DuplicateRelease(Default::default()).into();
        assert!(matches!(ee, EmulationError::Ledger(_)));
    }

    #[test]
    fn errors_are_send_sync() {
        fn ok<E: std::error::Error + Send + Sync + 'static>() {}
        ok::<CompileError>();
        ok::<EmulationError>();
    }
}
