//! The six-step emulation flow (the paper's slide 14):
//!
//! 1. **Platform compilation** — [`crate::compile::elaborate`]
//!    instantiates and wires every component;
//! 2. **Physical synthesis** — `nocem-area` estimates slices,
//!    utilization and the achievable clock on the target FPGA;
//! 3. **Platform initialization** — the software programs the control
//!    module over the bus;
//! 4. **Software compilation** — the driver set is assembled (in this
//!    reproduction, driver construction; recorded for the report);
//! 5. **Emulation** — the run itself, wall-clock timed;
//! 6. **Final report** — the monitor output "on the screen of the
//!    user's PC".

use crate::compile::{elaborate, Elaboration};
use crate::config::{PlatformConfig, TrafficModel};
use crate::engine::Emulation;
use crate::error::{CompileError, EmulationError};
use crate::results::EmulationResults;
use nocem_area::devices::{
    control_module, switch, tg_stochastic, tg_trace_driven, tr_stochastic, tr_trace_driven,
    StochasticTgParams, StochasticTrParams, SwitchParams, TraceTgParams, TraceTrParams,
};
use nocem_area::fpga::FpgaDevice;
use nocem_area::report::SynthesisReport;
use nocem_platform::control::ControlDriver;
use nocem_stats::TrKind;
use std::time::Instant;

/// Errors of the emulation flow.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FlowError {
    /// Step 1 or 2 failed.
    Compile(CompileError),
    /// Step 3 or 5 failed.
    Emulation(EmulationError),
    /// Step 2 found the platform does not fit the target FPGA.
    DoesNotFit {
        /// Required slices.
        required: u64,
        /// Available slices.
        available: u64,
    },
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::Compile(e) => write!(f, "compilation failed: {e}"),
            FlowError::Emulation(e) => write!(f, "emulation failed: {e}"),
            FlowError::DoesNotFit {
                required,
                available,
            } => write!(
                f,
                "platform needs {required} slices but the target offers {available}"
            ),
        }
    }
}

impl std::error::Error for FlowError {}

impl From<CompileError> for FlowError {
    fn from(e: CompileError) -> Self {
        FlowError::Compile(e)
    }
}

impl From<EmulationError> for FlowError {
    fn from(e: EmulationError) -> Self {
        FlowError::Emulation(e)
    }
}

/// Outcome of a complete flow.
#[derive(Debug, Clone)]
pub struct FlowReport {
    /// Step 2's synthesis report.
    pub synthesis_text: String,
    /// Estimated platform clock in MHz.
    pub clock_mhz: f64,
    /// Platform slices on the target.
    pub platform_slices: u64,
    /// Step 5's results.
    pub results: EmulationResults,
    /// Host wall-clock seconds spent emulating.
    pub wall_seconds: f64,
    /// Host emulation speed in platform cycles per second.
    pub cycles_per_second: f64,
    /// Step 6's monitor report.
    pub report_text: String,
}

impl FlowReport {
    /// What the run would have taken on the FPGA platform at the
    /// estimated clock.
    pub fn fpga_seconds(&self) -> f64 {
        self.results.fpga_time_seconds(self.clock_mhz * 1e6)
    }
}

/// Builds the synthesis report (flow step 2) for an elaboration.
pub fn synthesize(elab: &Elaboration, target: FpgaDevice) -> SynthesisReport {
    let mut report = SynthesisReport::new(target);
    let stoch_tg = elab
        .config
        .generators
        .iter()
        .filter(|g| !g.is_trace())
        .count() as u64;
    let trace_tg = elab.config.generators.len() as u64 - stoch_tg;
    if stoch_tg > 0 {
        report.add(
            "TG stochastic",
            stoch_tg,
            tg_stochastic(StochasticTgParams::default()),
        );
    }
    if trace_tg > 0 {
        report.add(
            "TG trace driven",
            trace_tg,
            tg_trace_driven(TraceTgParams::default()),
        );
    }
    let stoch_tr = elab
        .config
        .receptors
        .iter()
        .filter(|r| **r == TrKind::Stochastic)
        .count() as u64;
    let trace_tr = elab.config.receptors.len() as u64 - stoch_tr;
    if stoch_tr > 0 {
        report.add(
            "TR stochastic",
            stoch_tr,
            tr_stochastic(StochasticTrParams::default()),
        );
    }
    if trace_tr > 0 {
        report.add(
            "TR trace driven",
            trace_tr,
            tr_trace_driven(TraceTrParams::default()),
        );
    }
    report.add("Control module", 1, control_module());
    for s in elab.config.topology.switch_ids() {
        let info = elab.config.topology.switch(s);
        let params = SwitchParams {
            inputs: u64::from(info.inputs),
            outputs: u64::from(info.outputs),
            fifo_depth: u64::from(elab.config.switch.fifo_depth),
            flows: elab.routing.flow_count().max(1) as u64,
            num_vcs: u64::from(elab.config.switch.num_vcs),
        };
        report.add(format!("Switch s{}", s.raw()), 1, switch(params));
        report.set_max_switch_ports(u64::from(info.inputs.max(info.outputs)));
    }
    report
}

/// Runs the complete six-step flow against the default target FPGA
/// (XC2VP20, the part whose utilization matches the paper's Table 1).
///
/// # Errors
///
/// Returns [`FlowError`] if compilation fails, the platform does not
/// fit the FPGA, or the emulation faults.
pub fn run_flow(config: &PlatformConfig) -> Result<FlowReport, FlowError> {
    run_flow_on(config, nocem_area::fpga::XC2VP20)
}

/// Runs the complete six-step flow against a chosen target FPGA.
///
/// # Errors
///
/// Returns [`FlowError`] if compilation fails, the platform does not
/// fit the FPGA, or the emulation faults.
pub fn run_flow_on(config: &PlatformConfig, target: FpgaDevice) -> Result<FlowReport, FlowError> {
    // Step 1: platform compilation.
    let elab = elaborate(config)?;

    // Step 2: physical synthesis.
    let synthesis = synthesize(&elab, target);
    if !synthesis.fits() {
        return Err(FlowError::DoesNotFit {
            required: synthesis.total_slices(),
            available: target.slices,
        });
    }
    let clock_mhz = synthesis.clock_mhz();
    let platform_slices = synthesis.total_slices();
    let synthesis_text = synthesis.render();

    // Steps 3 + 4: platform initialization through the control driver
    // (the "software part" programming registers over the bus).
    let mut emu = Emulation::new(elab);
    let ctrl = ControlDriver::new(emu.address_map().devices()[0].addr);
    ctrl.configure(
        &mut emu,
        config.stop.delivered_packets.unwrap_or(0),
        config.stop.cycle_limit,
        config.seed,
    )
    .map_err(EmulationError::Bus)?;
    ctrl.start(&mut emu).map_err(EmulationError::Bus)?;

    // Step 5: emulation, wall-clock timed.
    let t0 = Instant::now();
    emu.run_programmed()?;
    let wall_seconds = t0.elapsed().as_secs_f64().max(1e-9);
    let cycles_per_second = emu.now().raw() as f64 / wall_seconds;

    // Step 6: final report.
    let results = emu.results();
    let mut report_text = results.render_report();
    report_text.push_str(&format!(
        "\n-- Emulation speed --\nhost: {:.0} cycles/s; platform at {:.0} MHz would take {:.3} s\n",
        cycles_per_second,
        clock_mhz,
        results.fpga_time_seconds(clock_mhz * 1e6),
    ));

    Ok(FlowReport {
        synthesis_text,
        clock_mhz,
        platform_slices,
        results,
        wall_seconds,
        cycles_per_second,
        report_text,
    })
}

/// Number of devices the flow will program, by model kind — the
/// "software compilation" inventory (step 4).
pub fn driver_inventory(config: &PlatformConfig) -> Vec<(String, usize)> {
    let mut stoch = 0;
    let mut trace = 0;
    for g in &config.generators {
        match g {
            TrafficModel::Trace(_) => trace += 1,
            _ => stoch += 1,
        }
    }
    vec![
        ("control driver".into(), 1),
        ("stochastic TG drivers".into(), stoch),
        ("trace TG drivers".into(), trace),
        ("TR drivers".into(), config.receptors.len()),
        ("switch drivers".into(), config.topology.switch_count()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PaperConfig;

    #[test]
    fn full_flow_on_paper_platform() {
        let cfg = PaperConfig::new().total_packets(300).uniform();
        let report = run_flow(&cfg).unwrap();
        assert_eq!(report.results.delivered, 300);
        assert!(report.clock_mhz >= 50.0);
        assert!(report.cycles_per_second > 0.0);
        assert!(report.platform_slices > 5_000);
        assert!(report.synthesis_text.contains("TG stochastic"));
        assert!(report.report_text.contains("Emulation speed"));
        assert!(report.fpga_seconds() > 0.0);
    }

    #[test]
    fn flow_rejects_undersized_fpga() {
        let cfg = PaperConfig::new().total_packets(10).uniform();
        let err = run_flow_on(&cfg, nocem_area::fpga::XC2VP7).unwrap_err();
        assert!(matches!(err, FlowError::DoesNotFit { .. }));
        assert!(err.to_string().contains("slices"));
    }

    #[test]
    fn trace_flow_reports_trace_devices() {
        let cfg = PaperConfig::new().total_packets(100).trace_bursty(4);
        let report = run_flow(&cfg).unwrap();
        assert!(report.synthesis_text.contains("TG trace driven"));
        assert!(report.synthesis_text.contains("TR trace driven"));
    }

    #[test]
    fn driver_inventory_counts() {
        let cfg = PaperConfig::new().uniform();
        let inv = driver_inventory(&cfg);
        let stoch = inv.iter().find(|(n, _)| n.contains("stochastic")).unwrap();
        assert_eq!(stoch.1, 4);
        let sw = inv.iter().find(|(n, _)| n.contains("switch")).unwrap();
        assert_eq!(sw.1, 6);
    }
}
