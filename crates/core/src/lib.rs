//! # nocem — a complete Network-on-Chip emulation framework
//!
//! Rust reproduction of *"A Complete Network-on-Chip Emulation
//! Framework"* (Genko, Atienza, De Micheli, Mendias, Hermida,
//! Catthoor — DATE 2005): a cycle-accurate, HW/SW-structured NoC
//! emulation platform with stochastic and trace-driven traffic
//! generators, statistics receptors, a memory-mapped control bus, an
//! FPGA synthesis model, and the full six-step emulation flow.
//!
//! The FPGA of the paper is replaced by a cycle-accurate software
//! engine (one [`engine::Emulation::step`] per platform clock); the
//! SystemC and ModelSim baselines of the paper's Table 2 are provided
//! by the companion crates `nocem-tlm` and `nocem-rtl`, which run the
//! *same elaboration* through slower simulation kernels.
//!
//! ## Quickstart
//!
//! ```
//! use nocem::config::PaperConfig;
//! use nocem::flow::run_flow;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's experimental setup: 6 switches, 4 TGs at 45% load,
//! // two inter-switch links at 90%.
//! let config = PaperConfig::new().total_packets(1_000).uniform();
//! let report = run_flow(&config)?;
//! assert_eq!(report.results.delivered, 1_000);
//! println!("{}", report.report_text);
//! # Ok(())
//! # }
//! ```
//!
//! ## Module map
//!
//! | Module | Flow step | Content |
//! |---|---|---|
//! | [`config`] | 1, 3 | platform + run configuration, paper presets |
//! | [`compile`] | 1 | elaboration: components, wiring, address map |
//! | [`flow`] | 1–6 | the complete emulation flow |
//! | [`engine`] | 5 | the cycle engine (and the bus the software sees) |
//! | [`shard`] | 5 | the sharded engine: one platform across worker threads |
//! | [`compiled`] | 5 | the compiled engine: the elaboration lowered to flat arrays |
//! | [`shard_compiled`] | 5 | the sharded compiled engine: array-slice shards, batched synchronization |
//! | [`clock`] | 5 | clock modes, quiescence, the fast-forward kernel, [`clock::SteppableEngine`] |
//! | [`devices`] | 3, 6 | register views and typed drivers |
//! | [`profile`] | 5, 6 | engine self-profiling: phase timers, span timelines, stall forensics |
//! | [`results`] | 6 | run results and the monitor report |
//! | [`sweep`] | — | multi-configuration sweep runner |
//! | [`error`] | — | compile/run error types |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod compile;
pub mod compiled;
pub mod config;
pub mod devices;
pub mod engine;
pub mod error;
pub mod flow;
pub mod profile;
pub mod results;
pub mod shard;
pub mod shard_compiled;
pub mod sweep;

pub use clock::{
    run_engine, run_engine_until, run_engine_with_progress, ClockMode, EngineSummary,
    EngineWarning, SteppableEngine,
};
pub use compile::{
    compute_routing, elaborate, elaborate_routed, lower, Elaboration, LoweredPlatform,
};
pub use compiled::CompiledEngine;
pub use config::{
    EngineKind, PaperConfig, PaperRouting, PlatformConfig, StopCondition, TrafficModel,
};
pub use engine::{build, Emulation};
pub use error::{CompileError, EmulationError};
pub use flow::{run_flow, run_flow_on, FlowReport};
pub use profile::{
    Phase, PhaseProfiler, PhaseReport, ProfileConfig, StallConfig, StallReport, WaitEdge,
};
pub use results::EmulationResults;
pub use shard::{build_engine, ShardedEngine};
pub use shard_compiled::ShardedCompiledEngine;
pub use sweep::{
    run_config, run_config_routed, run_sweep, run_sweep_engine, run_sweep_indexed, run_sweep_with,
    AnyEngine, SweepPoint,
};
