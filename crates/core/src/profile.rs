//! Emulator self-profiling: phase timers, span timelines, and stall
//! forensics.
//!
//! Everything else in the observability stack watches the *emulated
//! network*; this module watches the *emulator*. It has three parts,
//! all opt-in through [`crate::config::PlatformConfig::profile`]:
//!
//! * **Phase profiling** — a [`PhaseProfiler`] of chained monotonic
//!   timestamps accumulating per-[`Phase`] nanoseconds inside every
//!   engine's step loop, reported as a [`PhaseReport`] through
//!   [`crate::clock::SteppableEngine::profile`]. Because each lap
//!   closes exactly where the next opens, the per-cycle phases sum to
//!   the step's wall time (no double counting, no gaps), which is what
//!   makes "switch allocation is ~half the budget" a checkable number.
//! * **Span timelines** — the sharded engines record wall-clock spans
//!   (windows, neighbour exchanges, replay) into bounded per-thread
//!   [`nocem_telemetry::SpanBuffer`]s merged into a Chrome-trace JSON
//!   via [`nocem_telemetry::SpanTrace`].
//! * **Stall forensics** — a [`StallWatchdog`] that notices when a
//!   run with packets in flight stops making any ledger progress for
//!   [`StallConfig::no_progress_cycles`] cycles and latches a
//!   [`StallReport`]: every waiting input VC as a [`WaitEdge`]
//!   (which (link, VC) it needs credits toward, whether a worm holds
//!   the output), a downstream blame chain, and the top blocked links.
//!
//! The ledger phase is *nested*: ledger calls happen inside the TG,
//! NI and commit phases, so the profiler carves their time out of the
//! enclosing lap ([`PhaseProfiler::nested`]) to keep phases disjoint.

use nocem_common::table::{Align, TextTable};
use nocem_switch::switch::CREDITS_INFINITE;
use std::time::Instant;

/// A named slice of an engine's cycle (or one-time setup) budget.
///
/// The single-threaded engines use the per-cycle phases
/// `FastForward..=Ledger`; the sharded engines additionally split
/// worker time into `WorkerCompute`/`Exchange` and coordinator time
/// into `CoordWait`/`Apply`. `Elaborate` and `Lower` are one-time
/// setup costs seeded when the engine is built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Platform elaboration (components, routing, wiring).
    Elaborate = 0,
    /// Lowering the elaboration to flat arrays (compiled engines).
    Lower = 1,
    /// Quiescence check and clock-gated fast-forward.
    FastForward = 2,
    /// Telemetry probe and window recording.
    Probe = 3,
    /// Traffic-generator ticks, releases and pending retries.
    TgTick = 4,
    /// Switch decide: routing, VC allocation, switch allocation.
    Decide = 5,
    /// Network-interface flit injection.
    NiInject = 6,
    /// Switch commit: pops, forwards, credits, deliveries.
    Commit = 7,
    /// Packet-ledger bookkeeping (nested inside TG/NI/commit).
    Ledger = 8,
    /// Sharded worker: owned-slice compute inside a window.
    WorkerCompute = 9,
    /// Sharded worker: boundary send + receive/replay per cycle.
    Exchange = 10,
    /// Sharded worker: waiting on the phase barrier (interpreted
    /// sharded engine only).
    Barrier = 11,
    /// Coordinator: blocked waiting for worker reports.
    CoordWait = 12,
    /// Coordinator: applying buffered worker events to the ledger.
    Apply = 13,
    /// Process evaluation and update — the whole scheduler cycle of
    /// the TLM and RTL models, which interleave the per-cycle phases
    /// inside their processes and cannot split them.
    Processes = 14,
}

impl Phase {
    /// Number of phases (accumulator array length).
    pub const COUNT: usize = 15;

    /// Every phase, in accumulator order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Elaborate,
        Phase::Lower,
        Phase::FastForward,
        Phase::Probe,
        Phase::TgTick,
        Phase::Decide,
        Phase::NiInject,
        Phase::Commit,
        Phase::Ledger,
        Phase::WorkerCompute,
        Phase::Exchange,
        Phase::Barrier,
        Phase::CoordWait,
        Phase::Apply,
        Phase::Processes,
    ];

    /// Stable lowercase name used in reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Elaborate => "elaborate",
            Phase::Lower => "lower",
            Phase::FastForward => "fast-forward",
            Phase::Probe => "probe",
            Phase::TgTick => "tg-tick",
            Phase::Decide => "decide",
            Phase::NiInject => "ni-inject",
            Phase::Commit => "commit",
            Phase::Ledger => "ledger",
            Phase::WorkerCompute => "worker-compute",
            Phase::Exchange => "exchange",
            Phase::Barrier => "barrier",
            Phase::CoordWait => "coordinator-wait",
            Phase::Apply => "apply",
            Phase::Processes => "processes",
        }
    }
}

/// Configuration of the self-profiling layer. Profiling is opt-in:
/// engines pay for timestamps only when a config is present, and a
/// profiled run remains ledger-identical to an unprofiled one.
///
/// # Examples
///
/// ```
/// use nocem::profile::ProfileConfig;
/// let p = ProfileConfig::default().with_stall(5_000);
/// assert!(p.spans);
/// assert_eq!(p.stall.unwrap().no_progress_cycles, 5_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileConfig {
    /// Record wall-clock span timelines in the sharded engines
    /// (bounded per-thread buffers, merged into a Chrome trace).
    pub spans: bool,
    /// Hard cap on spans per thread; further spans are counted as
    /// dropped instead of stored.
    pub span_capacity: usize,
    /// Enable the stall watchdog.
    pub stall: Option<StallConfig>,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig {
            spans: true,
            span_capacity: 16_384,
            stall: None,
        }
    }
}

impl ProfileConfig {
    /// Enables the stall watchdog with the given no-progress window.
    #[must_use]
    pub fn with_stall(mut self, no_progress_cycles: u64) -> Self {
        self.stall = Some(StallConfig { no_progress_cycles });
        self
    }

    /// Disables span timelines (phase accumulators only).
    #[must_use]
    pub fn without_spans(mut self) -> Self {
        self.spans = false;
        self
    }
}

/// Stall-watchdog configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallConfig {
    /// Trip after this many consecutive cycles with packets in flight
    /// but zero released/injected/delivered progress.
    pub no_progress_cycles: u64,
}

impl Default for StallConfig {
    fn default() -> Self {
        StallConfig {
            no_progress_cycles: 10_000,
        }
    }
}

/// Per-phase wall-clock accumulators driven by chained timestamps.
///
/// The step loop takes one timestamp per phase boundary: each
/// [`PhaseProfiler::lap`] charges the time since the previous
/// timestamp to the closing phase and returns the new timestamp, so
/// consecutive phases share their boundary instant and the per-cycle
/// phases sum to the step's wall time exactly. Nested scopes (the
/// ledger) are charged to their own phase and subtracted from the
/// enclosing lap by [`PhaseProfiler::nested`].
#[derive(Debug, Clone)]
pub struct PhaseProfiler {
    acc: [u64; Phase::COUNT],
    nested_ns: u64,
    stepped_cycles: u64,
}

impl Default for PhaseProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl PhaseProfiler {
    /// A profiler with all accumulators at zero.
    pub fn new() -> Self {
        PhaseProfiler {
            acc: [0; Phase::COUNT],
            nested_ns: 0,
            stepped_cycles: 0,
        }
    }

    /// Opens a step: counts the cycle and returns the chain's first
    /// timestamp.
    pub fn begin_step(&mut self) -> Instant {
        self.stepped_cycles += 1;
        Instant::now()
    }

    /// Opens a timing chain without counting a cycle (worker windows,
    /// coordinator sections).
    pub fn begin(&self) -> Instant {
        Instant::now()
    }

    /// Closes `phase` at the current instant: charges it the time
    /// since `prev` (minus any nested time recorded in between) and
    /// returns the new chain timestamp.
    pub fn lap(&mut self, prev: Instant, phase: Phase) -> Instant {
        let now = Instant::now();
        let d = now.saturating_duration_since(prev).as_nanos() as u64;
        self.acc[phase as usize] += d.saturating_sub(self.nested_ns);
        self.nested_ns = 0;
        now
    }

    /// Charges a nested scope begun at `start` to `phase` and marks
    /// it for subtraction from the enclosing lap.
    pub fn nested(&mut self, start: Instant, phase: Phase) {
        let d = start.elapsed().as_nanos() as u64;
        self.acc[phase as usize] += d;
        self.nested_ns += d;
    }

    /// Adds raw nanoseconds to `phase` (seeding one-time costs like
    /// elaboration, merging externally measured sections).
    pub fn add_ns(&mut self, phase: Phase, ns: u64) {
        self.acc[phase as usize] += ns;
    }

    /// Adds externally stepped cycles (sharded workers count their
    /// window cycles this way).
    pub fn add_cycles(&mut self, cycles: u64) {
        self.stepped_cycles += cycles;
    }

    /// Element-wise merge of another profiler's accumulators (cycle
    /// count is *not* merged: shards step the same platform cycles).
    pub fn absorb(&mut self, other: &PhaseProfiler) {
        for (a, b) in self.acc.iter_mut().zip(other.acc.iter()) {
            *a += b;
        }
    }

    /// Accumulated nanoseconds of `phase`.
    pub fn ns(&self, phase: Phase) -> u64 {
        self.acc[phase as usize]
    }

    /// Cycles counted through [`PhaseProfiler::begin_step`] /
    /// [`PhaseProfiler::add_cycles`].
    pub fn stepped_cycles(&self) -> u64 {
        self.stepped_cycles
    }

    /// Snapshots the accumulators into a [`PhaseReport`].
    pub fn report(&self, label: impl Into<String>) -> PhaseReport {
        let total_ns: u64 = self.acc.iter().sum();
        let cycles = self.stepped_cycles.max(1);
        let mut phases: Vec<PhaseStat> = Phase::ALL
            .iter()
            .filter(|p| self.acc[**p as usize] > 0)
            .map(|&p| PhaseStat {
                phase: p.name(),
                ns: self.acc[p as usize],
                share: self.acc[p as usize] as f64 / total_ns.max(1) as f64,
                ns_per_cycle: self.acc[p as usize] as f64 / cycles as f64,
            })
            .collect();
        phases.sort_by_key(|p| std::cmp::Reverse(p.ns));
        PhaseReport {
            label: label.into(),
            total_ns,
            stepped_cycles: self.stepped_cycles,
            phases,
            workers: Vec::new(),
        }
    }
}

/// One phase's cost in a [`PhaseReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStat {
    /// Phase name (see [`Phase::name`]).
    pub phase: &'static str,
    /// Accumulated nanoseconds.
    pub ns: u64,
    /// Fraction of the report's `total_ns`.
    pub share: f64,
    /// Nanoseconds per stepped cycle (one-time phases are averaged
    /// over the same cycle count; read them as totals instead).
    pub ns_per_cycle: f64,
}

/// Where an engine's time went: per-phase totals, shares and
/// per-cycle costs, with per-worker sub-reports for the sharded
/// engines.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseReport {
    /// Engine label (e.g. `"compiled"`, `"sharded-compiled/4x16"`).
    pub label: String,
    /// Sum of all phase accumulators in nanoseconds.
    pub total_ns: u64,
    /// Cycles actually stepped (skipped cycles cost no time).
    pub stepped_cycles: u64,
    /// Non-zero phases, descending by time.
    pub phases: Vec<PhaseStat>,
    /// Per-worker sub-reports (sharded engines), in shard order.
    pub workers: Vec<PhaseReport>,
}

impl PhaseReport {
    /// Nanoseconds of the named phase (0 when absent).
    pub fn ns_of(&self, phase: Phase) -> u64 {
        self.phases
            .iter()
            .find(|p| p.phase == phase.name())
            .map_or(0, |p| p.ns)
    }

    /// Share of the named phase (0.0 when absent).
    pub fn share_of(&self, phase: Phase) -> f64 {
        self.phases
            .iter()
            .find(|p| p.phase == phase.name())
            .map_or(0.0, |p| p.share)
    }

    /// Nanoseconds spent inside the step loop: `total_ns` minus the
    /// one-time `elaborate`/`lower` costs. This is what the "phases
    /// cover ≥90% of wall time" invariant is measured against.
    pub fn step_ns(&self) -> u64 {
        self.total_ns - self.ns_of(Phase::Elaborate) - self.ns_of(Phase::Lower)
    }

    /// Renders the report as a text table (workers indented below the
    /// aggregate).
    pub fn render(&self) -> String {
        let mut out = format!(
            "phase profile: {} ({} cycles stepped, {:.3} ms total)\n",
            self.label,
            self.stepped_cycles,
            self.total_ns as f64 / 1e6
        );
        let mut t = TextTable::with_columns(&["phase", "time (ms)", "share", "ns/cycle"]);
        for col in 1..4 {
            t.align(col, Align::Right);
        }
        for p in &self.phases {
            t.row(vec![
                p.phase.to_string(),
                format!("{:.3}", p.ns as f64 / 1e6),
                format!("{:.1}%", p.share * 100.0),
                format!("{:.1}", p.ns_per_cycle),
            ]);
        }
        out.push_str(&t.to_string());
        for w in &self.workers {
            out.push('\n');
            for line in w.render().lines() {
                out.push_str("  ");
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }

    /// Hand-rolled JSON object (the workspace has no JSON
    /// dependency), e.g. for the benchmark artifacts.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"label\":\"{}\",\"total_ns\":{},\"stepped_cycles\":{},\"phases\":[",
            self.label, self.total_ns, self.stepped_cycles
        );
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"phase\":\"{}\",\"ns\":{},\"share\":{:.6},\"ns_per_cycle\":{:.3}}}",
                p.phase, p.ns, p.share, p.ns_per_cycle
            ));
        }
        out.push_str("],\"workers\":[");
        for (i, w) in self.workers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&w.to_json());
        }
        out.push_str("]}");
        out
    }
}

/// Detects a run that has stopped making progress and latches one
/// forensic [`StallReport`].
///
/// Progress is any change in the ledger's released/injected/delivered
/// counters. The watchdog trips when packets are in flight and none
/// of the three counters moved for
/// [`StallConfig::no_progress_cycles`] consecutive cycles — an idle
/// warm-up or a drained run never trips it. It trips at most once:
/// the first forensic snapshot is the interesting one.
#[derive(Debug, Clone)]
pub struct StallWatchdog {
    cfg: StallConfig,
    last: (u64, u64, u64),
    progress_at: u64,
    report: Option<Box<StallReport>>,
}

impl StallWatchdog {
    /// A watchdog with no progress observed yet.
    pub fn new(cfg: StallConfig) -> Self {
        StallWatchdog {
            cfg,
            last: (0, 0, 0),
            progress_at: 0,
            report: None,
        }
    }

    /// Feeds one cycle's ledger counters. Returns `true` exactly once,
    /// on the cycle the watchdog trips — the caller must then capture
    /// a snapshot and [`StallWatchdog::latch`] it.
    pub fn observe(
        &mut self,
        now: u64,
        released: u64,
        injected: u64,
        delivered: u64,
        in_flight: u64,
    ) -> bool {
        let counts = (released, injected, delivered);
        if counts != self.last {
            self.last = counts;
            self.progress_at = now;
            return false;
        }
        if in_flight == 0 {
            self.progress_at = now;
            return false;
        }
        self.report.is_none() && now.saturating_sub(self.progress_at) >= self.cfg.no_progress_cycles
    }

    /// Stores the forensic snapshot for the trip.
    pub fn latch(&mut self, report: StallReport) {
        self.report = Some(Box::new(report));
    }

    /// The latched report, when the watchdog tripped.
    pub fn report(&self) -> Option<&StallReport> {
        self.report.as_deref()
    }
}

/// Downstream end of a [`WaitEdge`]'s chosen output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitDest {
    /// The output's link feeds another switch's input port.
    Switch {
        /// Downstream switch index.
        switch: u32,
        /// Downstream input port index.
        input: u32,
    },
    /// The output ejects into a receptor.
    Receptor {
        /// Receptor index.
        index: u32,
    },
}

/// One waiting input VC at stall time: what it holds, where it wants
/// to go, and why it cannot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitEdge {
    /// Switch holding the flits.
    pub switch: u32,
    /// Input port of the waiting FIFO.
    pub in_port: u32,
    /// Input VC of the waiting FIFO.
    pub in_vc: u8,
    /// Output port the head wants (allocated worm or sticky choice).
    pub out_port: u32,
    /// Output VC the head wants.
    pub out_vc: u8,
    /// Link id the output drives — the (link, VC) the edge is starved
    /// toward when `credits == 0`.
    pub link: u32,
    /// Buffered flits in the waiting FIFO.
    pub occupancy: u32,
    /// The FIFO's capacity.
    pub fifo_depth: u32,
    /// Credits left toward the downstream (link, VC).
    pub credits: u32,
    /// The credit cap of that output VC.
    pub credit_cap: u32,
    /// Whether this input VC holds the output VC's wormhole.
    pub worm_open: bool,
    /// Downstream end of the chosen output.
    pub dest: WaitDest,
}

impl WaitEdge {
    /// Whether the edge is waiting on credits (zero toward a finite
    /// downstream buffer).
    pub fn starved(&self) -> bool {
        self.credits == 0 && self.credit_cap != CREDITS_INFINITE
    }
}

/// One congested link in the stall snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockedLink {
    /// Link id.
    pub link: u32,
    /// Cumulative blocked cycles on that link.
    pub blocked: u64,
}

/// The forensic snapshot latched by the [`StallWatchdog`]: every
/// waiting edge, a downstream blame chain, and the most blocked
/// links.
#[derive(Debug, Clone, PartialEq)]
pub struct StallReport {
    /// Cycle the watchdog tripped at.
    pub at_cycle: u64,
    /// The configured no-progress window.
    pub window: u64,
    /// Packets in flight at trip time.
    pub in_flight: u64,
    /// Waiting edges: credit-starved first, then by occupancy
    /// descending, then by switch id.
    pub edges: Vec<WaitEdge>,
    /// Most blocked links (descending), from the engine's cumulative
    /// congestion counters.
    pub top_blocked: Vec<BlockedLink>,
    /// Indices into `edges` forming the blame chain: starts at the
    /// worst starved edge and follows each edge's flits downstream
    /// until ejection, a cycle, or an edge with no successor.
    pub chain: Vec<usize>,
}

impl StallReport {
    /// Sorts the edges, computes the blame chain, and assembles the
    /// report.
    pub fn new(
        at_cycle: u64,
        window: u64,
        in_flight: u64,
        mut edges: Vec<WaitEdge>,
        top_blocked: Vec<BlockedLink>,
    ) -> Self {
        edges.sort_by_key(|e| {
            (
                !e.starved(),
                std::cmp::Reverse(e.occupancy),
                e.switch,
                e.in_port,
                e.in_vc,
            )
        });
        let chain = blame_chain(&edges);
        StallReport {
            at_cycle,
            window,
            in_flight,
            edges,
            top_blocked,
            chain,
        }
    }

    /// Number of credit-starved edges.
    pub fn starved_count(&self) -> usize {
        self.edges.iter().filter(|e| e.starved()).count()
    }

    /// The blame chain's edges, in chain order.
    pub fn chain_edges(&self) -> impl Iterator<Item = &WaitEdge> {
        self.chain.iter().map(|&i| &self.edges[i])
    }

    /// Renders the human-readable blame-chain report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "stall watchdog: no progress for {} cycles at cycle {} ({} packets in flight)\n",
            self.window, self.at_cycle, self.in_flight
        );
        out.push_str("blame chain:\n");
        for e in self.chain_edges() {
            out.push_str(&format!("  {}\n", render_edge(e)));
        }
        if self.chain.is_empty() {
            out.push_str("  (no waiting edges captured)\n");
        }
        out.push_str(&format!(
            "waiting edges: {} ({} credit-starved)\n",
            self.edges.len(),
            self.starved_count()
        ));
        if !self.top_blocked.is_empty() {
            out.push_str("top blocked links:");
            for b in &self.top_blocked {
                out.push_str(&format!(" link{} ({})", b.link, b.blocked));
            }
            out.push('\n');
        }
        out
    }

    /// One JSON object per line: a header, then every edge (chain
    /// position attached where applicable), then the blocked links.
    pub fn to_jsonl(&self) -> String {
        let mut out = format!(
            "{{\"kind\":\"stall\",\"at_cycle\":{},\"window\":{},\"in_flight\":{},\
             \"edges\":{},\"starved\":{}}}\n",
            self.at_cycle,
            self.window,
            self.in_flight,
            self.edges.len(),
            self.starved_count()
        );
        for (i, e) in self.edges.iter().enumerate() {
            let dest = match e.dest {
                WaitDest::Switch { switch, input } => {
                    format!("\"dest_switch\":{switch},\"dest_input\":{input}")
                }
                WaitDest::Receptor { index } => format!("\"dest_receptor\":{index}"),
            };
            let chain_pos = self
                .chain
                .iter()
                .position(|&c| c == i)
                .map_or(String::new(), |p| format!(",\"chain_pos\":{p}"));
            out.push_str(&format!(
                "{{\"kind\":\"edge\",\"switch\":{},\"in_port\":{},\"in_vc\":{},\
                 \"out_port\":{},\"out_vc\":{},\"link\":{},\"occupancy\":{},\
                 \"fifo_depth\":{},\"credits\":{},\"worm_open\":{},\
                 \"starved\":{},{dest}{chain_pos}}}\n",
                e.switch,
                e.in_port,
                e.in_vc,
                e.out_port,
                e.out_vc,
                e.link,
                e.occupancy,
                e.fifo_depth,
                e.credits,
                e.worm_open,
                e.starved(),
            ));
        }
        for b in &self.top_blocked {
            out.push_str(&format!(
                "{{\"kind\":\"blocked-link\",\"link\":{},\"blocked\":{}}}\n",
                b.link, b.blocked
            ));
        }
        out
    }
}

fn render_edge(e: &WaitEdge) -> String {
    let cap = if e.credit_cap == CREDITS_INFINITE {
        "inf".to_string()
    } else {
        e.credit_cap.to_string()
    };
    let dest = match e.dest {
        WaitDest::Switch { switch, .. } => format!("s{switch}"),
        WaitDest::Receptor { index } => format!("tr{index} (ejection)"),
    };
    format!(
        "s{} in{}/vc{} -> out{}/vc{} link{} -> {}: credits {}/{}, fifo {}/{}{}",
        e.switch,
        e.in_port,
        e.in_vc,
        e.out_port,
        e.out_vc,
        e.link,
        dest,
        e.credits,
        cap,
        e.occupancy,
        e.fifo_depth,
        if e.worm_open { ", worm open" } else { "" }
    )
}

/// Follows the worst waiting edge downstream: the next hop is the
/// edge at the destination switch whose input (port, VC) receives
/// this edge's flits. Stops at an ejection, a missing successor, or a
/// previously visited edge (a cyclic dependency — classic deadlock).
fn blame_chain(edges: &[WaitEdge]) -> Vec<usize> {
    if edges.is_empty() {
        return Vec::new();
    }
    let mut chain = vec![0];
    let mut visited = vec![false; edges.len()];
    visited[0] = true;
    loop {
        let e = &edges[*chain.last().expect("chain starts non-empty")];
        let WaitDest::Switch { switch, input } = e.dest else {
            break;
        };
        let next = edges
            .iter()
            .position(|f| f.switch == switch && f.in_port == input && f.in_vc == e.out_vc);
        match next {
            Some(i) if !visited[i] => {
                visited[i] = true;
                chain.push(i);
            }
            _ => break,
        }
    }
    chain
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laps_are_chained_and_sum_to_the_step() {
        let mut p = PhaseProfiler::new();
        let t = p.begin_step();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let t = p.lap(t, Phase::Decide);
        let _ = p.lap(t, Phase::Commit);
        assert!(p.ns(Phase::Decide) >= 2_000_000);
        assert_eq!(p.stepped_cycles(), 1);
        let r = p.report("x");
        assert_eq!(r.total_ns, p.ns(Phase::Decide) + p.ns(Phase::Commit));
        assert_eq!(r.step_ns(), r.total_ns);
    }

    #[test]
    fn nested_time_is_carved_out_of_the_enclosing_lap() {
        let mut p = PhaseProfiler::new();
        let t = p.begin_step();
        let inner = p.begin();
        std::thread::sleep(std::time::Duration::from_millis(2));
        p.nested(inner, Phase::Ledger);
        let _ = p.lap(t, Phase::Commit);
        assert!(p.ns(Phase::Ledger) >= 2_000_000);
        assert!(
            p.ns(Phase::Commit) < p.ns(Phase::Ledger),
            "commit keeps only the non-ledger remainder"
        );
    }

    #[test]
    fn report_sorts_shares_and_serializes() {
        let mut p = PhaseProfiler::new();
        p.add_cycles(10);
        p.add_ns(Phase::Decide, 300);
        p.add_ns(Phase::Commit, 700);
        let r = p.report("unit");
        assert_eq!(r.phases[0].phase, "commit");
        assert!((r.phases[0].share - 0.7).abs() < 1e-9);
        assert!((r.phases[1].ns_per_cycle - 30.0).abs() < 1e-9);
        let json = r.to_json();
        nocem_telemetry::validate_json(&json).unwrap();
        assert!(json.contains("\"phase\":\"commit\""));
        assert!(r.render().contains("decide"));
    }

    #[test]
    fn watchdog_trips_once_after_the_window() {
        let mut w = StallWatchdog::new(StallConfig {
            no_progress_cycles: 10,
        });
        assert!(!w.observe(0, 1, 1, 0, 1));
        for c in 1..10 {
            assert!(!w.observe(c, 1, 1, 0, 1), "cycle {c}");
        }
        assert!(w.observe(10, 1, 1, 0, 1));
        w.latch(StallReport::new(10, 10, 1, Vec::new(), Vec::new()));
        assert!(!w.observe(11, 1, 1, 0, 1), "latched: never trips again");
        assert!(w.report().is_some());
    }

    #[test]
    fn watchdog_ignores_idle_and_progressing_runs() {
        let mut w = StallWatchdog::new(StallConfig {
            no_progress_cycles: 5,
        });
        // In-flight zero: an idle gap, not a stall.
        for c in 0..50 {
            assert!(!w.observe(c, 3, 3, 3, 0));
        }
        // Progress every 4 cycles: never trips.
        let mut delivered = 3;
        for c in 50..100 {
            if c % 4 == 0 {
                delivered += 1;
            }
            assert!(!w.observe(c, 9, 9, delivered, 2));
        }
    }

    fn edge(switch: u32, in_port: u32, out_vc: u8, credits: u32, dest: WaitDest) -> WaitEdge {
        WaitEdge {
            switch,
            in_port,
            in_vc: out_vc,
            out_port: 0,
            out_vc,
            link: 100 + switch,
            occupancy: 4,
            fifo_depth: 4,
            credits,
            credit_cap: 4,
            worm_open: true,
            dest,
        }
    }

    #[test]
    fn blame_chain_follows_credit_starvation_downstream() {
        let edges = vec![
            edge(
                12,
                1,
                1,
                0,
                WaitDest::Switch {
                    switch: 13,
                    input: 1,
                },
            ),
            edge(13, 1, 1, 0, WaitDest::Receptor { index: 2 }),
            edge(
                7,
                0,
                0,
                2,
                WaitDest::Switch {
                    switch: 12,
                    input: 1,
                },
            ),
        ];
        let r = StallReport::new(
            1000,
            100,
            5,
            edges,
            vec![BlockedLink {
                link: 112,
                blocked: 9,
            }],
        );
        let chain: Vec<u32> = r.chain_edges().map(|e| e.switch).collect();
        assert_eq!(
            chain,
            [12, 13],
            "starved edges sort first and chain downstream"
        );
        let text = r.render();
        assert!(text.contains("s12 in1/vc1"));
        assert!(text.contains("link112"));
        assert!(text.contains("tr2 (ejection)"));
        let jsonl = r.to_jsonl();
        for line in jsonl.lines() {
            nocem_telemetry::validate_json(line).unwrap();
        }
        assert!(jsonl.contains("\"chain_pos\":0"));
    }

    #[test]
    fn blame_chain_detects_cycles() {
        let edges = vec![
            edge(
                1,
                0,
                0,
                0,
                WaitDest::Switch {
                    switch: 2,
                    input: 0,
                },
            ),
            edge(
                2,
                0,
                0,
                0,
                WaitDest::Switch {
                    switch: 1,
                    input: 0,
                },
            ),
        ];
        let r = StallReport::new(0, 1, 1, edges, Vec::new());
        assert_eq!(r.chain.len(), 2, "cycle visits each edge once");
    }
}
