//! Emulation results: everything the final report (step 6 of the
//! flow) presents.

use crate::compile::ReceptorDevice;
use crate::engine::Emulation;
use nocem_common::ids::LinkId;
use nocem_common::table::{Align, TextTable};
use nocem_common::time::Cycle;
use nocem_platform::monitor::Monitor;
use nocem_stats::congestion::{CongestionCounter, VcOccupancy};
use nocem_stats::latency::LatencyAnalyzer;

/// Summary of one receptor at end of run.
#[derive(Debug, Clone, PartialEq)]
pub struct ReceptorSummary {
    /// Device label (`"tr0"`, …).
    pub label: String,
    /// Packets fully received.
    pub packets: u64,
    /// Flits received.
    pub flits: u64,
    /// The paper's "total running time" in cycles.
    pub running_time: u64,
    /// Mean network latency over this receptor's packets (trace
    /// receptors only).
    pub mean_network_latency: Option<f64>,
    /// Packet-length histogram — the paper's "image of the received
    /// traffic" (stochastic receptors only).
    pub length_histogram: Option<nocem_stats::histogram::Histogram>,
    /// Tail-to-tail inter-arrival histogram (stochastic receptors
    /// only).
    pub interarrival_histogram: Option<nocem_stats::histogram::Histogram>,
}

/// The complete outcome of an emulation run.
///
/// Compares by value; the gated-vs-ungated equivalence tests compare
/// entire results with only the (intentionally differing)
/// `cycles_skipped` counter normalized away.
#[derive(Debug, Clone, PartialEq)]
pub struct EmulationResults {
    /// Configuration name.
    pub name: String,
    /// Total run length in platform cycles (the paper's run-time
    /// metric, Figure 2's y-axis). Identical across clock modes.
    pub cycles: u64,
    /// Cycles the fast-forward kernel jumped over (0 under
    /// `ClockMode::EveryCycle`). These cycles are *included* in
    /// `cycles` — they happened, they were just not stepped.
    pub cycles_skipped: u64,
    /// Packets released by the traffic models (and accepted).
    pub released: u64,
    /// Packets whose head entered the network.
    pub injected: u64,
    /// Packets fully delivered.
    pub delivered: u64,
    /// Flits fully delivered.
    pub delivered_flits: u64,
    /// Cycles a traffic model spent stalled on a full source queue
    /// (generator backpressure; no packets are dropped).
    pub stalled_cycles: u64,
    /// Network latency (injection → delivery) over all packets —
    /// Figure 4's metric.
    pub network_latency: LatencyAnalyzer,
    /// Total latency (release → delivery) over all packets.
    pub total_latency: LatencyAnalyzer,
    /// Per-link congestion counters — Figure 3's metric.
    pub congestion: CongestionCounter,
    /// Platform-wide per-VC input-buffer occupancy watermarks (the
    /// highest fill any per-VC FIFO of any switch reached).
    pub vc_occupancy: VcOccupancy,
    /// Per-receptor summaries.
    pub receptors: Vec<ReceptorSummary>,
}

impl EmulationResults {
    /// Collects results from an emulation (exposed through
    /// [`Emulation::results`]).
    pub(crate) fn collect(emu: &Emulation) -> Self {
        let elab = crate::engine::elab(emu);
        let ledger = crate::engine::ledger_of(emu);
        let receptors = elab
            .receptors
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let (counters, lat, hists) = match r {
                    ReceptorDevice::Stochastic(r) => (
                        *r.counters(),
                        None,
                        Some((
                            r.length_histogram().clone(),
                            r.interarrival_histogram().clone(),
                        )),
                    ),
                    ReceptorDevice::Trace(r) => (*r.counters(), r.network_latency().mean(), None),
                };
                let (length_histogram, interarrival_histogram) = match hists {
                    Some((l, a)) => (Some(l), Some(a)),
                    None => (None, None),
                };
                ReceptorSummary {
                    label: format!("tr{i}"),
                    packets: counters.packets,
                    flits: counters.flits,
                    running_time: counters.running_time(),
                    mean_network_latency: lat,
                    length_histogram,
                    interarrival_histogram,
                }
            })
            .collect();
        let mut vc_occupancy = VcOccupancy::new(usize::from(elab.config.switch.num_vcs));
        for sw in &elab.switches {
            for (vc, &peak) in sw.counters().max_vc_occupancy.iter().enumerate() {
                vc_occupancy.record(vc, peak);
            }
        }
        EmulationResults {
            name: elab.config.name.clone(),
            cycles: emu.now().raw(),
            cycles_skipped: emu.cycles_skipped(),
            released: ledger.released(),
            injected: ledger.injected(),
            delivered: ledger.delivered(),
            delivered_flits: emu.delivered_flits(),
            stalled_cycles: emu.stalled(),
            network_latency: ledger.network_latency().clone(),
            total_latency: ledger.total_latency().clone(),
            congestion: emu.congestion(),
            vc_occupancy,
            receptors,
        }
    }

    /// Delivered throughput in flits per cycle.
    pub fn throughput(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.delivered_flits as f64 / self.cycles as f64
        }
    }

    /// Effective clock-gating speedup: simulated cycles per cycle
    /// actually stepped (1.0 when nothing was skipped).
    pub fn gating_speedup(&self) -> f64 {
        crate::clock::effective_speedup(self.cycles, self.cycles_skipped)
    }

    /// Aggregate congestion rate over `links` (blocked / busy cycles).
    pub fn congestion_rate(&self, links: &[LinkId]) -> f64 {
        self.congestion.aggregate_rate(links)
    }

    /// Utilization of `link` over the whole run.
    pub fn link_utilization(&self, link: LinkId) -> f64 {
        self.congestion.utilization(link, self.cycles)
    }

    /// Run time in seconds at an emulation clock of `clock_hz` (what
    /// the run would have taken on the FPGA platform).
    pub fn fpga_time_seconds(&self, clock_hz: f64) -> f64 {
        Cycle::new(self.cycles).to_seconds(clock_hz)
    }

    /// Renders the monitor's final report.
    pub fn render_report(&self) -> String {
        let mut m = Monitor::new(self.name.clone());
        let mut overview = TextTable::with_columns(&["metric", "value"]);
        overview.align(1, Align::Right);
        overview.row(vec!["cycles".into(), self.cycles.to_string()]);
        if self.cycles_skipped > 0 {
            overview.row(vec![
                "cycles skipped (gated)".into(),
                format!("{} ({:.1}x)", self.cycles_skipped, self.gating_speedup()),
            ]);
        }
        overview.row(vec!["packets released".into(), self.released.to_string()]);
        overview.row(vec!["packets delivered".into(), self.delivered.to_string()]);
        overview.row(vec![
            "TG stall cycles".into(),
            self.stalled_cycles.to_string(),
        ]);
        overview.row(vec![
            "throughput (flits/cycle)".into(),
            format!("{:.3}", self.throughput()),
        ]);
        if let Some(mean) = self.network_latency.mean() {
            overview.row(vec![
                "mean network latency".into(),
                format!("{mean:.1} cyc"),
            ]);
            overview.row(vec![
                "max network latency".into(),
                format!("{} cyc", self.network_latency.max().unwrap_or(0)),
            ]);
        }
        m.table("Run overview", &overview);

        let mut per_tr = TextTable::with_columns(&[
            "receptor",
            "packets",
            "flits",
            "running time",
            "mean net latency",
        ]);
        for col in 1..5 {
            per_tr.align(col, Align::Right);
        }
        for r in &self.receptors {
            per_tr.row(vec![
                r.label.clone(),
                r.packets.to_string(),
                r.flits.to_string(),
                r.running_time.to_string(),
                r.mean_network_latency
                    .map_or_else(|| "-".into(), |l| format!("{l:.1}")),
            ]);
        }
        m.table("Receptors", &per_tr);

        if let Some((hottest, rate)) = self.congestion.hottest() {
            m.section(
                "Congestion",
                format!(
                    "network rate {:.3}; hottest link {hottest} at {rate:.3}",
                    self.congestion.network_rate()
                ),
            );
        }

        // The paper's stochastic receptors show "histograms, which
        // show an image of the received traffic".
        for r in &self.receptors {
            if let Some(h) = &r.interarrival_histogram {
                if h.count() > 0 {
                    m.section(
                        format!("{} inter-arrival histogram (cycles)", r.label),
                        h.render_ascii(40),
                    );
                }
            }
        }
        m.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PaperConfig;
    use crate::engine::build;

    fn run(packets: u64) -> EmulationResults {
        let cfg = PaperConfig::new().total_packets(packets).trace_bursty(8);
        let mut emu = build(&cfg).unwrap();
        emu.run().unwrap();
        emu.results()
    }

    #[test]
    fn results_account_for_all_packets() {
        let r = run(200);
        assert_eq!(r.delivered, 200);
        assert!(r.released >= r.delivered);
        assert!(r.injected >= r.delivered);
        assert_eq!(r.network_latency.count(), 200);
        assert!(r.throughput() > 0.0);
        assert!(r.cycles > 0);
    }

    #[test]
    fn receptor_summaries_sum_to_total() {
        let r = run(200);
        let sum: u64 = r.receptors.iter().map(|t| t.packets).sum();
        assert_eq!(sum, 200);
        assert!(r.receptors.iter().all(|t| t.mean_network_latency.is_some()));
    }

    #[test]
    fn report_renders_key_sections() {
        let r = run(100);
        let report = r.render_report();
        assert!(report.contains("Run overview"));
        assert!(report.contains("Receptors"));
        assert!(report.contains("packets delivered"));
        assert!(report.contains("tr0"));
    }

    #[test]
    fn stochastic_report_shows_histograms() {
        let cfg = PaperConfig::new().total_packets(500).uniform();
        let mut emu = build(&cfg).unwrap();
        emu.run().unwrap();
        let r = emu.results();
        assert!(r.receptors.iter().all(|t| t.length_histogram.is_some()));
        assert!(r.receptors.iter().all(|t| t
            .interarrival_histogram
            .as_ref()
            .is_some_and(|h| h.count() > 0)));
        let report = r.render_report();
        assert!(report.contains("inter-arrival histogram"));
        assert!(report.contains('#'), "histogram bars rendered");
        // Trace-driven receptors carry no histograms.
        let trace = run(100);
        assert!(trace.receptors.iter().all(|t| t.length_histogram.is_none()));
    }

    #[test]
    fn hot_links_show_high_utilization() {
        let r = run(2_000);
        let hot = PaperConfig::new().setup().hot_links;
        for h in hot {
            let u = r.link_utilization(h);
            assert!(u > 0.5, "hot link utilization {u}");
        }
    }

    #[test]
    fn fpga_time_uses_50mhz_clock() {
        let r = run(100);
        let secs = r.fpga_time_seconds(50e6);
        assert!((secs - r.cycles as f64 / 50e6).abs() < 1e-12);
    }
}
