//! The sharded emulation engine: one huge topology, many worker
//! threads, bit-identical results.
//!
//! [`crate::engine::Emulation`] steps every switch of the platform on
//! one thread; past a few hundred switches that single thread is the
//! wall-clock bottleneck, and the scenario-level parallelism of
//! [`crate::sweep::run_sweep`] cannot help a *single* 32×32 run.
//! [`ShardedEngine`] removes that wall by partitioning the switch
//! graph into `K` shards (a [`Partition`] implementation from
//! `nocem-topology`; the default is the grid-stripe partitioner) and
//! stepping each shard's switches, network interfaces, traffic
//! generators and receptors on its own persistent worker thread.
//!
//! # The shard protocol
//!
//! The engines' intra-cycle ordering (TG tick → decide → NI send →
//! commit; see `crate::engine`) has exactly one cross-switch
//! interaction: the commit phase pushes flits into downstream input
//! buffers and returns credits upstream, and both only become
//! *observable* at the next cycle's decide. That makes the cycle
//! embarrassingly parallel up to a single exchange point, which the
//! sharded engine exploits:
//!
//! 1. **tick** — every worker ticks its own TGs (with the same
//!    park-and-retry backpressure as the single-threaded engine) and
//!    publishes a released-this-cycle flag per generator into a shared
//!    slot array;
//! 2. **id barrier** — after a barrier, each worker counts the flags
//!    of all lower-numbered generators, which yields exactly the
//!    [`PacketId`]s the single-threaded engine would have assigned in
//!    its global generator-order loop, with no round trip;
//! 3. **decide / send / commit** — each worker steps its own switches.
//!    Transfers whose far end is shard-local are applied directly;
//!    transfers crossing a shard boundary are *recorded* — flit
//!    records addressed to the downstream switch's input, credit
//!    records addressed to the upstream switch's output — into one
//!    outgoing buffer per neighbor shard;
//! 4. **batched exchange** — each worker then sends **exactly one
//!    `BoundaryMsg`** (possibly empty — the message doubles as the
//!    cycle marker) per neighbor shard on an unbounded channel, and
//!    blocking-receives exactly one tagged message from each neighbor
//!    in return, replaying the records into its own switches. Buffer
//!    pushes and credit increments commute with the pops that already
//!    happened (a link carries at most one flit per cycle, so no two
//!    records of one cycle touch the same FIFO slot), and credit-gated
//!    flow control guarantees the pushed buffer has room. The
//!    point-to-point cycle tags replace the old exchange barrier and
//!    the old per-(boundary link, VC) rendezvous channels: boundary
//!    traffic now costs one channel operation per neighbor per cycle
//!    instead of two per crossing flit. Each worker then reports its
//!    cycle's ledger events and its quiescence status to the
//!    coordinator;
//! 5. **coordinator** — the [`ShardedEngine`] applies releases (sorted
//!    by id), injections and deliveries (sorted by the ejecting
//!    switch/port, the single-threaded commit order) to the one
//!    [`PacketLedger`], advances the clock and enforces the cycle
//!    limit.
//!
//! Every phase is deterministic and every reordering across threads is
//! applied through a commutative or re-sorted operation, so a sharded
//! run produces the *same packet ledger* as the single-threaded engine
//! — cycle for cycle, packet for packet — which the lockstep tests in
//! `tests/sharded_engine.rs` assert on meshes and tori at low and
//! saturating load.
//!
//! # Clock gating across shards
//!
//! Hybrid clock gating (see [`crate::clock`]) extends to shards with a
//! **cross-shard event horizon**: each worker reports, per cycle,
//! whether its shard is locally quiescent and the earliest future
//! event of its TGs. The coordinator may fast-forward only when
//! *every* shard is quiescent and the ledger carries no in-flight
//! packet, and only up to the minimum next-event over all shards
//! (clamped to the cycle limit) — a shard never skips past another
//! shard's horizon. The jump is replayed inside every worker via
//! [`TrafficGenerator::skip_to`], exactly like the single-threaded
//! fast-forward kernel.
//!
//! # What the sharded engine does not do
//!
//! It implements the full [`SteppableEngine`] contract (so run loops,
//! sweeps and lockstep harnesses drive it unchanged) and produces
//! complete [`EmulationResults`], but it does not expose the
//! memory-mapped bus ([`crate::engine::Emulation`] remains the
//! register-programming target) and does not record traces.

use crate::clock::{ClockMode, EngineSummary, SteppableEngine};
use crate::compile::{elaborate, Elaboration, InSource, OutTarget, ReceptorDevice};
use crate::config::{EngineKind, PlatformConfig};
use crate::error::{CompileError, EmulationError};
use crate::profile::{Phase, PhaseProfiler, PhaseReport};
use crate::results::{EmulationResults, ReceptorSummary};
use nocem_common::flit::{Flit, PacketDescriptor};
use nocem_common::ids::{EndpointId, LinkId, PacketId, PortId, SwitchId, VcId};
use nocem_common::time::Cycle;
use nocem_stats::congestion::CongestionCounter;
use nocem_stats::latency::LatencyAnalyzer;
use nocem_stats::ledger::PacketLedger;
use nocem_switch::switch::Switch;
use nocem_telemetry::{Collector, CumulativeProbe, SpanBuffer, SpanEvent, SpanTrace};
use nocem_topology::partition::{GridStripes, Partition, PartitionMap};
use nocem_traffic::generator::{PacketRequest, TrafficGenerator};
use nocem_traffic::ni::SourceNi;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Barrier};
use std::thread::JoinHandle;
use std::time::Instant;

/// Commands the coordinator sends to every worker.
enum Cmd {
    /// Execute one platform cycle at `now`. When `skip_from` is set,
    /// first replay the quiescent window `[skip_from, now)` inside
    /// every TG (the cross-shard fast-forward). `base_id` is the
    /// platform-wide packet id the first release of this cycle takes.
    Cycle {
        now: Cycle,
        skip_from: Option<Cycle>,
        base_id: u64,
    },
    /// Snapshot the shard's components for results collection.
    Collect,
    /// Report the shard-local cumulative telemetry counters. Sent
    /// only between cycles, when worker state equals the
    /// single-threaded engine's end-of-cycle state (every boundary
    /// flit and credit was drained before the last report).
    Probe,
    /// Report the shard's self-profiling state (phase accumulators
    /// and span buffer). Only sent when profiling is configured.
    Profile,
    /// Exit the worker loop.
    Shutdown,
}

/// One delivered packet, tagged with its single-threaded commit-order
/// key (ejecting switch, output port) so the coordinator can replay
/// deliveries in exactly the order the single-threaded engine would.
struct Delivery {
    switch: u32,
    port: u8,
    receptor: usize,
    packet: PacketId,
    len_flits: u16,
}

/// Per-cycle shard status, cached by the coordinator for the stop
/// condition and the gating decision of the *next* step.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ShardStatus {
    /// Local half of the platform quiescence predicate: no parked TG
    /// request, every NI idle with credits home, every switch
    /// quiescent.
    pub(crate) quiescent: bool,
    /// Earliest future event over this shard's TGs, evaluated at the
    /// cycle the next step will execute (`u64::MAX` = never).
    pub(crate) next_event: u64,
    /// All TGs exhausted.
    pub(crate) exhausted: bool,
    /// No parked TG request.
    pub(crate) pending_none: bool,
    /// Every NI idle.
    pub(crate) nis_idle: bool,
}

/// What a worker reports after executing one cycle.
struct CycleReport {
    releases: Vec<PacketDescriptor>,
    injects: Vec<PacketId>,
    deliveries: Vec<Delivery>,
    stalled_delta: u64,
    status: ShardStatus,
    error: Option<EmulationError>,
}

/// Snapshot of a shard's components for results collection.
struct Snapshot {
    /// `(global switch id, switch clone)`.
    switches: Vec<(u32, Switch)>,
    /// `(global generator index, NI clone)`.
    nis: Vec<(usize, SourceNi)>,
    /// `(global receptor index, receptor clone)`.
    receptors: Vec<(usize, ReceptorDevice)>,
}

/// One worker's self-profiling payload: its phase accumulators plus a
/// copy of its span buffer. Copies, not drains — the worker keeps
/// accumulating, so the coordinator may ask again later in the run.
struct WorkerProfile {
    profiler: PhaseProfiler,
    spans: Vec<SpanEvent>,
    dropped: u64,
}

enum Report {
    Cycle(Box<CycleReport>),
    Snapshot(Box<Snapshot>),
    Probe(Box<CumulativeProbe>),
    Profile(Box<WorkerProfile>),
}

/// Where a shard-local switch output leads.
enum LocalOut {
    /// A switch of the same shard.
    Switch { switch: usize, port: PortId },
    /// A shard-local receptor.
    Receptor { index: usize },
    /// A boundary link: record the flit for neighbor `nbr`, addressed
    /// to the downstream switch's *receiver-local* index and input
    /// port (resolved at construction, so the receiver applies records
    /// without any lookup).
    Remote {
        nbr: usize,
        switch: usize,
        port: PortId,
    },
}

/// What feeds a shard-local switch input (for credit returns).
enum LocalIn {
    /// A switch of the same shard.
    Switch { switch: usize, port: PortId },
    /// A shard-local network interface.
    Ni { index: usize },
    /// A boundary link: record the credit for neighbor `nbr`,
    /// addressed to the upstream switch's *receiver-local* index and
    /// output port.
    Remote {
        nbr: usize,
        switch: usize,
        port: PortId,
    },
}

/// One cycle's boundary traffic from one shard to one neighbor shard:
/// every flit and credit that crossed their mutual boundary this
/// cycle, in the sender's deterministic commit order. Sent exactly
/// once per (directed neighbor pair, cycle) — an empty message is the
/// cycle marker that lets the receiver's blocking receive replace the
/// old exchange barrier.
struct BoundaryMsg {
    /// The cycle the records belong to (receiver-side skew check).
    cycle: u64,
    /// `(receiver-local switch, input port, flit)`.
    flits: Vec<(usize, PortId, Flit)>,
    /// `(receiver-local switch, output port, vc)`.
    credits: Vec<(usize, PortId, VcId)>,
}

/// The state owned by one worker thread.
struct Worker {
    shard: usize,
    switches: Vec<Switch>,
    /// Local switch index → global switch id.
    switch_gids: Vec<u32>,
    /// `[local switch][output port]`.
    routes_out: Vec<Vec<LocalOut>>,
    /// `[local switch][input port]`.
    routes_in: Vec<Vec<LocalIn>>,
    nis: Vec<SourceNi>,
    tgs: Vec<Box<dyn TrafficGenerator + Send>>,
    /// Local generator index → global generator index (ascending).
    tg_gidx: Vec<usize>,
    /// Local generator index → source endpoint.
    tg_endpoints: Vec<EndpointId>,
    /// Local generator index → (local switch, input port) it injects
    /// into.
    injection: Vec<(usize, PortId)>,
    pending: Vec<Option<PacketRequest>>,
    receptors: Vec<ReceptorDevice>,
    /// Local receptor index → global receptor index.
    receptor_gidx: Vec<usize>,
    /// One sender per neighbor shard (ascending shard id), paired
    /// index-wise with `out_flits` / `out_credits`.
    out_txs: Vec<Sender<BoundaryMsg>>,
    /// One receiver per neighbor shard (ascending shard id).
    in_rxs: Vec<Receiver<BoundaryMsg>>,
    /// Per out-neighbor flit records buffered during the commit phase.
    out_flits: Vec<Vec<(usize, PortId, Flit)>>,
    /// Per out-neighbor credit records buffered during the commit
    /// phase.
    out_credits: Vec<Vec<(usize, PortId, VcId)>>,
    /// `[local switch][output port]` → global link (telemetry probe
    /// attribution, mirroring the single-threaded congestion map).
    out_links: Vec<Vec<LinkId>>,
    /// Local generator index → its injection link.
    ni_links: Vec<LinkId>,
    /// Global link count (probe shape; every shard reports the full
    /// shape with zeros outside its own resources, so the coordinator
    /// merge is a plain element-wise add).
    link_count: usize,
    num_vcs: usize,
    /// Per global generator: released-a-packet-this-cycle flag, shared
    /// by all workers for packet-id assignment. Each worker writes
    /// only its own generators' slots, every cycle, before the id
    /// barrier; after the barrier everyone may read every slot. The
    /// coordinator's collect-all-reports-before-next-command ordering
    /// guarantees no worker writes cycle `t + 1` flags before every
    /// worker has read the cycle `t` flags.
    slots: Arc<Vec<AtomicU8>>,
    barrier: Arc<Barrier>,
    /// Worker-side phase accumulators (compute vs. barrier vs.
    /// boundary exchange), present when profiling is configured.
    profiler: Option<PhaseProfiler>,
    /// Worker-side span timeline on this shard's track, timed against
    /// the coordinator's epoch.
    spans: Option<SpanBuffer>,
    cmd_rx: Receiver<Cmd>,
    rep_tx: Sender<Report>,
}

impl Worker {
    fn run(mut self) {
        while let Ok(cmd) = self.cmd_rx.recv() {
            match cmd {
                Cmd::Cycle {
                    now,
                    skip_from,
                    base_id,
                } => {
                    let report = self.cycle(now, skip_from, base_id);
                    if self.rep_tx.send(Report::Cycle(Box::new(report))).is_err() {
                        break;
                    }
                }
                Cmd::Collect => {
                    let snap = Snapshot {
                        switches: self
                            .switch_gids
                            .iter()
                            .zip(&self.switches)
                            .map(|(&g, sw)| (g, sw.clone()))
                            .collect(),
                        nis: self
                            .tg_gidx
                            .iter()
                            .zip(&self.nis)
                            .map(|(&g, ni)| (g, ni.clone()))
                            .collect(),
                        receptors: self
                            .receptor_gidx
                            .iter()
                            .zip(&self.receptors)
                            .map(|(&g, r)| (g, r.clone()))
                            .collect(),
                    };
                    if self.rep_tx.send(Report::Snapshot(Box::new(snap))).is_err() {
                        break;
                    }
                }
                Cmd::Probe => {
                    if self
                        .rep_tx
                        .send(Report::Probe(Box::new(self.probe())))
                        .is_err()
                    {
                        break;
                    }
                }
                Cmd::Profile => {
                    let (spans, dropped) = self
                        .spans
                        .clone()
                        .map_or((Vec::new(), 0), SpanBuffer::into_parts);
                    let profile = Box::new(WorkerProfile {
                        profiler: self.profiler.clone().unwrap_or_default(),
                        spans,
                        dropped,
                    });
                    if self.rep_tx.send(Report::Profile(profile)).is_err() {
                        break;
                    }
                }
                Cmd::Shutdown => break,
            }
        }
    }

    /// Shard-local cumulative telemetry counters, full platform shape
    /// (zeros outside this shard). Safe between cycles only: by then
    /// `drain_and_status` has applied every boundary transfer, so the
    /// FIFO occupancies equal the single-threaded end-of-cycle state.
    fn probe(&self) -> CumulativeProbe {
        let mut p = CumulativeProbe::new(self.link_count, self.num_vcs);
        for (ls, sw) in self.switches.iter().enumerate() {
            let c = sw.counters();
            for (o, &link) in self.out_links[ls].iter().enumerate() {
                p.add_link(
                    link,
                    c.blocked_cycles_per_output[o],
                    c.forwarded_per_output[o],
                );
            }
            for v in 0..self.num_vcs {
                p.add_vc(v, sw.occupancy_of_vc(VcId::new(v as u8)));
            }
        }
        for (i, ni) in self.nis.iter().enumerate() {
            let c = ni.counters();
            p.add_link(self.ni_links[i], c.blocked_cycles, c.injected_flits);
        }
        p
    }

    /// Executes one platform cycle. Errors — including panics — are
    /// latched instead of propagated mid-cycle so the exchange cadence
    /// is always kept: a shard that unwound before the id barrier or
    /// before sending its boundary messages would strand every peer at
    /// `Barrier::wait` or at a blocking receive forever and deadlock
    /// the coordinator. Each work segment therefore runs under
    /// `catch_unwind`, with the barrier wait and the boundary sends
    /// outside the catch.
    fn cycle(&mut self, now: Cycle, skip_from: Option<Cycle>, base_id: u64) -> CycleReport {
        use std::panic::{catch_unwind, AssertUnwindSafe};

        let shard = self.shard;
        let mut t = self.profiler.as_mut().map(|p| {
            p.add_cycles(1);
            p.begin()
        });
        let ticked = catch_unwind(AssertUnwindSafe(|| self.tick_phase(now, skip_from)));
        self.lap(&mut t, Phase::WorkerCompute);
        // Id barrier: release flags of every shard are published.
        self.barrier.wait();
        self.lap(&mut t, Phase::Barrier);
        let (accepted, stalled_delta, mut err) = match ticked {
            Ok((accepted, stalled)) => (accepted, stalled, None),
            Err(payload) => (Vec::new(), 0, Some(panic_fault(shard, &payload))),
        };

        let mut out = WorkOutcome::default();
        if err.is_none() {
            match catch_unwind(AssertUnwindSafe(|| {
                self.work_phase(now, base_id, &accepted)
            })) {
                Ok(done) => out = done,
                Err(payload) => err = Some(panic_fault(shard, &payload)),
            }
        }
        if err.is_none() {
            err = out.error.take();
        }
        self.lap(&mut t, Phase::WorkerCompute);
        let exchange_start = t;

        // Batched exchange: exactly one message per neighbor shard,
        // even on an error cycle (a partial buffer is fine — the run
        // is aborting — but a *missing* message would deadlock the
        // neighbor's blocking receive). Then receive and replay one
        // tagged message from every neighbor and take the
        // end-of-cycle status.
        self.send_boundary(now);
        let status = match catch_unwind(AssertUnwindSafe(|| self.drain_and_status(now))) {
            Ok((drain_err, status)) => {
                if err.is_none() {
                    err = drain_err;
                }
                status
            }
            Err(payload) => {
                err.get_or_insert(panic_fault(shard, &payload));
                // The run is aborting; report a conservative status
                // that can never enable a fast-forward.
                ShardStatus {
                    quiescent: false,
                    next_event: u64::MAX,
                    exhausted: false,
                    pending_none: false,
                    nis_idle: false,
                }
            }
        };
        self.lap(&mut t, Phase::Exchange);
        if let (Some(s), Some(buf)) = (exchange_start, self.spans.as_mut()) {
            buf.record("exchange", s, now.raw());
        }
        CycleReport {
            releases: out.releases,
            injects: out.injects,
            deliveries: out.deliveries,
            stalled_delta,
            status,
            error: err,
        }
    }

    /// Closes `phase` on the chained profiling timestamp, advancing it
    /// to now. A no-op (one `Option` check) when profiling is off.
    fn lap(&mut self, t: &mut Option<Instant>, phase: Phase) {
        if let (Some(prev), Some(p)) = (t.as_mut(), self.profiler.as_mut()) {
            *prev = p.lap(*prev, phase);
        }
    }

    /// Phase 1: tick the traffic models with the single-threaded
    /// engine's park-and-retry backpressure, publishing one released
    /// flag per generator (and first replaying a coordinator
    /// fast-forward window inside every TG).
    fn tick_phase(
        &mut self,
        now: Cycle,
        skip_from: Option<Cycle>,
    ) -> (Vec<(usize, PacketRequest)>, u64) {
        if let Some(from) = skip_from {
            for tg in &mut self.tgs {
                tg.skip_to(from, now);
            }
        }
        let mut accepted: Vec<(usize, PacketRequest)> = Vec::new();
        let mut stalled_delta = 0u64;
        for i in 0..self.tgs.len() {
            let req = match self.pending[i].take() {
                Some(req) if self.nis[i].can_accept() => Some(req),
                Some(req) => {
                    self.pending[i] = Some(req);
                    stalled_delta += 1;
                    None
                }
                None => match self.tgs[i].tick(now) {
                    Some(req) if self.nis[i].can_accept() => Some(req),
                    Some(req) => {
                        self.pending[i] = Some(req);
                        stalled_delta += 1;
                        None
                    }
                    None => None,
                },
            };
            self.slots[self.tg_gidx[i]].store(u8::from(req.is_some()), Ordering::Relaxed);
            if let Some(req) = req {
                accepted.push((i, req));
            }
        }
        (accepted, stalled_delta)
    }

    /// Phases 2–5: id assignment, decide, NI send, commit.
    fn work_phase(
        &mut self,
        now: Cycle,
        base_id: u64,
        accepted: &[(usize, PacketRequest)],
    ) -> WorkOutcome {
        let mut err: Option<EmulationError> = None;

        // Phase 2 (after the id barrier): assign the exact packet ids
        // the single-threaded engine would — `base_id` plus the number
        // of releases by lower-numbered generators — and offer the
        // descriptors into the NIs.
        let mut releases = Vec::with_capacity(accepted.len());
        let mut cursor = 0usize;
        let mut before = 0u64;
        for &(i, req) in accepted {
            let gidx = self.tg_gidx[i];
            while cursor < gidx {
                before += u64::from(self.slots[cursor].load(Ordering::Relaxed));
                cursor += 1;
            }
            let desc = PacketDescriptor {
                id: PacketId::new(base_id + before),
                src: self.tg_endpoints[i],
                dst: req.dst,
                flow: req.flow,
                len_flits: req.len_flits,
                release: now,
            };
            let offered = self.nis[i].offer(desc);
            debug_assert!(offered, "capacity was checked before the offer");
            releases.push(desc);
        }

        // Phase 3: all shard switches decide on start-of-cycle state.
        for sw in &mut self.switches {
            sw.decide();
        }

        // Phase 4: network interfaces inject (always shard-local: an
        // endpoint lives in its switch's shard).
        let mut injects = Vec::new();
        for i in 0..self.nis.len() {
            let Some(flit) = self.nis[i].tick_send() else {
                continue;
            };
            if flit.kind.is_head() {
                injects.push(flit.packet);
            }
            let (s, port) = self.injection[i];
            if let Err(source) = self.switches[s].accept(port, flit) {
                err.get_or_insert(EmulationError::FifoOverflow {
                    switch: SwitchId::new(self.switch_gids[s]),
                    source,
                });
            }
        }

        // Phase 5: commit. Local transfers apply immediately; boundary
        // transfers go into their link's per-VC channels.
        let mut deliveries = Vec::new();
        'commit: for s in 0..self.switches.len() {
            if err.is_some() {
                break;
            }
            let sends = self.switches[s].commit_sends();
            for t in sends {
                match &self.routes_in[s][t.input.index()] {
                    LocalIn::Switch { switch, port } => {
                        self.switches[*switch].credit_return(*port, t.input_vc);
                    }
                    LocalIn::Ni { index } => self.nis[*index].credit_return(),
                    LocalIn::Remote { nbr, switch, port } => {
                        self.out_credits[*nbr].push((*switch, *port, t.input_vc));
                    }
                }
                match &self.routes_out[s][t.output.index()] {
                    LocalOut::Switch { switch, port } => {
                        if let Err(source) = self.switches[*switch].accept(*port, t.flit) {
                            err.get_or_insert(EmulationError::FifoOverflow {
                                switch: SwitchId::new(self.switch_gids[*switch]),
                                source,
                            });
                            break 'commit;
                        }
                    }
                    LocalOut::Receptor { index } => {
                        let completed = match &mut self.receptors[*index] {
                            ReceptorDevice::Stochastic(r) => {
                                r.accept(&t.flit, now).map_err(|source| (r.id(), source))
                            }
                            ReceptorDevice::Trace(r) => {
                                r.accept(&t.flit, now).map_err(|source| (r.id(), source))
                            }
                        };
                        match completed {
                            Ok(Some(pkt)) => deliveries.push(Delivery {
                                switch: self.switch_gids[s],
                                port: t.output.raw(),
                                receptor: self.receptor_gidx[*index],
                                packet: pkt.id,
                                len_flits: pkt.len_flits,
                            }),
                            Ok(None) => {}
                            Err((receptor, source)) => {
                                err.get_or_insert(EmulationError::Receive { receptor, source });
                                break 'commit;
                            }
                        }
                    }
                    LocalOut::Remote { nbr, switch, port } => {
                        self.out_flits[*nbr].push((*switch, *port, t.flit));
                    }
                }
            }
        }
        WorkOutcome {
            releases,
            injects,
            deliveries,
            error: err,
        }
    }

    /// Sends exactly one [`BoundaryMsg`] per neighbor shard carrying
    /// everything the commit phase recorded for it this cycle. A send
    /// only fails when the neighbor already exited (the run is being
    /// torn down), so failures are ignored — the cadence, not the
    /// delivery, is the invariant.
    fn send_boundary(&mut self, now: Cycle) {
        for (i, tx) in self.out_txs.iter().enumerate() {
            let msg = BoundaryMsg {
                cycle: now.raw(),
                flits: std::mem::take(&mut self.out_flits[i]),
                credits: std::mem::take(&mut self.out_credits[i]),
            };
            let _ = tx.send(msg);
        }
    }

    /// Phases 6–7: blocking-receive one boundary message from every
    /// neighbor shard, replay its records into our switches, and take
    /// the end-of-cycle status. The per-message cycle tag is the
    /// synchronization point that replaced the exchange barrier; the
    /// replay order across records is irrelevant because a link
    /// carries at most one flit (and one credit per VC) per cycle, so
    /// no two records of one cycle touch the same FIFO slot.
    fn drain_and_status(&mut self, now: Cycle) -> (Option<EmulationError>, ShardStatus) {
        let mut err: Option<EmulationError> = None;
        for rx in &self.in_rxs {
            let Ok(msg) = rx.recv() else {
                // The neighbor hung up mid-run: latch a shard fault so
                // the coordinator aborts instead of diverging.
                err.get_or_insert(EmulationError::Shard {
                    shard: self.shard,
                    reason: "a neighbor shard exited mid-cycle".into(),
                });
                continue;
            };
            debug_assert_eq!(msg.cycle, now.raw(), "boundary exchange cycle skew");
            for (ls, port, flit) in msg.flits {
                if let Err(source) = self.switches[ls].accept(port, flit) {
                    err.get_or_insert(EmulationError::FifoOverflow {
                        switch: SwitchId::new(self.switch_gids[ls]),
                        source,
                    });
                }
            }
            for (ls, port, vc) in msg.credits {
                self.switches[ls].credit_return(port, vc);
            }
        }

        // The status the coordinator uses for its next stop / gating
        // decision. `next_event` is evaluated at the cycle the next
        // step will execute.
        let pending_none = self.pending.iter().all(Option::is_none);
        let nis_idle = self.nis.iter().all(SourceNi::is_idle);
        let status = ShardStatus {
            quiescent: pending_none
                && nis_idle
                && self.nis.iter().all(SourceNi::credits_home)
                && self.switches.iter().all(Switch::is_quiescent),
            next_event: self
                .tgs
                .iter()
                .map(|t| t.next_event_cycle(now.next()).cycle_or_max())
                .min()
                .unwrap_or(u64::MAX),
            exhausted: self.tgs.iter().all(|t| t.is_exhausted()),
            pending_none,
            nis_idle,
        };
        (err, status)
    }
}

/// What the work phase of one cycle produced.
#[derive(Default)]
struct WorkOutcome {
    releases: Vec<PacketDescriptor>,
    injects: Vec<PacketId>,
    deliveries: Vec<Delivery>,
    error: Option<EmulationError>,
}

/// Renders a worker panic as a shard fault the coordinator can return
/// (the alternative — letting the worker unwind mid-cycle — would
/// strand its peers at a barrier and deadlock the whole engine).
pub(crate) fn panic_fault(shard: usize, payload: &(dyn std::any::Any + Send)) -> EmulationError {
    let msg = payload
        .downcast_ref::<&str>()
        .copied()
        .map(str::to_owned)
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into());
    EmulationError::Shard {
        shard,
        reason: format!("worker panicked: {msg}"),
    }
}

struct WorkerHandle {
    cmd: Sender<Cmd>,
    rep: Receiver<Report>,
    join: Option<JoinHandle<()>>,
}

/// The sharded emulation engine.
///
/// Construct with [`ShardedEngine::build`] (grid-stripe partitioning,
/// shard count from the argument) or [`ShardedEngine::with_partition`]
/// for a custom [`Partition`]. Drive it through [`SteppableEngine`] or
/// the [`ShardedEngine::run`] convenience; collect full results with
/// [`ShardedEngine::results`].
///
/// Results are bit-identical to [`crate::engine::Emulation`] on the
/// same configuration: same packet ids, same per-packet release /
/// injection / delivery cycles, same ledger, same statistics.
pub struct ShardedEngine {
    config: PlatformConfig,
    workers: Vec<WorkerHandle>,
    status: Vec<ShardStatus>,
    partition: PartitionMap,
    ledger: PacketLedger,
    /// Main-side per-receptor network-latency analyzers (the worker
    /// receptors never see ledger latencies, so the coordinator keeps
    /// the per-receptor view the trace receptors would have recorded).
    receptor_latency: Vec<LatencyAnalyzer>,
    /// Per generator: its injection link (congestion attribution).
    injection_links: Vec<LinkId>,
    telemetry: Option<Collector>,
    now: Cycle,
    next_packet: u64,
    stalled: u64,
    delivered_flits: u64,
    cycles_skipped: u64,
    /// A worker died (panicked): skip joining the survivors, they may
    /// be parked at a barrier.
    poisoned: bool,
    /// A run error was returned: further steps are refused.
    failed: bool,
    /// Coordinator-side phase accumulators, when profiling is on.
    profiler: Option<PhaseProfiler>,
    /// Coordinator-side span timeline on the
    /// [`SpanEvent::COORDINATOR`] track.
    spans: Option<SpanBuffer>,
}

impl std::fmt::Debug for ShardedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("name", &self.config.name)
            .field("shards", &self.workers.len())
            .field("cycle", &self.now)
            .field("delivered", &self.ledger.delivered())
            .finish_non_exhaustive()
    }
}

impl ShardedEngine {
    /// Compiles `config` and shards it with the grid-stripe
    /// partitioner, honouring `config.engine`: the shard count of
    /// [`EngineKind::Sharded`], or a single shard (one worker) for any
    /// other engine kind — the config stays authoritative either way.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] from elaboration or partitioning.
    pub fn build(config: &PlatformConfig) -> Result<Self, CompileError> {
        let shards = match config.engine {
            EngineKind::Sharded { shards } => shards,
            _ => 1,
        };
        Self::with_shards(config, shards)
    }

    /// Compiles `config` and shards it into exactly `shards` shards
    /// with the grid-stripe partitioner.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] from elaboration or partitioning.
    pub fn with_shards(config: &PlatformConfig, shards: usize) -> Result<Self, CompileError> {
        Self::from_elaboration(elaborate(config)?, shards)
    }

    /// Shards a pre-built elaboration into `shards` grid stripes —
    /// the reuse hook for callers that elaborate once and run many
    /// engine variants (see `crate::compile::elaborate_routed`).
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError::Partition`] from the partitioner.
    pub fn from_elaboration(elab: Elaboration, shards: usize) -> Result<Self, CompileError> {
        let map = GridStripes
            .partition(&elab.config.topology, shards)
            .map_err(|e| CompileError::Partition {
                reason: e.to_string(),
            })?;
        Ok(Self::with_partition(elab, map))
    }

    /// Wraps an elaboration into a sharded engine using an explicit
    /// partition map (from any [`Partition`] implementation).
    ///
    /// # Panics
    ///
    /// Panics if `map` does not cover the elaboration's topology.
    pub fn with_partition(elab: Elaboration, map: PartitionMap) -> Self {
        assert_eq!(
            map.switch_count(),
            elab.config.topology.switch_count(),
            "partition map does not match the topology"
        );
        let shards = map.shards();
        let topo = &elab.config.topology;
        let num_vcs = elab.config.switch.num_vcs as usize;
        let generators = topo.generators();
        let receptors = topo.receptors();

        // Local index of every switch within its shard (shards own
        // ascending global-id runs).
        let mut local_idx = vec![0usize; topo.switch_count()];
        let mut shard_switches: Vec<Vec<usize>> = vec![Vec::new(); shards];
        for (s, slot) in local_idx.iter_mut().enumerate() {
            let k = map.shard_of(SwitchId::new(s as u32));
            *slot = shard_switches[k].len();
            shard_switches[k].push(s);
        }

        // Pre-step quiescence/next-event status, evaluated on the
        // fresh elaboration exactly as the single-threaded engine
        // would at its first step.
        let init_status: Vec<ShardStatus> = (0..shards)
            .map(|k| {
                let tg_of = |i: usize| &elab.tgs[i];
                let my_gens: Vec<usize> = generators
                    .iter()
                    .enumerate()
                    .filter(|(_, &g)| map.shard_of(topo.endpoint(g).switch) == k)
                    .map(|(i, _)| i)
                    .collect();
                ShardStatus {
                    quiescent: shard_switches[k]
                        .iter()
                        .all(|&s| elab.switches[s].is_quiescent())
                        && my_gens
                            .iter()
                            .all(|&i| elab.nis[i].is_idle() && elab.nis[i].credits_home()),
                    next_event: my_gens
                        .iter()
                        .map(|&i| tg_of(i).next_event_cycle(Cycle::ZERO).cycle_or_max())
                        .min()
                        .unwrap_or(u64::MAX),
                    exhausted: my_gens.iter().all(|&i| tg_of(i).is_exhausted()),
                    pending_none: true,
                    nis_idle: my_gens.iter().all(|&i| elab.nis[i].is_idle()),
                }
            })
            .collect();

        // Neighbor adjacency over the partition, symmetrized: a flit
        // crossing a → b needs a credit back b → a, so every boundary
        // pair gets a channel in both directions. One *unbounded*
        // channel per directed pair carries a whole cycle's boundary
        // traffic as a single [`BoundaryMsg`]; neighbor lists are
        // sorted ascending so send and receive orders are
        // deterministic.
        let mut nbr_sets: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); shards];
        for s in 0..topo.switch_count() {
            let a = map.shard_of(SwitchId::new(s as u32));
            for target in &elab.wiring.out_target[s] {
                if let OutTarget::Switch { switch, .. } = *target {
                    let b = map.shard_of(SwitchId::new(switch as u32));
                    if a != b {
                        nbr_sets[a].insert(b);
                        nbr_sets[b].insert(a);
                    }
                }
            }
        }
        let nbrs: Vec<Vec<usize>> = nbr_sets
            .into_iter()
            .map(|set| set.into_iter().collect())
            .collect();
        // Neighbor shard id → slot in this shard's sorted list.
        let nbr_slot: Vec<Vec<usize>> = nbrs
            .iter()
            .map(|list| {
                let mut slot = vec![usize::MAX; shards];
                for (i, &n) in list.iter().enumerate() {
                    slot[n] = i;
                }
                slot
            })
            .collect();
        let mut boundary_txs: Vec<Vec<Sender<BoundaryMsg>>> = Vec::with_capacity(shards);
        let mut boundary_rxs: Vec<Vec<Option<Receiver<BoundaryMsg>>>> = nbrs
            .iter()
            .map(|list| list.iter().map(|_| None).collect())
            .collect();
        for (k, list) in nbrs.iter().enumerate() {
            let mut txs = Vec::with_capacity(list.len());
            for &n in list {
                let (tx, rx) = mpsc::channel();
                txs.push(tx);
                // Shard n hears from k at k's slot in n's list.
                boundary_rxs[n][nbr_slot[n][k]] = Some(rx);
            }
            boundary_txs.push(txs);
        }

        // One shared epoch for every thread's span timeline, and the
        // coordinator's accumulators seeded with the elaboration cost.
        let epoch = Instant::now();
        let elaborate_ns = elab.elaborate_ns;
        let profile = elab.config.profile;
        let profiler = profile.map(|_| {
            let mut p = PhaseProfiler::new();
            p.add_ns(Phase::Elaborate, elaborate_ns);
            p
        });
        let spans = profile.and_then(|p| {
            p.spans
                .then(|| SpanBuffer::new(epoch, SpanEvent::COORDINATOR, p.span_capacity))
        });

        // Distribute the elaborated components.
        let Elaboration {
            config,
            switches,
            nis,
            tgs,
            receptors: receptor_devices,
            wiring,
            ..
        } = elab;
        let mut sw_slots: Vec<Option<Switch>> = switches.into_iter().map(Some).collect();
        let mut ni_slots: Vec<Option<SourceNi>> = nis.into_iter().map(Some).collect();
        let mut tg_slots: Vec<Option<Box<dyn TrafficGenerator + Send>>> =
            tgs.into_iter().map(Some).collect();
        let mut tr_slots: Vec<Option<ReceptorDevice>> =
            receptor_devices.into_iter().map(Some).collect();

        let slots: Arc<Vec<AtomicU8>> =
            Arc::new((0..generators.len()).map(|_| AtomicU8::new(0)).collect());
        let barrier = Arc::new(Barrier::new(shards));

        let mut handles = Vec::with_capacity(shards);
        for (k, shard_members) in shard_switches.iter().enumerate() {
            // Generators / receptors of this shard, ascending global
            // order (their switch's shard is theirs).
            let my_gens: Vec<usize> = (0..generators.len())
                .filter(|&i| map.shard_of(SwitchId::new(wiring.injection[i].0 as u32)) == k)
                .collect();
            let my_trs: Vec<usize> = (0..receptors.len())
                .filter(|&i| map.shard_of(config.topology.endpoint(receptors[i]).switch) == k)
                .collect();
            let mut tr_local = vec![usize::MAX; receptors.len()];
            for (li, &gi) in my_trs.iter().enumerate() {
                tr_local[gi] = li;
            }

            let mut routes_out = Vec::with_capacity(shard_members.len());
            let mut routes_in = Vec::with_capacity(shard_members.len());
            for &s in shard_members.iter() {
                let mut outs = Vec::with_capacity(wiring.out_target[s].len());
                for target in wiring.out_target[s].iter() {
                    outs.push(match *target {
                        OutTarget::Switch { switch, port }
                            if map.shard_of(SwitchId::new(switch as u32)) == k =>
                        {
                            LocalOut::Switch {
                                switch: local_idx[switch],
                                port,
                            }
                        }
                        // A boundary crossing: address the record with
                        // the *downstream* switch's local index inside
                        // its own shard, so the receiver applies it
                        // with no lookup.
                        OutTarget::Switch { switch, port } => LocalOut::Remote {
                            nbr: nbr_slot[k][map.shard_of(SwitchId::new(switch as u32))],
                            switch: local_idx[switch],
                            port,
                        },
                        OutTarget::Receptor { index } => LocalOut::Receptor {
                            index: tr_local[index],
                        },
                    });
                }
                routes_out.push(outs);

                let mut ins = Vec::with_capacity(wiring.in_source[s].len());
                for source in wiring.in_source[s].iter() {
                    ins.push(match *source {
                        InSource::Switch { switch, port }
                            if map.shard_of(SwitchId::new(switch as u32)) == k =>
                        {
                            LocalIn::Switch {
                                switch: local_idx[switch],
                                port,
                            }
                        }
                        // A boundary credit return: address it with
                        // the *upstream* switch's local index and
                        // output port inside its own shard.
                        InSource::Switch { switch, port } => LocalIn::Remote {
                            nbr: nbr_slot[k][map.shard_of(SwitchId::new(switch as u32))],
                            switch: local_idx[switch],
                            port,
                        },
                        InSource::Generator { index } => LocalIn::Ni {
                            index: my_gens
                                .iter()
                                .position(|&g| g == index)
                                .expect("generator endpoint lives in its switch's shard"),
                        },
                    });
                }
                routes_in.push(ins);
            }

            let worker_switches: Vec<Switch> = shard_members
                .iter()
                .map(|&s| sw_slots[s].take().expect("each switch joins one shard"))
                .collect();
            let (cmd_tx, cmd_rx) = mpsc::channel();
            let (rep_tx, rep_rx) = mpsc::channel();
            let worker = Worker {
                shard: k,
                switches: worker_switches,
                switch_gids: shard_members.iter().map(|&s| s as u32).collect(),
                routes_out,
                routes_in,
                nis: my_gens
                    .iter()
                    .map(|&i| ni_slots[i].take().expect("each NI joins one shard"))
                    .collect(),
                tgs: my_gens
                    .iter()
                    .map(|&i| tg_slots[i].take().expect("each TG joins one shard"))
                    .collect(),
                tg_gidx: my_gens.clone(),
                tg_endpoints: my_gens.iter().map(|&i| generators[i]).collect(),
                injection: my_gens
                    .iter()
                    .map(|&i| {
                        let (s, port, _) = wiring.injection[i];
                        (local_idx[s], port)
                    })
                    .collect(),
                pending: vec![None; my_gens.len()],
                receptors: my_trs
                    .iter()
                    .map(|&i| tr_slots[i].take().expect("each receptor joins one shard"))
                    .collect(),
                receptor_gidx: my_trs,
                out_txs: std::mem::take(&mut boundary_txs[k]),
                in_rxs: boundary_rxs[k]
                    .iter_mut()
                    .map(|rx| rx.take().expect("each boundary receiver joins one shard"))
                    .collect(),
                out_flits: nbrs[k].iter().map(|_| Vec::new()).collect(),
                out_credits: nbrs[k].iter().map(|_| Vec::new()).collect(),
                out_links: shard_members
                    .iter()
                    .map(|&s| {
                        let sid = SwitchId::new(s as u32);
                        (0..wiring.out_target[s].len())
                            .map(|p| config.topology.out_link(sid, PortId::new(p as u8)))
                            .collect()
                    })
                    .collect(),
                ni_links: my_gens.iter().map(|&i| wiring.injection[i].2).collect(),
                link_count: config.topology.link_count(),
                num_vcs,
                slots: Arc::clone(&slots),
                barrier: Arc::clone(&barrier),
                profiler: profile.map(|_| PhaseProfiler::new()),
                spans: profile.and_then(|p| {
                    p.spans
                        .then(|| SpanBuffer::new(epoch, k as u32, p.span_capacity))
                }),
                cmd_rx,
                rep_tx,
            };
            let join = std::thread::Builder::new()
                .name(format!("nocem-shard-{k}"))
                .spawn(move || worker.run())
                .expect("spawn shard worker");
            handles.push(WorkerHandle {
                cmd: cmd_tx,
                rep: rep_rx,
                join: Some(join),
            });
        }

        let receptor_count = receptors.len();
        let telemetry = config
            .telemetry
            .as_ref()
            .map(|t| Collector::new(t, config.topology.link_count(), num_vcs));
        ShardedEngine {
            injection_links: wiring.injection.iter().map(|&(_, _, l)| l).collect(),
            telemetry,
            config,
            workers: handles,
            status: init_status,
            partition: map,
            ledger: PacketLedger::new(),
            receptor_latency: vec![LatencyAnalyzer::new(); receptor_count],
            now: Cycle::ZERO,
            next_packet: 0,
            stalled: 0,
            delivered_flits: 0,
            cycles_skipped: 0,
            poisoned: false,
            failed: false,
            profiler,
            spans,
        }
    }

    /// The current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Packets delivered so far.
    pub fn delivered(&self) -> u64 {
        self.ledger.delivered()
    }

    /// Cycles the cross-shard fast-forward jumped over so far.
    pub fn cycles_skipped(&self) -> u64 {
        self.cycles_skipped
    }

    /// The partition this engine runs on.
    pub fn partition(&self) -> &PartitionMap {
        &self.partition
    }

    /// The packet ledger (read access for tests and reports).
    pub fn ledger(&self) -> &PacketLedger {
        &self.ledger
    }

    /// Whether the whole platform is quiescent: every shard locally
    /// quiescent and no packet in flight.
    pub fn is_quiescent(&self) -> bool {
        self.ledger.in_flight() == 0 && self.status.iter().all(|s| s.quiescent)
    }

    /// Advances one platform cycle across all shards (with a
    /// cross-shard fast-forward first, when gated and quiescent).
    ///
    /// # Errors
    ///
    /// Returns [`EmulationError`] on wiring/protocol violations or
    /// when the cycle limit is exceeded.
    pub fn step(&mut self) -> Result<(), EmulationError> {
        if self.failed {
            return Err(EmulationError::Shard {
                shard: usize::MAX,
                reason: "engine already failed; state is inconsistent".into(),
            });
        }
        let mut t = self.profiler.as_mut().map(PhaseProfiler::begin_step);

        // Cross-shard clock gating: fast-forward to the event horizon
        // (the min next-event over all shards), clamped to the cycle
        // limit — never past another shard's horizon.
        let mut skip_from = None;
        if self.config.clock_mode == ClockMode::Gated && self.is_quiescent() {
            let horizon = self
                .status
                .iter()
                .map(|s| s.next_event)
                .min()
                .unwrap_or(u64::MAX);
            let target = horizon.min(self.config.stop.cycle_limit);
            if target > self.now.raw() {
                self.cycles_skipped += target - self.now.raw();
                skip_from = Some(self.now);
                self.now = Cycle::new(target);
            }
        }
        self.lap(&mut t, Phase::FastForward);

        // Probe after any fast-forward, before the cycle executes:
        // worker counters then cover exactly [0, now), matching every
        // other engine's probe point (the skipped window was
        // quiescent, so the counters already reflect it).
        if self
            .telemetry
            .as_ref()
            .is_some_and(|t| t.needs_probe(self.now.raw()))
        {
            let probe = self.probe_workers()?;
            let at = self.now.raw();
            self.telemetry
                .as_mut()
                .expect("presence checked above")
                .record(at, &probe);
        }
        self.lap(&mut t, Phase::Probe);
        let now = self.now;

        for k in 0..self.workers.len() {
            if self.workers[k]
                .cmd
                .send(Cmd::Cycle {
                    now,
                    skip_from,
                    base_id: self.next_packet,
                })
                .is_err()
            {
                return self.worker_died(k);
            }
        }

        let mut releases: Vec<PacketDescriptor> = Vec::new();
        let mut injects: Vec<PacketId> = Vec::new();
        let mut deliveries: Vec<Delivery> = Vec::new();
        let mut first_error: Option<EmulationError> = None;
        for k in 0..self.workers.len() {
            let report = match self.workers[k].rep.recv() {
                Ok(Report::Cycle(r)) => r,
                Ok(_) | Err(_) => return self.worker_died(k),
            };
            if let Some(e) = report.error {
                first_error.get_or_insert(e);
            }
            releases.extend(report.releases);
            injects.extend(report.injects);
            deliveries.extend(report.deliveries);
            self.stalled += report.stalled_delta;
            self.status[k] = report.status;
        }
        self.lap(&mut t, Phase::CoordWait);
        let apply_start = t;
        if let Some(e) = first_error {
            self.failed = true;
            return Err(e);
        }

        // Apply the cycle's ledger events in the single-threaded
        // engine's order: releases ascending by id (= global generator
        // order), then injections, then deliveries ascending by
        // (ejecting switch, output port) — the commit loop order.
        releases.sort_by_key(|d| d.id);
        self.next_packet += releases.len() as u64;
        for d in releases {
            self.ledger
                .release(d.id, now, d.len_flits)
                .map_err(|e| self.fail(e.into()))?;
        }
        for id in injects {
            self.ledger
                .inject(id, now)
                .map_err(|e| self.fail(e.into()))?;
        }
        deliveries.sort_by_key(|d| (d.switch, d.port));
        for d in deliveries {
            let lat = self
                .ledger
                .deliver(d.packet, now, d.len_flits)
                .map_err(|e| self.fail(e.into()))?;
            self.delivered_flits += u64::from(d.len_flits);
            self.receptor_latency[d.receptor].record(lat.network);
        }

        self.now = now.next();
        self.lap(&mut t, Phase::Apply);
        if let (Some(s), Some(buf)) = (apply_start, self.spans.as_mut()) {
            buf.record("apply", s, now.raw());
        }
        if self.now.raw() > self.config.stop.cycle_limit {
            self.failed = true;
            return Err(EmulationError::CycleLimitExceeded {
                limit: self.config.stop.cycle_limit,
                delivered: self.ledger.delivered(),
            });
        }
        Ok(())
    }

    /// Closes `phase` on the chained profiling timestamp, advancing it
    /// to now. A no-op (one `Option` check) when profiling is off.
    fn lap(&mut self, t: &mut Option<Instant>, phase: Phase) {
        if let (Some(prev), Some(p)) = (t.as_mut(), self.profiler.as_mut()) {
            *prev = p.lap(*prev, phase);
        }
    }

    /// Fetches every worker's profiling payload, in shard order.
    /// Best-effort: stops at the first dead worker and returns
    /// nothing after a failure (dead workers cannot be queried).
    fn worker_profiles(&mut self) -> Vec<WorkerProfile> {
        if self.failed {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.workers.len());
        for k in 0..self.workers.len() {
            if self.workers[k].cmd.send(Cmd::Profile).is_err() {
                break;
            }
            match self.workers[k].rep.recv() {
                Ok(Report::Profile(p)) => out.push(*p),
                Ok(_) | Err(_) => break,
            }
        }
        out
    }

    fn fail(&mut self, e: EmulationError) -> EmulationError {
        self.failed = true;
        e
    }

    /// Collects and merges every shard's cumulative probe (disjoint
    /// resources, so the element-wise add is exact).
    fn probe_workers(&mut self) -> Result<CumulativeProbe, EmulationError> {
        let mut merged = CumulativeProbe::new(
            self.config.topology.link_count(),
            usize::from(self.config.switch.num_vcs),
        );
        for k in 0..self.workers.len() {
            if self.workers[k].cmd.send(Cmd::Probe).is_err() {
                return self.worker_died(k).map(|()| unreachable!());
            }
            match self.workers[k].rep.recv() {
                Ok(Report::Probe(p)) => merged.absorb(&p),
                Ok(_) | Err(_) => return self.worker_died(k).map(|()| unreachable!()),
            }
        }
        Ok(merged)
    }

    /// The windowed telemetry collector, when enabled.
    pub fn telemetry(&self) -> Option<&Collector> {
        self.telemetry.as_ref()
    }

    /// Seals the collector, flushing the trailing partial window. A
    /// no-op when telemetry is off, already sealed, or the engine has
    /// failed (dead workers cannot be probed).
    pub fn seal_telemetry(&mut self) {
        if self.failed || self.telemetry.as_ref().is_none_or(Collector::is_sealed) {
            return;
        }
        if let Ok(probe) = self.probe_workers() {
            let at = self.now.raw();
            self.telemetry
                .as_mut()
                .expect("presence checked above")
                .seal(at, &probe);
        }
    }

    /// Worker `dead`'s channel closed: its thread left the command
    /// loop (in-cycle panics are caught and reported as [`CycleReport`]
    /// errors, so this is a panic *outside* a cycle — e.g. while
    /// snapshotting). The thread is guaranteed to be terminating, so
    /// join it unconditionally and re-raise its panic on the
    /// coordinator so test harnesses see the original payload. The
    /// *other* workers may be parked at a barrier and are leaked
    /// rather than joined.
    fn worker_died(&mut self, dead: usize) -> Result<(), EmulationError> {
        self.failed = true;
        self.poisoned = true;
        if let Some(join) = self.workers[dead].join.take() {
            if let Err(payload) = join.join() {
                std::panic::resume_unwind(payload);
            }
        }
        Err(EmulationError::Shard {
            shard: dead,
            reason: "a shard worker terminated unexpectedly".into(),
        })
    }

    /// Whether the stop condition holds (mirrors
    /// [`crate::engine::Emulation::finished`]).
    pub fn finished(&self) -> bool {
        match self.config.stop.delivered_packets {
            Some(target) => self.ledger.delivered() >= target,
            None => {
                self.status
                    .iter()
                    .all(|s| s.exhausted && s.pending_none && s.nis_idle)
                    && self.ledger.in_flight() == 0
            }
        }
    }

    /// Runs until the stop condition holds.
    ///
    /// # Errors
    ///
    /// Propagates [`EmulationError`] from [`ShardedEngine::step`].
    pub fn run(&mut self) -> Result<(), EmulationError> {
        crate::clock::run_engine(self)
    }

    /// Collects full run results (statistics, congestion, receptor
    /// summaries) by snapshotting every shard — value-equal to what
    /// [`crate::engine::Emulation::results`] produces for the same
    /// run, except that trace-receptor latency views are kept on the
    /// coordinator.
    ///
    /// # Errors
    ///
    /// Returns [`EmulationError::Shard`] when a worker is gone.
    pub fn results(&mut self) -> Result<EmulationResults, EmulationError> {
        let mut snapshots = Vec::with_capacity(self.workers.len());
        for k in 0..self.workers.len() {
            if self.workers[k].cmd.send(Cmd::Collect).is_err() {
                return self.worker_died(k).map(|()| unreachable!());
            }
            match self.workers[k].rep.recv() {
                Ok(Report::Snapshot(s)) => snapshots.push(*s),
                Ok(_) | Err(_) => return self.worker_died(k).map(|()| unreachable!()),
            }
        }

        let topo = &self.config.topology;
        let mut cc = CongestionCounter::new(topo.link_count());
        let mut vc_occupancy =
            nocem_stats::congestion::VcOccupancy::new(usize::from(self.config.switch.num_vcs));
        let mut receptors: Vec<Option<ReceptorSummary>> = vec![None; self.receptor_latency.len()];
        for snap in snapshots {
            for (gid, sw) in &snap.switches {
                let counters = sw.counters();
                for (vc, &peak) in counters.max_vc_occupancy.iter().enumerate() {
                    vc_occupancy.record(vc, peak);
                }
                for o in 0..usize::from(sw.config().outputs) {
                    let link = topo.out_link(SwitchId::new(*gid), PortId::new(o as u8));
                    cc.add(
                        link,
                        counters.blocked_cycles_per_output[o],
                        counters.forwarded_per_output[o],
                    );
                }
            }
            for (gidx, ni) in &snap.nis {
                let c = ni.counters();
                cc.add(
                    self.injection_links[*gidx],
                    c.blocked_cycles,
                    c.injected_flits,
                );
            }
            for (gidx, r) in snap.receptors {
                let (counters, lat, hists) = match &r {
                    ReceptorDevice::Stochastic(r) => (
                        *r.counters(),
                        None,
                        Some((
                            r.length_histogram().clone(),
                            r.interarrival_histogram().clone(),
                        )),
                    ),
                    ReceptorDevice::Trace(r) => {
                        (*r.counters(), self.receptor_latency[gidx].mean(), None)
                    }
                };
                let (length_histogram, interarrival_histogram) = match hists {
                    Some((l, a)) => (Some(l), Some(a)),
                    None => (None, None),
                };
                receptors[gidx] = Some(ReceptorSummary {
                    label: format!("tr{gidx}"),
                    packets: counters.packets,
                    flits: counters.flits,
                    running_time: counters.running_time(),
                    mean_network_latency: lat,
                    length_histogram,
                    interarrival_histogram,
                });
            }
        }
        Ok(EmulationResults {
            name: self.config.name.clone(),
            cycles: self.now.raw(),
            cycles_skipped: self.cycles_skipped,
            released: self.ledger.released(),
            injected: self.ledger.injected(),
            delivered: self.ledger.delivered(),
            delivered_flits: self.delivered_flits,
            stalled_cycles: self.stalled,
            network_latency: self.ledger.network_latency().clone(),
            total_latency: self.ledger.total_latency().clone(),
            congestion: cc,
            vc_occupancy,
            receptors: receptors
                .into_iter()
                .map(|r| r.expect("every receptor snapshotted by its shard"))
                .collect(),
        })
    }
}

impl Drop for ShardedEngine {
    fn drop(&mut self) {
        for w in &self.workers {
            let _ = w.cmd.send(Cmd::Shutdown);
        }
        if !self.poisoned {
            for w in &mut self.workers {
                if let Some(join) = w.join.take() {
                    let _ = join.join();
                }
            }
        }
    }
}

impl SteppableEngine for ShardedEngine {
    fn step(&mut self) -> Result<(), EmulationError> {
        ShardedEngine::step(self)
    }

    fn now(&self) -> Cycle {
        self.now
    }

    fn finished(&self) -> bool {
        ShardedEngine::finished(self)
    }

    fn delivered(&self) -> u64 {
        self.ledger.delivered()
    }

    fn cycles_skipped(&self) -> u64 {
        self.cycles_skipped
    }

    fn summary(&self) -> EngineSummary {
        EngineSummary::from_ledger(
            self.now.raw(),
            self.cycles_skipped,
            self.delivered_flits,
            &self.ledger,
        )
    }

    fn packet_ledger(&self) -> PacketLedger {
        self.ledger.clone()
    }

    fn telemetry(&self) -> Option<&Collector> {
        ShardedEngine::telemetry(self)
    }

    fn seal_telemetry(&mut self) {
        ShardedEngine::seal_telemetry(self);
    }

    fn profile(&mut self) -> Option<PhaseReport> {
        self.profiler.as_ref()?;
        let wps = self.worker_profiles();
        let mut agg = self.profiler.clone().expect("checked above");
        let mut workers = Vec::with_capacity(wps.len());
        for (k, wp) in wps.iter().enumerate() {
            agg.absorb(&wp.profiler);
            workers.push(wp.profiler.report(format!("shard-{k}")));
        }
        let mut report = agg.report(format!("sharded/{}", self.workers.len()));
        report.workers = workers;
        Some(report)
    }

    fn span_trace(&mut self) -> Option<SpanTrace> {
        self.spans.as_ref()?;
        let mut parts: Vec<(Vec<SpanEvent>, u64)> = self
            .worker_profiles()
            .into_iter()
            .map(|wp| (wp.spans, wp.dropped))
            .collect();
        parts.push(self.spans.clone().expect("checked above").into_parts());
        Some(SpanTrace::merge(parts))
    }
}

/// Builds whichever engine `config.engine` names, boxed behind the
/// stepping contract ([`EngineKind::SingleThread`] →
/// [`crate::engine::Emulation`], [`EngineKind::Sharded`] →
/// [`ShardedEngine`], [`EngineKind::Compiled`] →
/// [`crate::compiled::CompiledEngine`], [`EngineKind::ShardedCompiled`]
/// → [`crate::shard_compiled::ShardedCompiledEngine`]).
///
/// # Errors
///
/// Propagates [`CompileError`].
pub fn build_engine(config: &PlatformConfig) -> Result<Box<dyn SteppableEngine>, CompileError> {
    Ok(match config.engine {
        EngineKind::Sharded { .. } => Box::new(ShardedEngine::build(config)?),
        EngineKind::Compiled => Box::new(crate::compiled::build_compiled(config)?),
        EngineKind::ShardedCompiled { .. } => {
            Box::new(crate::shard_compiled::ShardedCompiledEngine::build(config)?)
        }
        _ => Box::new(crate::engine::build(config)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PaperConfig;
    use crate::engine::build;

    #[test]
    fn paper_setup_shards_and_matches_single_thread() {
        // The paper's 6-switch topology is not a grid: index striping.
        let cfg = PaperConfig::new().total_packets(300).uniform();
        let mut single = build(&cfg).unwrap();
        single.run().unwrap();
        let mut sharded = ShardedEngine::with_shards(&cfg, 2).unwrap();
        sharded.run().unwrap();
        assert_eq!(sharded.ledger(), single.ledger());
        assert_eq!(sharded.now(), single.now());
    }

    #[test]
    fn single_shard_degenerates_cleanly() {
        let cfg = PaperConfig::new().total_packets(120).burst(4);
        let mut single = build(&cfg).unwrap();
        single.run().unwrap();
        let mut sharded = ShardedEngine::with_shards(&cfg, 1).unwrap();
        sharded.run().unwrap();
        assert_eq!(sharded.ledger(), single.ledger());
        assert!(sharded.partition().boundary_links(&cfg.topology).is_empty());
    }

    #[test]
    fn sharded_results_match_single_thread() {
        let cfg = PaperConfig::new().total_packets(200).trace_bursty(4);
        let mut single = build(&cfg).unwrap();
        single.run().unwrap();
        let mut sharded = ShardedEngine::with_shards(&cfg, 3).unwrap();
        sharded.run().unwrap();
        assert_eq!(sharded.results().unwrap(), single.results());
    }

    #[test]
    fn sharded_telemetry_matches_single_thread() {
        let cfg = PaperConfig::new()
            .total_packets(300)
            .uniform()
            .with_telemetry(Some(nocem_telemetry::TelemetryConfig::windowed(64)));
        let mut single = build(&cfg).unwrap();
        single.run().unwrap();
        single.seal_telemetry();
        let mut sharded = ShardedEngine::with_shards(&cfg, 2).unwrap();
        sharded.run().unwrap();
        ShardedEngine::seal_telemetry(&mut sharded);
        let fast = single.telemetry().unwrap();
        let ours = ShardedEngine::telemetry(&sharded).unwrap();
        assert!(fast.windows_recorded() > 0, "run long enough to window");
        assert_eq!(ours, fast, "shard-merged series are engine-invariant");
    }

    #[test]
    fn cycle_limit_fires_on_the_same_cycle() {
        let mut cfg = PaperConfig::new().total_packets(1_000_000).uniform();
        cfg.stop.cycle_limit = 300;
        let single_err = {
            let mut e = build(&cfg).unwrap();
            e.run().unwrap_err()
        };
        let mut sharded = ShardedEngine::with_shards(&cfg, 2).unwrap();
        let sharded_err = sharded.run().unwrap_err();
        assert_eq!(single_err, sharded_err);
    }

    #[test]
    fn build_engine_dispatches_on_engine_kind() {
        let cfg = PaperConfig::new().total_packets(50).uniform();
        let sharded_cfg = cfg.clone().with_engine(EngineKind::Sharded { shards: 2 });
        let mut a = build_engine(&cfg).unwrap();
        let mut b = build_engine(&sharded_cfg).unwrap();
        crate::clock::run_engine(a.as_mut()).unwrap();
        crate::clock::run_engine(b.as_mut()).unwrap();
        assert_eq!(a.summary(), b.summary());
        assert_eq!(a.packet_ledger(), b.packet_ledger());
    }

    #[test]
    fn too_many_shards_is_a_compile_error() {
        let cfg = PaperConfig::new().total_packets(10).uniform();
        let err = ShardedEngine::with_shards(&cfg, 64).unwrap_err();
        assert!(matches!(err, CompileError::Partition { .. }));
        assert!(err.to_string().contains("64"));
    }
}
