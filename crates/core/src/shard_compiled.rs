//! The sharded *compiled* engine: array-slice shards of the lowered
//! platform, stepped by persistent workers with batched coordinator
//! synchronization.
//!
//! [`ShardedCompiledEngine`] marries the two speed mechanisms the
//! crate already has: the flat-array cycle kernel of
//! [`CompiledEngine`] and the partitioned worker threads of
//! [`crate::shard::ShardedEngine`]. Each worker owns a slice of the
//! struct-of-arrays state — the switches of one [`PartitionMap`]
//! shard, the generators and receptors attached to them, and a
//! *per-shard flit pool* — and steps only that slice with the exact
//! compiled decide/commit kernels. Cross-shard flits leave the
//! sender's pool as real [`Flit`]s and are re-interned into the
//! receiver's pool on arrival.
//!
//! # The batched-exchange protocol
//!
//! Boundary traffic itself cannot be deferred: a lowered link has
//! exactly one cycle of latency, so a flit popped at cycle `u` must be
//! observable by the downstream switch's *decide* at `u + 1`, and its
//! credit by the upstream allocator at `u + 1`. Delaying either to a
//! window boundary would change arbitration and diverge from
//! [`CompiledEngine`]. What *can* be amortized is every coordinator
//! round trip. So the protocol splits the two:
//!
//! * **Per cycle, point to point:** each worker sends exactly one
//!   message per neighbouring shard carrying the cycle's outbound
//!   boundary records — `(destination switch, slot, vc, flit)` for
//!   flits, upstream output-slot indices for credits — and then
//!   blocks on exactly one message per in-neighbour, replaying it
//!   before computing its end-of-cycle status. Empty messages still
//!   flow: they are the clock marker that keeps neighbours in
//!   lockstep without any global barrier.
//! * **Per window of `batch` cycles, through the coordinator:** the
//!   coordinator issues one `Window` command, each worker runs up to
//!   `batch` cycles buffering its per-cycle ledger events (releases,
//!   injections, deliveries, stall counts, status), and replies once.
//!   The coordinator then *replays the buffered cycles in order*, one
//!   per [`ShardedCompiledEngine::step`] call, keeping per-cycle
//!   lockstep observability while paying the two-way channel
//!   synchronization only once per window — a ~`batch`× reduction,
//!   measured by [`ShardedCompiledEngine::sync_rounds`].
//!
//! `batch = 1` therefore reproduces the per-cycle exchange protocol
//! of the interpreted sharded engine exactly: one synchronization
//! round per cycle.
//!
//! # Why replay is deterministic
//!
//! Within one cycle, every boundary interaction commutes:
//!
//! * An arriving flit lands in a FIFO the receiver never pops in the
//!   same cycle it arrives (one-cycle link latency), so arrival order
//!   across neighbours cannot change receiver state — except the
//!   per-VC occupancy watermark, which depends on whether the
//!   reference engine pushed before or after the receiver's own pop.
//!   That order is recovered exactly from the global switch ids the
//!   records carry (the reference commits switches in ascending id
//!   order), so the watermark is corrected deterministically.
//! * At most one credit per output slot can return per cycle, so
//!   credit replays touch disjoint slots and end-of-cycle credit
//!   counts are order-independent.
//!
//! # Packet ids without a coordinator round trip
//!
//! Workers cannot know the platform-wide packet id at release time
//! (that would need a cross-shard prefix sum every cycle). Instead a
//! worker stamps each released packet with a *provisional* id —
//! shard index and local sequence packed into the id's high bits —
//! which rides inside every flit of the packet. When the coordinator
//! replays a buffered cycle it assigns the final ids in the
//! single-threaded engine's order (releases ascending by generator
//! index) and remaps provisional → final at the ledger boundary, so
//! the [`PacketLedger`] is bit-identical to the compiled engine's.
//!
//! # Gating
//!
//! Clock gating needs the *platform-wide* quiescence predicate and the
//! cross-shard event horizon before every cycle, which is inherently a
//! per-cycle coordinator decision. Under [`ClockMode::Gated`] the
//! batch is therefore clamped to 1 (with a warning): correctness is
//! never traded for lookahead. The fast-forward itself is replayed
//! inside each worker's TGs exactly like the interpreted sharded
//! engine does.

use crate::clock::{ClockMode, EngineSummary, EngineWarning, SteppableEngine};
use crate::compile::{
    elaborate, Elaboration, LoweredInFeed, LoweredOutDest, LoweredPlatform, OutTarget,
    ReceptorDevice, HANDLE_IDX, HANDLE_TAIL, LOWERED_NONE, SLOT_NONE,
};
use crate::compiled::CompiledEngine;
use crate::config::{EngineKind, PlatformConfig};
use crate::error::{CompileError, EmulationError};
use crate::profile::{Phase, PhaseProfiler, PhaseReport};
use crate::results::{EmulationResults, ReceptorSummary};
use crate::shard::{panic_fault, ShardStatus};
use nocem_common::flit::{Flit, PacketDescriptor};
use nocem_common::ids::{LinkId, PacketId, SwitchId, VcId};
use nocem_common::time::Cycle;
use nocem_stats::congestion::{CongestionCounter, VcOccupancy};
use nocem_stats::latency::LatencyAnalyzer;
use nocem_stats::ledger::PacketLedger;
use nocem_stats::receptor::CompletedPacket;
use nocem_switch::switch::CREDITS_INFINITE;
use nocem_telemetry::{Collector, CumulativeProbe, SpanBuffer, SpanEvent, SpanTrace};
use nocem_topology::partition::{GridStripes, Partition, PartitionMap};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{self, Receiver, Sender};
use std::thread::JoinHandle;
use std::time::Instant;

/// Provisional packet ids carry this flag plus the shard in bits
/// 48..63 and a shard-local sequence below — far above any id the
/// coordinator will ever assign, so the two spaces never collide.
const PROV_FLAG: u64 = 1 << 63;

#[inline]
fn provisional_id(shard: usize, seq: u64) -> PacketId {
    debug_assert!(seq < (1 << 48), "shard-local sequence overflow");
    PacketId::new(PROV_FLAG | ((shard as u64) << 48) | seq)
}

/// One cross-shard flit: enough to re-intern and land it downstream,
/// plus the popping switch's id for the watermark order correction.
struct FlitRec {
    /// Global id of the switch that popped the flit (the upstream).
    from_switch: u32,
    /// Global id of the landing switch.
    switch: u32,
    /// The landing input port's slot base in the receiver's arrays.
    slot_base: u32,
    /// Output VC the allocation chose (= landing input VC).
    vc: u8,
    flit: Flit,
}

/// One cycle's boundary records from one shard to one neighbour.
/// Empty messages still flow every cycle — the clock marker.
struct NeighborMsg {
    cycle: u64,
    flits: Vec<FlitRec>,
    /// Global output-slot indices to credit, one entry per credit.
    credits: Vec<u32>,
}

/// One released packet, identified provisionally.
struct ReleaseRec {
    /// Global generator index — the single-threaded id-assignment key.
    gidx: u32,
    prov: PacketId,
    len_flits: u16,
}

/// One delivered packet, tagged with the single-threaded commit-order
/// key (ejecting switch, output port).
struct DeliveryRec {
    switch: u32,
    port: u8,
    receptor: u32,
    prov: PacketId,
    len_flits: u16,
}

/// Everything the coordinator needs to replay one buffered cycle.
struct CycleEntry {
    releases: Vec<ReleaseRec>,
    injects: Vec<PacketId>,
    deliveries: Vec<DeliveryRec>,
    stalled_delta: u64,
    status: ShardStatus,
    error: Option<EmulationError>,
}

impl CycleEntry {
    fn new() -> Self {
        CycleEntry {
            releases: Vec::new(),
            injects: Vec::new(),
            deliveries: Vec::new(),
            stalled_delta: 0,
            status: conservative_status(),
            error: None,
        }
    }
}

/// The status a dead or erroring shard reports: never quiescent,
/// never exhausted, no known next event — gating and stop decisions
/// stay safe.
fn conservative_status() -> ShardStatus {
    ShardStatus {
        quiescent: false,
        next_event: u64::MAX,
        exhausted: false,
        pending_none: false,
        nis_idle: false,
    }
}

/// Commands the coordinator sends to every worker.
enum Cmd {
    /// Execute `len` cycles starting at `start`, buffering boundary
    /// records per cycle and ledger events per window. When
    /// `skip_from` is set, first replay the quiescent window
    /// `[skip_from, start)` inside every owned TG.
    Window {
        start: Cycle,
        len: u64,
        skip_from: Option<Cycle>,
    },
    /// Snapshot the shard's slice of the counter arrays.
    Collect,
    /// Report the shard's cumulative telemetry counters.
    Probe,
    /// Report the shard's self-profiling state (phase accumulators
    /// and span buffer). Only sent when profiling is configured.
    Profile,
    /// Exit the worker loop.
    Shutdown,
}

/// Snapshot of a shard's slice for results collection. The per-port
/// and per-VC arrays are full-platform shaped with non-owned rows
/// zero, so the coordinator merges by element-wise add / max.
struct Snapshot {
    blocked_out: Vec<u64>,
    forwarded_out: Vec<u64>,
    max_vc_occ: Vec<u64>,
    /// `(global generator index, blocked cycles, injected flits)`.
    ni_counters: Vec<(usize, u64, u64)>,
    /// `(global receptor index, receptor clone)`.
    receptors: Vec<(usize, ReceptorDevice)>,
}

/// One worker's self-profiling payload: its phase accumulators (with
/// the worker-side elaborate/lower seeds) plus a copy of its span
/// buffer. Copies, not drains — the worker keeps accumulating, so the
/// coordinator may ask again later in the run.
struct WorkerProfile {
    profiler: PhaseProfiler,
    spans: Vec<SpanEvent>,
    dropped: u64,
}

enum Report {
    Window(Vec<CycleEntry>),
    Snapshot(Box<Snapshot>),
    Probe(Box<CumulativeProbe>),
    Profile(Box<WorkerProfile>),
}

/// One persistent worker: a full-shape [`CompiledEngine`] (built from
/// the worker's own deterministic re-elaboration of the config, so
/// every RNG stream matches the reference by construction) of which
/// only the owned slice is ever stepped. Non-owned rows stay zero,
/// which makes probes and snapshots mergeable by plain addition.
struct Worker {
    shard: usize,
    eng: CompiledEngine,
    /// Owned global switch ids, ascending.
    owned: Vec<usize>,
    /// Per global switch: owned here?
    own_switch: Vec<bool>,
    /// Owned global generator indices, ascending.
    my_gens: Vec<usize>,
    /// Owned global receptor indices, ascending.
    my_receptors: Vec<usize>,
    /// Per global output slot: owning shard.
    out_slot_shard: Vec<u16>,
    /// Per global output port: the shard owning the downstream switch
    /// (`u16::MAX` when the port feeds a receptor).
    out_port_dest: Vec<u16>,
    /// Per global input slot: `cycle + 1` of this slot's most recent
    /// own pop — the watermark order correction for replayed arrivals.
    last_pop: Vec<u64>,
    /// Per shard id: its index in the neighbour lists
    /// (`usize::MAX` = not a neighbour).
    nbr_slot: Vec<usize>,
    out_txs: Vec<Sender<NeighborMsg>>,
    in_rxs: Vec<Receiver<NeighborMsg>>,
    /// Per out-neighbour: this cycle's buffered records.
    out_flits: Vec<Vec<FlitRec>>,
    out_credits: Vec<Vec<u32>>,
    prov_seq: u64,
    /// A cycle errored or panicked: keep the per-cycle message cadence
    /// (empty sends, discarding receives) so neighbours never block,
    /// but step nothing further.
    dead: bool,
    /// Worker-side phase accumulators (owned-slice compute vs.
    /// boundary exchange), present when profiling is configured.
    profiler: Option<PhaseProfiler>,
    /// Worker-side span timeline on this shard's track, timed against
    /// the coordinator's epoch.
    spans: Option<SpanBuffer>,
    cmd_rx: Receiver<Cmd>,
    rep_tx: Sender<Report>,
}

impl Worker {
    fn run(mut self) {
        while let Ok(cmd) = self.cmd_rx.recv() {
            match cmd {
                Cmd::Window {
                    start,
                    len,
                    skip_from,
                } => {
                    let entries = self.window(start, len, skip_from);
                    if self.rep_tx.send(Report::Window(entries)).is_err() {
                        return;
                    }
                }
                Cmd::Collect => {
                    let snap = Box::new(self.snapshot());
                    if self.rep_tx.send(Report::Snapshot(snap)).is_err() {
                        return;
                    }
                }
                Cmd::Probe => {
                    let probe = Box::new(self.eng.cumulative_probe());
                    if self.rep_tx.send(Report::Probe(probe)).is_err() {
                        return;
                    }
                }
                Cmd::Profile => {
                    let (spans, dropped) = self
                        .spans
                        .clone()
                        .map_or((Vec::new(), 0), SpanBuffer::into_parts);
                    let profile = Box::new(WorkerProfile {
                        profiler: self.profiler.clone().unwrap_or_default(),
                        spans,
                        dropped,
                    });
                    if self.rep_tx.send(Report::Profile(profile)).is_err() {
                        return;
                    }
                }
                Cmd::Shutdown => return,
            }
        }
    }

    /// Closes `phase` on the chained profiling timestamp, advancing it
    /// to now. A no-op (one `Option` check) when profiling is off.
    fn lap(&mut self, t: &mut Option<Instant>, phase: Phase) {
        if let (Some(prev), Some(p)) = (t.as_mut(), self.profiler.as_mut()) {
            *prev = p.lap(*prev, phase);
        }
    }

    /// Executes one window: per cycle, compute the owned slice, send
    /// one boundary message per neighbour, receive and replay one per
    /// in-neighbour, then record the end-of-cycle status.
    fn window(&mut self, start: Cycle, len: u64, skip_from: Option<Cycle>) -> Vec<CycleEntry> {
        let win_start = self.spans.as_ref().map(|_| Instant::now());
        let mut entries = Vec::with_capacity(len as usize);
        for j in 0..len {
            let now = Cycle::new(start.raw() + j);
            if self.dead {
                self.cadence(now);
                entries.push(CycleEntry::new());
                continue;
            }
            let skip = if j == 0 { skip_from } else { None };
            let mut entry = CycleEntry::new();
            let mut t = self.profiler.as_mut().map(|p| {
                p.add_cycles(1);
                p.begin()
            });
            let computed = catch_unwind(AssertUnwindSafe(|| {
                self.compute_cycle(now, skip, &mut entry)
            }));
            match computed {
                Ok(Ok(())) => {}
                Ok(Err(e)) => entry.error = Some(e),
                Err(payload) => entry.error = Some(panic_fault(self.shard, &payload)),
            }
            self.lap(&mut t, Phase::WorkerCompute);
            // The exchange section: everything from here to the end of
            // replay is boundary synchronization, not compute.
            let exchange_start = t;
            // One message per neighbour per cycle, no matter what —
            // possibly partial on error, the cadence is what matters.
            self.send_bufs(now);
            let replay_start = self.spans.as_ref().map(|_| Instant::now());
            if entry.error.is_none() {
                let replayed = catch_unwind(AssertUnwindSafe(|| self.recv_replay(now)));
                match replayed {
                    Ok(Ok(())) => entry.status = self.status(),
                    Ok(Err(e)) => entry.error = Some(e),
                    Err(payload) => entry.error = Some(panic_fault(self.shard, &payload)),
                }
            } else {
                self.recv_discard();
            }
            if let (Some(s), Some(buf)) = (replay_start, self.spans.as_mut()) {
                buf.record("replay", s, now.raw());
            }
            self.lap(&mut t, Phase::Exchange);
            if let (Some(s), Some(buf)) = (exchange_start, self.spans.as_mut()) {
                buf.record("exchange", s, now.raw());
            }
            if entry.error.is_some() {
                self.dead = true;
            }
            entries.push(entry);
        }
        if let (Some(s), Some(buf)) = (win_start, self.spans.as_mut()) {
            buf.record("window", s, start.raw());
        }
        entries
    }

    /// The per-cycle message cadence of a dead shard: empty sends,
    /// discarding receives. Neighbours observe only the absence of
    /// boundary traffic, which is always a legal cycle for them.
    fn cadence(&mut self, now: Cycle) {
        for buf in &mut self.out_flits {
            buf.clear();
        }
        for buf in &mut self.out_credits {
            buf.clear();
        }
        self.send_bufs(now);
        self.recv_discard();
    }

    fn send_bufs(&mut self, now: Cycle) {
        for (nb, tx) in self.out_txs.iter().enumerate() {
            let msg = NeighborMsg {
                cycle: now.raw(),
                flits: std::mem::take(&mut self.out_flits[nb]),
                credits: std::mem::take(&mut self.out_credits[nb]),
            };
            // A closed channel means the peer is gone; our own recv
            // will surface the fault.
            let _ = tx.send(msg);
        }
    }

    fn recv_discard(&mut self) {
        for k in 0..self.in_rxs.len() {
            let _ = self.in_rxs[k].recv();
        }
    }

    /// One compiled cycle over the owned slice — the exact phase order
    /// of [`CompiledEngine::step`], minus gating/telemetry (the
    /// coordinator's job) and with ledger events buffered instead of
    /// applied.
    fn compute_cycle(
        &mut self,
        now: Cycle,
        skip_from: Option<Cycle>,
        entry: &mut CycleEntry,
    ) -> Result<(), EmulationError> {
        if let Some(from) = skip_from {
            // Replay the coordinator's cross-shard fast-forward in the
            // owned TGs, exactly like the compiled gated path: sync
            // any deferred countdown first, then jump the window.
            for gi in 0..self.my_gens.len() {
                let i = self.my_gens[gi];
                self.eng.sync_tg(i, from);
                self.eng.tgs[i].skip_to(from, now);
                self.eng.tg_synced[i] = now.raw();
                self.eng.tg_next_event[i] = self.eng.tgs[i].next_event_cycle(now).cycle_or_max();
            }
        }

        // 1. Owned traffic models release packets (provisional ids).
        for gi in 0..self.my_gens.len() {
            let i = self.my_gens[gi];
            let req = match self.eng.pending[i].take() {
                Some(req) if self.eng.nis[i].can_accept() => {
                    self.eng.tg_synced[i] = now.raw() + 1;
                    self.eng.tg_next_event[i] =
                        self.eng.tgs[i].next_event_cycle(now.next()).cycle_or_max();
                    req
                }
                Some(req) => {
                    self.eng.pending[i] = Some(req);
                    entry.stalled_delta += 1;
                    continue;
                }
                None => {
                    if now.raw() < self.eng.tg_next_event[i] {
                        continue;
                    }
                    self.eng.sync_tg(i, now);
                    let released = self.eng.tgs[i].tick(now);
                    self.eng.tg_synced[i] = now.raw() + 1;
                    self.eng.tg_next_event[i] =
                        self.eng.tgs[i].next_event_cycle(now.next()).cycle_or_max();
                    let Some(req) = released else {
                        continue;
                    };
                    if !self.eng.nis[i].can_accept() {
                        self.eng.pending[i] = Some(req);
                        entry.stalled_delta += 1;
                        continue;
                    }
                    req
                }
            };
            let prov = provisional_id(self.shard, self.prov_seq);
            self.prov_seq += 1;
            let desc = PacketDescriptor {
                id: prov,
                src: self.eng.generator_endpoints[i],
                dst: req.dst,
                flow: req.flow,
                len_flits: req.len_flits,
                release: now,
            };
            let accepted = self.eng.nis[i].offer(desc);
            debug_assert!(accepted, "capacity was checked before the offer");
            self.eng.ni_active[i] = true;
            entry.releases.push(ReleaseRec {
                gidx: i as u32,
                prov,
                len_flits: req.len_flits,
            });
        }

        // 2. Owned switches decide on start-of-cycle state. Decide has
        //    no cross-switch effects, so shard order is irrelevant.
        let vc1 = self.eng.low.num_vcs == 1;
        for oi in 0..self.owned.len() {
            let s = self.owned[oi];
            if self.eng.occ_flits[s] == 0 {
                self.eng.active[s] = false;
                continue;
            }
            self.eng.active[s] = true;
            if self.eng.mask_ok[s] {
                if vc1 {
                    self.eng.decide_switch_mask_vc1(s);
                } else {
                    self.eng.decide_switch_mask(s);
                }
            } else {
                self.eng.decide_switch_dense(s);
            }
        }

        // 3. Owned network interfaces inject.
        for gi in 0..self.my_gens.len() {
            let i = self.my_gens[gi];
            if !self.eng.ni_active[i] {
                continue;
            }
            let Some(flit) = self.eng.nis[i].tick_send() else {
                if self.eng.nis[i].is_idle() {
                    self.eng.ni_active[i] = false;
                }
                continue;
            };
            if flit.kind.is_head() {
                entry.injects.push(flit.packet);
            }
            let (sw, base) = (
                self.eng.low.inject_switch[i],
                self.eng.low.inject_slot_base[i],
            );
            let vc = flit.vc.index();
            let h = self.eng.intern(flit);
            self.eng.accept_flit(sw as usize, base, h, vc)?;
        }

        // 4. Owned decided switches commit, ascending global order —
        //    the reference order within this shard's slice. The
        //    cross-shard interleaving is recovered at replay.
        for oi in 0..self.owned.len() {
            let s = self.owned[oi];
            if !self.eng.active[s] {
                continue;
            }
            self.commit_switch(s, now, entry)?;
        }

        self.eng.now = now.next();
        Ok(())
    }

    /// Phase-4 commit of one owned switch: apply VC allocations, then
    /// pop-and-forward granted flits. One generic body covers the
    /// mask (any VC count — with one VC, slot == port) and dense
    /// decide paths; only the remote branches differ from
    /// [`CompiledEngine`]'s commit.
    fn commit_switch(
        &mut self,
        s: usize,
        now: Cycle,
        entry: &mut CycleEntry,
    ) -> Result<(), EmulationError> {
        let isb = self.eng.low.in_slot_base[s] as usize;
        let osb = self.eng.low.out_slot_base[s] as usize;
        let opb = self.eng.low.out_port_base[s] as usize;
        if self.eng.mask_ok[s] {
            let mut vm = self.eng.vcg_mask[s];
            self.eng.vcg_mask[s] = 0;
            while vm != 0 {
                let slot = vm.trailing_zeros() as usize;
                vm &= vm - 1;
                let gslot = osb + slot;
                let iv = self.eng.vc_granted[gslot];
                self.eng.vc_granted[gslot] = SLOT_NONE;
                let ist = &mut self.eng.low.in_state[isb + iv as usize];
                ist.allocated = slot as u16;
                ist.chosen = SLOT_NONE;
                self.eng.low.out_state[gslot].busy_with = iv;
                self.eng.open_worms += 1;
            }
            let mut gm = self.eng.grant_mask[s];
            self.eng.grant_mask[s] = 0;
            while gm != 0 {
                let o = gm.trailing_zeros() as usize;
                gm &= gm - 1;
                let gp = opb + o;
                let g = self.eng.granted[gp];
                self.eng.granted[gp] = LOWERED_NONE;
                self.pop_forward(s, g, o, now, entry)?;
            }
        } else {
            let vcs = self.eng.low.num_vcs;
            let outputs = self.eng.low.outputs[s] as usize;
            for slot in 0..outputs * vcs {
                let gslot = osb + slot;
                let iv = self.eng.vc_granted[gslot];
                if iv == SLOT_NONE {
                    continue;
                }
                self.eng.vc_granted[gslot] = SLOT_NONE;
                let ist = &mut self.eng.low.in_state[isb + iv as usize];
                ist.allocated = slot as u16;
                ist.chosen = SLOT_NONE;
                self.eng.low.out_state[gslot].busy_with = iv;
                self.eng.open_worms += 1;
            }
            for o in 0..outputs {
                let gp = opb + o;
                let g = self.eng.granted[gp];
                if g == LOWERED_NONE {
                    continue;
                }
                self.eng.granted[gp] = LOWERED_NONE;
                self.pop_forward(s, g, o, now, entry)?;
            }
        }
        Ok(())
    }

    /// [`CompiledEngine`]'s pop-and-forward with the two cross-shard
    /// branches: a credit owed to a remote upstream becomes a credit
    /// record, a flit landing on a remote switch leaves the local pool
    /// and becomes a flit record.
    fn pop_forward(
        &mut self,
        s: usize,
        g: u32,
        o: usize,
        now: Cycle,
        entry: &mut CycleEntry,
    ) -> Result<(), EmulationError> {
        let vcs = self.eng.low.num_vcs;
        let depth = self.eng.low.fifo_depth;
        let isb = self.eng.low.in_slot_base[s] as usize;
        let osb = self.eng.low.out_slot_base[s] as usize;
        let ipb = self.eng.low.in_port_base[s] as usize;
        let opb = self.eng.low.out_port_base[s] as usize;
        let iv = (g >> 8) as usize;
        let ov = (g & 0xFF) as usize;
        let islot = isb + iv;
        let ist = &mut self.eng.low.in_state[islot];
        debug_assert!(ist.len > 0, "granted input VC has a flit at its head");
        let head = ist.head as usize;
        let next = head + 1;
        ist.head = if next == depth { 0 } else { next } as u8;
        let left = ist.len - 1;
        ist.len = left;
        let h = self.eng.low.fifo_arena[islot * depth + head];
        let tail = h & HANDLE_TAIL != 0;
        if tail {
            ist.allocated = SLOT_NONE;
        }
        if left == 0 {
            self.eng.occ_mask[s] &= !(1 << (iv & 63));
        }
        self.eng.occ_flits[s] -= 1;
        self.eng.total_occ -= 1;
        self.last_pop[islot] = now.raw() + 1;
        let gslot = osb + o * vcs + ov;
        let ost = &mut self.eng.low.out_state[gslot];
        if ost.credits != CREDITS_INFINITE {
            ost.credits -= 1;
            self.eng.credit_debt += 1;
        }
        if tail {
            ost.busy_with = SLOT_NONE;
            self.eng.open_worms -= 1;
        }
        self.eng.forwarded_out[opb + o] += 1;
        let i = self.eng.iv_port[iv] as usize;
        let v = iv - i * vcs;
        match self.eng.low.in_feed[ipb + i] {
            LoweredInFeed::Switch { slot_base } => {
                let up = slot_base as usize + v;
                let owner = self.out_slot_shard[up] as usize;
                if owner == self.shard {
                    let ust = &mut self.eng.low.out_state[up];
                    if ust.credits != CREDITS_INFINITE {
                        ust.credits += 1;
                        self.eng.credit_debt -= 1;
                        debug_assert!(
                            ust.credits <= self.eng.low.credit_cap[up],
                            "credit overflow on a lowered output slot"
                        );
                    }
                } else {
                    self.out_credits[self.nbr_slot[owner]].push(up as u32);
                }
            }
            LoweredInFeed::Generator { index } => {
                self.eng.nis[index as usize].credit_return();
            }
        }
        match self.eng.low.out_dest[opb + o] {
            LoweredOutDest::Switch { switch, slot_base } => {
                if self.own_switch[switch as usize] {
                    self.eng.accept_flit(switch as usize, slot_base, h, ov)?;
                } else {
                    let idx = h & HANDLE_IDX;
                    let flit = self.eng.flit_pool[idx as usize];
                    self.eng.flit_free.push(idx);
                    let dest = self.out_port_dest[opb + o] as usize;
                    self.out_flits[self.nbr_slot[dest]].push(FlitRec {
                        from_switch: s as u32,
                        switch,
                        slot_base,
                        vc: ov as u8,
                        flit,
                    });
                }
            }
            LoweredOutDest::Receptor { index } => {
                self.deliver(index as usize, h, ov, s, o, now, entry)?;
            }
        }
        Ok(())
    }

    /// [`CompiledEngine`]'s delivery with the ledger call replaced by
    /// a buffered record carrying the commit-order key.
    #[allow(clippy::too_many_arguments)]
    fn deliver(
        &mut self,
        index: usize,
        h: u32,
        vc: usize,
        s: usize,
        o: usize,
        now: Cycle,
        entry: &mut CycleEntry,
    ) -> Result<(), EmulationError> {
        let idx = h & HANDLE_IDX;
        let mut flit = self.eng.flit_pool[idx as usize];
        flit.vc = VcId::new(vc as u8);
        self.eng.flit_free.push(idx);
        let completed: Option<CompletedPacket> = match &mut self.eng.receptors[index] {
            ReceptorDevice::Stochastic(r) => {
                r.accept(&flit, now)
                    .map_err(|source| EmulationError::Receive {
                        receptor: r.id(),
                        source,
                    })?
            }
            ReceptorDevice::Trace(r) => {
                r.accept(&flit, now)
                    .map_err(|source| EmulationError::Receive {
                        receptor: r.id(),
                        source,
                    })?
            }
        };
        if let Some(pkt) = completed {
            entry.deliveries.push(DeliveryRec {
                switch: s as u32,
                port: o as u8,
                receptor: index as u32,
                prov: pkt.id,
                len_flits: pkt.len_flits,
            });
        }
        Ok(())
    }

    /// Receives one boundary message per in-neighbour and replays it:
    /// re-intern and land every flit (with the deterministic watermark
    /// correction), return every credit.
    fn recv_replay(&mut self, now: Cycle) -> Result<(), EmulationError> {
        let vcs = self.eng.low.num_vcs;
        for k in 0..self.in_rxs.len() {
            let msg = self.in_rxs[k].recv().map_err(|_| EmulationError::Shard {
                shard: self.shard,
                reason: "a neighbour shard hung up mid-window".into(),
            })?;
            debug_assert_eq!(
                msg.cycle,
                now.raw(),
                "boundary messages arrive in cycle order"
            );
            for rec in msg.flits {
                let slot = rec.slot_base as usize + rec.vc as usize;
                let popped_here = self.last_pop[slot] == now.raw() + 1;
                let h = self.eng.intern(rec.flit);
                self.eng
                    .accept_flit(rec.switch as usize, rec.slot_base, h, rec.vc as usize)?;
                // Watermark order correction: the reference engine
                // commits switches ascending, so when the upstream's
                // id is below ours it pushed *before* our own pop and
                // saw this FIFO one deeper than the replay does.
                if rec.from_switch < rec.switch && popped_here {
                    let wm = rec.switch as usize * vcs + rec.vc as usize;
                    let occ = u64::from(self.eng.low.in_state[slot].len) + 1;
                    if occ > self.eng.max_vc_occ[wm] {
                        self.eng.max_vc_occ[wm] = occ;
                    }
                }
            }
            for up in msg.credits {
                let up = up as usize;
                let ust = &mut self.eng.low.out_state[up];
                if ust.credits != CREDITS_INFINITE {
                    ust.credits += 1;
                    self.eng.credit_debt -= 1;
                    debug_assert!(
                        ust.credits <= self.eng.low.credit_cap[up],
                        "credit overflow on a lowered output slot"
                    );
                }
            }
        }
        Ok(())
    }

    /// End-of-cycle status over the owned slice. The aggregate
    /// counters (`total_occ`, `open_worms`, `credit_debt`) only ever
    /// reflect owned rows, so they are exactly the shard-local half of
    /// the platform quiescence predicate.
    fn status(&self) -> ShardStatus {
        let pending_none = self.my_gens.iter().all(|&i| self.eng.pending[i].is_none());
        let nis_idle = self.my_gens.iter().all(|&i| self.eng.nis[i].is_idle());
        ShardStatus {
            quiescent: pending_none
                && nis_idle
                && self.my_gens.iter().all(|&i| self.eng.nis[i].credits_home())
                && self.eng.total_occ == 0
                && self.eng.open_worms == 0
                && self.eng.credit_debt == 0,
            next_event: self
                .my_gens
                .iter()
                .map(|&i| self.eng.tg_next_event[i])
                .min()
                .unwrap_or(u64::MAX),
            exhausted: self.my_gens.iter().all(|&i| self.eng.tgs[i].is_exhausted()),
            pending_none,
            nis_idle,
        }
    }

    fn snapshot(&self) -> Snapshot {
        Snapshot {
            blocked_out: self.eng.blocked_out.clone(),
            forwarded_out: self.eng.forwarded_out.clone(),
            max_vc_occ: self.eng.max_vc_occ.clone(),
            ni_counters: self
                .my_gens
                .iter()
                .map(|&i| {
                    let c = self.eng.nis[i].counters();
                    (i, c.blocked_cycles, c.injected_flits)
                })
                .collect(),
            receptors: self
                .my_receptors
                .iter()
                .map(|&i| (i, self.eng.receptors[i].clone()))
                .collect(),
        }
    }
}

struct WorkerHandle {
    cmd: Sender<Cmd>,
    rep: Receiver<Report>,
    join: Option<JoinHandle<()>>,
}

/// The sharded compiled engine.
///
/// Construct with [`ShardedCompiledEngine::build`] (grid-stripe
/// partitioning, shard count and batch from
/// [`EngineKind::ShardedCompiled`]) or
/// [`ShardedCompiledEngine::with_partition`] for a custom
/// [`Partition`]. Drive it through [`SteppableEngine`] or
/// [`ShardedCompiledEngine::run`]; collect full results with
/// [`ShardedCompiledEngine::results`].
///
/// Results are bit-identical to [`CompiledEngine`] (and hence the
/// interpreted engines) on the same configuration: same packet ids,
/// same per-packet release / injection / delivery cycles, same
/// ledger, same statistics, same telemetry — for every `batch`.
pub struct ShardedCompiledEngine {
    config: PlatformConfig,
    /// Coordinator-side lowering, used for results attribution only.
    low: LoweredPlatform,
    workers: Vec<WorkerHandle>,
    status: Vec<ShardStatus>,
    partition: PartitionMap,
    batch: u64,
    /// Coordinator synchronization rounds (one window command + one
    /// report per worker each) issued so far.
    sync_rounds: u64,
    ledger: PacketLedger,
    receptor_latency: Vec<LatencyAnalyzer>,
    injection_links: Vec<LinkId>,
    telemetry: Option<Collector>,
    now: Cycle,
    next_packet: u64,
    stalled: u64,
    delivered_flits: u64,
    cycles_skipped: u64,
    /// Provisional → final id for every in-flight packet.
    prov_map: HashMap<PacketId, PacketId>,
    /// Executed-but-unapplied cycles: front = next to apply, each row
    /// holds one [`CycleEntry`] per shard.
    window: VecDeque<Vec<CycleEntry>>,
    poisoned: bool,
    failed: bool,
    /// Structured warnings raised while coming up (the gated batch
    /// clamp).
    warnings: Vec<EngineWarning>,
    /// Coordinator-side phase accumulators, when profiling is on.
    profiler: Option<PhaseProfiler>,
    /// Coordinator-side span timeline on the
    /// [`SpanEvent::COORDINATOR`] track.
    spans: Option<SpanBuffer>,
}

impl std::fmt::Debug for ShardedCompiledEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCompiledEngine")
            .field("name", &self.config.name)
            .field("shards", &self.workers.len())
            .field("batch", &self.batch)
            .field("cycle", &self.now)
            .field("delivered", &self.ledger.delivered())
            .finish_non_exhaustive()
    }
}

impl ShardedCompiledEngine {
    /// Compiles `config` and shards it with the grid-stripe
    /// partitioner, honouring `config.engine`: the shard count and
    /// batch of [`EngineKind::ShardedCompiled`], or a single shard
    /// with `batch = 1` for any other engine kind.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] from elaboration or partitioning.
    pub fn build(config: &PlatformConfig) -> Result<Self, CompileError> {
        let (shards, batch) = match config.engine {
            EngineKind::ShardedCompiled { shards, batch } => (shards, batch),
            _ => (1, 1),
        };
        Self::with_shards(config, shards, batch)
    }

    /// Compiles `config` into exactly `shards` grid stripes stepping
    /// `batch` cycles per synchronization round.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] from elaboration or partitioning.
    pub fn with_shards(
        config: &PlatformConfig,
        shards: usize,
        batch: u64,
    ) -> Result<Self, CompileError> {
        Self::from_elaboration(elaborate(config)?, shards, batch)
    }

    /// Shards a pre-built elaboration into `shards` grid stripes —
    /// the reuse hook for callers that elaborate once and run many
    /// engine variants.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError::Partition`] from the partitioner.
    pub fn from_elaboration(
        elab: Elaboration,
        shards: usize,
        batch: u64,
    ) -> Result<Self, CompileError> {
        let map = GridStripes
            .partition(&elab.config.topology, shards)
            .map_err(|e| CompileError::Partition {
                reason: e.to_string(),
            })?;
        Ok(Self::with_partition(elab, map, batch))
    }

    /// Wraps an elaboration into a sharded compiled engine using an
    /// explicit partition map.
    ///
    /// A `batch` of 0 is treated as 1. Under [`ClockMode::Gated`] any
    /// `batch > 1` is clamped to 1 with a warning: the gating decision
    /// is a per-cycle platform-wide predicate, so batching would have
    /// to diverge — and this engine never diverges.
    ///
    /// # Panics
    ///
    /// Panics if `map` does not cover the elaboration's topology.
    pub fn with_partition(elab: Elaboration, map: PartitionMap, batch: u64) -> Self {
        assert_eq!(
            map.switch_count(),
            elab.config.topology.switch_count(),
            "partition map does not match the topology"
        );
        let mut batch = batch.max(1);
        let mut warnings = Vec::new();
        if elab.config.clock_mode == ClockMode::Gated && batch > 1 {
            warnings.push(EngineWarning::GatedBatchClamp { requested: batch });
            batch = 1;
        }
        let shards = map.shards();
        let topo = &elab.config.topology;
        let generators = topo.generators();

        // Pre-step quiescence/next-event status, evaluated on the
        // fresh elaboration exactly as the compiled engine would at
        // its first step.
        let init_status: Vec<ShardStatus> = (0..shards)
            .map(|k| {
                let my_gens: Vec<usize> = generators
                    .iter()
                    .enumerate()
                    .filter(|(_, &g)| map.shard_of(topo.endpoint(g).switch) == k)
                    .map(|(i, _)| i)
                    .collect();
                ShardStatus {
                    quiescent: my_gens
                        .iter()
                        .all(|&i| elab.nis[i].is_idle() && elab.nis[i].credits_home()),
                    next_event: my_gens
                        .iter()
                        .map(|&i| elab.tgs[i].next_event_cycle(Cycle::ZERO).cycle_or_max())
                        .min()
                        .unwrap_or(u64::MAX),
                    exhausted: my_gens.iter().all(|&i| elab.tgs[i].is_exhausted()),
                    pending_none: true,
                    nis_idle: my_gens.iter().all(|&i| elab.nis[i].is_idle()),
                }
            })
            .collect();

        // Undirected shard adjacency: any boundary crossing in either
        // direction makes the pair neighbours, because flits cross one
        // way and their credits cross back the other.
        let mut nbrs: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); shards];
        for s in 0..topo.switch_count() {
            let a = map.shard_of(SwitchId::new(s as u32));
            for target in &elab.wiring.out_target[s] {
                if let OutTarget::Switch { switch, .. } = *target {
                    let b = map.shard_of(SwitchId::new(switch as u32));
                    if a != b {
                        nbrs[a].insert(b);
                        nbrs[b].insert(a);
                    }
                }
            }
        }
        let nbr_lists: Vec<Vec<usize>> = nbrs.iter().map(|s| s.iter().copied().collect()).collect();
        // One unbounded channel per directed neighbour pair; position
        // j in shard a's lists is its j-th neighbour ascending.
        let mut txs: Vec<Vec<Sender<NeighborMsg>>> = nbr_lists
            .iter()
            .map(|l| Vec::with_capacity(l.len()))
            .collect();
        let mut rxs: Vec<Vec<Option<Receiver<NeighborMsg>>>> = nbr_lists
            .iter()
            .map(|l| l.iter().map(|_| None).collect())
            .collect();
        for a in 0..shards {
            for &b in &nbr_lists[a] {
                let (tx, rx) = mpsc::channel();
                txs[a].push(tx);
                let slot = nbr_lists[b]
                    .iter()
                    .position(|&x| x == a)
                    .expect("neighbour relation is symmetric");
                rxs[b][slot] = Some(rx);
            }
        }

        // One shared epoch for every thread's span timeline.
        let epoch = Instant::now();
        let lower_start = Instant::now();
        let low = crate::compile::lower(&elab);
        let lower_ns = u64::try_from(lower_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let profiler = elab.config.profile.map(|_| {
            let mut p = PhaseProfiler::new();
            p.add_ns(Phase::Elaborate, elab.elaborate_ns);
            p.add_ns(Phase::Lower, lower_ns);
            p
        });
        let spans = elab.config.profile.and_then(|p| {
            p.spans
                .then(|| SpanBuffer::new(epoch, SpanEvent::COORDINATOR, p.span_capacity))
        });
        let injection_links = elab.wiring.injection.iter().map(|&(_, _, l)| l).collect();
        let receptor_count = topo.receptors().len();
        let num_vcs = usize::from(elab.config.switch.num_vcs);
        let telemetry = elab
            .config
            .telemetry
            .as_ref()
            .map(|t| Collector::new(t, elab.config.topology.link_count(), num_vcs));
        let config = elab.config.clone();

        let mut handles = Vec::with_capacity(shards);
        let mut txs = txs.into_iter();
        let mut rxs = rxs.into_iter();
        for (k, nbr_list) in nbr_lists.iter().enumerate() {
            let (cmd_tx, cmd_rx) = mpsc::channel();
            let (rep_tx, rep_rx) = mpsc::channel();
            let worker_config = config.clone();
            let worker_map = map.clone();
            let nbr_list = nbr_list.clone();
            let out_txs = txs.next().expect("one tx list per shard");
            let in_rxs: Vec<Receiver<NeighborMsg>> = rxs
                .next()
                .expect("one rx list per shard")
                .into_iter()
                .map(|r| r.expect("every neighbour channel wired"))
                .collect();
            let join = std::thread::Builder::new()
                .name(format!("nocem-cshard-{k}"))
                .spawn(move || {
                    spawn_worker(
                        k,
                        &worker_config,
                        &worker_map,
                        nbr_list,
                        out_txs,
                        in_rxs,
                        epoch,
                        cmd_rx,
                        rep_tx,
                    )
                    .run()
                })
                .expect("spawn sharded-compiled worker");
            handles.push(WorkerHandle {
                cmd: cmd_tx,
                rep: rep_rx,
                join: Some(join),
            });
        }

        ShardedCompiledEngine {
            config,
            low,
            workers: handles,
            status: init_status,
            partition: map,
            batch,
            sync_rounds: 0,
            ledger: PacketLedger::new(),
            receptor_latency: vec![LatencyAnalyzer::new(); receptor_count],
            injection_links,
            telemetry,
            now: Cycle::ZERO,
            next_packet: 0,
            stalled: 0,
            delivered_flits: 0,
            cycles_skipped: 0,
            prov_map: HashMap::new(),
            window: VecDeque::new(),
            poisoned: false,
            failed: false,
            warnings,
            profiler,
            spans,
        }
    }

    /// The current (applied) cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Packets delivered so far.
    pub fn delivered(&self) -> u64 {
        self.ledger.delivered()
    }

    /// Cycles the cross-shard fast-forward jumped over so far.
    pub fn cycles_skipped(&self) -> u64 {
        self.cycles_skipped
    }

    /// The effective cycles-per-synchronization batch (after any
    /// gated-mode clamp).
    pub fn batch(&self) -> u64 {
        self.batch
    }

    /// Coordinator synchronization rounds issued so far — one window
    /// command plus one report per worker each. With `batch = 1` this
    /// equals the executed cycle count (the per-cycle exchange
    /// protocol); with larger batches it shrinks ~`batch`×.
    pub fn sync_rounds(&self) -> u64 {
        self.sync_rounds
    }

    /// The partition this engine runs on.
    pub fn partition(&self) -> &PartitionMap {
        &self.partition
    }

    /// The packet ledger (read access for tests and reports).
    pub fn ledger(&self) -> &PacketLedger {
        &self.ledger
    }

    /// Whether the whole platform is quiescent: every shard locally
    /// quiescent and no packet in flight.
    pub fn is_quiescent(&self) -> bool {
        self.ledger.in_flight() == 0 && self.status.iter().all(|s| s.quiescent)
    }

    /// Advances one platform cycle. When the window buffer is empty a
    /// new window of up to `batch` cycles is executed across all
    /// shards first (one synchronization round); either way exactly
    /// one buffered cycle is then applied to the ledger, so per-cycle
    /// observability (`now`, `delivered`, lockstep comparisons) is
    /// identical to the unbatched engines.
    ///
    /// # Errors
    ///
    /// Returns [`EmulationError`] on wiring/protocol violations or
    /// when the cycle limit is exceeded.
    pub fn step(&mut self) -> Result<(), EmulationError> {
        if self.failed {
            return Err(EmulationError::Shard {
                shard: usize::MAX,
                reason: "engine already failed; state is inconsistent".into(),
            });
        }
        let mut t = self.profiler.as_mut().map(PhaseProfiler::begin_step);
        if self.window.is_empty() {
            let round_start = t;
            self.start_window(&mut t)?;
            if let (Some(s), Some(buf)) = (round_start, self.spans.as_mut()) {
                buf.record("round", s, self.now.raw());
            }
        }
        let r = self.apply_cycle();
        self.lap(&mut t, Phase::Apply);
        r
    }

    /// Closes `phase` on the chained profiling timestamp, advancing it
    /// to now. A no-op (one `Option` check) when profiling is off.
    fn lap(&mut self, t: &mut Option<Instant>, phase: Phase) {
        if let (Some(prev), Some(p)) = (t.as_mut(), self.profiler.as_mut()) {
            *prev = p.lap(*prev, phase);
        }
    }

    /// Gates, probes, sizes and issues one window, then buffers every
    /// worker's cycle entries. `t` is the coordinator's chained
    /// profiling timestamp (`None` when profiling is off).
    fn start_window(&mut self, t: &mut Option<Instant>) -> Result<(), EmulationError> {
        // Cross-shard clock gating (batch is clamped to 1 in gated
        // mode, so this is a per-cycle decision exactly like the
        // interpreted sharded engine's).
        let mut skip_from = None;
        if self.config.clock_mode == ClockMode::Gated && self.is_quiescent() {
            let horizon = self
                .status
                .iter()
                .map(|s| s.next_event)
                .min()
                .unwrap_or(u64::MAX);
            let target = horizon.min(self.config.stop.cycle_limit);
            if target > self.now.raw() {
                self.cycles_skipped += target - self.now.raw();
                skip_from = Some(self.now);
                self.now = Cycle::new(target);
            }
        }
        self.lap(t, Phase::FastForward);
        if self
            .telemetry
            .as_ref()
            .is_some_and(|t| t.needs_probe(self.now.raw()))
        {
            let probe = self.probe_workers()?;
            let at = self.now.raw();
            self.telemetry
                .as_mut()
                .expect("presence checked above")
                .record(at, &probe);
        }
        self.lap(t, Phase::Probe);
        let start = self.now;
        let len = self.window_len(start);
        for k in 0..self.workers.len() {
            let cmd = Cmd::Window {
                start,
                len,
                skip_from,
            };
            if self.workers[k].cmd.send(cmd).is_err() {
                return self.worker_died(k);
            }
        }
        let mut per_shard: Vec<Vec<CycleEntry>> = Vec::with_capacity(self.workers.len());
        for k in 0..self.workers.len() {
            match self.workers[k].rep.recv() {
                Ok(Report::Window(entries)) if entries.len() == len as usize => {
                    per_shard.push(entries);
                }
                Ok(_) | Err(_) => return self.worker_died(k),
            }
        }
        self.sync_rounds += 1;
        let mut rows: Vec<Vec<CycleEntry>> = (0..len)
            .map(|_| Vec::with_capacity(self.workers.len()))
            .collect();
        for entries in per_shard {
            for (j, e) in entries.into_iter().enumerate() {
                rows[j].push(e);
            }
        }
        self.window.extend(rows);
        self.lap(t, Phase::CoordWait);
        Ok(())
    }

    /// The next window's length: up to `batch`, shortened so that no
    /// worker ever executes a cycle the coordinator would not reach.
    fn window_len(&self, start: Cycle) -> u64 {
        let mut len = self.batch;
        // Delivered-target cap: each receptor completes at most one
        // packet per cycle (its ejection port forwards at most one
        // flit), so ceil(remaining / receptors) cycles cannot pass the
        // target before the window's last cycle — zero overshoot.
        if let Some(target) = self.config.stop.delivered_packets {
            let remaining = target.saturating_sub(self.ledger.delivered());
            let receptors = self.receptor_latency.len() as u64;
            if remaining > 0 && receptors > 0 {
                len = len.min(1 + (remaining - 1) / receptors);
            }
        }
        // Cycle-limit cap: executing cycle `limit` is what raises the
        // limit error, so it is the last cycle worth executing.
        let limit = self.config.stop.cycle_limit;
        if start.raw() <= limit {
            len = len.min(limit - start.raw() + 1);
        } else {
            len = 1;
        }
        // Telemetry cap: windows never cross a probe boundary, so a
        // probe always observes worker state at the coordinator's
        // cycle.
        if let Some(t) = &self.telemetry {
            for j in 1..len {
                if t.needs_probe(start.raw() + j) {
                    len = j;
                    break;
                }
            }
        }
        len.max(1)
    }

    /// Applies the oldest buffered cycle to the coordinator state in
    /// the single-threaded engine's event order: releases ascending by
    /// generator index (id assignment), then injections, then
    /// deliveries ascending by (ejecting switch, output port).
    fn apply_cycle(&mut self) -> Result<(), EmulationError> {
        let row = self.window.pop_front().expect("a window was just started");
        let now = self.now;
        let mut first_error: Option<EmulationError> = None;
        let mut releases: Vec<ReleaseRec> = Vec::new();
        let mut injects: Vec<PacketId> = Vec::new();
        let mut deliveries: Vec<DeliveryRec> = Vec::new();
        for (k, mut e) in row.into_iter().enumerate() {
            if let Some(err) = e.error.take() {
                first_error.get_or_insert(err);
            }
            releases.append(&mut e.releases);
            injects.append(&mut e.injects);
            deliveries.append(&mut e.deliveries);
            self.stalled += e.stalled_delta;
            self.status[k] = e.status;
        }
        if let Some(e) = first_error {
            self.failed = true;
            self.window.clear();
            return Err(e);
        }
        releases.sort_by_key(|r| r.gidx);
        for r in releases {
            let id = PacketId::new(self.next_packet);
            self.next_packet += 1;
            self.prov_map.insert(r.prov, id);
            self.ledger
                .release(id, now, r.len_flits)
                .map_err(|e| self.fail(e.into()))?;
        }
        for prov in injects {
            let id = *self
                .prov_map
                .get(&prov)
                .expect("a packet is released before it injects");
            self.ledger
                .inject(id, now)
                .map_err(|e| self.fail(e.into()))?;
        }
        deliveries.sort_by_key(|d| (d.switch, d.port));
        for d in deliveries {
            let id = self
                .prov_map
                .remove(&d.prov)
                .expect("a packet is released before it delivers");
            let lat = self
                .ledger
                .deliver(id, now, d.len_flits)
                .map_err(|e| self.fail(e.into()))?;
            self.delivered_flits += u64::from(d.len_flits);
            self.receptor_latency[d.receptor as usize].record(lat.network);
        }
        self.now = now.next();
        if self.now.raw() > self.config.stop.cycle_limit {
            self.failed = true;
            self.window.clear();
            return Err(EmulationError::CycleLimitExceeded {
                limit: self.config.stop.cycle_limit,
                delivered: self.ledger.delivered(),
            });
        }
        Ok(())
    }

    fn fail(&mut self, e: EmulationError) -> EmulationError {
        self.failed = true;
        e
    }

    /// Collects and merges every shard's cumulative probe (disjoint
    /// owned slices, so the element-wise add is exact). Only called
    /// between windows, when worker state equals the compiled engine's
    /// end-of-cycle state at the coordinator's cycle.
    fn probe_workers(&mut self) -> Result<CumulativeProbe, EmulationError> {
        let mut merged = CumulativeProbe::new(
            self.config.topology.link_count(),
            usize::from(self.config.switch.num_vcs),
        );
        for k in 0..self.workers.len() {
            if self.workers[k].cmd.send(Cmd::Probe).is_err() {
                return self.worker_died(k).map(|()| unreachable!());
            }
            match self.workers[k].rep.recv() {
                Ok(Report::Probe(p)) => merged.absorb(&p),
                Ok(_) | Err(_) => return self.worker_died(k).map(|()| unreachable!()),
            }
        }
        Ok(merged)
    }

    /// The windowed telemetry collector, when enabled.
    pub fn telemetry(&self) -> Option<&Collector> {
        self.telemetry.as_ref()
    }

    /// Fetches every worker's profiling payload, in shard order.
    /// Best-effort: stops at the first dead worker and returns
    /// nothing after a failure (dead workers cannot be queried).
    fn worker_profiles(&mut self) -> Vec<WorkerProfile> {
        if self.failed {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.workers.len());
        for k in 0..self.workers.len() {
            if self.workers[k].cmd.send(Cmd::Profile).is_err() {
                break;
            }
            match self.workers[k].rep.recv() {
                Ok(Report::Profile(p)) => out.push(*p),
                Ok(_) | Err(_) => break,
            }
        }
        out
    }

    /// Seals the collector, flushing the trailing partial window. A
    /// no-op when telemetry is off, already sealed, or the engine has
    /// failed (dead workers cannot be probed).
    pub fn seal_telemetry(&mut self) {
        if self.failed || self.telemetry.as_ref().is_none_or(Collector::is_sealed) {
            return;
        }
        if let Ok(probe) = self.probe_workers() {
            let at = self.now.raw();
            self.telemetry
                .as_mut()
                .expect("presence checked above")
                .seal(at, &probe);
        }
    }

    /// Worker `dead`'s channel closed outside a cycle (in-cycle panics
    /// are caught and reported in the entry). Join it and re-raise its
    /// panic; leak the survivors, which may be blocked on a neighbour.
    fn worker_died(&mut self, dead: usize) -> Result<(), EmulationError> {
        self.failed = true;
        self.poisoned = true;
        if let Some(join) = self.workers[dead].join.take() {
            if let Err(payload) = join.join() {
                std::panic::resume_unwind(payload);
            }
        }
        Err(EmulationError::Shard {
            shard: dead,
            reason: "a shard worker terminated unexpectedly".into(),
        })
    }

    /// Whether the stop condition holds (mirrors
    /// [`CompiledEngine::finished`]).
    pub fn finished(&self) -> bool {
        match self.config.stop.delivered_packets {
            Some(target) => self.ledger.delivered() >= target,
            None => {
                self.status
                    .iter()
                    .all(|s| s.exhausted && s.pending_none && s.nis_idle)
                    && self.ledger.in_flight() == 0
            }
        }
    }

    /// Runs until the stop condition holds.
    ///
    /// # Errors
    ///
    /// Propagates [`EmulationError`] from [`ShardedCompiledEngine::step`].
    pub fn run(&mut self) -> Result<(), EmulationError> {
        crate::clock::run_engine(self)
    }

    /// Collects full run results by snapshotting every shard's counter
    /// slice — value-equal to [`CompiledEngine::results`] for the same
    /// run, except that trace-receptor latency views are kept on the
    /// coordinator (as in the interpreted sharded engine).
    ///
    /// # Errors
    ///
    /// Returns [`EmulationError::Shard`] when a worker is gone.
    pub fn results(&mut self) -> Result<EmulationResults, EmulationError> {
        let total_out_ports = *self.low.out_port_base.last().expect("prefix sums") as usize;
        let vcs = self.low.num_vcs;
        let mut blocked = vec![0u64; total_out_ports];
        let mut forwarded = vec![0u64; total_out_ports];
        let mut max_vc = vec![0u64; self.low.switch_count * vcs];
        let mut ni_counters: Vec<Option<(u64, u64)>> = vec![None; self.injection_links.len()];
        let mut receptors: Vec<Option<ReceptorSummary>> = vec![None; self.receptor_latency.len()];
        for k in 0..self.workers.len() {
            if self.workers[k].cmd.send(Cmd::Collect).is_err() {
                return self.worker_died(k).map(|()| unreachable!());
            }
            let snap = match self.workers[k].rep.recv() {
                Ok(Report::Snapshot(s)) => *s,
                Ok(_) | Err(_) => return self.worker_died(k).map(|()| unreachable!()),
            };
            for (acc, v) in blocked.iter_mut().zip(&snap.blocked_out) {
                *acc += v;
            }
            for (acc, v) in forwarded.iter_mut().zip(&snap.forwarded_out) {
                *acc += v;
            }
            for (acc, v) in max_vc.iter_mut().zip(&snap.max_vc_occ) {
                *acc = (*acc).max(*v);
            }
            for (gidx, b, f) in snap.ni_counters {
                ni_counters[gidx] = Some((b, f));
            }
            for (gidx, r) in snap.receptors {
                let (counters, lat, hists) = match &r {
                    ReceptorDevice::Stochastic(r) => (
                        *r.counters(),
                        None,
                        Some((
                            r.length_histogram().clone(),
                            r.interarrival_histogram().clone(),
                        )),
                    ),
                    ReceptorDevice::Trace(r) => {
                        (*r.counters(), self.receptor_latency[gidx].mean(), None)
                    }
                };
                let (length_histogram, interarrival_histogram) = match hists {
                    Some((l, a)) => (Some(l), Some(a)),
                    None => (None, None),
                };
                receptors[gidx] = Some(ReceptorSummary {
                    label: format!("tr{gidx}"),
                    packets: counters.packets,
                    flits: counters.flits,
                    running_time: counters.running_time(),
                    mean_network_latency: lat,
                    length_histogram,
                    interarrival_histogram,
                });
            }
        }
        let mut cc = CongestionCounter::new(self.config.topology.link_count());
        for s in 0..self.low.switch_count {
            let opb = self.low.out_port_base[s] as usize;
            for o in 0..self.low.outputs[s] as usize {
                let gp = opb + o;
                cc.add(
                    LinkId::new(self.low.out_link[gp]),
                    blocked[gp],
                    forwarded[gp],
                );
            }
        }
        for (i, link) in self.injection_links.iter().enumerate() {
            let (b, f) = ni_counters[i].expect("every NI snapshotted by its shard");
            cc.add(*link, b, f);
        }
        let mut vc_occupancy = VcOccupancy::new(vcs);
        for s in 0..self.low.switch_count {
            for vc in 0..vcs {
                vc_occupancy.record(vc, max_vc[s * vcs + vc]);
            }
        }
        Ok(EmulationResults {
            name: self.config.name.clone(),
            cycles: self.now.raw(),
            cycles_skipped: self.cycles_skipped,
            released: self.ledger.released(),
            injected: self.ledger.injected(),
            delivered: self.ledger.delivered(),
            delivered_flits: self.delivered_flits,
            stalled_cycles: self.stalled,
            network_latency: self.ledger.network_latency().clone(),
            total_latency: self.ledger.total_latency().clone(),
            congestion: cc,
            vc_occupancy,
            receptors: receptors
                .into_iter()
                .map(|r| r.expect("every receptor snapshotted by its shard"))
                .collect(),
        })
    }
}

impl Drop for ShardedCompiledEngine {
    fn drop(&mut self) {
        for w in &self.workers {
            let _ = w.cmd.send(Cmd::Shutdown);
        }
        if !self.poisoned {
            for w in &mut self.workers {
                if let Some(join) = w.join.take() {
                    let _ = join.join();
                }
            }
        }
    }
}

impl SteppableEngine for ShardedCompiledEngine {
    fn step(&mut self) -> Result<(), EmulationError> {
        ShardedCompiledEngine::step(self)
    }

    fn now(&self) -> Cycle {
        self.now
    }

    fn finished(&self) -> bool {
        ShardedCompiledEngine::finished(self)
    }

    fn delivered(&self) -> u64 {
        self.ledger.delivered()
    }

    fn cycles_skipped(&self) -> u64 {
        self.cycles_skipped
    }

    fn summary(&self) -> EngineSummary {
        EngineSummary::from_ledger(
            self.now.raw(),
            self.cycles_skipped,
            self.delivered_flits,
            &self.ledger,
        )
        .with_warnings(&self.warnings)
    }

    fn packet_ledger(&self) -> PacketLedger {
        self.ledger.clone()
    }

    fn telemetry(&self) -> Option<&Collector> {
        ShardedCompiledEngine::telemetry(self)
    }

    fn seal_telemetry(&mut self) {
        ShardedCompiledEngine::seal_telemetry(self);
    }

    fn profile(&mut self) -> Option<PhaseReport> {
        self.profiler.as_ref()?;
        let wps = self.worker_profiles();
        let mut agg = self.profiler.clone().expect("checked above");
        let mut workers = Vec::with_capacity(wps.len());
        for (k, wp) in wps.iter().enumerate() {
            agg.absorb(&wp.profiler);
            workers.push(wp.profiler.report(format!("shard-{k}")));
        }
        let mut report = agg.report(format!(
            "sharded-compiled/{}x{}",
            self.workers.len(),
            self.batch
        ));
        report.workers = workers;
        Some(report)
    }

    fn span_trace(&mut self) -> Option<SpanTrace> {
        self.spans.as_ref()?;
        let mut parts: Vec<(Vec<SpanEvent>, u64)> = self
            .worker_profiles()
            .into_iter()
            .map(|wp| (wp.spans, wp.dropped))
            .collect();
        parts.push(self.spans.clone().expect("checked above").into_parts());
        Some(SpanTrace::merge(parts))
    }

    fn warnings(&self) -> &[EngineWarning] {
        &self.warnings
    }
}

/// Builds one worker inside its thread: re-elaborate the config (the
/// elaboration is deterministic, so every TG RNG stream and device
/// matches the coordinator's reference by construction), wrap it in a
/// full-shape [`CompiledEngine`], and derive the ownership tables.
#[allow(clippy::too_many_arguments)]
fn spawn_worker(
    shard: usize,
    config: &PlatformConfig,
    map: &PartitionMap,
    nbr_list: Vec<usize>,
    out_txs: Vec<Sender<NeighborMsg>>,
    in_rxs: Vec<Receiver<NeighborMsg>>,
    epoch: Instant,
    cmd_rx: Receiver<Cmd>,
    rep_tx: Sender<Report>,
) -> Worker {
    let elab = elaborate(config).expect("the coordinator already elaborated this config");
    let mut eng = CompiledEngine::new(elab);
    // The coordinator owns windowed telemetry; the worker only ever
    // serves cumulative probes.
    eng.telemetry = None;
    // The worker drives the flat arrays directly, never `eng.step()`,
    // so the inner engine's profiler and watchdog would stay silent:
    // take the profiler (it carries this thread's elaborate/lower
    // seeds) and drop the watchdog (stall detection is per-platform,
    // a coordinator concern).
    let profiler = eng.profiler.take();
    eng.watchdog = None;
    let spans = config.profile.and_then(|p| {
        p.spans
            .then(|| SpanBuffer::new(epoch, shard as u32, p.span_capacity))
    });
    let n = eng.low.switch_count;
    let own_switch: Vec<bool> = (0..n)
        .map(|s| map.shard_of(SwitchId::new(s as u32)) == shard)
        .collect();
    let owned: Vec<usize> = (0..n).filter(|&s| own_switch[s]).collect();
    let my_gens: Vec<usize> = (0..eng.nis.len())
        .filter(|&i| own_switch[eng.low.inject_switch[i] as usize])
        .collect();
    let mut my_receptors = Vec::new();
    let total_out_ports = *eng.low.out_port_base.last().expect("prefix sums") as usize;
    let mut out_port_dest = vec![u16::MAX; total_out_ports];
    for &s in &owned {
        let opb = eng.low.out_port_base[s] as usize;
        for o in 0..eng.low.outputs[s] as usize {
            if let LoweredOutDest::Receptor { index } = eng.low.out_dest[opb + o] {
                my_receptors.push(index as usize);
            }
        }
    }
    my_receptors.sort_unstable();
    for (gp, dest) in out_port_dest.iter_mut().enumerate().take(total_out_ports) {
        if let LoweredOutDest::Switch { switch, .. } = eng.low.out_dest[gp] {
            *dest = map.shard_of(SwitchId::new(switch)) as u16;
        }
    }
    let mut out_slot_shard = vec![0u16; eng.low.total_out_slots()];
    for s in 0..n {
        let owner = map.shard_of(SwitchId::new(s as u32)) as u16;
        let range = eng.low.out_slot_base[s] as usize..eng.low.out_slot_base[s + 1] as usize;
        out_slot_shard[range].fill(owner);
    }
    let mut nbr_slot = vec![usize::MAX; map.shards()];
    for (j, &b) in nbr_list.iter().enumerate() {
        nbr_slot[b] = j;
    }
    let last_pop = vec![0u64; eng.low.total_in_slots()];
    let out_flits = nbr_list.iter().map(|_| Vec::new()).collect();
    let out_credits = nbr_list.iter().map(|_| Vec::new()).collect();
    Worker {
        shard,
        eng,
        owned,
        own_switch,
        my_gens,
        my_receptors,
        out_slot_shard,
        out_port_dest,
        last_pop,
        nbr_slot,
        out_txs,
        in_rxs,
        out_flits,
        out_credits,
        prov_seq: 0,
        dead: false,
        profiler,
        spans,
        cmd_rx,
        rep_tx,
    }
}
