//! Parameter sweeps: run many configurations and collect their
//! results, optionally across threads.
//!
//! The benchmark harness uses sweeps for every figure: packet-count
//! sweeps (Figure 2), packets-per-burst × flits-per-packet sweeps
//! (Figures 3 and 4) and the ablation studies.

use crate::config::PlatformConfig;
use crate::engine::build;
use crate::error::EmulationError;
use crate::results::EmulationResults;

/// One sweep point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Label carried into the results.
    pub label: String,
    /// The configuration to run.
    pub config: PlatformConfig,
}

impl SweepPoint {
    /// Creates a labelled point.
    pub fn new(label: impl Into<String>, config: PlatformConfig) -> Self {
        SweepPoint {
            label: label.into(),
            config,
        }
    }
}

/// Runs every point and returns `(label, results)` in input order.
///
/// `threads` bounds the worker count (`1` = run inline; higher values
/// use `std::thread::scope`).
///
/// # Errors
///
/// Returns the error of the first failing point (by input order).
pub fn run_sweep(
    points: &[SweepPoint],
    threads: usize,
) -> Result<Vec<(String, EmulationResults)>, EmulationError> {
    let threads = threads.max(1);
    if threads == 1 || points.len() <= 1 {
        return points.iter().map(run_point).collect();
    }

    let mut slots: Vec<Option<Result<(String, EmulationResults), EmulationError>>> =
        (0..points.len()).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots_mutex = std::sync::Mutex::new(&mut slots);

    std::thread::scope(|scope| {
        for _ in 0..threads.min(points.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= points.len() {
                    break;
                }
                let outcome = run_point(&points[i]);
                let mut guard = slots_mutex.lock().expect("no panics while holding lock");
                guard[i] = Some(outcome);
            });
        }
    });

    slots
        .into_iter()
        .map(|s| s.expect("every slot filled by a worker"))
        .collect()
}

fn run_point(point: &SweepPoint) -> Result<(String, EmulationResults), EmulationError> {
    let mut emu = build(&point.config).map_err(|e| {
        // A compile failure inside a sweep is a configuration bug of
        // the harness; surface it through the ledger-style error so
        // callers get one error channel.
        EmulationError::Bus(nocem_platform::bus::BusError::InvalidValue {
            addr: nocem_platform::addr::Address::from_parts(
                nocem_common::ids::BusId::new(0),
                nocem_common::ids::DeviceId::new(0),
                0,
            ),
            reason: format!("sweep point {:?} failed to compile: {e}", point.label),
        })
    })?;
    emu.run()?;
    Ok((point.label.clone(), emu.results()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PaperConfig;

    fn points(n: usize) -> Vec<SweepPoint> {
        (0..n)
            .map(|i| {
                SweepPoint::new(
                    format!("p{i}"),
                    PaperConfig::new()
                        .total_packets(100 + 50 * i as u64)
                        .uniform(),
                )
            })
            .collect()
    }

    #[test]
    fn serial_sweep_preserves_order() {
        let out = run_sweep(&points(3), 1).unwrap();
        let labels: Vec<&str> = out.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels, ["p0", "p1", "p2"]);
        assert_eq!(out[0].1.delivered, 100);
        assert_eq!(out[2].1.delivered, 200);
    }

    #[test]
    fn threaded_sweep_matches_serial() {
        let serial = run_sweep(&points(4), 1).unwrap();
        let parallel = run_sweep(&points(4), 4).unwrap();
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.0, p.0);
            assert_eq!(s.1.cycles, p.1.cycles, "determinism across threads");
            assert_eq!(s.1.delivered, p.1.delivered);
        }
    }

    #[test]
    fn failing_point_reports_error() {
        let mut bad = points(1);
        bad[0].config.stop.cycle_limit = 10; // cannot finish in 10 cycles
        assert!(run_sweep(&bad, 1).is_err());
    }
}
