//! Parameter sweeps: run many configurations and collect their
//! results, optionally across threads.
//!
//! The benchmark harness uses sweeps for every figure: packet-count
//! sweeps (Figure 2), packets-per-burst × flits-per-packet sweeps
//! (Figures 3 and 4) and the ablation studies.

use crate::clock::{run_engine, EngineSummary, EngineWarning, SteppableEngine};
use crate::compile::{elaborate, elaborate_routed};
use crate::compiled::CompiledEngine;
use crate::config::{EngineKind, PlatformConfig};
use crate::engine::Emulation;
use crate::error::{CompileError, EmulationError};
use crate::results::EmulationResults;
use crate::shard::ShardedEngine;
use crate::shard_compiled::ShardedCompiledEngine;
use nocem_common::time::Cycle;
use nocem_stats::ledger::PacketLedger;
use nocem_topology::routing::RoutingTables;

/// One sweep point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Label carried into the results.
    pub label: String,
    /// The configuration to run.
    pub config: PlatformConfig,
}

impl SweepPoint {
    /// Creates a labelled point.
    pub fn new(label: impl Into<String>, config: PlatformConfig) -> Self {
        SweepPoint {
            label: label.into(),
            config,
        }
    }
}

/// Runs every point and returns `(label, results)` in input order.
///
/// `threads` bounds the worker count (`1` = run inline; higher values
/// use `std::thread::scope`).
///
/// # Errors
///
/// Returns the error of the first failing point (by input order).
///
/// # Panics
///
/// Re-raises the panic of the first panicking point (by input order);
/// a failure — `Err` or panic — at an earlier input index always wins
/// over a later one, regardless of thread scheduling.
pub fn run_sweep(
    points: &[SweepPoint],
    threads: usize,
) -> Result<Vec<(String, EmulationResults)>, EmulationError> {
    run_sweep_with(points, threads, run_point)
}

/// Engine-generic sweep: builds an engine per point with
/// `build_engine`, runs it to completion through the
/// [`SteppableEngine`] contract and returns `(label, summary)` in
/// input order.
///
/// This is the sweep loop written once against the trait: the same
/// call drives the fast emulation engine, the TLM model or the RTL
/// model (callers pass the constructor), in either clock mode.
///
/// # Errors
///
/// Returns the error of the first failing point by input order.
pub fn run_sweep_engine<E, B>(
    points: &[SweepPoint],
    threads: usize,
    build_engine: B,
) -> Result<Vec<(String, EngineSummary)>, EmulationError>
where
    E: SteppableEngine,
    B: Fn(&PlatformConfig) -> Result<E, EmulationError> + Sync,
{
    run_sweep_with(points, threads, |point| {
        let mut engine = build_engine(&point.config)?;
        run_engine(&mut engine)?;
        Ok(engine.summary())
    })
}

/// Generalized sweep runner: applies `run` to every point across up to
/// `threads` workers and returns `(label, outcome)` in input order.
///
/// This is the engine under [`run_sweep`]; the scenario-matrix runner
/// and the benchmark harness use it directly to thread custom
/// per-point evaluation (different engines, derived statistics)
/// through the same scheduling, ordering and failure semantics.
///
/// Worker panics are caught per point and re-raised after all workers
/// drain, so one panicking point can neither poison the slot mutex nor
/// silently discard the outcomes of its worker's other points.
///
/// # Errors
///
/// Returns the error of the first failing point by *input* order, even
/// when a later point fails first in wall-clock time.
///
/// # Panics
///
/// Re-raises the panic of the first panicking point (by input order).
/// When an earlier point returned `Err`, the `Err` wins and the later
/// panic payload is dropped.
pub fn run_sweep_with<T, E, F>(
    points: &[SweepPoint],
    threads: usize,
    run: F,
) -> Result<Vec<(String, T)>, E>
where
    T: Send,
    E: Send,
    F: Fn(&SweepPoint) -> Result<T, E> + Sync,
{
    run_sweep_indexed(points, threads, |_, p| run(p))
}

/// Like [`run_sweep_with`], but the callback also receives the
/// point's *input index*. Callers that join sweep outcomes back to
/// side tables (the matrix's shard groups, the curve runner's specs)
/// key on the index instead of the label — labels then stay purely
/// cosmetic and duplicates cannot misroute work.
///
/// # Errors
///
/// Returns the error of the first failing point by input order (see
/// [`run_sweep_with`]).
///
/// # Panics
///
/// Re-raises the panic of the first panicking point by input order
/// (see [`run_sweep_with`]).
pub fn run_sweep_indexed<T, E, F>(
    points: &[SweepPoint],
    threads: usize,
    run: F,
) -> Result<Vec<(String, T)>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize, &SweepPoint) -> Result<T, E> + Sync,
{
    let threads = threads.max(1);
    if threads == 1 || points.len() <= 1 {
        // Inline path: panics and errors already surface in input
        // order because evaluation is sequential.
        return points
            .iter()
            .enumerate()
            .map(|(i, p)| run(i, p).map(|t| (p.label.clone(), t)))
            .collect();
    }

    type Slot<T, E> = Option<Result<Result<T, E>, Box<dyn std::any::Any + Send>>>;
    let mut slots: Vec<Slot<T, E>> = (0..points.len()).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots_mutex = std::sync::Mutex::new(&mut slots);

    std::thread::scope(|scope| {
        for _ in 0..threads.min(points.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= points.len() {
                    break;
                }
                let outcome =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(i, &points[i])));
                let mut guard = slots_mutex.lock().expect("no panics while holding lock");
                guard[i] = Some(outcome);
            });
        }
    });

    let mut out = Vec::with_capacity(points.len());
    for (slot, point) in slots.into_iter().zip(points) {
        match slot.expect("every slot filled by a worker") {
            Ok(Ok(t)) => out.push((point.label.clone(), t)),
            Ok(Err(e)) => return Err(e),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
    Ok(out)
}

/// Whichever engine a configuration names, behind one concrete type —
/// the sweep-level dispatcher that the curve harness and
/// [`run_config`] build on. Unlike `crate::shard::build_engine` (a
/// boxed `dyn SteppableEngine`), `AnyEngine` also exposes full
/// [`EmulationResults`] collection, which the trait cannot.
#[derive(Debug)]
pub enum AnyEngine {
    /// The single-threaded fast emulation engine.
    Single(Box<Emulation>),
    /// The sharded multi-worker engine.
    Sharded(Box<ShardedEngine>),
    /// The compiled data-oriented engine (flat arrays).
    Compiled(Box<CompiledEngine>),
    /// The sharded compiled engine (array-slice shards, batched
    /// boundary exchange).
    ShardedCompiled(Box<ShardedCompiledEngine>),
}

impl AnyEngine {
    /// Compiles `config` and builds the engine `config.engine` names.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`].
    pub fn build(config: &PlatformConfig) -> Result<Self, CompileError> {
        Self::build_routed(config, None)
    }

    /// Like [`AnyEngine::build`] but reusing precomputed routing
    /// tables (see [`crate::compile::compute_routing`]); pass `None`
    /// to compute them here.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`].
    pub fn build_routed(
        config: &PlatformConfig,
        routing: Option<&RoutingTables>,
    ) -> Result<Self, CompileError> {
        let elab = match routing {
            Some(r) => elaborate_routed(config, r.clone())?,
            None => elaborate(config)?,
        };
        Ok(match config.engine {
            EngineKind::Sharded { shards } => {
                AnyEngine::Sharded(Box::new(ShardedEngine::from_elaboration(elab, shards)?))
            }
            EngineKind::Compiled => AnyEngine::Compiled(Box::new(CompiledEngine::new(elab))),
            EngineKind::ShardedCompiled { shards, batch } => AnyEngine::ShardedCompiled(Box::new(
                ShardedCompiledEngine::from_elaboration(elab, shards, batch)?,
            )),
            _ => AnyEngine::Single(Box::new(Emulation::new(elab))),
        })
    }

    /// Collects the full run results.
    ///
    /// # Errors
    ///
    /// Returns [`EmulationError::Shard`] when a shard worker died.
    pub fn results(&mut self) -> Result<EmulationResults, EmulationError> {
        match self {
            AnyEngine::Single(e) => Ok(e.results()),
            AnyEngine::Sharded(e) => e.results(),
            AnyEngine::Compiled(e) => Ok(e.results()),
            AnyEngine::ShardedCompiled(e) => e.results(),
        }
    }
}

impl SteppableEngine for AnyEngine {
    fn step(&mut self) -> Result<(), EmulationError> {
        match self {
            AnyEngine::Single(e) => e.step(),
            AnyEngine::Sharded(e) => SteppableEngine::step(&mut **e),
            AnyEngine::Compiled(e) => CompiledEngine::step(e),
            AnyEngine::ShardedCompiled(e) => SteppableEngine::step(&mut **e),
        }
    }

    fn now(&self) -> Cycle {
        match self {
            AnyEngine::Single(e) => e.now(),
            AnyEngine::Sharded(e) => SteppableEngine::now(&**e),
            AnyEngine::Compiled(e) => e.now(),
            AnyEngine::ShardedCompiled(e) => SteppableEngine::now(&**e),
        }
    }

    fn finished(&self) -> bool {
        match self {
            AnyEngine::Single(e) => e.finished(),
            AnyEngine::Sharded(e) => SteppableEngine::finished(&**e),
            AnyEngine::Compiled(e) => CompiledEngine::finished(e),
            AnyEngine::ShardedCompiled(e) => SteppableEngine::finished(&**e),
        }
    }

    fn delivered(&self) -> u64 {
        match self {
            AnyEngine::Single(e) => e.delivered(),
            AnyEngine::Sharded(e) => SteppableEngine::delivered(&**e),
            AnyEngine::Compiled(e) => e.delivered(),
            AnyEngine::ShardedCompiled(e) => SteppableEngine::delivered(&**e),
        }
    }

    fn cycles_skipped(&self) -> u64 {
        match self {
            AnyEngine::Single(e) => e.cycles_skipped(),
            AnyEngine::Sharded(e) => SteppableEngine::cycles_skipped(&**e),
            AnyEngine::Compiled(e) => e.cycles_skipped(),
            AnyEngine::ShardedCompiled(e) => SteppableEngine::cycles_skipped(&**e),
        }
    }

    fn summary(&self) -> EngineSummary {
        match self {
            AnyEngine::Single(e) => SteppableEngine::summary(&**e),
            AnyEngine::Sharded(e) => SteppableEngine::summary(&**e),
            AnyEngine::Compiled(e) => SteppableEngine::summary(&**e),
            AnyEngine::ShardedCompiled(e) => SteppableEngine::summary(&**e),
        }
    }

    fn packet_ledger(&self) -> PacketLedger {
        match self {
            AnyEngine::Single(e) => SteppableEngine::packet_ledger(&**e),
            AnyEngine::Sharded(e) => SteppableEngine::packet_ledger(&**e),
            AnyEngine::Compiled(e) => SteppableEngine::packet_ledger(&**e),
            AnyEngine::ShardedCompiled(e) => SteppableEngine::packet_ledger(&**e),
        }
    }

    fn telemetry(&self) -> Option<&nocem_telemetry::Collector> {
        match self {
            AnyEngine::Single(e) => SteppableEngine::telemetry(&**e),
            AnyEngine::Sharded(e) => SteppableEngine::telemetry(&**e),
            AnyEngine::Compiled(e) => SteppableEngine::telemetry(&**e),
            AnyEngine::ShardedCompiled(e) => SteppableEngine::telemetry(&**e),
        }
    }

    fn seal_telemetry(&mut self) {
        match self {
            AnyEngine::Single(e) => SteppableEngine::seal_telemetry(&mut **e),
            AnyEngine::Sharded(e) => SteppableEngine::seal_telemetry(&mut **e),
            AnyEngine::Compiled(e) => SteppableEngine::seal_telemetry(&mut **e),
            AnyEngine::ShardedCompiled(e) => SteppableEngine::seal_telemetry(&mut **e),
        }
    }

    fn profile(&mut self) -> Option<crate::profile::PhaseReport> {
        match self {
            AnyEngine::Single(e) => SteppableEngine::profile(&mut **e),
            AnyEngine::Sharded(e) => SteppableEngine::profile(&mut **e),
            AnyEngine::Compiled(e) => SteppableEngine::profile(&mut **e),
            AnyEngine::ShardedCompiled(e) => SteppableEngine::profile(&mut **e),
        }
    }

    fn span_trace(&mut self) -> Option<nocem_telemetry::SpanTrace> {
        match self {
            AnyEngine::Single(e) => SteppableEngine::span_trace(&mut **e),
            AnyEngine::Sharded(e) => SteppableEngine::span_trace(&mut **e),
            AnyEngine::Compiled(e) => SteppableEngine::span_trace(&mut **e),
            AnyEngine::ShardedCompiled(e) => SteppableEngine::span_trace(&mut **e),
        }
    }

    fn stall_report(&self) -> Option<&crate::profile::StallReport> {
        match self {
            AnyEngine::Single(e) => SteppableEngine::stall_report(&**e),
            AnyEngine::Sharded(e) => SteppableEngine::stall_report(&**e),
            AnyEngine::Compiled(e) => SteppableEngine::stall_report(&**e),
            AnyEngine::ShardedCompiled(e) => SteppableEngine::stall_report(&**e),
        }
    }

    fn warnings(&self) -> &[EngineWarning] {
        match self {
            AnyEngine::Single(e) => SteppableEngine::warnings(&**e),
            AnyEngine::Sharded(e) => SteppableEngine::warnings(&**e),
            AnyEngine::Compiled(e) => SteppableEngine::warnings(&**e),
            AnyEngine::ShardedCompiled(e) => SteppableEngine::warnings(&**e),
        }
    }
}

/// Wraps a compile failure into the sweep's single
/// [`EmulationError`] channel (reported through
/// [`EmulationError::Bus`], the way the run-control software would
/// observe a platform that failed to come up).
pub fn compile_fault(config: &PlatformConfig, e: CompileError) -> EmulationError {
    EmulationError::Bus(nocem_platform::bus::BusError::InvalidValue {
        addr: nocem_platform::addr::Address::from_parts(
            nocem_common::ids::BusId::new(0),
            nocem_common::ids::DeviceId::new(0),
            0,
        ),
        reason: format!("configuration {:?} failed to compile: {e}", config.name),
    })
}

/// Compiles and runs one configuration to completion on whichever
/// engine `config.engine` names, returning its full results. This is
/// how a sweep or matrix point honours [`EngineKind::Sharded`] without
/// its caller knowing about engines.
///
/// # Errors
///
/// Propagates [`EmulationError`] from the run; compile failures are
/// reported through [`EmulationError::Bus`] so callers get one error
/// channel.
pub fn run_config(config: &PlatformConfig) -> Result<EmulationResults, EmulationError> {
    run_config_routed(config, None)
}

/// Like [`run_config`] but reusing precomputed routing tables from
/// [`crate::compile::compute_routing`] — callers that run the same
/// topology × flow set at many loads or shard counts (the scenario
/// matrix, a saturation search) pay the route computation and the
/// deadlock check once instead of per point.
///
/// # Errors
///
/// Propagates [`EmulationError`] from the run; compile failures are
/// reported through [`EmulationError::Bus`].
pub fn run_config_routed(
    config: &PlatformConfig,
    routing: Option<&RoutingTables>,
) -> Result<EmulationResults, EmulationError> {
    let mut engine =
        AnyEngine::build_routed(config, routing).map_err(|e| compile_fault(config, e))?;
    run_engine(&mut engine)?;
    engine.results()
}

fn run_point(point: &SweepPoint) -> Result<EmulationResults, EmulationError> {
    run_config(&point.config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PaperConfig;

    fn points(n: usize) -> Vec<SweepPoint> {
        (0..n)
            .map(|i| {
                SweepPoint::new(
                    format!("p{i}"),
                    PaperConfig::new()
                        .total_packets(100 + 50 * i as u64)
                        .uniform(),
                )
            })
            .collect()
    }

    #[test]
    fn serial_sweep_preserves_order() {
        let out = run_sweep(&points(3), 1).unwrap();
        let labels: Vec<&str> = out.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels, ["p0", "p1", "p2"]);
        assert_eq!(out[0].1.delivered, 100);
        assert_eq!(out[2].1.delivered, 200);
    }

    #[test]
    fn threaded_sweep_matches_serial() {
        let serial = run_sweep(&points(4), 1).unwrap();
        let parallel = run_sweep(&points(4), 4).unwrap();
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.0, p.0);
            assert_eq!(s.1.cycles, p.1.cycles, "determinism across threads");
            assert_eq!(s.1.delivered, p.1.delivered);
        }
    }

    #[test]
    fn any_engine_honours_the_engine_kind_and_reuses_routing() {
        let cfg = PaperConfig::new().total_packets(150).uniform();
        let routing = crate::compile::compute_routing(&cfg).unwrap();
        let baseline = run_config(&cfg).unwrap();
        let routed = run_config_routed(&cfg, Some(&routing)).unwrap();
        assert_eq!(baseline, routed);

        let sharded_cfg = cfg.clone().with_engine(EngineKind::Sharded { shards: 2 });
        let mut engine = AnyEngine::build_routed(&sharded_cfg, Some(&routing)).unwrap();
        assert!(matches!(engine, AnyEngine::Sharded(_)));
        run_engine(&mut engine).unwrap();
        assert_eq!(engine.results().unwrap(), baseline);
    }

    #[test]
    fn run_engine_until_stops_at_the_cycle() {
        let mut cfg = PaperConfig::new().total_packets(1_000_000).uniform();
        cfg.stop.delivered_packets = None;
        let mut engine = AnyEngine::build(&cfg).unwrap();
        crate::clock::run_engine_until(&mut engine, 500).unwrap();
        assert_eq!(engine.now().raw(), 500);
        // Resuming continues from where it stopped.
        crate::clock::run_engine_until(&mut engine, 600).unwrap();
        assert_eq!(engine.now().raw(), 600);
    }

    #[test]
    fn failing_point_reports_error() {
        let mut bad = points(1);
        bad[0].config.stop.cycle_limit = 10; // cannot finish in 10 cycles
        assert!(run_sweep(&bad, 1).is_err());
    }

    #[test]
    fn generalized_sweep_threads_custom_outcomes() {
        let out =
            run_sweep_with::<_, EmulationError, _>(&points(4), 4, |p| Ok(p.label.len())).unwrap();
        let labels: Vec<&str> = out.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels, ["p0", "p1", "p2", "p3"]);
        assert!(out.iter().all(|&(_, n)| n == 2));
    }

    #[test]
    fn worker_panic_propagates_under_threads() {
        // Regression: a panicking point used to kill its worker,
        // leaving unfilled slots whose `expect` masked the real panic.
        let result = std::panic::catch_unwind(|| {
            run_sweep_with::<(), EmulationError, _>(&points(6), 3, |p| {
                if p.label == "p2" {
                    panic!("scenario exploded");
                }
                Ok(())
            })
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("scenario exploded"), "payload: {msg}");
    }

    #[test]
    fn first_failure_by_input_order_under_threads() {
        // Point 0 fails slowly, point 3 fails instantly; with several
        // workers, point 3's error lands first in wall-clock time but
        // point 0's must still be the one reported.
        for _ in 0..8 {
            let err = run_sweep_with::<(), String, _>(&points(4), 4, |p| {
                if p.label == "p0" {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    Err("early point".to_owned())
                } else if p.label == "p3" {
                    Err("late point".to_owned())
                } else {
                    Ok(())
                }
            })
            .unwrap_err();
            assert_eq!(err, "early point");
        }
    }

    #[test]
    fn earlier_error_wins_over_later_panic() {
        let outcome = std::panic::catch_unwind(|| {
            run_sweep_with::<(), String, _>(&points(3), 3, |p| {
                if p.label == "p0" {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    Err("input-order first".to_owned())
                } else if p.label == "p2" {
                    panic!("later panic");
                } else {
                    Ok(())
                }
            })
        })
        .expect("the earlier Err must win, not the panic");
        assert_eq!(outcome.unwrap_err(), "input-order first");
    }
}
