//! Property-based round-trip of the lowering pass: for randomized
//! mesh/torus/ring/star platforms, [`lower`] must reproduce the
//! elaboration exactly — every routing entry survives into the CSR
//! (and the direct map agrees with it), the prefix-sum layout tiles
//! the arrays with no gaps or overlaps, the FIFO arena is sized from
//! the elaboration's port counts, and the initial credit/cursor state
//! matches the freshly instantiated switches.

use nocem::compile::{elaborate, lower, InSlotState, ROUTE_MULTI, ROUTE_NONE, SLOT_NONE};
use nocem::config::PlatformConfig;
use nocem_common::ids::{PortId, VcId};
use nocem_scenarios::registry::ScenarioRegistry;
use nocem_scenarios::scenario::TopologySpec;
use nocem_switch::switch::CREDITS_INFINITE;
use proptest::prelude::*;

/// Elaborates `cfg`, lowers it, and asserts the full round-trip.
fn check_lowering(cfg: &PlatformConfig) {
    let elab = elaborate(cfg).expect("config elaborates");
    let low = lower(&elab);
    let topo = &cfg.topology;
    let vcs = low.num_vcs;
    let n = low.switch_count;
    assert_eq!(n, topo.switch_count(), "switch count survives lowering");
    assert_eq!(vcs, usize::from(cfg.switch.num_vcs));
    assert_eq!(low.fifo_depth, usize::from(cfg.switch.fifo_depth));

    // Prefix sums tile the slot and port arrays exactly: each
    // switch's span is its own port count (from the elaboration, not
    // any uniform maximum), and the spans are contiguous.
    for s in 0..n {
        let info = topo.switch(nocem_common::ids::SwitchId::new(s as u32));
        assert_eq!(low.inputs[s], u32::from(info.inputs));
        assert_eq!(low.outputs[s], u32::from(info.outputs));
        assert_eq!(
            low.in_slot_base[s + 1] - low.in_slot_base[s],
            low.inputs[s] * vcs as u32,
            "input-slot span of switch {s}"
        );
        assert_eq!(
            low.out_slot_base[s + 1] - low.out_slot_base[s],
            low.outputs[s] * vcs as u32,
            "output-slot span of switch {s}"
        );
        assert_eq!(low.in_port_base[s + 1] - low.in_port_base[s], low.inputs[s]);
        assert_eq!(
            low.out_port_base[s + 1] - low.out_port_base[s],
            low.outputs[s]
        );
    }

    // The arena allocates exactly `fifo_depth` handle slots per input
    // slot, and every cursor record starts empty.
    assert_eq!(low.fifo_arena.len(), low.total_in_slots() * low.fifo_depth);
    assert_eq!(low.in_state.len(), low.total_in_slots());
    assert!(
        low.in_state.iter().all(|st| *st == InSlotState::EMPTY),
        "every input slot starts empty with no worm and no selection"
    );

    // Output-slot records start at their credit caps — the exact
    // credits the elaborated switches hold (inter-switch links carry
    // finite downstream-depth credits, ejection links are infinite).
    assert_eq!(low.out_state.len(), low.total_out_slots());
    assert_eq!(low.credit_cap.len(), low.total_out_slots());
    for s in 0..n {
        let osb = low.out_slot_base[s] as usize;
        for p in 0..low.outputs[s] as usize {
            for v in 0..vcs {
                let gslot = osb + p * vcs + v;
                let cap = elab.switches[s].credits_vc(PortId::new(p as u8), VcId::new(v as u8));
                assert_eq!(low.out_state[gslot].credits, cap);
                assert_eq!(low.credit_cap[gslot], cap);
                assert_eq!(low.out_state[gslot].busy_with, SLOT_NONE);
                assert_eq!(
                    low.out_state[gslot].arb_last as usize,
                    low.inputs[s] as usize * vcs - 1,
                    "arbiter pointer starts just before input slot 0"
                );
            }
        }
        for p in 0..low.outputs[s] as usize {
            let link = topo.out_link(
                nocem_common::ids::SwitchId::new(s as u32),
                PortId::new(p as u8),
            );
            let ejection = topo.link(link).to_switch().is_none();
            for v in 0..vcs {
                assert_eq!(
                    low.out_state[osb + p * vcs + v].credits == CREDITS_INFINITE,
                    ejection,
                    "exactly the ejection slots of switch {s} carry infinite credits"
                );
            }
        }
    }

    // Every routing-table entry survives into the CSR verbatim, and
    // the CSR holds nothing else.
    let mut table_entries = 0usize;
    for s in topo.switch_ids() {
        let table = elab.routing.switch_table(s);
        for (flow, hops) in table.entries() {
            table_entries += 1;
            assert_eq!(
                low.route_lookup(s.index(), flow.raw()),
                hops,
                "route entry of flow {flow} at switch {s}"
            );
        }
    }
    assert_eq!(
        low.route_flows.len(),
        table_entries,
        "CSR holds exactly the table entries"
    );

    // The direct map agrees with the CSR: single-hop entries embed
    // the encoded out-slot, multi-hop entries defer, absent flows are
    // marked absent.
    if low.route_flow_space != 0 {
        for s in 0..n {
            for flow in 0..low.route_flow_space as u32 {
                let enc = low.route_direct[s * low.route_flow_space + flow as usize];
                let hops = low.route_lookup(s, flow);
                match enc {
                    ROUTE_NONE => assert!(hops.is_empty(), "flow {flow} marked absent at {s}"),
                    ROUTE_MULTI => assert!(
                        hops.len() > 1
                            || hops[0].port.index() * vcs + hops[0].vc.index()
                                >= usize::from(ROUTE_MULTI),
                        "deferred flow {flow} at {s} is genuinely multi-hop or wide"
                    ),
                    enc => {
                        assert_eq!(hops.len(), 1, "embedded flow {flow} at {s} is single-hop");
                        assert_eq!(
                            usize::from(enc),
                            hops[0].port.index() * vcs + hops[0].vc.index(),
                            "embedded answer of flow {flow} at {s}"
                        );
                    }
                }
            }
        }
    }
}

/// A uniform-random scenario on `topo` (the registry picks the
/// topology-appropriate routing: XY on meshes, 2-VC dateline on tori).
fn uniform(topo: TopologySpec) -> PlatformConfig {
    ScenarioRegistry::builtin()
        .resolve("uniform_random")
        .expect("builtin scenario")
        .build_config(topo, 0.20, 4, 100)
        .expect("scenario config compiles")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random meshes lower exactly.
    #[test]
    fn mesh_lowering_round_trips(w in 2u32..7, h in 2u32..7) {
        check_lowering(&uniform(TopologySpec::Mesh { width: w, height: h }));
    }

    /// Random tori (2 VCs, dateline routing) lower exactly.
    #[test]
    fn torus_lowering_round_trips(w in 2u32..6, h in 2u32..6) {
        check_lowering(&uniform(TopologySpec::Torus { width: w, height: h }));
    }

    /// Random rings lower exactly.
    #[test]
    fn ring_lowering_round_trips(switches in 2u32..12) {
        check_lowering(&uniform(TopologySpec::Ring { switches }));
    }

    /// Random stars lower exactly: the hub's port count differs from
    /// every leaf's, exercising the heterogeneous prefix sums.
    #[test]
    fn star_lowering_round_trips(leaves in 2u32..10) {
        let topology = nocem_topology::builders::star(leaves).unwrap();
        let cfg = PlatformConfig::baseline(format!("star{leaves}-lowering"), topology).unwrap();
        check_lowering(&cfg);
    }
}
