//! # nocem-curves — saturation search and latency–throughput curves
//!
//! The canonical evaluation output of every NoC tool: for a scenario ×
//! topology, sweep the offered load, measure steady-state latency and
//! *accepted* throughput at each point, and locate the saturation load
//! — the knee past which accepted throughput plateaus while latency
//! diverges. This crate turns any `nocem-scenarios` registry entry
//! into that curve, on any engine and clock mode:
//!
//! * [`measure`] — the steady-state measurement harness: one load
//!   point runs *open-loop* (budgets uncapped) for a configurable
//!   warm-up plus measurement window, then reads offered vs accepted
//!   throughput (flits/cycle/node) and p50/p95/p99 latency out of the
//!   packet ledger through `nocem-stats`' windowed extraction;
//! * [`search`] — the adaptive load controller: a coarse ramp until a
//!   point saturates (accepted throughput falls short of offered, or
//!   mean latency exceeds a multiple of the zero-load latency),
//!   then bisection to pin the saturation load within a configured
//!   tolerance;
//! * [`runner`] — the parallel curve runner: many curves across
//!   `nocem`'s sweep scheduler, one CSV row per (scenario, topology,
//!   load point) plus a per-curve saturation summary.
//!
//! Curves honour [`nocem::ClockMode::Gated`] and
//! [`nocem::config::EngineKind::Sharded`]: the measured statistics are
//! selected by absolute cycle from a ledger that is proven identical
//! across clock modes and engines, so a gated sharded sweep produces
//! the same curve as an ungated single-threaded one — only faster.
//! Routing tables are elaborated once per curve and reused across
//! every load point and bisection step.
//!
//! # Examples
//!
//! ```no_run
//! use nocem_curves::search::CurveSpec;
//! use nocem_scenarios::registry::ScenarioRegistry;
//! use nocem_scenarios::scenario::TopologySpec;
//!
//! let registry = ScenarioRegistry::builtin();
//! let spec = CurveSpec::new(
//!     "uniform_random",
//!     TopologySpec::Mesh { width: 4, height: 4 },
//! );
//! let curve = spec.run(&registry).unwrap();
//! println!(
//!     "saturation at load {:.3} ({} points)",
//!     curve.saturation.saturation_load,
//!     curve.points.len()
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod measure;
pub mod runner;
pub mod search;

pub use measure::{MeasureConfig, PointMeasurement, PointTelemetry, TOP_LINKS};
pub use runner::{CurveSetOutcome, CurveSetSpec, SkippedCurve};
pub use search::{Curve, CurvePoint, CurveSpec, PointPhase, SaturationSummary, SearchConfig};

use nocem::error::{CompileError, EmulationError};
use nocem_scenarios::ScenarioError;

/// Failure of a curve measurement or search.
#[derive(Debug)]
#[non_exhaustive]
pub enum CurveError {
    /// The scenario could not be resolved or bound to the topology.
    Scenario(ScenarioError),
    /// The platform failed to compile (routing, deadlock, VC range).
    Compile(CompileError),
    /// A measurement run failed.
    Emulation(EmulationError),
}

impl std::fmt::Display for CurveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CurveError::Scenario(e) => write!(f, "curve scenario failed: {e}"),
            CurveError::Compile(e) => write!(f, "curve platform failed to compile: {e}"),
            CurveError::Emulation(e) => write!(f, "curve measurement failed: {e}"),
        }
    }
}

impl std::error::Error for CurveError {}

impl From<ScenarioError> for CurveError {
    fn from(e: ScenarioError) -> Self {
        CurveError::Scenario(e)
    }
}

impl From<CompileError> for CurveError {
    fn from(e: CompileError) -> Self {
        CurveError::Compile(e)
    }
}

impl From<EmulationError> for CurveError {
    fn from(e: EmulationError) -> Self {
        CurveError::Emulation(e)
    }
}
