//! The steady-state measurement harness: one load point, measured.
//!
//! A latency–throughput point must be measured **open-loop** — the
//! traffic generators offer load indefinitely and the network accepts
//! what it can — and **in steady state** — the transient of an empty
//! network filling up is discarded. [`measure_config`] therefore:
//!
//! 1. uncaps every stochastic generator's packet budget and disables
//!    the delivered-packet stop condition;
//! 2. runs the configured engine ([`nocem::sweep::AnyEngine`] honours
//!    [`nocem::config::EngineKind`] and [`nocem::ClockMode`]) for
//!    `warmup_cycles + measure_cycles` cycles;
//! 3. extracts the point's statistics from the packet ledger through
//!    `nocem-stats`' windowed extraction: latency quantiles over
//!    packets injected inside the window, accepted throughput over
//!    packets delivered inside it.
//!
//! Because selection is by absolute cycle over a ledger that is
//! cycle-identical across clock modes and engines, a measurement is
//! reproducible bit for bit on any of them.

use crate::CurveError;
use nocem::clock::run_engine_until;
use nocem::config::{PlatformConfig, TrafficModel};
use nocem::sweep::AnyEngine;
use nocem_stats::congestion::VcOccupancy;
use nocem_stats::window::{Window, WindowStats};
use nocem_telemetry::LinkStat;
use nocem_topology::routing::RoutingTables;

/// How many congested links a point keeps (enough to paint the whole
/// bisection cut of an 8×8 mesh, small enough to stay cheap).
pub const TOP_LINKS: usize = 8;

/// How long a load point runs and which part of it is measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeasureConfig {
    /// Cycles discarded before the measurement window opens (the
    /// network fills to steady state).
    pub warmup_cycles: u64,
    /// Length of the measurement window in cycles.
    pub measure_cycles: u64,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        MeasureConfig {
            warmup_cycles: 1_024,
            measure_cycles: 4_096,
        }
    }
}

impl MeasureConfig {
    /// Total cycles a point runs.
    pub fn total_cycles(&self) -> u64 {
        self.warmup_cycles + self.measure_cycles
    }
}

/// One measured load point of a curve.
#[derive(Debug, Clone, PartialEq)]
pub struct PointMeasurement {
    /// Nominal offered load per node (fraction of link bandwidth =
    /// flits/cycle/node).
    pub offered: f64,
    /// Accepted throughput inside the window, flits/cycle/node.
    pub accepted: f64,
    /// Latency samples inside the window (packets injected there and
    /// delivered).
    pub packets_measured: u64,
    /// Mean network latency (injection → delivery) of the samples.
    pub mean_network_latency: Option<f64>,
    /// Median network latency.
    pub p50: Option<u64>,
    /// 95th-percentile network latency.
    pub p95: Option<u64>,
    /// 99th-percentile network latency.
    pub p99: Option<u64>,
    /// Mean total latency (release → delivery) — includes source
    /// queueing, the quantity that diverges past saturation.
    pub mean_total_latency: Option<f64>,
    /// Per-VC input-buffer occupancy watermarks over the whole run.
    pub vc_occupancy: VcOccupancy,
    /// Cycles a traffic model spent stalled on a full source queue.
    pub stalled_cycles: u64,
    /// End of the measurement window (deterministic across clock
    /// modes and engines; the run itself may coast a few quiescent
    /// cycles further under gating).
    pub cycles: u64,
    /// Cycles the fast-forward kernel jumped — machinery only, the
    /// one field that legitimately differs between clock modes.
    pub cycles_skipped: u64,
    /// Windowed-telemetry extract of the point, when the spec enabled
    /// telemetry (`None` = telemetry off, the default).
    pub telemetry: Option<PointTelemetry>,
    /// Host-side phase profile of the point's run, when the config
    /// enabled profiling (`None` = profiling off, the default). Host
    /// timing, so engine- and machine-dependent — excluded from
    /// [`PointMeasurement::behavioral`] equivalence.
    pub profile: Option<nocem::profile::PhaseReport>,
}

/// The bottleneck extract of one load point's telemetry: which links
/// absorbed the congestion.
///
/// Only **gating-invariant** data is kept. A gated point may coast a
/// few quiescent cycles past the fixed-cycle target and record extra
/// trailing windows, so window *counts* differ across clock modes —
/// but those extra windows are zero-delta, so per-link lifetime
/// *totals* (and their ranking) are identical on every engine and
/// clock mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointTelemetry {
    /// Telemetry window length in cycles.
    pub window: u64,
    /// The `TOP_LINKS` most-blocked links, descending by lifetime
    /// blocked cycles (ties broken by link id).
    pub top_links: Vec<LinkStat>,
}

impl PointTelemetry {
    /// The single most congested link, when any link blocked at all.
    pub fn hottest(&self) -> Option<&LinkStat> {
        self.top_links.first().filter(|l| l.blocked > 0)
    }
}

impl PointMeasurement {
    /// The measurement with the machinery-only gating counter cleared
    /// — what cross-mode/cross-engine equivalence compares, since
    /// skipping is the one *intended* difference.
    #[must_use]
    pub fn behavioral(&self) -> PointMeasurement {
        PointMeasurement {
            cycles_skipped: 0,
            profile: None,
            ..self.clone()
        }
    }
}

/// Rewrites a (budgeted, stop-on-delivered) scenario configuration
/// into the open-loop form a steady-state measurement needs.
fn open_loop(config: &mut PlatformConfig, measure: &MeasureConfig) {
    config.stop.delivered_packets = None;
    // Generous limit: the run is bounded by `run_engine_until`, never
    // by the limit; the slack absorbs a final gated fast-forward.
    config.stop.cycle_limit = measure.total_cycles() * 2 + 64;
    for g in &mut config.generators {
        match g {
            TrafficModel::Uniform(u) => u.budget = None,
            TrafficModel::Burst(b) => b.budget = None,
            TrafficModel::Poisson(p) => p.budget = None,
            // Trace generators replay a finite recording; they keep
            // their natural length.
            _ => {}
        }
    }
}

/// Measures one load point: runs `config` open-loop for the warm-up
/// plus measurement window and extracts the windowed statistics.
///
/// `offered` is the nominal per-node offered load recorded into the
/// measurement (the load axis of the curve). `routing` optionally
/// reuses tables from [`nocem::compile::compute_routing`] — a
/// saturation search elaborates routing once and passes it to every
/// point.
///
/// # Errors
///
/// Returns [`CurveError`] on compile or run failures.
pub fn measure_config(
    config: &PlatformConfig,
    routing: Option<&RoutingTables>,
    measure: &MeasureConfig,
    offered: f64,
) -> Result<PointMeasurement, CurveError> {
    let mut cfg = config.clone();
    open_loop(&mut cfg, measure);
    let mut engine = AnyEngine::build_routed(&cfg, routing)?;
    run_engine_until(&mut engine, measure.total_cycles())?;
    nocem::SteppableEngine::seal_telemetry(&mut engine);
    let telemetry = nocem::SteppableEngine::telemetry(&engine).map(|c| PointTelemetry {
        window: c.window_cycles(),
        top_links: c.top_blocked(TOP_LINKS),
    });
    let ledger = nocem::SteppableEngine::packet_ledger(&engine);
    let profile = nocem::SteppableEngine::profile(&mut engine);
    let results = engine.results()?;

    let window = Window::after_warmup(
        measure.warmup_cycles,
        measure.measure_cycles,
        measure.total_cycles(),
    );
    let (net, total) = WindowStats::from_ledger_both(&ledger, window);
    let nodes = cfg.topology.generators().len().max(1) as f64;
    Ok(PointMeasurement {
        offered,
        accepted: net.accepted_flits_per_cycle() / nodes,
        packets_measured: net.samples(),
        mean_network_latency: net.mean(),
        p50: net.p50(),
        p95: net.p95(),
        p99: net.p99(),
        mean_total_latency: total.mean(),
        vc_occupancy: results.vc_occupancy,
        stalled_cycles: results.stalled_cycles,
        cycles: window.end,
        cycles_skipped: results.cycles_skipped,
        telemetry,
        profile,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocem::clock::ClockMode;
    use nocem::config::EngineKind;
    use nocem_scenarios::registry::ScenarioRegistry;
    use nocem_scenarios::scenario::TopologySpec;

    fn mesh_config(load: f64) -> PlatformConfig {
        ScenarioRegistry::builtin()
            .resolve("uniform_random")
            .unwrap()
            .build_config(
                TopologySpec::Mesh {
                    width: 4,
                    height: 4,
                },
                load,
                4,
                1_000_000,
            )
            .unwrap()
    }

    #[test]
    fn low_load_point_tracks_offered_load() {
        let m = measure_config(
            &mesh_config(0.10),
            None,
            &MeasureConfig {
                warmup_cycles: 512,
                measure_cycles: 2_048,
            },
            0.10,
        )
        .unwrap();
        assert!(m.packets_measured > 0);
        assert!(
            (m.accepted - 0.10).abs() < 0.02,
            "accepted {} should track offered 0.10",
            m.accepted
        );
        assert!(m.mean_network_latency.unwrap() > 0.0);
        assert!(m.p50 <= m.p95 && m.p95 <= m.p99);
        assert!(m.vc_occupancy.overall_max() >= 1);
        assert_eq!(m.cycles, 2_560);
    }

    #[test]
    fn gated_and_sharded_measurements_match_the_baseline() {
        let measure = MeasureConfig {
            warmup_cycles: 256,
            measure_cycles: 1_024,
        };
        let base = measure_config(&mesh_config(0.15), None, &measure, 0.15).unwrap();
        let mut gated = mesh_config(0.15);
        gated.clock_mode = ClockMode::Gated;
        gated.engine = EngineKind::Sharded { shards: 2 };
        let fast = measure_config(&gated, None, &measure, 0.15).unwrap();
        assert_eq!(fast.behavioral(), base.behavioral());
    }

    #[test]
    fn telemetry_extract_is_engine_and_mode_invariant() {
        let measure = MeasureConfig {
            warmup_cycles: 256,
            measure_cycles: 1_024,
        };
        let mut base_cfg = mesh_config(0.60);
        base_cfg.telemetry = Some(nocem_telemetry::TelemetryConfig::windowed(256));
        let base = measure_config(&base_cfg, None, &measure, 0.60).unwrap();
        let mut fast_cfg = base_cfg.clone();
        fast_cfg.clock_mode = ClockMode::Gated;
        fast_cfg.engine = EngineKind::Sharded { shards: 2 };
        let fast = measure_config(&fast_cfg, None, &measure, 0.60).unwrap();
        let tel = base.telemetry.as_ref().expect("telemetry was enabled");
        assert_eq!(tel.window, 256);
        assert_eq!(tel.top_links.len(), TOP_LINKS);
        let hot = tel.hottest().expect("0.60 load blocks somewhere");
        assert!(hot.blocked > 0 && hot.rate() > 0.0);
        // Per-link lifetime totals (and with them the bottleneck
        // ranking) are gating- and engine-invariant even though a
        // gated run may coast extra quiescent windows.
        assert_eq!(fast.telemetry, base.telemetry);
        assert_eq!(fast.behavioral(), base.behavioral());
    }

    #[test]
    fn profiled_point_carries_phase_shares() {
        let measure = MeasureConfig {
            warmup_cycles: 256,
            measure_cycles: 1_024,
        };
        let base = measure_config(&mesh_config(0.15), None, &measure, 0.15).unwrap();
        assert!(base.profile.is_none(), "profiling defaults to off");
        let mut cfg = mesh_config(0.15);
        cfg.profile = Some(nocem::profile::ProfileConfig::default());
        let profiled = measure_config(&cfg, None, &measure, 0.15).unwrap();
        let report = profiled.profile.as_ref().expect("profiling was enabled");
        assert!(report.total_ns > 0);
        assert!(report.stepped_cycles > 0);
        let share_sum: f64 = nocem::profile::Phase::ALL
            .iter()
            .map(|&p| report.share_of(p))
            .sum();
        assert!(
            (share_sum - 1.0).abs() < 1e-9,
            "phase shares must sum to 1, got {share_sum}"
        );
        // Host timing is not behaviour: the profiled point still
        // matches the unprofiled baseline bit for bit.
        assert_eq!(profiled.behavioral(), base.behavioral());
    }

    #[test]
    fn overloaded_point_accepts_less_than_offered() {
        // 90% offered uniform-random on a mesh is far past saturation.
        let m = measure_config(
            &mesh_config(0.90),
            None,
            &MeasureConfig {
                warmup_cycles: 512,
                measure_cycles: 2_048,
            },
            0.90,
        )
        .unwrap();
        assert!(
            m.accepted < 0.75,
            "accepted {} must fall short of offered 0.90",
            m.accepted
        );
        assert!(m.stalled_cycles > 0, "source queues must back-pressure");
    }
}
