//! The parallel curve runner: many curves, one CSV.
//!
//! [`CurveSetSpec`] names a `scenarios × topologies` grid of curves;
//! [`CurveSetSpec::expand`] pre-binds each combination (inapplicable
//! ones — transpose on a ring, core graphs on tiny topologies — are
//! collected as skips, exactly like the scenario matrix), and
//! [`CurveSetSpec::run`] pushes the applicable curves through
//! `nocem`'s parallel sweep scheduler ([`nocem::run_sweep_with`]) —
//! one worker per curve, since the points *within* a curve are
//! sequentially dependent (the adaptive search steers by its own
//! measurements).
//!
//! [`CurveSetOutcome::to_csv`] renders one record per (scenario,
//! topology, load point) plus a per-curve saturation summary comment.

use crate::search::{Curve, CurveSpec};
use crate::CurveError;
use nocem::sweep::{run_sweep_indexed, SweepPoint};
use nocem_common::csv::CsvWriter;
use nocem_common::ids::LinkId;
use nocem_scenarios::registry::ScenarioRegistry;
use nocem_scenarios::scenario::TopologySpec;
use nocem_scenarios::ScenarioError;
use nocem_topology::graph::{LinkEnd, Topology};

/// One curve the runner skipped as inapplicable, with the reason.
#[derive(Debug)]
pub struct SkippedCurve {
    /// The label the curve would have had.
    pub label: String,
    /// Why it cannot run.
    pub reason: ScenarioError,
}

/// A `scenarios × topologies` grid of curves sharing one parameter
/// set.
#[derive(Debug, Clone)]
pub struct CurveSetSpec {
    /// Prototype carrying packet/measure/search/engine/clock
    /// parameters (its `scenario`/`topology` fields are ignored).
    pub prototype: CurveSpec,
    /// Registry names of the scenarios to sweep.
    pub scenarios: Vec<String>,
    /// Topologies to sweep each scenario on.
    pub topologies: Vec<TopologySpec>,
}

impl CurveSetSpec {
    /// Expands the grid into per-curve specs, separating inapplicable
    /// combinations into skips.
    ///
    /// # Errors
    ///
    /// Returns [`CurveError::Scenario`] for unknown scenario names
    /// (an inapplicable scenario × topology pair is a *skip*, not an
    /// error).
    pub fn expand(
        &self,
        registry: &ScenarioRegistry,
    ) -> Result<(Vec<CurveSpec>, Vec<SkippedCurve>), CurveError> {
        let mut specs = Vec::new();
        let mut skipped = Vec::new();
        for name in &self.scenarios {
            registry.resolve(name)?;
            for &topology in &self.topologies {
                let spec = CurveSpec {
                    scenario: name.clone(),
                    topology,
                    ..self.prototype.clone()
                };
                match spec.config_at(registry, spec.search.start_load) {
                    Ok(_) => specs.push(spec),
                    Err(CurveError::Scenario(
                        reason @ (ScenarioError::NotApplicable { .. }
                        | ScenarioError::Mapping { .. }
                        | ScenarioError::BudgetTooSmall { .. }),
                    )) => skipped.push(SkippedCurve {
                        label: spec.label(),
                        reason,
                    }),
                    Err(other) => return Err(other),
                }
            }
        }
        Ok((specs, skipped))
    }

    /// Expands and runs the whole grid over up to `threads` workers.
    ///
    /// # Errors
    ///
    /// Returns the error of the first failing curve (by expansion
    /// order).
    pub fn run(
        &self,
        registry: &ScenarioRegistry,
        threads: usize,
    ) -> Result<CurveSetOutcome, CurveError> {
        let (specs, skipped) = self.expand(registry)?;
        let curves = run_curve_specs(registry, &specs, threads)?;
        Ok(CurveSetOutcome { curves, skipped })
    }
}

/// Runs a list of curve specs through the parallel sweep scheduler
/// and returns the curves in input order. Duplicate specs are
/// allowed — searches are deterministic, so a duplicate simply
/// reproduces the same curve.
///
/// # Errors
///
/// Returns the error of the first failing curve (by input order).
pub fn run_curve_specs(
    registry: &ScenarioRegistry,
    specs: &[CurveSpec],
    threads: usize,
) -> Result<Vec<Curve>, CurveError> {
    // One sweep unit per curve; the carried config (the start-load
    // point) is only a placeholder — each worker re-derives its
    // configs per measured load, joined back to its spec by input
    // index.
    let points = specs
        .iter()
        .map(|spec| {
            Ok(SweepPoint::new(
                spec.label(),
                spec.config_at(registry, spec.search.start_load)?,
            ))
        })
        .collect::<Result<Vec<_>, CurveError>>()?;
    let outcomes = run_sweep_indexed(&points, threads, |i, _| specs[i].run(registry))?;
    Ok(outcomes.into_iter().map(|(_, curve)| curve).collect())
}

/// All outcomes of one curve-set run.
#[derive(Debug)]
pub struct CurveSetOutcome {
    /// Executed curves, in expansion order.
    pub curves: Vec<Curve>,
    /// Combinations skipped as inapplicable.
    pub skipped: Vec<SkippedCurve>,
}

/// Formats an optional statistic, rendering `None` as `-` (a field a
/// numeric consumer can recognize and drop).
fn opt<T: std::fmt::Display>(v: Option<T>) -> String {
    v.map_or_else(|| "-".into(), |v| v.to_string())
}

/// Human-readable link name: `s3->s7` for inter-switch links,
/// `TG5->s5` / `s5->TR5` for injection/ejection links. Falls back to
/// the raw `l<id>` when the curve's topology cannot be rebuilt.
fn link_name(topo: Option<&Topology>, id: LinkId) -> String {
    let Some(t) = topo else {
        return id.to_string();
    };
    let l = t.link(id);
    let end = |e: LinkEnd| match e {
        LinkEnd::Switch { switch, .. } => switch.to_string(),
        LinkEnd::Endpoint(ep) => format!("{}{}", t.endpoint(ep).kind, ep.raw()),
    };
    format!("{}->{}", end(l.src), end(l.dst))
}

impl CurveSetOutcome {
    /// Renders the aggregated CSV: one record per (scenario,
    /// topology, load point), a saturation-summary comment per curve
    /// and a trailing comment per skipped combination.
    pub fn to_csv(&self) -> String {
        let mut csv = CsvWriter::new(&[
            "scenario",
            "topology",
            "shards",
            "clock_mode",
            "load",
            "phase",
            "saturated",
            "offered_flits_per_cycle_node",
            "packets_measured",
            "accepted_flits_per_cycle_node",
            "mean_network_latency",
            "p50_network_latency",
            "p95_network_latency",
            "p99_network_latency",
            "mean_total_latency",
            "max_vc_occupancy",
            "stalled_cycles",
            "cycles_skipped",
            "top_link",
            "top_link_blocked",
            "top_link_forwarded",
            "top_link_rate",
        ]);
        csv.comment(
            "nocem latency-throughput curves: one record per (scenario, topology, load) point",
        );
        csv.comment(
            "offered/accepted are per-node flits/cycle inside the steady-state measurement \
             window (warm-up discarded); latencies are windowed network-latency statistics \
             in cycles (p50/p95/p99 from the window histogram)",
        );
        csv.comment(
            "saturated: the adaptive controller's verdict (accepted shortfall vs offered, \
             or mean total latency past the zero-load multiple); max_vc_occupancy: highest \
             per-VC input-buffer fill any switch reached",
        );
        csv.comment(
            "accepted_flits_per_cycle_node is the latency-vs-accepted-throughput x-axis \
             and sits adjacent to the latency columns; top_link* name the most-blocked \
             link of the point's windowed telemetry (`-` when telemetry was off or \
             nothing blocked), with rate = blocked / (blocked + forwarded)",
        );
        for curve in &self.curves {
            let topo = curve.topology.build().ok();
            for p in &curve.points {
                let m = &p.measurement;
                let hot = m.telemetry.as_ref().and_then(|t| t.hottest());
                csv.record_display(&[
                    &curve.scenario,
                    &curve.topology.name(),
                    &curve.shards,
                    &clock_mode_name(curve.clock_mode),
                    &format_args!("{:.4}", p.load),
                    &p.phase.name(),
                    &p.saturated,
                    &format_args!("{:.4}", m.offered),
                    &m.packets_measured,
                    &format_args!("{:.4}", m.accepted),
                    &opt(m.mean_network_latency.map(|v| format!("{v:.2}"))),
                    &opt(m.p50),
                    &opt(m.p95),
                    &opt(m.p99),
                    &opt(m.mean_total_latency.map(|v| format!("{v:.2}"))),
                    &m.vc_occupancy.overall_max(),
                    &m.stalled_cycles,
                    &m.cycles_skipped,
                    &opt(hot.map(|l| link_name(topo.as_ref(), l.link))),
                    &opt(hot.map(|l| l.blocked)),
                    &opt(hot.map(|l| l.forwarded)),
                    &opt(hot.map(|l| format!("{:.4}", l.rate()))),
                ]);
            }
            let s = &curve.saturation;
            if s.found {
                csv.comment(&format!(
                    "saturation {}: load={:.4} (bracket {:.4}..{:.4}); zero-load total \
                     latency {}; accepted at stable load {:.4} flits/cycle/node",
                    curve.label(),
                    s.saturation_load,
                    s.stable_load,
                    s.saturated_load.unwrap_or(f64::NAN),
                    opt(s.zero_load_latency.map(|v| format!("{v:.2}"))),
                    s.accepted_at_stable,
                ));
            } else {
                csv.comment(&format!(
                    "saturation {}: none found up to load {:.4} (accepted tracks offered \
                     throughout)",
                    curve.label(),
                    s.saturation_load,
                ));
            }
        }
        for s in &self.skipped {
            csv.comment(&format!("skipped {}: {}", s.label, s.reason));
        }
        csv.finish()
    }

    /// Renders the per-link congestion heat map: one record per
    /// (curve, load point, top-k link) for every telemetry-enabled
    /// point — the localization data behind the `top_link` summary
    /// column. Points measured without telemetry contribute nothing.
    pub fn link_heat_csv(&self) -> String {
        let mut csv = CsvWriter::new(&[
            "scenario",
            "topology",
            "load",
            "phase",
            "saturated",
            "rank",
            "link",
            "blocked_cycles",
            "forwarded_flits",
            "blocked_rate",
        ]);
        csv.comment(
            "per-point link heat: the most-blocked links of every telemetry-enabled load \
             point, ranked by lifetime blocked cycles (rank 0 = hottest); links are named \
             src->dst (s = switch, TG/TR = generator/receptor endpoints)",
        );
        for curve in &self.curves {
            let topo = curve.topology.build().ok();
            for p in &curve.points {
                let Some(t) = &p.measurement.telemetry else {
                    continue;
                };
                for (rank, l) in t.top_links.iter().enumerate() {
                    csv.record_display(&[
                        &curve.scenario,
                        &curve.topology.name(),
                        &format_args!("{:.4}", p.load),
                        &p.phase.name(),
                        &p.saturated,
                        &rank,
                        &link_name(topo.as_ref(), l.link),
                        &l.blocked,
                        &l.forwarded,
                        &format_args!("{:.4}", l.rate()),
                    ]);
                }
            }
        }
        csv.finish()
    }

    /// Renders the textbook latency-vs-**accepted**-throughput plot
    /// data: per curve, one record per load point ordered by accepted
    /// throughput (the plot's x-axis), keeping only the plot columns.
    /// Past saturation the offered load keeps rising while accepted
    /// throughput stalls or folds back, so plotting against accepted
    /// (instead of offered) is what makes the characteristic vertical
    /// latency wall visible; points are re-sorted because that
    /// fold-back makes accepted non-monotone in offered load.
    pub fn to_accepted_csv(&self) -> String {
        let mut csv = CsvWriter::new(&[
            "scenario",
            "topology",
            "shards",
            "clock_mode",
            "accepted_flits_per_cycle_node",
            "mean_network_latency",
            "p50_network_latency",
            "p95_network_latency",
            "p99_network_latency",
            "mean_total_latency",
            "offered_flits_per_cycle_node",
            "saturated",
        ]);
        csv.comment(
            "latency vs ACCEPTED throughput (the textbook plot axis): records are \
             ordered by accepted throughput within each curve, so a plotter can draw \
             the latency wall directly; offered load is carried for reference",
        );
        for curve in &self.curves {
            let mut points: Vec<_> = curve.points.iter().collect();
            points.sort_by(|a, b| {
                a.measurement
                    .accepted
                    .total_cmp(&b.measurement.accepted)
                    .then(a.load.total_cmp(&b.load))
            });
            for p in points {
                let m = &p.measurement;
                csv.record_display(&[
                    &curve.scenario,
                    &curve.topology.name(),
                    &curve.shards,
                    &clock_mode_name(curve.clock_mode),
                    &format_args!("{:.4}", m.accepted),
                    &opt(m.mean_network_latency.map(|v| format!("{v:.2}"))),
                    &opt(m.p50),
                    &opt(m.p95),
                    &opt(m.p99),
                    &opt(m.mean_total_latency.map(|v| format!("{v:.2}"))),
                    &format_args!("{:.4}", m.offered),
                    &p.saturated,
                ]);
            }
        }
        csv.finish()
    }
}

/// Stable lowercase clock-mode name for the CSV.
fn clock_mode_name(mode: nocem::ClockMode) -> &'static str {
    match mode {
        nocem::ClockMode::EveryCycle => "every_cycle",
        nocem::ClockMode::Gated => "gated",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::MeasureConfig;
    use crate::search::SearchConfig;
    use nocem_common::csv::CsvDocument;

    fn quick_prototype() -> CurveSpec {
        CurveSpec {
            measure: MeasureConfig {
                warmup_cycles: 128,
                measure_cycles: 512,
            },
            search: SearchConfig {
                start_load: 0.2,
                step: 0.4,
                max_load: 0.8,
                bisect: false,
                ..SearchConfig::default()
            },
            ..CurveSpec::new(
                "uniform_random",
                TopologySpec::Mesh {
                    width: 2,
                    height: 2,
                },
            )
        }
    }

    #[test]
    fn grid_expansion_separates_skips() {
        let registry = ScenarioRegistry::builtin();
        let set = CurveSetSpec {
            prototype: quick_prototype(),
            scenarios: vec!["tornado".into(), "transpose".into()],
            topologies: vec![
                TopologySpec::Mesh {
                    width: 2,
                    height: 2,
                },
                TopologySpec::Ring { switches: 4 },
            ],
        };
        let (specs, skipped) = set.expand(&registry).unwrap();
        assert_eq!(specs.len(), 3, "transpose@ring4 is inapplicable");
        assert_eq!(skipped.len(), 1);
        assert!(skipped[0].label.starts_with("transpose@ring4"));
    }

    #[test]
    fn unknown_scenario_is_a_hard_error() {
        let registry = ScenarioRegistry::builtin();
        let set = CurveSetSpec {
            prototype: quick_prototype(),
            scenarios: vec!["warp_drive".into()],
            topologies: vec![TopologySpec::Ring { switches: 4 }],
        };
        assert!(matches!(
            set.expand(&registry),
            Err(CurveError::Scenario(ScenarioError::UnknownScenario { .. }))
        ));
    }

    #[test]
    fn duplicate_specs_reproduce_the_same_curve() {
        let registry = ScenarioRegistry::builtin();
        let spec = quick_prototype();
        let curves = run_curve_specs(&registry, &[spec.clone(), spec], 2).unwrap();
        assert_eq!(curves.len(), 2);
        assert_eq!(curves[0], curves[1]);
    }

    #[test]
    fn runner_emits_rows_and_summaries() {
        let registry = ScenarioRegistry::builtin();
        let set = CurveSetSpec {
            prototype: quick_prototype(),
            scenarios: vec!["uniform_random".into(), "tornado".into()],
            topologies: vec![TopologySpec::Mesh {
                width: 2,
                height: 2,
            }],
        };
        let outcome = set.run(&registry, 2).unwrap();
        assert_eq!(outcome.curves.len(), 2);
        let csv = outcome.to_csv();
        let doc = CsvDocument::parse(&csv).unwrap();
        assert!(doc.records.len() >= 2, "at least one point per curve");
        assert_eq!(doc.column("scenario"), Some(0));
        assert!(doc.column("accepted_flits_per_cycle_node").is_some());
        assert!(doc.column("max_vc_occupancy").is_some());
        assert!(csv.contains("# saturation uniform_random@mesh2x2"));
        // Parallel and serial runs agree (determinism across workers).
        let serial = set.run(&registry, 1).unwrap();
        assert_eq!(serial.curves, outcome.curves);
    }

    #[test]
    fn accepted_csv_is_sorted_by_accepted_throughput() {
        let registry = ScenarioRegistry::builtin();
        let set = CurveSetSpec {
            prototype: quick_prototype(),
            scenarios: vec!["uniform_random".into(), "tornado".into()],
            topologies: vec![TopologySpec::Mesh {
                width: 2,
                height: 2,
            }],
        };
        let outcome = set.run(&registry, 1).unwrap();
        let csv = outcome.to_accepted_csv();
        let doc = CsvDocument::parse(&csv).unwrap();
        // Same point count as the main CSV, plot columns only.
        let total: usize = outcome.curves.iter().map(|c| c.points.len()).sum();
        assert_eq!(doc.records.len(), total);
        assert_eq!(doc.column("accepted_flits_per_cycle_node"), Some(4));
        assert!(doc.column("top_link").is_none(), "plot columns only");
        // Within each curve the x-axis column is non-decreasing.
        let c_scen = doc.column("scenario").unwrap();
        let c_acc = doc.column("accepted_flits_per_cycle_node").unwrap();
        let mut last: Option<(String, f64)> = None;
        for r in &doc.records {
            let acc: f64 = r[c_acc].parse().unwrap();
            if let Some((scen, prev)) = &last {
                if scen == &r[c_scen] {
                    assert!(acc >= *prev, "accepted column must be sorted per curve");
                }
            }
            last = Some((r[c_scen].clone(), acc));
        }
    }

    #[test]
    fn telemetry_off_renders_dash_bottleneck_columns_and_empty_heat() {
        let registry = ScenarioRegistry::builtin();
        let set = CurveSetSpec {
            prototype: quick_prototype(),
            scenarios: vec!["uniform_random".into()],
            topologies: vec![TopologySpec::Mesh {
                width: 2,
                height: 2,
            }],
        };
        let outcome = set.run(&registry, 1).unwrap();
        let doc = CsvDocument::parse(&outcome.to_csv()).unwrap();
        let c_top = doc.column("top_link").unwrap();
        assert!(doc.records.iter().all(|r| r[c_top] == "-"));
        let heat = CsvDocument::parse(&outcome.link_heat_csv()).unwrap();
        assert!(heat.records.is_empty(), "no telemetry, no heat rows");
    }

    #[test]
    fn telemetry_curves_emit_bottleneck_columns_and_link_heat() {
        let registry = ScenarioRegistry::builtin();
        let mut prototype = quick_prototype();
        prototype.telemetry = Some(nocem_telemetry::TelemetryConfig::windowed(128));
        let set = CurveSetSpec {
            prototype,
            scenarios: vec!["uniform_random".into()],
            topologies: vec![TopologySpec::Mesh {
                width: 2,
                height: 2,
            }],
        };
        let outcome = set.run(&registry, 1).unwrap();
        let csv = outcome.to_csv();
        let doc = CsvDocument::parse(&csv).unwrap();
        // Plot-ready ordering: accepted throughput immediately left of
        // the latency block.
        assert_eq!(
            doc.column("accepted_flits_per_cycle_node").unwrap() + 1,
            doc.column("mean_network_latency").unwrap()
        );
        let c_top = doc.column("top_link").unwrap();
        let c_rate = doc.column("top_link_rate").unwrap();
        let hot: Vec<_> = doc.records.iter().filter(|r| r[c_top] != "-").collect();
        assert!(!hot.is_empty(), "a ramp to 0.6 load must block somewhere");
        for r in &hot {
            assert!(
                r[c_top].contains("->"),
                "topology-resolved name: {}",
                r[c_top]
            );
            let rate: f64 = r[c_rate].parse().unwrap();
            assert!((0.0..=1.0).contains(&rate));
        }
        let heat = CsvDocument::parse(&outcome.link_heat_csv()).unwrap();
        assert!(!heat.records.is_empty());
        let (c_rank, c_link) = (heat.column("rank").unwrap(), heat.column("link").unwrap());
        let c_blocked = heat.column("blocked_cycles").unwrap();
        // Within each point the rows are rank-ordered by blocked cycles.
        let mut prev: Option<(String, u64)> = None;
        for r in &heat.records {
            let rank: u64 = r[c_rank].parse().unwrap();
            let blocked: u64 = r[c_blocked].parse().unwrap();
            assert!(r[c_link].contains("->"));
            if let Some((_, prev_blocked)) = &prev {
                if rank > 0 {
                    assert!(blocked <= *prev_blocked, "heat rows descend within a point");
                }
            }
            prev = Some((r[c_link].clone(), blocked));
        }
    }
}
