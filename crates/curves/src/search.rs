//! The adaptive load controller: coarse ramp, saturation detection,
//! bisection.
//!
//! A curve is swept in two phases. The **ramp** measures points at
//! `start_load, start_load + step, …` until one saturates (or
//! `max_load` is reached); the **bisection** then narrows the interval
//! between the last stable and first saturated load until it is within
//! `tolerance`, measuring the midpoint each time. The reported
//! saturation load is the midpoint of the final bracket, so every
//! measured point below it is stable and every measured point above it
//! is saturated.
//!
//! A point is **saturated** when any of:
//!
//! * accepted throughput falls short of offered load by more than the
//!   configured shortfall fraction (the throughput plateau);
//! * mean total latency exceeds `latency_factor ×` the zero-load
//!   latency measured at the first ramp point (the latency wall);
//! * the measurement window saw no completed packet at all (total
//!   jam).
//!
//! The whole search is deterministic: every load point derives its
//! platform seed from `scenario@topology@load` exactly as the matrix
//! runner does, so re-running a search reproduces every measurement,
//! and with it the same saturation load, bit for bit.

use crate::measure::{measure_config, MeasureConfig, PointMeasurement};
use crate::CurveError;
use nocem::clock::ClockMode;
use nocem::compile::compute_routing;
use nocem::config::EngineKind;
use nocem_scenarios::registry::ScenarioRegistry;
use nocem_scenarios::scenario::TopologySpec;
use nocem_topology::routing::{FlowSpec, RoutingTables};

/// Packet budget handed to `Scenario::build_config`; purely nominal —
/// the measurement harness uncaps budgets before running.
const NOMINAL_BUDGET: u64 = 1_000_000;

/// Hard cap on bisection steps (each step halves the bracket, so 32
/// is unreachable for any sane tolerance; this guards degenerate
/// floating-point configurations).
const MAX_BISECTIONS: usize = 32;

/// Parameters of the saturation search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchConfig {
    /// First ramp load (also the zero-load latency reference point).
    pub start_load: f64,
    /// Additive ramp step.
    pub step: f64,
    /// Highest load the ramp tries (loads must stay below 1.0).
    pub max_load: f64,
    /// Bisection stops when the stable/saturated bracket is narrower
    /// than this.
    pub tolerance: f64,
    /// Latency wall: a point whose mean total latency exceeds this
    /// multiple of the zero-load latency is saturated.
    pub latency_factor: f64,
    /// Throughput plateau: a point accepting less than
    /// `(1 - accepted_shortfall) × offered` is saturated.
    pub accepted_shortfall: f64,
    /// Run the bisection phase (`false` = coarse ramp only, the CI
    /// smoke configuration).
    pub bisect: bool,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            start_load: 0.05,
            step: 0.05,
            max_load: 0.95,
            tolerance: 0.02,
            latency_factor: 10.0,
            accepted_shortfall: 0.15,
            bisect: true,
        }
    }
}

/// Which search phase measured a point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointPhase {
    /// Coarse ramp.
    Ramp,
    /// Bisection refinement.
    Bisect,
}

impl PointPhase {
    /// Stable lowercase name (CSV `phase` column).
    pub fn name(&self) -> &'static str {
        match self {
            PointPhase::Ramp => "ramp",
            PointPhase::Bisect => "bisect",
        }
    }
}

/// One measured point of a curve, classified.
#[derive(Debug, Clone, PartialEq)]
pub struct CurvePoint {
    /// Offered load of the point.
    pub load: f64,
    /// Which phase measured it.
    pub phase: PointPhase,
    /// Whether the saturation predicate held.
    pub saturated: bool,
    /// The measurement itself.
    pub measurement: PointMeasurement,
}

/// Where a curve saturates.
#[derive(Debug, Clone, PartialEq)]
pub struct SaturationSummary {
    /// Whether any measured point saturated at all (up to
    /// `max_load`).
    pub found: bool,
    /// Highest measured load that was *not* saturated (0.0 when even
    /// the first ramp point saturated).
    pub stable_load: f64,
    /// Lowest measured saturated load, when one exists.
    pub saturated_load: Option<f64>,
    /// The reported saturation load: the midpoint of the final
    /// stable/saturated bracket — every measured point below it is
    /// stable, every measured point above it saturated. When no point
    /// saturated, the highest measured load (the curve is stable
    /// throughout the swept range).
    pub saturation_load: f64,
    /// Mean total latency at the first *stable* ramp point — the
    /// zero-load reference of the latency wall (`None` when even the
    /// first measured point was saturated, in which case the wall is
    /// disarmed and only the throughput criterion classified points).
    pub zero_load_latency: Option<f64>,
    /// Accepted throughput (flits/cycle/node) at `stable_load`.
    pub accepted_at_stable: f64,
}

/// A fully measured latency–throughput curve.
#[derive(Debug, Clone, PartialEq)]
pub struct Curve {
    /// Scenario registry name.
    pub scenario: String,
    /// Topology the curve was swept on.
    pub topology: TopologySpec,
    /// Engine shard count the points ran on (1 = single-threaded).
    pub shards: usize,
    /// Clock mode the points ran under.
    pub clock_mode: ClockMode,
    /// Measured points, sorted by load.
    pub points: Vec<CurvePoint>,
    /// The located saturation.
    pub saturation: SaturationSummary,
}

impl Curve {
    /// Stable curve label: `scenario@topology`.
    pub fn label(&self) -> String {
        format!("{}@{}", self.scenario, self.topology.name())
    }

    /// The curve with every machinery-only gating counter cleared —
    /// what cross-mode/cross-engine lockstep tests compare (the
    /// `shards`/`clock_mode` fields are also normalized away).
    #[must_use]
    pub fn behavioral(&self) -> Curve {
        Curve {
            shards: 1,
            clock_mode: ClockMode::EveryCycle,
            points: self
                .points
                .iter()
                .map(|p| CurvePoint {
                    measurement: p.measurement.behavioral(),
                    ..p.clone()
                })
                .collect(),
            ..self.clone()
        }
    }
}

/// One curve to sweep: a registry scenario bound to a topology plus
/// measurement and search parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct CurveSpec {
    /// Scenario registry name.
    pub scenario: String,
    /// Topology to sweep on.
    pub topology: TopologySpec,
    /// Packet length in flits.
    pub packet_flits: u16,
    /// Clock mode every point runs under ([`ClockMode::Gated`] is the
    /// production setting — proven cycle-equivalent and much faster
    /// at the low-load end of the ramp).
    pub clock_mode: ClockMode,
    /// Engine every point runs on.
    pub engine: EngineKind,
    /// Warm-up and window lengths.
    pub measure: MeasureConfig,
    /// Ramp and bisection parameters.
    pub search: SearchConfig,
    /// Windowed-telemetry configuration for every point (`None` =
    /// telemetry off, the default — a point then carries no
    /// bottleneck columns).
    pub telemetry: Option<nocem_telemetry::TelemetryConfig>,
}

impl CurveSpec {
    /// A spec with default measurement/search parameters: 4-flit
    /// packets, gated clock, single-threaded engine.
    pub fn new(scenario: impl Into<String>, topology: TopologySpec) -> Self {
        CurveSpec {
            scenario: scenario.into(),
            topology,
            packet_flits: 4,
            clock_mode: ClockMode::Gated,
            engine: EngineKind::SingleThread,
            measure: MeasureConfig::default(),
            search: SearchConfig::default(),
            telemetry: None,
        }
    }

    /// Stable curve label: `scenario@topology`.
    pub fn label(&self) -> String {
        format!("{}@{}", self.scenario, self.topology.name())
    }

    /// The shard count of the configured engine (1 when
    /// single-threaded).
    pub fn shards(&self) -> usize {
        match self.engine {
            EngineKind::Sharded { shards } | EngineKind::ShardedCompiled { shards, .. } => shards,
            _ => 1,
        }
    }

    /// Builds the point configuration for one load (used by the
    /// runner to pre-validate applicability, and per point here).
    ///
    /// # Errors
    ///
    /// Returns [`CurveError::Scenario`] when the scenario does not
    /// apply to the topology.
    pub fn config_at(
        &self,
        registry: &ScenarioRegistry,
        load: f64,
    ) -> Result<nocem::PlatformConfig, CurveError> {
        let mut config = registry.resolve(&self.scenario)?.build_config(
            self.topology,
            load,
            self.packet_flits,
            NOMINAL_BUDGET,
        )?;
        config.clock_mode = self.clock_mode;
        config.engine = self.engine;
        config.telemetry = self.telemetry;
        Ok(config)
    }

    /// Measures one load point, reusing the curve's routing cache
    /// when the flow set is unchanged (it is, for every synthetic
    /// pattern — routing is load-independent).
    fn point(
        &self,
        registry: &ScenarioRegistry,
        load: f64,
        phase: PointPhase,
        cache: &mut Option<(Vec<FlowSpec>, RoutingTables)>,
        zero_load: Option<f64>,
    ) -> Result<CurvePoint, CurveError> {
        let config = self.config_at(registry, load)?;
        let cached = cache
            .as_ref()
            .is_some_and(|(flows, _)| flows == &config.flows);
        if !cached {
            let routing = compute_routing(&config)?;
            *cache = Some((config.flows.clone(), routing));
        }
        let routing = &cache.as_ref().expect("cache filled above").1;
        let measurement = measure_config(&config, Some(routing), &self.measure, load)?;
        let saturated = is_saturated(&self.search, zero_load, &measurement);
        Ok(CurvePoint {
            load,
            phase,
            saturated,
            measurement,
        })
    }

    /// Runs the full saturation search and returns the curve.
    ///
    /// # Errors
    ///
    /// Returns [`CurveError`] when the scenario cannot be bound to
    /// the topology or a measurement fails.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical search parameters (`start_load` or
    /// `max_load` outside `(0, 1)`, non-positive `step` or
    /// `tolerance`).
    pub fn run(&self, registry: &ScenarioRegistry) -> Result<Curve, CurveError> {
        let s = &self.search;
        assert!(
            s.start_load > 0.0 && s.start_load < 1.0,
            "start_load must be in (0, 1)"
        );
        assert!(s.max_load > 0.0 && s.max_load < 1.0, "max_load in (0, 1)");
        assert!(
            s.start_load <= s.max_load,
            "start_load must not exceed max_load (an inverted range would \
             measure nothing)"
        );
        assert!(s.step > 0.0, "ramp step must be positive");
        assert!(s.tolerance > 0.0, "tolerance must be positive");

        let mut cache = None;
        let mut points: Vec<CurvePoint> = Vec::new();
        let mut zero_load = None;
        let mut stable: Option<f64> = None;
        let mut saturated: Option<f64> = None;

        // Phase 1: coarse ramp.
        let mut load = s.start_load;
        while load <= s.max_load + 1e-12 {
            let p = self.point(registry, load, PointPhase::Ramp, &mut cache, zero_load)?;
            // The zero-load reference must come from a *stable* point;
            // a curve whose very first ramp point already saturates
            // keeps no reference (its diverged latency would disarm
            // the latency wall), and classification falls back to the
            // throughput-shortfall criterion alone.
            if zero_load.is_none() && !p.saturated {
                zero_load = p.measurement.mean_total_latency;
            }
            let sat = p.saturated;
            points.push(p);
            if sat {
                saturated = Some(load);
                break;
            }
            stable = Some(load);
            load += s.step;
        }

        // Phase 2: bisection inside the bracket.
        if s.bisect {
            if let Some(mut hi) = saturated {
                let mut lo = stable.unwrap_or(0.0);
                for _ in 0..MAX_BISECTIONS {
                    if hi - lo <= s.tolerance {
                        break;
                    }
                    let mid = (lo + hi) / 2.0;
                    let p = self.point(registry, mid, PointPhase::Bisect, &mut cache, zero_load)?;
                    let sat = p.saturated;
                    points.push(p);
                    if sat {
                        hi = mid;
                    } else {
                        lo = mid;
                    }
                }
                stable = (lo > 0.0).then_some(lo);
                saturated = Some(hi);
            }
        }

        let stable_load = stable.unwrap_or(0.0);
        let saturation_load = match saturated {
            Some(hi) => (stable_load + hi) / 2.0,
            None => stable_load,
        };
        let accepted_at_stable = points
            .iter()
            .find(|p| p.load == stable_load)
            .map(|p| p.measurement.accepted)
            .unwrap_or(0.0);
        points.sort_by(|a, b| a.load.partial_cmp(&b.load).expect("loads are finite"));
        Ok(Curve {
            scenario: self.scenario.clone(),
            topology: self.topology,
            shards: self.shards(),
            clock_mode: self.clock_mode,
            points,
            saturation: SaturationSummary {
                found: saturated.is_some(),
                stable_load,
                saturated_load: saturated,
                saturation_load,
                zero_load_latency: zero_load,
                accepted_at_stable,
            },
        })
    }
}

/// The saturation predicate (see the module docs).
fn is_saturated(s: &SearchConfig, zero_load: Option<f64>, m: &PointMeasurement) -> bool {
    if m.packets_measured == 0 {
        return true;
    }
    let shortfall = m.accepted < (1.0 - s.accepted_shortfall) * m.offered;
    let latency_wall = match (zero_load, m.mean_total_latency) {
        (Some(z), Some(t)) => t > s.latency_factor * z,
        _ => false,
    };
    shortfall || latency_wall
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_measurement(offered: f64, accepted: f64, total_latency: f64) -> PointMeasurement {
        PointMeasurement {
            offered,
            accepted,
            packets_measured: 100,
            mean_network_latency: Some(20.0),
            p50: Some(18),
            p95: Some(40),
            p99: Some(55),
            mean_total_latency: Some(total_latency),
            vc_occupancy: nocem_stats::congestion::VcOccupancy::new(1),
            stalled_cycles: 0,
            cycles: 5_120,
            cycles_skipped: 0,
            telemetry: None,
            profile: None,
        }
    }

    #[test]
    fn saturation_predicate_catches_shortfall_and_latency_wall() {
        let s = SearchConfig::default();
        let zero = Some(25.0);
        // Tracks offered, calm latency: stable.
        assert!(!is_saturated(&s, zero, &fake_measurement(0.2, 0.195, 40.0)));
        // Throughput shortfall.
        assert!(is_saturated(&s, zero, &fake_measurement(0.5, 0.30, 40.0)));
        // Latency wall despite decent throughput.
        assert!(is_saturated(&s, zero, &fake_measurement(0.5, 0.48, 600.0)));
        // No packets at all.
        let mut jammed = fake_measurement(0.5, 0.0, 0.0);
        jammed.packets_measured = 0;
        assert!(is_saturated(&s, None, &jammed));
    }

    #[test]
    fn phase_names_are_stable() {
        assert_eq!(PointPhase::Ramp.name(), "ramp");
        assert_eq!(PointPhase::Bisect.name(), "bisect");
    }

    #[test]
    #[should_panic(expected = "start_load must not exceed max_load")]
    fn inverted_load_range_is_rejected() {
        let spec = CurveSpec {
            search: SearchConfig {
                start_load: 0.5,
                max_load: 0.3,
                ..SearchConfig::default()
            },
            ..CurveSpec::new(
                "uniform_random",
                TopologySpec::Mesh {
                    width: 2,
                    height: 2,
                },
            )
        };
        let _ = spec.run(&ScenarioRegistry::builtin());
    }

    // End-to-end searches run in the workspace integration tests
    // (`tests/latency_curves.rs`), where release-mode CI gives them
    // room; a quick sanity search on the smallest mesh lives here.
    #[test]
    fn ramp_only_search_terminates_and_orders_points() {
        let registry = ScenarioRegistry::builtin();
        let spec = CurveSpec {
            measure: MeasureConfig {
                warmup_cycles: 128,
                measure_cycles: 512,
            },
            search: SearchConfig {
                start_load: 0.2,
                step: 0.3,
                max_load: 0.9,
                bisect: false,
                ..SearchConfig::default()
            },
            ..CurveSpec::new(
                "uniform_random",
                TopologySpec::Mesh {
                    width: 2,
                    height: 2,
                },
            )
        };
        let curve = spec.run(&registry).unwrap();
        assert!(!curve.points.is_empty());
        assert!(
            curve.points.windows(2).all(|w| w[0].load < w[1].load),
            "points sorted by load"
        );
        assert!(curve.points.iter().all(|p| p.phase == PointPhase::Ramp));
        assert_eq!(curve.label(), "uniform_random@mesh2x2");
        // Re-running reproduces the curve exactly.
        assert_eq!(spec.run(&registry).unwrap(), curve);
    }

    #[test]
    fn compiled_engine_curve_matches_the_interpreted_curve() {
        let registry = ScenarioRegistry::builtin();
        let base = CurveSpec {
            measure: MeasureConfig {
                warmup_cycles: 128,
                measure_cycles: 512,
            },
            search: SearchConfig {
                start_load: 0.2,
                step: 0.3,
                max_load: 0.9,
                bisect: false,
                ..SearchConfig::default()
            },
            ..CurveSpec::new(
                "uniform_random",
                TopologySpec::Mesh {
                    width: 3,
                    height: 3,
                },
            )
        };
        let compiled = CurveSpec {
            engine: nocem::config::EngineKind::Compiled,
            ..base.clone()
        };
        // Point-for-point identity, including the gated clock's skip
        // counts: the compiled engine is the same emulation, faster.
        assert_eq!(
            compiled.run(&registry).unwrap(),
            base.run(&registry).unwrap()
        );
    }
}
