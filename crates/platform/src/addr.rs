//! Platform addresses: how the processor reaches every component.
//!
//! The paper's processor "can access each component by accessing their
//! specific addresses … up to 4 internal busses and 1024 devices in
//! each internal bus". A 32-bit [`Address`] encodes:
//!
//! ```text
//!  31 30 | 29 ... 20 | 19 ....... 2 | 1 0
//!  bus   | device    | register     | 00   (word aligned)
//! ```
//!
//! Register indices are capped at 16 bits, generously above any device
//! in the platform.

use nocem_common::ids::{BusId, DeviceId};

/// Number of internal buses the platform supports.
pub const MAX_BUSES: u8 = 4;
/// Number of devices addressable on each internal bus.
pub const DEVICES_PER_BUS: u16 = 1024;

/// A device slot: which bus, which device number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceAddr {
    /// Internal bus.
    pub bus: BusId,
    /// Device number on that bus.
    pub device: DeviceId,
}

impl DeviceAddr {
    /// Creates a device slot.
    ///
    /// # Panics
    ///
    /// Panics if the bus or device number exceeds the platform limits.
    pub fn new(bus: BusId, device: DeviceId) -> Self {
        assert!(bus.raw() < MAX_BUSES, "bus {bus} out of range");
        assert!(
            device.raw() < DEVICES_PER_BUS,
            "device {device} out of range"
        );
        DeviceAddr { bus, device }
    }

    /// The address of register `reg` of this device.
    pub fn reg(self, reg: u16) -> Address {
        Address::from_parts(self.bus, self.device, reg)
    }

    /// The `(lo, hi)` address pair of a 64-bit quantity split over
    /// registers `lo` and `lo + 1` (the convention every device in
    /// this platform uses for 64-bit counters).
    pub fn reg_u64(self, lo: u16) -> (Address, Address) {
        (self.reg(lo), self.reg(lo + 1))
    }
}

impl std::fmt::Display for DeviceAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.bus, self.device)
    }
}

/// A word-aligned 32-bit platform address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Address(u32);

/// Error produced when decoding a malformed raw address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeAddressError {
    /// The raw value that failed to decode.
    pub raw: u32,
    /// Why it failed.
    pub reason: &'static str,
}

impl std::fmt::Display for DecodeAddressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cannot decode address {:#010x}: {}",
            self.raw, self.reason
        )
    }
}

impl std::error::Error for DecodeAddressError {}

impl Address {
    /// Builds an address from its fields.
    ///
    /// # Panics
    ///
    /// Panics if the bus exceeds [`MAX_BUSES`] or the device exceeds
    /// [`DEVICES_PER_BUS`].
    pub fn from_parts(bus: BusId, device: DeviceId, reg: u16) -> Self {
        assert!(bus.raw() < MAX_BUSES, "bus {bus} out of range");
        assert!(
            device.raw() < DEVICES_PER_BUS,
            "device {device} out of range"
        );
        Address(
            (u32::from(bus.raw()) << 30) | (u32::from(device.raw()) << 20) | (u32::from(reg) << 2),
        )
    }

    /// Decodes a raw bus address.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeAddressError`] if the address is not
    /// word-aligned or the register field exceeds 16 bits.
    pub fn decode(raw: u32) -> Result<Self, DecodeAddressError> {
        if raw & 0b11 != 0 {
            return Err(DecodeAddressError {
                raw,
                reason: "not word aligned",
            });
        }
        if (raw >> 2) & 0x3_FFFF > u32::from(u16::MAX) {
            return Err(DecodeAddressError {
                raw,
                reason: "register index exceeds 16 bits",
            });
        }
        Ok(Address(raw))
    }

    /// Raw 32-bit value (what the processor puts on the bus).
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The internal bus.
    pub fn bus(self) -> BusId {
        BusId::new((self.0 >> 30) as u8)
    }

    /// The device on that bus.
    pub fn device(self) -> DeviceId {
        DeviceId::new(((self.0 >> 20) & 0x3FF) as u16)
    }

    /// The device slot (bus + device).
    pub fn device_addr(self) -> DeviceAddr {
        DeviceAddr {
            bus: self.bus(),
            device: self.device(),
        }
    }

    /// The register index within the device.
    pub fn reg(self) -> u16 {
        ((self.0 >> 2) & 0xFFFF) as u16
    }
}

impl std::fmt::Display for Address {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}+{:#x}", self.bus(), self.device(), self.reg())
    }
}

impl std::fmt::LowerHex for Address {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_fields() {
        let a = Address::from_parts(BusId::new(2), DeviceId::new(1023), 0x14);
        assert_eq!(a.bus(), BusId::new(2));
        assert_eq!(a.device(), DeviceId::new(1023));
        assert_eq!(a.reg(), 0x14);
        let decoded = Address::decode(a.raw()).unwrap();
        assert_eq!(decoded, a);
    }

    #[test]
    fn field_packing_matches_layout() {
        let a = Address::from_parts(BusId::new(1), DeviceId::new(2), 3);
        assert_eq!(a.raw(), (1 << 30) | (2 << 20) | (3 << 2));
    }

    #[test]
    fn unaligned_addresses_rejected() {
        let err = Address::decode(0x3).unwrap_err();
        assert!(err.to_string().contains("word aligned"));
    }

    #[test]
    fn device_addr_helpers() {
        let d = DeviceAddr::new(BusId::new(0), DeviceId::new(7));
        assert_eq!(d.reg(4).device_addr(), d);
        assert_eq!(d.to_string(), "b0:d7");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bus_limit_enforced() {
        DeviceAddr::new(BusId::new(4), DeviceId::new(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn device_limit_enforced() {
        DeviceAddr::new(BusId::new(0), DeviceId::new(1024));
    }

    #[test]
    fn display_formats() {
        let a = Address::from_parts(BusId::new(3), DeviceId::new(5), 2);
        assert_eq!(a.to_string(), "b3:d5+0x2");
        assert_eq!(format!("{a:x}"), format!("{:x}", a.raw()));
    }
}
