//! The bus access contract and the address map.
//!
//! [`BusAccess`] is what the platform's "software part" programs
//! against: 32-bit word reads and writes at [`Address`]es. In this
//! workspace the implementation is the emulation platform itself (the
//! core crate); on the paper's FPGA it would be the PowerPC's bus
//! bridge — drivers written against [`BusAccess`] cannot tell the
//! difference, which is precisely the paper's HW/SW split.
//!
//! [`AddressMap`] allocates device slots (4 buses × 1024 devices) and
//! remembers what sits where, so the monitor can enumerate the
//! platform.

use crate::addr::{Address, DeviceAddr, DEVICES_PER_BUS, MAX_BUSES};
use nocem_common::ids::{BusId, DeviceId};

/// Errors a bus transaction can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BusError {
    /// No device is mapped at the address.
    Unmapped(Address),
    /// The device exists but the register index is out of its range.
    RegisterOutOfRange {
        /// The accessed address.
        addr: Address,
        /// Number of registers the device has.
        regs: u16,
    },
    /// The register is read-only.
    ReadOnly(Address),
    /// The register is write-only (reads as zero would hide bugs, so
    /// the platform faults instead).
    WriteOnly(Address),
    /// The written value is invalid for the register.
    InvalidValue {
        /// The accessed address.
        addr: Address,
        /// Why the value was rejected.
        reason: String,
    },
}

impl std::fmt::Display for BusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BusError::Unmapped(a) => write!(f, "no device mapped at {a}"),
            BusError::RegisterOutOfRange { addr, regs } => {
                write!(
                    f,
                    "register {addr} out of range (device has {regs} registers)"
                )
            }
            BusError::ReadOnly(a) => write!(f, "register {a} is read-only"),
            BusError::WriteOnly(a) => write!(f, "register {a} is write-only"),
            BusError::InvalidValue { addr, reason } => {
                write!(f, "invalid value for {a}: {r}", a = addr, r = reason)
            }
        }
    }
}

impl std::error::Error for BusError {}

/// Word-granular register access, the contract between the platform
/// hardware and its configuration software.
pub trait BusAccess {
    /// Reads the 32-bit register at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`BusError`] for unmapped addresses, out-of-range or
    /// write-only registers.
    fn read(&mut self, addr: Address) -> Result<u32, BusError>;

    /// Writes the 32-bit register at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`BusError`] for unmapped addresses, out-of-range or
    /// read-only registers, and rejected values.
    fn write(&mut self, addr: Address, value: u32) -> Result<(), BusError>;

    /// Reads a 64-bit quantity split over `(lo, hi)` register pairs.
    ///
    /// # Errors
    ///
    /// Propagates the underlying read errors.
    fn read_u64(&mut self, lo: Address, hi: Address) -> Result<u64, BusError> {
        let l = self.read(lo)?;
        let h = self.read(hi)?;
        Ok((u64::from(h) << 32) | u64::from(l))
    }

    /// Writes a 64-bit quantity split over `(lo, hi)` register pairs.
    ///
    /// # Errors
    ///
    /// Propagates the underlying write errors.
    fn write_u64(&mut self, lo: Address, hi: Address, value: u64) -> Result<(), BusError> {
        self.write(lo, value as u32)?;
        self.write(hi, (value >> 32) as u32)
    }
}

impl<B: BusAccess + ?Sized> BusAccess for &mut B {
    fn read(&mut self, addr: Address) -> Result<u32, BusError> {
        (**self).read(addr)
    }

    fn write(&mut self, addr: Address, value: u32) -> Result<(), BusError> {
        (**self).write(addr, value)
    }
}

/// What kind of component occupies a device slot (monitor labels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceClass {
    /// Platform control module.
    Control,
    /// Traffic generator.
    TrafficGenerator,
    /// Traffic receptor.
    TrafficReceptor,
    /// Switch statistics block.
    Switch,
    /// Telemetry monitor (windowed hot-link statistics).
    Monitor,
}

impl std::fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DeviceClass::Control => "control",
            DeviceClass::TrafficGenerator => "tg",
            DeviceClass::TrafficReceptor => "tr",
            DeviceClass::Switch => "switch",
            DeviceClass::Monitor => "monitor",
        })
    }
}

/// A registered device slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappedDevice {
    /// Where the device sits.
    pub addr: DeviceAddr,
    /// What it is.
    pub class: DeviceClass,
    /// Human-readable instance label (e.g. `"tg0"`).
    pub label: String,
}

/// Error returned when the platform runs out of device slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapFullError;

impl std::fmt::Display for MapFullError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "address map full ({MAX_BUSES} buses x {DEVICES_PER_BUS} devices)"
        )
    }
}

impl std::error::Error for MapFullError {}

/// Sequential allocator and directory of device slots.
///
/// # Examples
///
/// ```
/// use nocem_platform::bus::{AddressMap, DeviceClass};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut map = AddressMap::new();
/// let ctrl = map.allocate(DeviceClass::Control, "ctrl")?;
/// let tg0 = map.allocate(DeviceClass::TrafficGenerator, "tg0")?;
/// assert_ne!(ctrl, tg0);
/// assert_eq!(map.devices().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct AddressMap {
    devices: Vec<MappedDevice>,
}

impl AddressMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        AddressMap::default()
    }

    /// Total device slots the control plane can address
    /// (`MAX_BUSES * DEVICES_PER_BUS`).
    pub fn capacity() -> usize {
        usize::from(MAX_BUSES) * usize::from(DEVICES_PER_BUS)
    }

    /// Allocates the next free slot (bus 0 fills first, then bus 1,
    /// …).
    ///
    /// # Errors
    ///
    /// Returns [`MapFullError`] when all
    /// `MAX_BUSES * DEVICES_PER_BUS` slots are taken.
    pub fn allocate(
        &mut self,
        class: DeviceClass,
        label: impl Into<String>,
    ) -> Result<DeviceAddr, MapFullError> {
        let n = self.devices.len();
        let capacity = usize::from(MAX_BUSES) * usize::from(DEVICES_PER_BUS);
        if n >= capacity {
            return Err(MapFullError);
        }
        let addr = DeviceAddr::new(
            BusId::new((n / usize::from(DEVICES_PER_BUS)) as u8),
            DeviceId::new((n % usize::from(DEVICES_PER_BUS)) as u16),
        );
        self.devices.push(MappedDevice {
            addr,
            class,
            label: label.into(),
        });
        Ok(addr)
    }

    /// All registered devices, in allocation order.
    pub fn devices(&self) -> &[MappedDevice] {
        &self.devices
    }

    /// Looks up the device at `addr`.
    pub fn device_at(&self, addr: DeviceAddr) -> Option<&MappedDevice> {
        self.devices.iter().find(|d| d.addr == addr)
    }

    /// Finds the first device with the given label.
    pub fn by_label(&self, label: &str) -> Option<&MappedDevice> {
        self.devices.iter().find(|d| d.label == label)
    }

    /// Devices of one class, in allocation order.
    pub fn of_class(&self, class: DeviceClass) -> impl Iterator<Item = &MappedDevice> + '_ {
        self.devices.iter().filter(move |d| d.class == class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_allocation_spills_to_next_bus() {
        let mut map = AddressMap::new();
        let mut last = None;
        for i in 0..(usize::from(DEVICES_PER_BUS) + 2) {
            last = Some(
                map.allocate(DeviceClass::Switch, format!("s{i}"))
                    .expect("capacity not reached"),
            );
        }
        let last = last.unwrap();
        assert_eq!(last.bus, BusId::new(1));
        assert_eq!(last.device, DeviceId::new(1));
    }

    #[test]
    fn map_capacity_is_enforced() {
        let mut map = AddressMap::new();
        let capacity = usize::from(MAX_BUSES) * usize::from(DEVICES_PER_BUS);
        for i in 0..capacity {
            map.allocate(DeviceClass::Switch, format!("d{i}")).unwrap();
        }
        assert_eq!(
            map.allocate(DeviceClass::Switch, "extra"),
            Err(MapFullError)
        );
        assert!(MapFullError.to_string().contains("4 buses"));
    }

    #[test]
    fn lookup_by_addr_and_label() {
        let mut map = AddressMap::new();
        let a = map.allocate(DeviceClass::Control, "ctrl").unwrap();
        let b = map.allocate(DeviceClass::TrafficGenerator, "tg0").unwrap();
        assert_eq!(map.device_at(a).unwrap().label, "ctrl");
        assert_eq!(map.by_label("tg0").unwrap().addr, b);
        assert!(map.by_label("nope").is_none());
        assert_eq!(map.of_class(DeviceClass::TrafficGenerator).count(), 1);
    }

    #[test]
    fn bus_error_messages() {
        let a = Address::from_parts(BusId::new(0), DeviceId::new(3), 7);
        assert!(BusError::Unmapped(a).to_string().contains("b0:d3"));
        assert!(BusError::ReadOnly(a).to_string().contains("read-only"));
        assert!(BusError::WriteOnly(a).to_string().contains("write-only"));
        assert!(BusError::RegisterOutOfRange { addr: a, regs: 4 }
            .to_string()
            .contains("4 registers"));
        assert!(BusError::InvalidValue {
            addr: a,
            reason: "zero length".into()
        }
        .to_string()
        .contains("zero length"));
    }

    #[test]
    fn device_class_display() {
        assert_eq!(DeviceClass::Control.to_string(), "control");
        assert_eq!(DeviceClass::TrafficGenerator.to_string(), "tg");
    }

    /// A trivial BusAccess for the u64 helper test.
    struct FakeBus {
        regs: std::collections::HashMap<u32, u32>,
    }

    impl BusAccess for FakeBus {
        fn read(&mut self, addr: Address) -> Result<u32, BusError> {
            self.regs
                .get(&addr.raw())
                .copied()
                .ok_or(BusError::Unmapped(addr))
        }

        fn write(&mut self, addr: Address, value: u32) -> Result<(), BusError> {
            self.regs.insert(addr.raw(), value);
            Ok(())
        }
    }

    #[test]
    fn u64_split_register_helpers() {
        let mut bus = FakeBus {
            regs: std::collections::HashMap::new(),
        };
        let lo = Address::from_parts(BusId::new(0), DeviceId::new(0), 0);
        let hi = Address::from_parts(BusId::new(0), DeviceId::new(0), 1);
        bus.write_u64(lo, hi, 0x1234_5678_9ABC_DEF0).unwrap();
        assert_eq!(bus.read_u64(lo, hi).unwrap(), 0x1234_5678_9ABC_DEF0);
        // The &mut blanket impl also works.
        let r = &mut bus;
        assert_eq!(r.read(lo).unwrap(), 0x9ABC_DEF0);
    }
}
