//! The control module: the small device that orchestrates a run.
//!
//! In the paper's platform, the processor starts/stops the emulation
//! and polls progress through the control module (Table 1 lists it at
//! a mere 18 slices — it is just a handful of registers and counters).
//! [`ControlModule`] is that register block; [`ControlDriver`] is the
//! software half that programs it over any [`BusAccess`].

use crate::addr::{Address, DeviceAddr};
use crate::bus::{BusAccess, BusError};
use crate::regfile::{Access, RegFile};

/// Control register: bit 0 starts the emulation.
pub const REG_CTRL: u16 = 0x0;
/// Status register (read-only): see [`STATUS_RUNNING`] / [`STATUS_DONE`].
pub const REG_STATUS: u16 = 0x1;
/// Elapsed platform cycles, low half (read-only).
pub const REG_CYCLES_LO: u16 = 0x2;
/// Elapsed platform cycles, high half (read-only).
pub const REG_CYCLES_HI: u16 = 0x3;
/// Stop-after-N-delivered-packets target, low half.
pub const REG_TARGET_LO: u16 = 0x4;
/// Stop-after-N-delivered-packets target, high half.
pub const REG_TARGET_HI: u16 = 0x5;
/// Packets delivered so far, low half (read-only).
pub const REG_DELIVERED_LO: u16 = 0x6;
/// Packets delivered so far, high half (read-only).
pub const REG_DELIVERED_HI: u16 = 0x7;
/// Safety cycle limit, low half (0 = unlimited).
pub const REG_LIMIT_LO: u16 = 0x8;
/// Safety cycle limit, high half.
pub const REG_LIMIT_HI: u16 = 0x9;
/// Platform random seed, low half.
pub const REG_SEED_LO: u16 = 0xA;
/// Platform random seed, high half.
pub const REG_SEED_HI: u16 = 0xB;

/// Number of control-module registers.
pub const CTRL_REG_COUNT: u16 = 0xC;

/// STATUS bit: the emulation is running.
pub const STATUS_RUNNING: u32 = 1 << 0;
/// STATUS bit: the emulation finished (target met or limit hit).
pub const STATUS_DONE: u32 = 1 << 1;

/// CTRL bit: start request.
pub const CTRL_START: u32 = 1 << 0;

/// The control module device model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlModule {
    regs: RegFile,
}

impl Default for ControlModule {
    fn default() -> Self {
        Self::new()
    }
}

impl ControlModule {
    /// Creates a reset control module.
    pub fn new() -> Self {
        let mut access = vec![Access::ReadWrite; usize::from(CTRL_REG_COUNT)];
        for ro in [
            REG_STATUS,
            REG_CYCLES_LO,
            REG_CYCLES_HI,
            REG_DELIVERED_LO,
            REG_DELIVERED_HI,
        ] {
            access[usize::from(ro)] = Access::ReadOnly;
        }
        ControlModule {
            regs: RegFile::new(&access),
        }
    }

    /// Software-side register read.
    ///
    /// # Errors
    ///
    /// Propagates [`BusError`] from the register file.
    pub fn bus_read(&self, addr: Address) -> Result<u32, BusError> {
        self.regs.bus_read(addr)
    }

    /// Software-side register write.
    ///
    /// # Errors
    ///
    /// Propagates [`BusError`] from the register file.
    pub fn bus_write(&mut self, addr: Address, value: u32) -> Result<(), BusError> {
        self.regs.bus_write(addr, value)
    }

    /// Whether software has requested a start.
    pub fn start_requested(&self) -> bool {
        self.regs.get(REG_CTRL) & CTRL_START != 0
    }

    /// Hardware side: reflect run state into STATUS.
    pub fn set_running(&mut self, running: bool) {
        let mut s = self.regs.get(REG_STATUS);
        if running {
            s |= STATUS_RUNNING;
        } else {
            s &= !STATUS_RUNNING;
        }
        self.regs.set(REG_STATUS, s);
    }

    /// Hardware side: mark the run finished.
    pub fn set_done(&mut self) {
        let s = self.regs.get(REG_STATUS);
        self.regs
            .set(REG_STATUS, (s & !STATUS_RUNNING) | STATUS_DONE);
    }

    /// Whether STATUS has the done bit.
    pub fn is_done(&self) -> bool {
        self.regs.get(REG_STATUS) & STATUS_DONE != 0
    }

    /// Hardware side: update the cycle counter.
    pub fn set_cycles(&mut self, cycles: u64) {
        self.regs.set_u64(REG_CYCLES_LO, REG_CYCLES_HI, cycles);
    }

    /// Hardware side: update the delivered-packet counter.
    pub fn set_delivered(&mut self, packets: u64) {
        self.regs
            .set_u64(REG_DELIVERED_LO, REG_DELIVERED_HI, packets);
    }

    /// Configured delivered-packet target (0 = none).
    pub fn target(&self) -> u64 {
        self.regs.get_u64(REG_TARGET_LO, REG_TARGET_HI)
    }

    /// Configured cycle limit (0 = unlimited).
    pub fn cycle_limit(&self) -> u64 {
        self.regs.get_u64(REG_LIMIT_LO, REG_LIMIT_HI)
    }

    /// Configured platform seed.
    pub fn seed(&self) -> u64 {
        self.regs.get_u64(REG_SEED_LO, REG_SEED_HI)
    }

    /// Elapsed cycles as reported to software.
    pub fn cycles(&self) -> u64 {
        self.regs.get_u64(REG_CYCLES_LO, REG_CYCLES_HI)
    }
}

/// Typed software driver for the control module.
#[derive(Debug, Clone, Copy)]
pub struct ControlDriver {
    base: DeviceAddr,
}

impl ControlDriver {
    /// Creates a driver bound to the control module at `base`.
    pub fn new(base: DeviceAddr) -> Self {
        ControlDriver { base }
    }

    /// The device slot this driver programs.
    pub fn base(&self) -> DeviceAddr {
        self.base
    }

    /// Programs target, cycle limit and seed.
    ///
    /// # Errors
    ///
    /// Propagates [`BusError`] from the bus.
    pub fn configure<B: BusAccess>(
        &self,
        bus: &mut B,
        target_packets: u64,
        cycle_limit: u64,
        seed: u64,
    ) -> Result<(), BusError> {
        bus.write_u64(
            self.base.reg(REG_TARGET_LO),
            self.base.reg(REG_TARGET_HI),
            target_packets,
        )?;
        bus.write_u64(
            self.base.reg(REG_LIMIT_LO),
            self.base.reg(REG_LIMIT_HI),
            cycle_limit,
        )?;
        bus.write_u64(self.base.reg(REG_SEED_LO), self.base.reg(REG_SEED_HI), seed)
    }

    /// Sets the start bit.
    ///
    /// # Errors
    ///
    /// Propagates [`BusError`] from the bus.
    pub fn start<B: BusAccess>(&self, bus: &mut B) -> Result<(), BusError> {
        bus.write(self.base.reg(REG_CTRL), CTRL_START)
    }

    /// Reads the raw status word.
    ///
    /// # Errors
    ///
    /// Propagates [`BusError`] from the bus.
    pub fn status<B: BusAccess>(&self, bus: &mut B) -> Result<u32, BusError> {
        bus.read(self.base.reg(REG_STATUS))
    }

    /// Reads the elapsed cycle counter.
    ///
    /// # Errors
    ///
    /// Propagates [`BusError`] from the bus.
    pub fn cycles<B: BusAccess>(&self, bus: &mut B) -> Result<u64, BusError> {
        bus.read_u64(self.base.reg(REG_CYCLES_LO), self.base.reg(REG_CYCLES_HI))
    }

    /// Reads the delivered-packet counter.
    ///
    /// # Errors
    ///
    /// Propagates [`BusError`] from the bus.
    pub fn delivered<B: BusAccess>(&self, bus: &mut B) -> Result<u64, BusError> {
        bus.read_u64(
            self.base.reg(REG_DELIVERED_LO),
            self.base.reg(REG_DELIVERED_HI),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocem_common::ids::{BusId, DeviceId};

    fn base() -> DeviceAddr {
        DeviceAddr::new(BusId::new(0), DeviceId::new(0))
    }

    #[test]
    fn status_bits() {
        let mut cm = ControlModule::new();
        assert!(!cm.start_requested());
        assert!(!cm.is_done());
        cm.set_running(true);
        assert_eq!(cm.bus_read(base().reg(REG_STATUS)).unwrap(), STATUS_RUNNING);
        cm.set_done();
        assert!(cm.is_done());
        let s = cm.bus_read(base().reg(REG_STATUS)).unwrap();
        assert_eq!(s & STATUS_RUNNING, 0, "done clears running");
    }

    #[test]
    fn software_cannot_write_counters() {
        let mut cm = ControlModule::new();
        assert!(matches!(
            cm.bus_write(base().reg(REG_CYCLES_LO), 1),
            Err(BusError::ReadOnly(_))
        ));
        cm.set_cycles(0x1_0000_0001);
        assert_eq!(cm.cycles(), 0x1_0000_0001);
    }

    #[test]
    fn configuration_through_registers() {
        let mut cm = ControlModule::new();
        cm.bus_write(base().reg(REG_TARGET_LO), 500).unwrap();
        cm.bus_write(base().reg(REG_LIMIT_LO), 9_999).unwrap();
        cm.bus_write(base().reg(REG_SEED_LO), 42).unwrap();
        cm.bus_write(base().reg(REG_CTRL), CTRL_START).unwrap();
        assert_eq!(cm.target(), 500);
        assert_eq!(cm.cycle_limit(), 9_999);
        assert_eq!(cm.seed(), 42);
        assert!(cm.start_requested());
    }

    /// Bus backed directly by a ControlModule, for driver tests.
    struct OneDeviceBus {
        cm: ControlModule,
    }

    impl BusAccess for OneDeviceBus {
        fn read(&mut self, addr: Address) -> Result<u32, BusError> {
            self.cm.bus_read(addr)
        }

        fn write(&mut self, addr: Address, value: u32) -> Result<(), BusError> {
            self.cm.bus_write(addr, value)
        }
    }

    #[test]
    fn driver_round_trip() {
        let mut bus = OneDeviceBus {
            cm: ControlModule::new(),
        };
        let drv = ControlDriver::new(base());
        assert_eq!(drv.base(), base());
        drv.configure(&mut bus, 1_000, 50_000, 7).unwrap();
        drv.start(&mut bus).unwrap();
        assert!(bus.cm.start_requested());
        assert_eq!(bus.cm.target(), 1_000);
        assert_eq!(bus.cm.cycle_limit(), 50_000);
        assert_eq!(bus.cm.seed(), 7);

        bus.cm.set_cycles(123);
        bus.cm.set_delivered(45);
        assert_eq!(drv.cycles(&mut bus).unwrap(), 123);
        assert_eq!(drv.delivered(&mut bus).unwrap(), 45);
        bus.cm.set_done();
        assert_eq!(drv.status(&mut bus).unwrap() & STATUS_DONE, STATUS_DONE);
    }

    #[test]
    fn default_is_new() {
        assert_eq!(ControlModule::default(), ControlModule::new());
    }
}
