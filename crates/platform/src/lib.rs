//! # nocem-platform — the HW/SW bus substrate
//!
//! The paper's platform is "HW/SW": the hardware exposes every
//! component behind memory-mapped registers on up to 4 internal buses
//! of 1024 devices each, and a processor configures and observes
//! everything by reading and writing those registers. This crate is
//! that contract:
//!
//! * [`addr`] — the 32-bit address layout (bus / device / register);
//! * [`bus`] — the [`bus::BusAccess`] trait drivers program against,
//!   bus errors, and the [`bus::AddressMap`] device directory;
//! * [`regfile`] — per-device register files with RW / RO /
//!   write-1-to-clear semantics;
//! * [`control`] — the control module device (start/stop, cycle and
//!   packet counters) and its typed [`control::ControlDriver`];
//! * [`monitor`] — the final-report assembler ("the user visualizes
//!   the results … on the screen of his/her PC").
//!
//! Device models for TGs, TRs and switches are assembled in the core
//! crate (they need the traffic and statistics substrates); their
//! drivers talk [`bus::BusAccess`], so they would work unchanged
//! against a real FPGA bridge.
//!
//! # Examples
//!
//! ```
//! use nocem_platform::addr::DeviceAddr;
//! use nocem_platform::bus::{AddressMap, DeviceClass};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut map = AddressMap::new();
//! let ctrl = map.allocate(DeviceClass::Control, "ctrl")?;
//! let reg0 = ctrl.reg(0);
//! assert_eq!(reg0.device_addr(), ctrl);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod bus;
pub mod control;
pub mod monitor;
pub mod regfile;

pub use addr::{Address, DeviceAddr, DEVICES_PER_BUS, MAX_BUSES};
pub use bus::{AddressMap, BusAccess, BusError, DeviceClass, MappedDevice};
pub use control::{ControlDriver, ControlModule};
pub use monitor::Monitor;
pub use regfile::{Access, RegFile};
