//! The monitor: the final report shown "on the screen of the user's
//! PC".
//!
//! [`Monitor`] assembles named report sections (device inventories,
//! traffic statistics, congestion tables) into the plain-text final
//! report that ends every emulation flow. It is deliberately dumb —
//! content comes from the engines; this keeps the platform crate free
//! of statistics dependencies.

use crate::bus::AddressMap;
use nocem_common::table::TextTable;

/// Assembler for the end-of-run report.
///
/// # Examples
///
/// ```
/// use nocem_platform::monitor::Monitor;
///
/// let mut m = Monitor::new("demo run");
/// m.section("Traffic", "4 TGs at 45% offered load");
/// let report = m.render();
/// assert!(report.contains("demo run"));
/// assert!(report.contains("Traffic"));
/// ```
#[derive(Debug, Clone)]
pub struct Monitor {
    title: String,
    sections: Vec<(String, String)>,
}

impl Monitor {
    /// Creates a monitor for a run with the given title.
    pub fn new(title: impl Into<String>) -> Self {
        Monitor {
            title: title.into(),
            sections: Vec::new(),
        }
    }

    /// Appends a free-text section.
    pub fn section(&mut self, title: impl Into<String>, body: impl Into<String>) -> &mut Self {
        self.sections.push((title.into(), body.into()));
        self
    }

    /// Appends a table section.
    pub fn table(&mut self, title: impl Into<String>, table: &TextTable) -> &mut Self {
        self.section(title, table.to_string())
    }

    /// Appends the standard device-inventory section from an address
    /// map.
    pub fn device_inventory(&mut self, map: &AddressMap) -> &mut Self {
        let mut t = TextTable::with_columns(&["address", "class", "label"]);
        for d in map.devices() {
            t.row(vec![
                d.addr.to_string(),
                d.class.to_string(),
                d.label.clone(),
            ]);
        }
        self.table("Device inventory", &t)
    }

    /// Appends a windowed-series section: one labelled row of
    /// per-window samples (e.g. blocked cycles of a hot link), in a
    /// compact sparkline-like text form. `window` is the series'
    /// window length in cycles, shown in the header.
    pub fn window_series(
        &mut self,
        title: impl Into<String>,
        window: u64,
        rows: &[(String, Vec<u64>)],
    ) -> &mut Self {
        let mut body = format!("window = {window} cycles\n");
        for (label, samples) in rows {
            let rendered: Vec<String> = samples.iter().map(u64::to_string).collect();
            body.push_str(&format!("{label}: [{}]\n", rendered.join(", ")));
        }
        self.section(title, body)
    }

    /// Number of sections so far.
    pub fn len(&self) -> usize {
        self.sections.len()
    }

    /// Whether the monitor has no sections.
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// Renders the full report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("==== NoC emulation report: {} ====\n", self.title));
        for (title, body) in &self.sections {
            out.push_str(&format!("\n-- {title} --\n"));
            out.push_str(body);
            if !body.ends_with('\n') {
                out.push('\n');
            }
        }
        out
    }
}

impl std::fmt::Display for Monitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::DeviceClass;

    #[test]
    fn renders_title_and_sections_in_order() {
        let mut m = Monitor::new("t");
        m.section("A", "alpha").section("B", "beta\n");
        let r = m.render();
        let a = r.find("-- A --").unwrap();
        let b = r.find("-- B --").unwrap();
        assert!(a < b);
        assert!(r.contains("alpha\n"));
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
        assert_eq!(m.to_string(), r);
    }

    #[test]
    fn device_inventory_lists_devices() {
        let mut map = AddressMap::new();
        map.allocate(DeviceClass::Control, "ctrl").unwrap();
        map.allocate(DeviceClass::TrafficGenerator, "tg0").unwrap();
        let mut m = Monitor::new("inv");
        m.device_inventory(&map);
        let r = m.render();
        assert!(r.contains("ctrl"));
        assert!(r.contains("tg0"));
        assert!(r.contains("b0:d1"));
    }

    #[test]
    fn window_series_renders_samples() {
        let mut m = Monitor::new("tele");
        m.window_series(
            "Hot links",
            256,
            &[("l3 blocked".to_string(), vec![0, 12, 40])],
        );
        let r = m.render();
        assert!(r.contains("window = 256 cycles"));
        assert!(r.contains("l3 blocked: [0, 12, 40]"));
    }

    #[test]
    fn table_section_embeds_table() {
        let mut t = TextTable::with_columns(&["k", "v"]);
        t.row(vec!["x".into(), "1".into()]);
        let mut m = Monitor::new("t");
        m.table("Numbers", &t);
        assert!(m.render().contains("Numbers"));
        assert!(m.render().contains('x'));
    }
}
