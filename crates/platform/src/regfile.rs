//! Register files: the per-device "bench of registers".
//!
//! [`RegFile`] is the helper every memory-mapped device model builds
//! its register interface from. Each register carries an access mode
//! (read-write, read-only, write-1-to-clear) and the file enforces the
//! semantics, so device wrappers only deal with *values*.

use crate::addr::Address;
use crate::bus::BusError;

/// Register access mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Software may read and write.
    ReadWrite,
    /// Hardware-owned; software reads only.
    ReadOnly,
    /// Reads return the value; writing 1 bits clears them (interrupt
    /// style).
    WriteOneToClear,
}

/// A fixed-size file of 32-bit registers with per-register access
/// modes.
///
/// # Examples
///
/// ```
/// use nocem_platform::regfile::{Access, RegFile};
///
/// let mut rf = RegFile::new(&[Access::ReadWrite, Access::ReadOnly]);
/// rf.set(1, 42); // hardware side may always write
/// assert_eq!(rf.get(1), 42);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegFile {
    values: Vec<u32>,
    access: Vec<Access>,
}

impl RegFile {
    /// Creates a file with one register per access entry, all zero.
    pub fn new(access: &[Access]) -> Self {
        RegFile {
            values: vec![0; access.len()],
            access: access.to_vec(),
        }
    }

    /// Creates a file of `n` read-write registers.
    pub fn read_write(n: usize) -> Self {
        RegFile {
            values: vec![0; n],
            access: vec![Access::ReadWrite; n],
        }
    }

    /// Creates a file of `n` read-only (hardware-owned) registers.
    pub fn read_only(n: usize) -> Self {
        RegFile {
            values: vec![0; n],
            access: vec![Access::ReadOnly; n],
        }
    }

    /// Number of registers.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the file has no registers.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Hardware-side read (no access checking).
    ///
    /// # Panics
    ///
    /// Panics if `reg` is out of range.
    pub fn get(&self, reg: u16) -> u32 {
        self.values[usize::from(reg)]
    }

    /// Hardware-side 64-bit read from a `(lo, hi)` pair.
    ///
    /// # Panics
    ///
    /// Panics if either register is out of range.
    pub fn get_u64(&self, lo: u16, hi: u16) -> u64 {
        (u64::from(self.get(hi)) << 32) | u64::from(self.get(lo))
    }

    /// Hardware-side write (no access checking; hardware owns all
    /// registers).
    ///
    /// # Panics
    ///
    /// Panics if `reg` is out of range.
    pub fn set(&mut self, reg: u16, value: u32) {
        self.values[usize::from(reg)] = value;
    }

    /// Hardware-side 64-bit write into a `(lo, hi)` pair.
    ///
    /// # Panics
    ///
    /// Panics if either register is out of range.
    pub fn set_u64(&mut self, lo: u16, hi: u16, value: u64) {
        self.set(lo, value as u32);
        self.set(hi, (value >> 32) as u32);
    }

    /// Software-side read at `addr` (for error reporting), honouring
    /// access modes.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::RegisterOutOfRange`] beyond the file.
    pub fn bus_read(&self, addr: Address) -> Result<u32, BusError> {
        let reg = usize::from(addr.reg());
        if reg >= self.values.len() {
            return Err(BusError::RegisterOutOfRange {
                addr,
                regs: self.values.len() as u16,
            });
        }
        Ok(self.values[reg])
    }

    /// Software-side write at `addr`, honouring access modes.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::RegisterOutOfRange`] beyond the file and
    /// [`BusError::ReadOnly`] for hardware-owned registers.
    pub fn bus_write(&mut self, addr: Address, value: u32) -> Result<(), BusError> {
        let reg = usize::from(addr.reg());
        if reg >= self.values.len() {
            return Err(BusError::RegisterOutOfRange {
                addr,
                regs: self.values.len() as u16,
            });
        }
        match self.access[reg] {
            Access::ReadWrite => {
                self.values[reg] = value;
                Ok(())
            }
            Access::ReadOnly => Err(BusError::ReadOnly(addr)),
            Access::WriteOneToClear => {
                self.values[reg] &= !value;
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocem_common::ids::{BusId, DeviceId};

    fn addr(reg: u16) -> Address {
        Address::from_parts(BusId::new(0), DeviceId::new(0), reg)
    }

    #[test]
    fn read_write_register() {
        let mut rf = RegFile::read_write(2);
        rf.bus_write(addr(0), 7).unwrap();
        assert_eq!(rf.bus_read(addr(0)).unwrap(), 7);
        assert_eq!(rf.get(0), 7);
    }

    #[test]
    fn read_only_rejects_software_writes() {
        let mut rf = RegFile::new(&[Access::ReadOnly]);
        assert!(matches!(
            rf.bus_write(addr(0), 1),
            Err(BusError::ReadOnly(_))
        ));
        rf.set(0, 9); // hardware side still writes
        assert_eq!(rf.bus_read(addr(0)).unwrap(), 9);
    }

    #[test]
    fn write_one_to_clear_semantics() {
        let mut rf = RegFile::new(&[Access::WriteOneToClear]);
        rf.set(0, 0b1111);
        rf.bus_write(addr(0), 0b0101).unwrap();
        assert_eq!(rf.get(0), 0b1010);
    }

    #[test]
    fn out_of_range_register_faults() {
        let mut rf = RegFile::read_write(1);
        assert!(matches!(
            rf.bus_read(addr(1)),
            Err(BusError::RegisterOutOfRange { regs: 1, .. })
        ));
        assert!(rf.bus_write(addr(9), 0).is_err());
    }

    #[test]
    fn u64_pair_helpers() {
        let mut rf = RegFile::read_write(2);
        rf.set_u64(0, 1, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(rf.get_u64(0, 1), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(rf.get(0), 0xCAFE_F00D);
        assert_eq!(rf.get(1), 0xDEAD_BEEF);
    }

    #[test]
    fn len_and_empty() {
        assert_eq!(RegFile::read_write(3).len(), 3);
        assert!(RegFile::read_write(0).is_empty());
    }

    #[test]
    fn read_only_file_rejects_all_software_writes() {
        let mut rf = RegFile::read_only(2);
        rf.set(1, 5);
        assert_eq!(rf.bus_read(addr(1)).unwrap(), 5);
        assert!(matches!(
            rf.bus_write(addr(1), 0),
            Err(BusError::ReadOnly(_))
        ));
    }
}
