//! Property-based tests of the HW/SW boundary: address encoding
//! round-trips across the whole 4-bus × 1024-device space, register
//! files enforce their access modes, and the control module's 64-bit
//! register pairs are consistent under arbitrary splits.

use nocem_common::ids::{BusId, DeviceId};
use nocem_platform::addr::{Address, DeviceAddr, DEVICES_PER_BUS, MAX_BUSES};
use nocem_platform::bus::{AddressMap, BusError, DeviceClass};
use nocem_platform::control::{
    ControlModule, REG_CYCLES_HI, REG_CYCLES_LO, REG_SEED_HI, REG_SEED_LO, REG_TARGET_HI,
    REG_TARGET_LO,
};
use nocem_platform::regfile::{Access, RegFile};
use proptest::prelude::*;

proptest! {
    /// Encode→decode round-trips over the full address space, and the
    /// field accessors recover every part.
    #[test]
    fn address_roundtrip(bus in 0u8..MAX_BUSES, dev in 0u16..DEVICES_PER_BUS, reg in any::<u16>()) {
        let a = Address::from_parts(BusId::new(bus), DeviceId::new(dev), reg);
        let back = Address::decode(a.raw()).expect("constructed addresses decode");
        prop_assert_eq!(a, back);
        prop_assert_eq!(a.bus(), BusId::new(bus));
        prop_assert_eq!(a.device(), DeviceId::new(dev));
        prop_assert_eq!(a.reg(), reg);
        prop_assert_eq!(a.device_addr(), DeviceAddr::new(BusId::new(bus), DeviceId::new(dev)));
        // Word alignment is structural.
        prop_assert_eq!(a.raw() & 0b11, 0);
    }

    /// Distinct (bus, device, register) triples produce distinct
    /// addresses — the map is injective.
    #[test]
    fn address_encoding_is_injective(
        a in (0u8..MAX_BUSES, 0u16..DEVICES_PER_BUS, 0u16..256),
        b in (0u8..MAX_BUSES, 0u16..DEVICES_PER_BUS, 0u16..256),
    ) {
        let ea = Address::from_parts(BusId::new(a.0), DeviceId::new(a.1), a.2);
        let eb = Address::from_parts(BusId::new(b.0), DeviceId::new(b.1), b.2);
        prop_assert_eq!(ea == eb, a == b);
    }

    /// Unaligned raw values never decode.
    #[test]
    fn unaligned_addresses_are_rejected(raw in any::<u32>()) {
        if let Ok(a) = Address::decode(raw) {
            prop_assert_eq!(raw & 0b11, 0, "accepted unaligned {:#x}", a.raw());
        }
        prop_assert!(Address::decode(raw | 1).is_err());
    }

    /// Register files enforce access modes for arbitrary traffic: RW
    /// registers take every software write, RO registers reject all of
    /// them, W1C registers clear exactly the written 1-bits.
    #[test]
    fn regfile_access_modes(
        writes in proptest::collection::vec((0u16..3, any::<u32>()), 1..60),
    ) {
        let mut rf = RegFile::new(&[Access::ReadWrite, Access::ReadOnly, Access::WriteOneToClear]);
        let base = DeviceAddr::new(BusId::new(0), DeviceId::new(0));
        // Hardware preloads the W1C register with all-ones so clears
        // are observable.
        rf.set(2, u32::MAX);
        let mut rw_shadow = 0u32;
        let mut w1c_shadow = u32::MAX;
        for (reg, value) in writes {
            let addr = base.reg(reg);
            match reg {
                0 => {
                    rf.bus_write(addr, value).unwrap();
                    rw_shadow = value;
                }
                1 => {
                    prop_assert!(matches!(rf.bus_write(addr, value), Err(BusError::ReadOnly(_))));
                }
                _ => {
                    rf.bus_write(addr, value).unwrap();
                    w1c_shadow &= !value;
                }
            }
            prop_assert_eq!(rf.bus_read(base.reg(0)).unwrap(), rw_shadow);
            prop_assert_eq!(rf.bus_read(base.reg(2)).unwrap(), w1c_shadow);
        }
    }

    /// 64-bit register pairs split and rejoin losslessly.
    #[test]
    fn regfile_u64_pairs_roundtrip(v in any::<u64>()) {
        let mut rf = RegFile::read_write(2);
        rf.set_u64(0, 1, v);
        prop_assert_eq!(rf.get_u64(0, 1), v);
        prop_assert_eq!(rf.get(0), (v & 0xFFFF_FFFF) as u32);
        prop_assert_eq!(rf.get(1), (v >> 32) as u32);
    }

    /// The control module's 64-bit quantities survive the bus: writing
    /// the two halves in either order reads back the full value.
    #[test]
    fn control_module_u64_registers(target in any::<u64>(), seed in any::<u64>(), lo_first in any::<bool>()) {
        let mut cm = ControlModule::new();
        let base = DeviceAddr::new(BusId::new(0), DeviceId::new(0));
        let writes = [
            (REG_TARGET_LO, (target & 0xFFFF_FFFF) as u32),
            (REG_TARGET_HI, (target >> 32) as u32),
            (REG_SEED_LO, (seed & 0xFFFF_FFFF) as u32),
            (REG_SEED_HI, (seed >> 32) as u32),
        ];
        if lo_first {
            for (r, v) in writes {
                cm.bus_write(base.reg(r), v).unwrap();
            }
        } else {
            for (r, v) in writes.iter().rev() {
                cm.bus_write(base.reg(*r), *v).unwrap();
            }
        }
        prop_assert_eq!(cm.target(), target);
        prop_assert_eq!(cm.seed(), seed);
    }

    /// The cycle counter is read-only over the bus but updatable by
    /// hardware, for any value.
    #[test]
    fn control_cycles_are_read_only(cycles in any::<u64>()) {
        let mut cm = ControlModule::new();
        let base = DeviceAddr::new(BusId::new(0), DeviceId::new(0));
        cm.set_cycles(cycles);
        let lo = cm.bus_read(base.reg(REG_CYCLES_LO)).unwrap();
        let hi = cm.bus_read(base.reg(REG_CYCLES_HI)).unwrap();
        prop_assert_eq!((u64::from(hi) << 32) | u64::from(lo), cycles);
        prop_assert!(cm.bus_write(base.reg(REG_CYCLES_LO), 0).is_err());
        prop_assert!(cm.bus_write(base.reg(REG_CYCLES_HI), 0).is_err());
    }

    /// The address map allocates devices densely, never collides, and
    /// looks every device back up by slot and by label.
    #[test]
    fn address_map_allocations_are_unique(n in 1usize..200) {
        let mut map = AddressMap::new();
        let mut slots = Vec::new();
        for i in 0..n {
            let slot = map
                .allocate(DeviceClass::TrafficGenerator, format!("tg{i}"))
                .unwrap();
            slots.push(slot);
        }
        let mut unique = slots.clone();
        unique.sort();
        unique.dedup();
        prop_assert_eq!(unique.len(), slots.len(), "slot collision");
        for (i, &slot) in slots.iter().enumerate() {
            let found = map.device_at(slot).expect("slot resolves");
            prop_assert_eq!(&found.label, &format!("tg{i}"));
            let by_label = map.by_label(&format!("tg{i}")).expect("label resolves");
            prop_assert_eq!(by_label.addr, slot);
        }
        prop_assert_eq!(map.of_class(DeviceClass::TrafficGenerator).count(), n);
    }
}

/// The platform refuses to allocate beyond 4 × 1024 devices — the
/// paper's stated limit.
#[test]
fn address_map_enforces_platform_limit() {
    let mut map = AddressMap::new();
    let total = usize::from(MAX_BUSES) * usize::from(DEVICES_PER_BUS);
    for i in 0..total {
        map.allocate(DeviceClass::Switch, format!("sw{i}"))
            .unwrap_or_else(|_| panic!("allocation {i} must fit"));
    }
    assert!(
        map.allocate(DeviceClass::Switch, "overflow").is_err(),
        "4097th device must be refused"
    );
}
