//! An event-driven RTL simulation kernel.
//!
//! This is the mechanism that makes HDL simulators (the paper's
//! "Verilog / ModelSim" baseline) slow and general: **signals** hold
//! values; **processes** wake on clock edges or on signal changes
//! (sensitivity lists); writes are **nonblocking** (they take effect
//! in a delta cycle after all processes of the current phase ran), and
//! cascaded wake-ups run to a fixpoint before simulated time advances.
//!
//! The kernel counts its own work (process activations, signal events,
//! delta cycles) so the Table 2 reproduction can report *why* RTL
//! simulation is orders of magnitude slower than the emulation engine
//! on identical workloads.
//!
//! A simple VCD dump ([`Kernel::enable_vcd`]) is included for
//! waveform-level debugging, as any RTL simulator would offer.

use nocem_common::flit::Flit;
use std::fmt::Write as _;

/// Value carried by a signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Value {
    /// Logic low (also the reset value of every signal).
    #[default]
    Low,
    /// Logic high.
    High,
    /// A word-sized bus.
    Word(u64),
    /// A flit bus with its valid bit (`None` = idle).
    Flit(Option<Flit>),
}

impl Value {
    /// Interprets the value as a boolean wire.
    pub fn is_high(self) -> bool {
        matches!(self, Value::High)
    }

    /// Extracts a flit if the bus is valid.
    pub fn flit(self) -> Option<Flit> {
        match self {
            Value::Flit(f) => f,
            _ => None,
        }
    }
}

/// Handle to a signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SignalId(u32);

impl SignalId {
    /// Dense index of the signal.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Handle to a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcessId(u32);

/// Read/write access handed to a process while it executes.
pub struct ProcessCtx<'a> {
    signals: &'a [Value],
    nba: &'a mut Vec<(SignalId, Value)>,
    time: u64,
}

impl ProcessCtx<'_> {
    /// Current simulated time (cycle number).
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Reads the *current* value of a signal (writes of this phase are
    /// not yet visible — nonblocking semantics).
    pub fn read(&self, sig: SignalId) -> Value {
        self.signals[sig.index()]
    }

    /// Schedules a nonblocking write, applied in the next delta.
    pub fn write(&mut self, sig: SignalId, value: Value) {
        self.nba.push((sig, value));
    }
}

/// A simulation process: sequential (clocked) or reactive
/// (sensitivity-driven).
pub trait Process {
    /// Runs one activation.
    fn execute(&mut self, ctx: &mut ProcessCtx<'_>);
}

impl<F: FnMut(&mut ProcessCtx<'_>)> Process for F {
    fn execute(&mut self, ctx: &mut ProcessCtx<'_>) {
        self(ctx)
    }
}

/// Kernel statistics — the cost model of RTL simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelStats {
    /// Process activations executed.
    pub activations: u64,
    /// Signal value changes dispatched.
    pub signal_events: u64,
    /// Delta cycles executed.
    pub delta_cycles: u64,
    /// Clock cycles simulated.
    pub cycles: u64,
}

/// Error raised when combinational logic fails to settle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvergenceError {
    /// The time step at which the network oscillated.
    pub time: u64,
}

impl std::fmt::Display for ConvergenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "delta cycles did not converge at time {}", self.time)
    }
}

impl std::error::Error for ConvergenceError {}

/// The event-driven kernel.
///
/// # Examples
///
/// ```
/// use nocem_rtl::kernel::{Kernel, Value};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut k = Kernel::new();
/// let q = k.signal("q");
/// // A clocked toggler: q <= !q every cycle.
/// k.clocked_process(move |ctx: &mut nocem_rtl::kernel::ProcessCtx<'_>| {
///     let v = if ctx.read(q).is_high() { Value::Low } else { Value::High };
///     ctx.write(q, v);
/// });
/// k.cycle()?;
/// assert!(k.value(q).is_high());
/// k.cycle()?;
/// assert!(!k.value(q).is_high());
/// # Ok(())
/// # }
/// ```
#[derive(Default)]
pub struct Kernel {
    signals: Vec<Value>,
    names: Vec<String>,
    sensitivity: Vec<Vec<u32>>,
    clocked: Vec<u32>,
    processes: Vec<Box<dyn Process>>,
    nba: Vec<(SignalId, Value)>,
    stats: KernelStats,
    time: u64,
    /// Whether the one-time reactive initialization pass has run.
    /// Keyed on a flag, not on `time == 0`, so a clock-gating
    /// [`Kernel::advance_time`] jump before the first cycle cannot
    /// skip it.
    initialized: bool,
    vcd: Option<Vcd>,
    max_deltas: u32,
}

#[derive(Debug, Default)]
struct Vcd {
    body: String,
    header_done: bool,
    last_time_marker: Option<u64>,
}

impl Kernel {
    /// Creates an empty kernel.
    pub fn new() -> Self {
        Kernel {
            max_deltas: 1_000,
            ..Kernel::default()
        }
    }

    /// Declares a signal, initialized to [`Value::Low`].
    pub fn signal(&mut self, name: impl Into<String>) -> SignalId {
        self.signals.push(Value::Low);
        self.sensitivity.push(Vec::new());
        self.names.push(name.into());
        SignalId((self.signals.len() - 1) as u32)
    }

    /// Registers a process activated at every clock edge, in
    /// registration order.
    pub fn clocked_process(&mut self, p: impl Process + 'static) -> ProcessId {
        self.processes.push(Box::new(p));
        let id = (self.processes.len() - 1) as u32;
        self.clocked.push(id);
        ProcessId(id)
    }

    /// Registers a process activated whenever any signal in `sens`
    /// changes (combinational logic or monitors).
    pub fn reactive_process(&mut self, sens: &[SignalId], p: impl Process + 'static) -> ProcessId {
        self.processes.push(Box::new(p));
        let id = (self.processes.len() - 1) as u32;
        for s in sens {
            self.sensitivity[s.index()].push(id);
        }
        ProcessId(id)
    }

    /// Current value of a signal.
    pub fn value(&self, sig: SignalId) -> Value {
        self.signals[sig.index()]
    }

    /// Current simulated time in cycles.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Jumps simulated time forward without activating any process or
    /// dispatching any event — the clock-gating fast-forward. The
    /// caller must have proven the skipped cycles are pure no-ops
    /// (every component quiescent, every signal at its idle value);
    /// the skipped cycles do not count as kernel work.
    pub fn advance_time(&mut self, cycles: u64) {
        self.time += cycles;
    }

    /// Kernel work counters.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Starts VCD recording (in memory; fetch with
    /// [`Kernel::vcd_output`]).
    pub fn enable_vcd(&mut self) {
        self.vcd = Some(Vcd::default());
    }

    /// Renders the VCD document recorded so far.
    pub fn vcd_output(&self) -> Option<String> {
        let vcd = self.vcd.as_ref()?;
        let mut out = String::from("$timescale 1ns $end\n$scope module nocem $end\n");
        for (i, name) in self.names.iter().enumerate() {
            let _ = writeln!(out, "$var wire 64 s{i} {} $end", sanitize(name));
        }
        out.push_str("$upscope $end\n$enddefinitions $end\n");
        out.push_str(&vcd.body);
        Some(out)
    }

    fn run_process(
        processes: &mut [Box<dyn Process>],
        signals: &[Value],
        nba: &mut Vec<(SignalId, Value)>,
        stats: &mut KernelStats,
        time: u64,
        pid: u32,
    ) {
        stats.activations += 1;
        let mut ctx = ProcessCtx { signals, nba, time };
        processes[pid as usize].execute(&mut ctx);
    }

    /// Applies queued NBA writes; returns the processes to wake.
    fn apply_nba(&mut self) -> Vec<u32> {
        let mut wake: Vec<u32> = Vec::new();
        let writes = std::mem::take(&mut self.nba);
        for (sig, value) in writes {
            let cur = &mut self.signals[sig.index()];
            if *cur == value {
                continue;
            }
            *cur = value;
            self.stats.signal_events += 1;
            if let Some(vcd) = &mut self.vcd {
                if vcd.last_time_marker != Some(self.time) {
                    let _ = writeln!(vcd.body, "#{}", self.time);
                    vcd.last_time_marker = Some(self.time);
                }
                let _ = writeln!(vcd.body, "b{:b} s{}", encode(value), sig.index());
                vcd.header_done = true;
            }
            for &p in &self.sensitivity[sig.index()] {
                if !wake.contains(&p) {
                    wake.push(p);
                }
            }
        }
        wake
    }

    /// Simulates one clock cycle: activate every clocked process, then
    /// run delta cycles (NBA apply → wake sensitive processes) until
    /// the network settles.
    ///
    /// # Errors
    ///
    /// Returns [`ConvergenceError`] if the delta loop exceeds its
    /// bound (combinational oscillation).
    pub fn cycle(&mut self) -> Result<(), ConvergenceError> {
        let clocked = self.clocked.clone();
        for pid in clocked {
            Self::run_process(
                &mut self.processes,
                &self.signals,
                &mut self.nba,
                &mut self.stats,
                self.time,
                pid,
            );
        }
        // Initialization phase: on the first cycle every reactive
        // process runs once (as HDL simulators do), so combinational
        // networks settle from their reset values even before any
        // input event — also when clock gating jumped time before the
        // first cycle executed.
        if !self.initialized {
            self.initialized = true;
            let reactive: Vec<u32> = (0..self.processes.len() as u32)
                .filter(|p| !self.clocked.contains(p))
                .collect();
            for pid in reactive {
                Self::run_process(
                    &mut self.processes,
                    &self.signals,
                    &mut self.nba,
                    &mut self.stats,
                    self.time,
                    pid,
                );
            }
        }
        let mut deltas = 0;
        loop {
            let wake = self.apply_nba();
            if wake.is_empty() {
                break;
            }
            self.stats.delta_cycles += 1;
            deltas += 1;
            if deltas > self.max_deltas {
                return Err(ConvergenceError { time: self.time });
            }
            for pid in wake {
                Self::run_process(
                    &mut self.processes,
                    &self.signals,
                    &mut self.nba,
                    &mut self.stats,
                    self.time,
                    pid,
                );
            }
        }
        self.time += 1;
        self.stats.cycles += 1;
        Ok(())
    }
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("signals", &self.signals.len())
            .field("processes", &self.processes.len())
            .field("time", &self.time)
            .finish_non_exhaustive()
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn encode(value: Value) -> u64 {
    match value {
        Value::Low => 0,
        Value::High => 1,
        Value::Word(w) => w,
        Value::Flit(None) => 0,
        Value::Flit(Some(f)) => 0x8000_0000_0000_0000 | f.packet.raw() << 16 | u64::from(f.seq),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clocked_counter_counts() {
        let mut k = Kernel::new();
        let count = k.signal("count");
        k.clocked_process(move |ctx: &mut ProcessCtx<'_>| {
            let v = match ctx.read(count) {
                Value::Word(w) => w,
                _ => 0,
            };
            ctx.write(count, Value::Word(v + 1));
        });
        for _ in 0..5 {
            k.cycle().unwrap();
        }
        assert_eq!(k.value(count), Value::Word(5));
        assert_eq!(k.stats().cycles, 5);
        assert_eq!(k.stats().activations, 5);
    }

    #[test]
    fn nonblocking_semantics_swap() {
        // Two registers swapping values every cycle — only correct
        // with NBA semantics.
        let mut k = Kernel::new();
        let a = k.signal("a");
        let b = k.signal("b");
        k.clocked_process(move |ctx: &mut ProcessCtx<'_>| {
            if ctx.time() == 0 {
                ctx.write(a, Value::Word(1));
                ctx.write(b, Value::Word(2));
            } else {
                ctx.write(a, ctx.read(b));
                ctx.write(b, ctx.read(a));
            }
        });
        k.cycle().unwrap(); // load 1, 2
        k.cycle().unwrap(); // swap
        assert_eq!(k.value(a), Value::Word(2));
        assert_eq!(k.value(b), Value::Word(1));
    }

    #[test]
    fn reactive_process_follows_signal() {
        // not_q is the inverse of q, computed combinationally.
        let mut k = Kernel::new();
        let q = k.signal("q");
        let not_q = k.signal("not_q");
        k.reactive_process(&[q], move |ctx: &mut ProcessCtx<'_>| {
            let v = if ctx.read(q).is_high() {
                Value::Low
            } else {
                Value::High
            };
            ctx.write(not_q, v);
        });
        k.clocked_process(move |ctx: &mut ProcessCtx<'_>| {
            let v = if ctx.read(q).is_high() {
                Value::Low
            } else {
                Value::High
            };
            ctx.write(q, v);
        });
        k.cycle().unwrap();
        assert!(k.value(q).is_high());
        assert!(!k.value(not_q).is_high());
        k.cycle().unwrap();
        assert!(!k.value(q).is_high());
        assert!(k.value(not_q).is_high());
    }

    #[test]
    fn chained_combinational_logic_cascades_deltas() {
        // w0 -> w1 -> w2 chain of inverters driven by a toggling reg.
        let mut k = Kernel::new();
        let w: Vec<SignalId> = (0..3).map(|i| k.signal(format!("w{i}"))).collect();
        for i in 0..2 {
            let (src, dst) = (w[i], w[i + 1]);
            k.reactive_process(&[src], move |ctx: &mut ProcessCtx<'_>| {
                let v = if ctx.read(src).is_high() {
                    Value::Low
                } else {
                    Value::High
                };
                ctx.write(dst, v);
            });
        }
        let w0 = w[0];
        k.clocked_process(move |ctx: &mut ProcessCtx<'_>| {
            let v = if ctx.read(w0).is_high() {
                Value::Low
            } else {
                Value::High
            };
            ctx.write(w0, v);
        });
        k.cycle().unwrap();
        assert!(k.value(w[0]).is_high());
        assert!(!k.value(w[1]).is_high());
        assert!(k.value(w[2]).is_high());
        assert!(k.stats().delta_cycles >= 2, "cascade took deltas");
    }

    #[test]
    fn oscillating_loop_is_detected() {
        // A combinational inverter driving itself never settles.
        let mut k = Kernel::new();
        let q = k.signal("q");
        k.reactive_process(&[q], move |ctx: &mut ProcessCtx<'_>| {
            let v = if ctx.read(q).is_high() {
                Value::Low
            } else {
                Value::High
            };
            ctx.write(q, v);
        });
        // Kick the loop from a clocked process.
        k.clocked_process(move |ctx: &mut ProcessCtx<'_>| {
            if ctx.time() == 0 {
                ctx.write(q, Value::High);
            }
        });
        let err = k.cycle().unwrap_err();
        assert_eq!(err.time, 0);
        assert!(err.to_string().contains("converge"));
    }

    #[test]
    fn same_value_writes_do_not_wake() {
        let mut k = Kernel::new();
        let q = k.signal("q");
        let wakes = std::rc::Rc::new(std::cell::Cell::new(0));
        let w = wakes.clone();
        k.reactive_process(&[q], move |_ctx: &mut ProcessCtx<'_>| {
            w.set(w.get() + 1);
        });
        k.clocked_process(move |ctx: &mut ProcessCtx<'_>| {
            ctx.write(q, Value::Low); // unchanged value
        });
        k.cycle().unwrap();
        // One activation from the time-zero initialization phase, then
        // never again: identical-value writes raise no events.
        assert_eq!(wakes.get(), 1, "only the initialization run");
        assert_eq!(k.stats().signal_events, 0);
        k.cycle().unwrap();
        k.cycle().unwrap();
        assert_eq!(wakes.get(), 1, "no event for identical value");
        assert_eq!(k.stats().signal_events, 0);
    }

    #[test]
    fn vcd_records_changes() {
        let mut k = Kernel::new();
        k.enable_vcd();
        let q = k.signal("data bus");
        k.clocked_process(move |ctx: &mut ProcessCtx<'_>| {
            ctx.write(q, Value::Word(ctx.time() + 1));
        });
        k.cycle().unwrap();
        k.cycle().unwrap();
        let vcd = k.vcd_output().unwrap();
        assert!(vcd.contains("$timescale"));
        assert!(vcd.contains("data_bus"), "names sanitized: {vcd}");
        assert!(vcd.contains("#0"));
        assert!(vcd.contains("#1"));
        assert!(vcd.contains("b1 s0"));
        assert!(vcd.contains("b10 s0"));
    }

    #[test]
    fn initialization_pass_survives_a_time_jump() {
        // Clock gating may advance time before the first cycle ever
        // executes; the one-shot reactive initialization pass must
        // still run on that first cycle (it used to key on time == 0).
        use std::cell::Cell;
        use std::rc::Rc;
        let mut k = Kernel::new();
        let s = k.signal("s");
        let ran = Rc::new(Cell::new(0u32));
        let ran2 = Rc::clone(&ran);
        k.reactive_process(&[s], move |_ctx: &mut ProcessCtx<'_>| {
            ran2.set(ran2.get() + 1);
        });
        k.advance_time(100);
        k.cycle().unwrap();
        assert_eq!(ran.get(), 1, "reactive init pass must run once");
        assert_eq!(k.time(), 101);
        k.cycle().unwrap();
        assert_eq!(ran.get(), 1, "init pass runs exactly once");
    }

    #[test]
    fn flit_values_compare_and_encode() {
        use nocem_common::flit::FlitKind;
        use nocem_common::ids::{EndpointId, FlowId, PacketId};
        let f = Flit {
            packet: PacketId::new(3),
            kind: FlitKind::Single,
            seq: 0,
            flow: FlowId::new(0),
            dst: EndpointId::new(0),
            vc: nocem_common::ids::VcId::ZERO,
            payload: 0,
        };
        assert_eq!(Value::Flit(Some(f)).flit(), Some(f));
        assert_eq!(Value::Flit(None).flit(), None);
        assert_ne!(Value::Flit(Some(f)), Value::Flit(None));
        assert!(encode(Value::Flit(Some(f))) & 0x8000_0000_0000_0000 != 0);
    }
}
