//! # nocem-rtl — the "Verilog / ModelSim" baseline
//!
//! An event-driven RTL simulator running the same NoC platform as the
//! `nocem` emulation engine, reproducing the mechanism (and cost) of
//! HDL simulation for the paper's Table 2:
//!
//! * [`kernel`] — signals, nonblocking assignment, delta cycles,
//!   sensitivity lists, work counters and a VCD dump;
//! * [`model`] — the platform mapped onto the kernel: flit/credit
//!   wires per link, clocked processes per switch and network
//!   interface, monitor processes per receptor.
//!
//! Runs are cycle- and flit-identical to the fast engine (enforced by
//! tests); only the wall-clock cost differs, by the orders of
//! magnitude the paper reports between FPGA emulation and RTL
//! simulation.
//!
//! # Examples
//!
//! ```
//! use nocem::config::PaperConfig;
//! use nocem::compile::elaborate;
//! use nocem_rtl::model::RtlEngine;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = PaperConfig::new().total_packets(50).uniform();
//! let mut rtl = RtlEngine::new(elaborate(&cfg)?);
//! rtl.run()?;
//! assert_eq!(rtl.delivered(), 50);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernel;
pub mod model;

pub use kernel::{Kernel, KernelStats, Value};
pub use model::{RtlEngine, RtlSummary};
