//! RTL-style model of the emulation platform.
//!
//! The same elaborated components as the fast engine (`nocem`), but
//! wired at the signal level and scheduled by the event-driven
//! [`crate::kernel`]: every link is a flit wire plus a reverse credit
//! wire, every switch and network interface is a clocked process with
//! nonblocking outputs, and every receptor is a monitor process woken
//! by activity on its ejection wire.
//!
//! Because the processes wrap the *identical* component models and the
//! kernel's NBA semantics realize exactly the two-phase cycle contract
//! of `nocem-switch`, a run here is cycle- and flit-identical to the
//! fast engine — it just pays the per-signal event machinery that a
//! Verilog simulator pays, which is the point of the Table 2 baseline.

use crate::kernel::{Kernel, ProcessCtx, SignalId, Value};
use nocem::clock::{self, ClockMode, EngineSummary, SteppableEngine};
use nocem::compile::{Elaboration, ReceptorDevice};
use nocem::error::EmulationError;
use nocem::profile::{Phase, PhaseProfiler, PhaseReport};
use nocem_common::flit::PacketDescriptor;
use nocem_common::ids::{EndpointId, LinkId, PacketId, PortId, SwitchId, VcId};
use nocem_common::time::Cycle;
use nocem_stats::latency::LatencyAnalyzer;
use nocem_stats::ledger::PacketLedger;
use nocem_stats::receptor::CompletedPacket;
use nocem_switch::switch::Switch;
use nocem_telemetry::{Collector, CumulativeProbe};
use nocem_traffic::generator::{PacketRequest, TrafficGenerator};
use nocem_traffic::ni::SourceNi;
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

struct SharedState {
    switches: Vec<Switch>,
    nis: Vec<SourceNi>,
    tgs: Vec<Box<dyn TrafficGenerator + Send>>,
    receptors: Vec<ReceptorDevice>,
    generator_endpoints: Vec<EndpointId>,
    ledger: PacketLedger,
    next_packet: u64,
    /// Per-TG output register holding a request the source queue
    /// could not absorb yet (backpressure, identical to the fast
    /// engine's semantics).
    pending: Vec<Option<PacketRequest>>,
    stalled: u64,
    delivered_flits: u64,
    ni_done: Vec<bool>,
    error: Option<EmulationError>,
}

impl SharedState {
    fn deliver(&mut self, index: usize, flit: nocem_common::flit::Flit, now: Cycle) {
        let outcome: Result<Option<CompletedPacket>, EmulationError> =
            match &mut self.receptors[index] {
                ReceptorDevice::Stochastic(r) => {
                    r.accept(&flit, now)
                        .map_err(|source| EmulationError::Receive {
                            receptor: r.id(),
                            source,
                        })
                }
                ReceptorDevice::Trace(r) => {
                    r.accept(&flit, now)
                        .map_err(|source| EmulationError::Receive {
                            receptor: r.id(),
                            source,
                        })
                }
            };
        match outcome {
            Ok(Some(pkt)) => match self.ledger.deliver(pkt.id, now, pkt.len_flits) {
                Ok(lat) => {
                    self.delivered_flits += u64::from(pkt.len_flits);
                    if let ReceptorDevice::Trace(r) = &mut self.receptors[index] {
                        r.record_latency(lat.network, lat.total);
                    }
                }
                Err(e) => {
                    self.error.get_or_insert(EmulationError::Ledger(e));
                }
            },
            Ok(None) => {}
            Err(e) => {
                self.error.get_or_insert(e);
            }
        }
    }
}

/// End-of-run summary used by the Table 2 harness and the equivalence
/// tests.
#[derive(Debug, Clone)]
pub struct RtlSummary {
    /// Cycles simulated.
    pub cycles: u64,
    /// Cycles the fast-forward kernel jumped over (gated mode).
    pub cycles_skipped: u64,
    /// Packets released / injected / delivered.
    pub released: u64,
    /// Packets whose head entered the network.
    pub injected: u64,
    /// Packets fully delivered.
    pub delivered: u64,
    /// Flits delivered.
    pub delivered_flits: u64,
    /// Network latency statistics.
    pub network_latency: LatencyAnalyzer,
    /// Total latency statistics.
    pub total_latency: LatencyAnalyzer,
    /// Kernel work counters (the RTL cost).
    pub kernel: crate::kernel::KernelStats,
}

/// The RTL simulation engine.
pub struct RtlEngine {
    kernel: Kernel,
    shared: Rc<RefCell<SharedState>>,
    stop_packets: Option<u64>,
    cycle_limit: u64,
    clock_mode: ClockMode,
    cycles_skipped: u64,
    telemetry: Option<Collector>,
    /// Per switch, per output port: the link it drives (probe
    /// metadata, captured before the components move into processes).
    switch_out_links: Vec<Vec<LinkId>>,
    /// Per NI (generator order): its injection link.
    injection_links: Vec<LinkId>,
    /// Flit wires of every non-ejection link. A flit latched on such
    /// a wire was driven last cycle and is sampled into the
    /// downstream FIFO this cycle — the fast engine already counts it
    /// there, so the occupancy probe adds it. Ejection wires are
    /// excluded: their flits were delivered by the receptor monitor
    /// at drive time and never occupy a buffer.
    inflight_wires: Vec<SignalId>,
    link_count: usize,
    num_vcs: usize,
    /// Per-phase self-profiler, enabled by `PlatformConfig.profile`.
    /// The kernel cycle is opaque (processes interleave the platform
    /// phases), so it is charged to [`Phase::Processes`].
    profiler: Option<PhaseProfiler>,
}

impl std::fmt::Debug for RtlEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RtlEngine")
            .field("time", &self.kernel.time())
            .finish_non_exhaustive()
    }
}

impl RtlEngine {
    /// Builds the RTL model from an elaboration (consumes it; the
    /// components are moved into kernel processes).
    pub fn new(elab: Elaboration) -> Self {
        let mut kernel = Kernel::new();
        let topo = &elab.config.topology;
        let num_vcs = elab.config.switch.num_vcs as usize;

        // One flit wire per link and one reverse credit wire per
        // (link, VC): a pop from VC v downstream frees one slot of VC
        // v upstream.
        let flit_wires: Vec<SignalId> = (0..topo.link_count())
            .map(|l| kernel.signal(format!("flit_l{l}")))
            .collect();
        let credit_wires: Vec<Vec<SignalId>> = (0..topo.link_count())
            .map(|l| {
                (0..num_vcs)
                    .map(|v| kernel.signal(format!("credit_l{l}v{v}")))
                    .collect()
            })
            .collect();

        // Probe metadata, captured while the elaboration is whole.
        let switch_out_links: Vec<Vec<LinkId>> = (0..elab.switches.len())
            .map(|s| {
                let info = topo.switch(SwitchId::new(s as u32));
                (0..info.outputs)
                    .map(|p| topo.out_link(SwitchId::new(s as u32), PortId::new(p)))
                    .collect()
            })
            .collect();
        let injection_links: Vec<LinkId> =
            elab.wiring.injection.iter().map(|&(_, _, l)| l).collect();
        let mut is_ejection = vec![false; topo.link_count()];
        for link in &elab.wiring.ejection_link {
            is_ejection[link.index()] = true;
        }
        let inflight_wires: Vec<SignalId> = flit_wires
            .iter()
            .enumerate()
            .filter(|&(l, _)| !is_ejection[l])
            .map(|(_, &w)| w)
            .collect();
        let telemetry = elab
            .config
            .telemetry
            .as_ref()
            .map(|t| Collector::new(t, topo.link_count(), num_vcs));

        let shared = Rc::new(RefCell::new(SharedState {
            generator_endpoints: topo.generators(),
            switches: elab.switches,
            ni_done: vec![false; elab.nis.len()],
            pending: vec![None; elab.nis.len()],
            nis: elab.nis,
            tgs: elab.tgs,
            receptors: elab.receptors,
            ledger: PacketLedger::new(),
            next_packet: 0,
            stalled: 0,
            delivered_flits: 0,
            error: None,
        }));

        // Network-interface processes, in generator order (packet ids
        // must match the fast engine).
        for (i, &(_, _, link)) in elab.wiring.injection.iter().enumerate() {
            let out_wire = flit_wires[link.index()];
            // NIs inject on VC 0 only, so they watch that VC's credit.
            let credit_wire = credit_wires[link.index()][0];
            let sh = Rc::clone(&shared);
            kernel.clocked_process(move |ctx: &mut ProcessCtx<'_>| {
                let now = Cycle::new(ctx.time());
                let sh = &mut *sh.borrow_mut();
                if ctx.read(credit_wire).is_high() {
                    sh.nis[i].credit_return();
                }
                // Backpressure-aware release, identical to the fast
                // engine: a stalled request clock-gates the model.
                let req = match sh.pending[i].take() {
                    Some(req) if sh.nis[i].can_accept() => Some(req),
                    Some(req) => {
                        sh.pending[i] = Some(req);
                        sh.stalled += 1;
                        None
                    }
                    None => match sh.tgs[i].tick(now) {
                        Some(req) if sh.nis[i].can_accept() => Some(req),
                        Some(req) => {
                            sh.pending[i] = Some(req);
                            sh.stalled += 1;
                            None
                        }
                        None => None,
                    },
                };
                if let Some(req) = req {
                    let id = PacketId::new(sh.next_packet);
                    let desc = PacketDescriptor {
                        id,
                        src: sh.generator_endpoints[i],
                        dst: req.dst,
                        flow: req.flow,
                        len_flits: req.len_flits,
                        release: now,
                    };
                    let accepted = sh.nis[i].offer(desc);
                    debug_assert!(accepted, "capacity was checked before the offer");
                    sh.next_packet += 1;
                    if let Err(e) = sh.ledger.release(id, now, req.len_flits) {
                        sh.error.get_or_insert(EmulationError::Ledger(e));
                    }
                }
                let flit = sh.nis[i].tick_send();
                if let Some(f) = flit {
                    if f.kind.is_head() {
                        if let Err(e) = sh.ledger.inject(f.packet, now) {
                            sh.error.get_or_insert(EmulationError::Ledger(e));
                        }
                    }
                }
                sh.ni_done[i] =
                    sh.tgs[i].is_exhausted() && sh.pending[i].is_none() && sh.nis[i].is_idle();
                ctx.write(out_wire, Value::Flit(flit));
            });
        }

        // Switch processes, in switch order.
        for s in 0..shared.borrow().switches.len() {
            let info = topo.switch(SwitchId::new(s as u32));
            let in_wires: Vec<SignalId> = (0..info.inputs)
                .map(|p| flit_wires[elab.wiring.in_link[s][p as usize].index()])
                .collect();
            let in_credit_wires: Vec<Vec<SignalId>> = (0..info.inputs)
                .map(|p| credit_wires[elab.wiring.in_link[s][p as usize].index()].clone())
                .collect();
            let out_links: Vec<usize> = (0..info.outputs)
                .map(|p| {
                    topo.out_link(SwitchId::new(s as u32), nocem_common::ids::PortId::new(p))
                        .index()
                })
                .collect();
            let out_wires: Vec<SignalId> = out_links.iter().map(|&l| flit_wires[l]).collect();
            let out_credit_wires: Vec<Vec<SignalId>> =
                out_links.iter().map(|&l| credit_wires[l].clone()).collect();
            let sh = Rc::clone(&shared);
            kernel.clocked_process(move |ctx: &mut ProcessCtx<'_>| {
                let sh = &mut *sh.borrow_mut();
                let sw = &mut sh.switches[s];
                // Sample arriving flits (sent last cycle).
                for (p, w) in in_wires.iter().enumerate() {
                    if let Some(f) = ctx.read(*w).flit() {
                        if let Err(source) = sw.accept(nocem_common::ids::PortId::new(p as u8), f) {
                            sh.error.get_or_insert(EmulationError::FifoOverflow {
                                switch: SwitchId::new(s as u32),
                                source,
                            });
                            return;
                        }
                    }
                }
                // Sample returned credits, per output VC.
                for (o, per_vc) in out_credit_wires.iter().enumerate() {
                    for (v, w) in per_vc.iter().enumerate() {
                        if ctx.read(*w).is_high() {
                            sw.credit_return(
                                nocem_common::ids::PortId::new(o as u8),
                                nocem_common::ids::VcId::new(v as u8),
                            );
                        }
                    }
                }
                sw.decide();
                let sends = sw.commit_sends();
                let mut out_flit: Vec<Option<nocem_common::flit::Flit>> =
                    vec![None; out_wires.len()];
                // At most one flit pops per input port per cycle; the
                // credit travels back on that flit's input VC.
                let mut popped: Vec<Option<u8>> = vec![None; in_wires.len()];
                for t in sends {
                    out_flit[t.output.index()] = Some(t.flit);
                    popped[t.input.index()] = Some(t.input_vc.raw());
                }
                for (o, w) in out_wires.iter().enumerate() {
                    ctx.write(*w, Value::Flit(out_flit[o]));
                }
                for (p, per_vc) in in_credit_wires.iter().enumerate() {
                    for (v, w) in per_vc.iter().enumerate() {
                        ctx.write(
                            *w,
                            if popped[p] == Some(v as u8) {
                                Value::High
                            } else {
                                Value::Low
                            },
                        );
                    }
                }
            });
        }

        // Receptor monitors, sensitive to their ejection wires.
        for (idx, link) in elab.wiring.ejection_link.iter().enumerate() {
            let wire = flit_wires[link.index()];
            let sh = Rc::clone(&shared);
            kernel.reactive_process(&[wire], move |ctx: &mut ProcessCtx<'_>| {
                if let Some(f) = ctx.read(wire).flit() {
                    sh.borrow_mut().deliver(idx, f, Cycle::new(ctx.time()));
                }
            });
        }

        let profiler = elab.config.profile.map(|_| {
            let mut p = PhaseProfiler::new();
            p.add_ns(Phase::Elaborate, elab.elaborate_ns);
            p
        });

        RtlEngine {
            kernel,
            shared,
            stop_packets: elab.config.stop.delivered_packets,
            cycle_limit: elab.config.stop.cycle_limit,
            clock_mode: elab.config.clock_mode,
            cycles_skipped: 0,
            telemetry,
            switch_out_links,
            injection_links,
            inflight_wires,
            link_count: elab.config.topology.link_count(),
            num_vcs,
            profiler,
        }
    }

    /// Closes the lap started at `*t`, charging it to `phase`, and
    /// restarts the chain. No-op when profiling is off.
    fn lap(&mut self, t: &mut Option<Instant>, phase: Phase) {
        if let (Some(prev), Some(p)) = (t.as_mut(), self.profiler.as_mut()) {
            *prev = p.lap(*prev, phase);
        }
    }

    /// Cumulative counters at the current instant, shaped exactly
    /// like the fast engine's probe: per-link lifetime blocked /
    /// forwarded (source-side accounting) plus live per-VC occupancy
    /// with in-flight wire flits compensated (see `inflight_wires`).
    fn cumulative_probe(&self) -> CumulativeProbe {
        let sh = self.shared.borrow();
        let mut p = CumulativeProbe::new(self.link_count, self.num_vcs);
        for (s, sw) in sh.switches.iter().enumerate() {
            let c = sw.counters();
            for (o, &link) in self.switch_out_links[s].iter().enumerate() {
                p.add_link(
                    link,
                    c.blocked_cycles_per_output[o],
                    c.forwarded_per_output[o],
                );
            }
            for v in 0..self.num_vcs {
                p.add_vc(v, sw.occupancy_of_vc(VcId::new(v as u8)));
            }
        }
        for (i, ni) in sh.nis.iter().enumerate() {
            let c = ni.counters();
            p.add_link(self.injection_links[i], c.blocked_cycles, c.injected_flits);
        }
        for &wire in &self.inflight_wires {
            if let Some(f) = self.kernel.value(wire).flit() {
                p.add_vc(f.vc.index(), 1);
            }
        }
        p
    }

    /// The windowed telemetry collector, when enabled.
    pub fn telemetry(&self) -> Option<&Collector> {
        self.telemetry.as_ref()
    }

    /// Seals the collector, flushing the trailing partial window.
    pub fn seal_telemetry(&mut self) {
        if self.telemetry.as_ref().is_some_and(|t| !t.is_sealed()) {
            let probe = self.cumulative_probe();
            let at = self.kernel.time();
            self.telemetry
                .as_mut()
                .expect("presence checked above")
                .seal(at, &probe);
        }
    }

    fn finished(&self) -> bool {
        let sh = self.shared.borrow();
        match self.stop_packets {
            Some(target) => sh.ledger.delivered() >= target,
            None => sh.ni_done.iter().all(|&d| d) && sh.ledger.in_flight() == 0,
        }
    }

    /// Hybrid clock gating: when every component is quiescent, jump
    /// the kernel's time to the earliest future TG event without
    /// activating a single process. Component quiescence implies every
    /// wire already carries its idle value (a flit on a wire is an
    /// undelivered packet; a high credit wire is a credit not yet
    /// home), so no event would have been dispatched in the skipped
    /// window anyway.
    fn try_fast_forward(&mut self) {
        let now = Cycle::new(self.kernel.time());
        let mut sh = self.shared.borrow_mut();
        let quiescent =
            clock::platform_quiescent(&sh.switches, &sh.nis, &sh.pending, sh.ledger.in_flight());
        if !quiescent {
            return;
        }
        let skipped = clock::fast_forward(now, self.cycle_limit, &mut sh.tgs);
        drop(sh);
        self.kernel.advance_time(skipped);
        self.cycles_skipped += skipped;
    }

    /// Runs to the stop condition.
    ///
    /// # Errors
    ///
    /// Propagates protocol violations detected by the processes and
    /// the cycle limit.
    pub fn run(&mut self) -> Result<(), EmulationError> {
        clock::run_engine(self)
    }

    /// Advances one cycle regardless of the stop condition (plus any
    /// preceding fast-forward jump in gated mode; used directly by the
    /// speed-measurement harness).
    ///
    /// # Errors
    ///
    /// Propagates protocol violations detected by the processes and
    /// the cycle limit.
    pub fn step(&mut self) -> Result<(), EmulationError> {
        let mut t = self.profiler.as_mut().map(PhaseProfiler::begin_step);
        if self.clock_mode == ClockMode::Gated {
            self.try_fast_forward();
        }
        self.lap(&mut t, Phase::FastForward);
        // Probe after any fast-forward, before executing the cycle:
        // the counters then cover exactly [0, now), matching every
        // other engine's probe point.
        if self
            .telemetry
            .as_ref()
            .is_some_and(|t| t.needs_probe(self.kernel.time()))
        {
            let probe = self.cumulative_probe();
            let at = self.kernel.time();
            self.telemetry
                .as_mut()
                .expect("presence checked above")
                .record(at, &probe);
        }
        self.lap(&mut t, Phase::Probe);
        let cycled = self.kernel.cycle();
        self.lap(&mut t, Phase::Processes);
        cycled.map_err(|e| {
            EmulationError::Bus(nocem_platform::bus::BusError::InvalidValue {
                addr: nocem_platform::addr::Address::from_parts(
                    nocem_common::ids::BusId::new(0),
                    nocem_common::ids::DeviceId::new(0),
                    0,
                ),
                reason: e.to_string(),
            })
        })?;
        if let Some(e) = self.shared.borrow().error.clone() {
            return Err(e);
        }
        if self.kernel.time() > self.cycle_limit {
            return Err(EmulationError::CycleLimitExceeded {
                limit: self.cycle_limit,
                delivered: self.shared.borrow().ledger.delivered(),
            });
        }
        Ok(())
    }

    /// Cycles simulated so far.
    pub fn cycles(&self) -> u64 {
        self.kernel.time()
    }

    /// Packets delivered so far.
    pub fn delivered(&self) -> u64 {
        self.shared.borrow().ledger.delivered()
    }

    /// Enables VCD recording on the underlying kernel.
    pub fn enable_vcd(&mut self) {
        self.kernel.enable_vcd();
    }

    /// The VCD document, if recording was enabled.
    pub fn vcd_output(&self) -> Option<String> {
        self.kernel.vcd_output()
    }

    /// Snapshots the run summary.
    pub fn summary(&self) -> RtlSummary {
        let sh = self.shared.borrow();
        RtlSummary {
            cycles: self.kernel.time(),
            cycles_skipped: self.cycles_skipped,
            released: sh.ledger.released(),
            injected: sh.ledger.injected(),
            delivered: sh.ledger.delivered(),
            delivered_flits: sh.delivered_flits,
            network_latency: sh.ledger.network_latency().clone(),
            total_latency: sh.ledger.total_latency().clone(),
            kernel: self.kernel.stats(),
        }
    }
}

impl SteppableEngine for RtlEngine {
    fn step(&mut self) -> Result<(), EmulationError> {
        RtlEngine::step(self)
    }

    fn now(&self) -> Cycle {
        Cycle::new(self.kernel.time())
    }

    fn finished(&self) -> bool {
        RtlEngine::finished(self)
    }

    fn delivered(&self) -> u64 {
        RtlEngine::delivered(self)
    }

    fn cycles_skipped(&self) -> u64 {
        self.cycles_skipped
    }

    fn summary(&self) -> EngineSummary {
        let sh = self.shared.borrow();
        EngineSummary::from_ledger(
            self.kernel.time(),
            self.cycles_skipped,
            sh.delivered_flits,
            &sh.ledger,
        )
    }

    fn packet_ledger(&self) -> nocem_stats::ledger::PacketLedger {
        self.shared.borrow().ledger.clone()
    }

    fn telemetry(&self) -> Option<&Collector> {
        RtlEngine::telemetry(self)
    }

    fn seal_telemetry(&mut self) {
        RtlEngine::seal_telemetry(self);
    }

    fn profile(&mut self) -> Option<PhaseReport> {
        Some(self.profiler.as_ref()?.report("rtl".to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocem::compile::elaborate;
    use nocem::config::PaperConfig;

    fn rtl_run(packets: u64) -> RtlSummary {
        let cfg = PaperConfig::new().total_packets(packets).uniform();
        let mut engine = RtlEngine::new(elaborate(&cfg).unwrap());
        engine.run().unwrap();
        engine.summary()
    }

    #[test]
    fn rtl_delivers_all_packets() {
        let s = rtl_run(150);
        assert_eq!(s.delivered, 150);
        assert!(s.cycles > 0);
        assert!(s.kernel.signal_events > 0);
        assert!(
            s.kernel.activations > s.cycles,
            "many activations per cycle"
        );
    }

    #[test]
    fn rtl_matches_fast_engine_exactly() {
        let cfg = PaperConfig::new().total_packets(300).burst(8);
        // Fast engine.
        let mut emu = nocem::engine::build(&cfg).unwrap();
        emu.run().unwrap();
        // RTL engine on a fresh elaboration of the same config.
        let mut rtl = RtlEngine::new(elaborate(&cfg).unwrap());
        rtl.run().unwrap();
        let s = rtl.summary();
        assert_eq!(s.cycles, emu.now().raw(), "cycle-exact run length");
        assert_eq!(s.delivered, emu.delivered());
        assert_eq!(
            s.network_latency.sum(),
            emu.ledger().network_latency().sum(),
            "identical per-packet network latencies"
        );
        assert_eq!(
            s.total_latency.sum(),
            emu.ledger().total_latency().sum(),
            "identical per-packet total latencies"
        );
        assert_eq!(
            s.network_latency.max(),
            emu.ledger().network_latency().max()
        );
    }

    #[test]
    fn rtl_telemetry_matches_fast_engine_exactly() {
        let cfg = PaperConfig::new()
            .total_packets(200)
            .burst(8)
            .with_telemetry(Some(nocem_telemetry::TelemetryConfig::windowed(64)));
        let mut emu = nocem::engine::build(&cfg).unwrap();
        emu.run().unwrap();
        emu.seal_telemetry();
        let mut rtl = RtlEngine::new(elaborate(&cfg).unwrap());
        rtl.run().unwrap();
        RtlEngine::seal_telemetry(&mut rtl);
        let fast = emu.telemetry().unwrap();
        let ours = RtlEngine::telemetry(&rtl).unwrap();
        assert!(fast.windows_recorded() > 0, "run long enough to window");
        assert_eq!(
            ours, fast,
            "windowed series (incl. live occupancy) are engine-invariant"
        );
    }

    #[test]
    fn rtl_vcd_capture_works() {
        let cfg = PaperConfig::new().total_packets(10).uniform();
        let mut engine = RtlEngine::new(elaborate(&cfg).unwrap());
        engine.enable_vcd();
        engine.run().unwrap();
        let vcd = engine.vcd_output().unwrap();
        assert!(vcd.contains("$enddefinitions"));
        assert!(vcd.contains("flit_l"));
    }

    #[test]
    fn rtl_drain_mode_terminates() {
        let mut cfg = PaperConfig::new().total_packets(60).uniform();
        cfg.stop.delivered_packets = None;
        let mut engine = RtlEngine::new(elaborate(&cfg).unwrap());
        engine.run().unwrap();
        assert_eq!(engine.delivered(), 60);
    }

    #[test]
    fn rtl_cycle_limit_enforced() {
        let mut cfg = PaperConfig::new().total_packets(1_000_000).uniform();
        cfg.stop.cycle_limit = 200;
        let mut engine = RtlEngine::new(elaborate(&cfg).unwrap());
        assert!(matches!(
            engine.run(),
            Err(EmulationError::CycleLimitExceeded { .. })
        ));
    }
}
