//! Application core-graph workloads.
//!
//! A [`CoreGraph`] is the classic NoC-benchmark IR: named cores plus
//! directed flows annotated with bandwidth (MB/s). Two bundled graphs
//! model the canonical MPEG-4 decoder and VOPD (Video Object Plane
//! Decoder) benchmarks — the pair virtually every bandwidth-aware NoC
//! mapping paper evaluates (bandwidth figures after Bertozzi et al.
//! and Murali & De Micheli, DATE 2004; approximate by design).
//!
//! [`map_greedy`] places cores onto a topology's switches with a
//! greedy bandwidth-aware heuristic: cores are placed in decreasing
//! order of attached bandwidth; the heaviest core takes the most
//! central switch, and every following core takes the free switch
//! minimizing the bandwidth-weighted hop distance to its already
//! placed neighbors. [`CoreGraphWorkload`] then lowers graph +
//! mapping into flows, per-generator weighted destination models and
//! per-generator offered loads, ready for `nocem::PlatformConfig`.

use crate::ScenarioError;
use nocem::config::{PlatformConfig, StopCondition, SwitchSettings, TrafficModel};
use nocem_common::ids::{EndpointId, FlowId, SwitchId};
use nocem_stats::TrKind;
use nocem_topology::routing::FlowSpec;
use nocem_topology::Topology;
use nocem_traffic::generator::DestinationModel;
use nocem_traffic::stochastic::UniformConfig;
use nocem_traffic::LengthModel;

/// One directed core-to-core flow with its bandwidth demand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreFlow {
    /// Producing core (index into [`CoreGraph::cores`]).
    pub src: usize,
    /// Consuming core (index into [`CoreGraph::cores`]).
    pub dst: usize,
    /// Bandwidth demand in MB/s (relative weights are what matters).
    pub bandwidth: f64,
}

/// A bandwidth-annotated application task graph.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreGraph {
    /// Benchmark name (`mpeg4`, `vopd`, …).
    pub name: String,
    /// Core names, indexed by the flow endpoints.
    pub cores: Vec<String>,
    /// Directed bandwidth-annotated flows.
    pub flows: Vec<CoreFlow>,
}

impl CoreGraph {
    /// Validates indices and bandwidths.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::MalformedGraph`] for dangling core
    /// indices, self-loops, non-positive bandwidths or an empty graph.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        let fail = |reason: String| {
            Err(ScenarioError::MalformedGraph {
                graph: self.name.clone(),
                reason,
            })
        };
        if self.cores.is_empty() {
            return fail("graph has no cores".into());
        }
        if self.flows.is_empty() {
            return fail("graph has no flows".into());
        }
        for (i, f) in self.flows.iter().enumerate() {
            if f.src >= self.cores.len() || f.dst >= self.cores.len() {
                return fail(format!("flow {i} references a core out of range"));
            }
            if f.src == f.dst {
                return fail(format!("flow {i} is a self-loop on core {}", f.src));
            }
            if f.bandwidth <= 0.0 || f.bandwidth.is_nan() {
                return fail(format!("flow {i} has non-positive bandwidth"));
            }
        }
        Ok(())
    }

    /// Total bandwidth attached to each core (in + out), the placement
    /// priority of the greedy mapper.
    pub fn attached_bandwidth(&self) -> Vec<f64> {
        let mut bw = vec![0.0; self.cores.len()];
        for f in &self.flows {
            bw[f.src] += f.bandwidth;
            bw[f.dst] += f.bandwidth;
        }
        bw
    }

    /// Outgoing bandwidth of each core (drives per-TG offered load).
    pub fn outgoing_bandwidth(&self) -> Vec<f64> {
        let mut bw = vec![0.0; self.cores.len()];
        for f in &self.flows {
            bw[f.src] += f.bandwidth;
        }
        bw
    }
}

/// Core-graph workload modeled on the classic 12-core MPEG-4 decoder
/// benchmark: an SDRAM-centred star of decoder stages plus the
/// up-sampling / BAB calculation side path.
pub fn mpeg4_decoder() -> CoreGraph {
    let cores = [
        "vu", "au", "med_cpu", "sdram", "sram1", "sram2", "rast", "idct", "adsp", "up_samp", "bab",
        "risc",
    ];
    let flows = [
        (0, 3, 190.0),  // vu -> sdram
        (3, 0, 60.0),   // sdram -> vu
        (1, 3, 0.5),    // au -> sdram
        (3, 1, 0.5),    // sdram -> au
        (2, 3, 600.0),  // med_cpu -> sdram
        (3, 2, 40.0),   // sdram -> med_cpu
        (6, 3, 640.0),  // rast -> sdram
        (3, 4, 32.0),   // sdram -> sram1
        (4, 7, 32.0),   // sram1 -> idct
        (7, 5, 250.0),  // idct -> sram2
        (5, 3, 173.0),  // sram2 -> sdram
        (8, 3, 0.5),    // adsp -> sdram
        (3, 9, 910.0),  // sdram -> up_samp
        (9, 10, 500.0), // up_samp -> bab
        (10, 3, 32.0),  // bab -> sdram
        (11, 3, 250.0), // risc -> sdram
        (3, 11, 250.0), // sdram -> risc
    ];
    CoreGraph {
        name: "mpeg4".into(),
        cores: cores.iter().map(|&c| c.to_owned()).collect(),
        flows: flows
            .iter()
            .map(|&(src, dst, bandwidth)| CoreFlow {
                src,
                dst,
                bandwidth,
            })
            .collect(),
    }
}

/// Core-graph workload modeled on the classic 16-core VOPD (Video
/// Object Plane Decoder) benchmark: the deep decoding pipeline with
/// its stripe-memory and reference-memory side channels.
pub fn vopd() -> CoreGraph {
    let cores = [
        "vld",
        "run_le_dec",
        "inv_scan",
        "acdc_pred",
        "stripe_mem",
        "iquant",
        "idct",
        "up_samp",
        "vop_rec",
        "pad",
        "vop_mem",
        "arm",
        "ref_mem",
        "smooth",
        "down_samp",
        "demux",
    ];
    let flows = [
        (15, 0, 70.0),   // demux -> vld
        (0, 1, 70.0),    // vld -> run_le_dec
        (1, 2, 362.0),   // run_le_dec -> inv_scan
        (2, 3, 362.0),   // inv_scan -> acdc_pred
        (3, 4, 49.0),    // acdc_pred -> stripe_mem
        (4, 3, 27.0),    // stripe_mem -> acdc_pred
        (3, 5, 362.0),   // acdc_pred -> iquant
        (5, 6, 357.0),   // iquant -> idct
        (6, 7, 353.0),   // idct -> up_samp
        (7, 8, 300.0),   // up_samp -> vop_rec
        (8, 9, 313.0),   // vop_rec -> pad
        (9, 10, 313.0),  // pad -> vop_mem
        (10, 9, 94.0),   // vop_mem -> pad (reference read-back)
        (11, 10, 16.0),  // arm -> vop_mem
        (10, 11, 16.0),  // vop_mem -> arm
        (12, 8, 94.0),   // ref_mem -> vop_rec
        (8, 12, 94.0),   // vop_rec -> ref_mem
        (13, 12, 49.0),  // smooth -> ref_mem
        (14, 13, 313.0), // down_samp -> smooth
        (10, 14, 300.0), // vop_mem -> down_samp
    ];
    CoreGraph {
        name: "vopd".into(),
        cores: cores.iter().map(|&c| c.to_owned()).collect(),
        flows: flows
            .iter()
            .map(|&(src, dst, bandwidth)| CoreFlow {
                src,
                dst,
                bandwidth,
            })
            .collect(),
    }
}

/// A placement of cores onto switches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mapping {
    /// `core index -> switch` (parallel to [`CoreGraph::cores`]).
    pub core_to_switch: Vec<SwitchId>,
}

impl Mapping {
    /// The switch hosting `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn switch_of(&self, core: usize) -> SwitchId {
        self.core_to_switch[core]
    }

    /// Total bandwidth-weighted hop count of the mapping — the
    /// objective the greedy mapper minimizes; exposed so tests and
    /// reports can compare placements.
    pub fn weighted_hops(&self, graph: &CoreGraph, topo: &Topology) -> f64 {
        let mut cost = 0.0;
        for f in &graph.flows {
            let dst = self.core_to_switch[f.dst];
            let dist = topo.distances_to(dst);
            let d = dist[self.core_to_switch[f.src].index()];
            assert!(d != usize::MAX, "mapped cores must be connected");
            cost += f.bandwidth * d as f64;
        }
        cost
    }
}

/// Greedy bandwidth-aware placement of `graph` onto `topo`.
///
/// Cores are placed in decreasing order of attached bandwidth. The
/// first core takes the most central switch
/// (grid center on meshes/tori); each following core takes the free
/// switch minimizing the bandwidth-weighted distance to its already
/// placed neighbors, falling back to centrality when it has none.
///
/// # Errors
///
/// Returns [`ScenarioError::Mapping`] if the graph needs more cores
/// than the topology has switches or the topology lacks a TG/TR pair
/// on some switch, and [`ScenarioError::MalformedGraph`] if the graph
/// fails validation.
pub fn map_greedy(graph: &CoreGraph, topo: &Topology) -> Result<Mapping, ScenarioError> {
    graph.validate()?;
    let n_cores = graph.cores.len();
    if n_cores > topo.switch_count() {
        return Err(ScenarioError::Mapping {
            graph: graph.name.clone(),
            reason: format!(
                "{n_cores} cores need {n_cores} switches, topology {} has {}",
                topo.name(),
                topo.switch_count()
            ),
        });
    }
    if !topo.has_endpoint_pair_per_switch() {
        return Err(ScenarioError::Mapping {
            graph: graph.name.clone(),
            reason: "every switch needs one TG and one TR".into(),
        });
    }

    // Placement order: attached bandwidth, heaviest first (ties by
    // core index for determinism).
    let attached = graph.attached_bandwidth();
    let mut order: Vec<usize> = (0..n_cores).collect();
    order.sort_by(|&a, &b| {
        attached[b]
            .partial_cmp(&attached[a])
            .expect("bandwidths are finite")
            .then(a.cmp(&b))
    });

    // Free switches, most central first.
    let central = crate::switches_center_out(topo);
    let mut free: Vec<SwitchId> = central;
    let mut placement: Vec<Option<SwitchId>> = vec![None; n_cores];

    for &core in &order {
        // Bandwidth to already placed neighbors.
        let mut placed_neighbors: Vec<(SwitchId, f64)> = Vec::new();
        for f in &graph.flows {
            let (other, bw) = if f.src == core {
                (f.dst, f.bandwidth)
            } else if f.dst == core {
                (f.src, f.bandwidth)
            } else {
                continue;
            };
            if let Some(s) = placement[other] {
                placed_neighbors.push((s, bw));
            }
        }
        let choice = if placed_neighbors.is_empty() {
            // No placed neighbors yet: take the most central free
            // switch (`free` is ordered center-out).
            free[0]
        } else {
            // Free switch minimizing bandwidth-weighted hop distance;
            // `free`'s center-out order breaks ties.
            let mut best = free[0];
            let mut best_cost = f64::INFINITY;
            // Distance maps are per placed neighbor, not per
            // candidate, keeping this O(neighbors × V + free).
            let dists: Vec<(Vec<usize>, f64)> = placed_neighbors
                .iter()
                .map(|&(s, bw)| (topo.distances_to(s), bw))
                .collect();
            for &cand in &free {
                let mut cost = 0.0;
                for (dist, bw) in &dists {
                    let d = dist[cand.index()];
                    if d == usize::MAX {
                        cost = f64::INFINITY;
                        break;
                    }
                    cost += bw * d as f64;
                }
                if cost < best_cost {
                    best_cost = cost;
                    best = cand;
                }
            }
            best
        };
        placement[core] = Some(choice);
        free.retain(|&s| s != choice);
    }

    Ok(Mapping {
        core_to_switch: placement
            .into_iter()
            .map(|p| p.expect("every core placed"))
            .collect(),
    })
}

/// A core graph lowered onto a topology: flows, destination models
/// and offered loads, ready to become a `PlatformConfig`.
#[derive(Debug, Clone)]
pub struct CoreGraphWorkload {
    /// The application graph.
    pub graph: CoreGraph,
    /// Where each core sits.
    pub mapping: Mapping,
    /// NoC flows, densely numbered: one per core-graph flow, plus one
    /// self-flow per idle generator (cores without outgoing traffic
    /// and unoccupied switches park on a zero-budget self-flow).
    pub flows: Vec<FlowSpec>,
    /// Destination model per generator, `generators()` order.
    pub destinations: Vec<DestinationModel>,
    /// Offered load per generator, `generators()` order (zero for
    /// idle generators).
    pub loads: Vec<f64>,
    /// The peak per-TG offered load the workload was derived with
    /// (the heaviest core's TG offers exactly this).
    pub peak_load: f64,
}

impl CoreGraphWorkload {
    /// Maps `graph` onto `topo` and derives traffic: each core's TG
    /// offers `peak_load × (outgoing bandwidth / max outgoing
    /// bandwidth)` and distributes destinations proportionally to
    /// per-flow bandwidth.
    ///
    /// # Errors
    ///
    /// Propagates [`map_greedy`] errors.
    ///
    /// # Panics
    ///
    /// Panics if `peak_load` is outside `(0, 1)`.
    pub fn new(graph: CoreGraph, topo: &Topology, peak_load: f64) -> Result<Self, ScenarioError> {
        assert!(
            peak_load > 0.0 && peak_load < 1.0,
            "peak load must be in (0, 1)"
        );
        let mapping = map_greedy(&graph, topo)?;
        let out_bw = graph.outgoing_bandwidth();
        let max_out = out_bw.iter().cloned().fold(0.0, f64::max);
        // validate() guarantees at least one positive-bandwidth flow.
        assert!(max_out > 0.0, "validated graph has outgoing bandwidth");

        let mut flows: Vec<FlowSpec> = Vec::new();
        let flow_of = |src_tg: EndpointId, dst_tr: EndpointId, flows: &mut Vec<FlowSpec>| {
            if let Some(f) = flows.iter().find(|f| f.src == src_tg && f.dst == dst_tr) {
                return f.flow;
            }
            let flow = FlowId::new(flows.len() as u32);
            flows.push(FlowSpec {
                flow,
                src: src_tg,
                dst: dst_tr,
            });
            flow
        };

        // Weighted destination options per switch hosting a core with
        // outgoing traffic.
        let mut options_per_switch: Vec<Vec<(EndpointId, FlowId, u32)>> =
            vec![Vec::new(); topo.switch_count()];
        for f in &graph.flows {
            let src_switch = mapping.switch_of(f.src);
            let dst_switch = mapping.switch_of(f.dst);
            let src_tg = topo.generator_at(src_switch).expect("checked");
            let dst_tr = topo.receptor_at(dst_switch).expect("checked");
            let flow = flow_of(src_tg, dst_tr, &mut flows);
            // Scale relative bandwidth into integer weights; every
            // flow keeps at least weight 1.
            let weight = ((f.bandwidth / max_out) * 1_000.0).round().max(1.0) as u32;
            options_per_switch[src_switch.index()].push((dst_tr, flow, weight));
        }

        let generators = topo.generators();
        let mut destinations = Vec::with_capacity(generators.len());
        let mut loads = Vec::with_capacity(generators.len());
        for &g in &generators {
            let s = topo.endpoint(g).switch;
            let options = &options_per_switch[s.index()];
            if options.is_empty() {
                // Idle generator (core without outgoing traffic, or
                // unoccupied switch): parked on a zero-budget
                // self-flow so elaboration still sees a routable
                // destination.
                let self_tr = topo.receptor_at(s).expect("checked");
                let flow = flow_of(g, self_tr, &mut flows);
                destinations.push(DestinationModel::Fixed { dst: self_tr, flow });
                loads.push(0.0);
            } else {
                destinations.push(DestinationModel::Weighted(options.clone()));
                let core = mapping
                    .core_to_switch
                    .iter()
                    .position(|&cs| cs == s)
                    .expect("switch with options hosts a core");
                loads.push(peak_load * out_bw[core] / max_out);
            }
        }

        Ok(CoreGraphWorkload {
            graph,
            mapping,
            flows,
            destinations,
            loads,
            peak_load,
        })
    }

    /// Canonical label, e.g. `vopd@mesh4x4@0.3` (same shape as
    /// [`crate::scenario::ScenarioSpec::label`]; the load is the
    /// workload's peak load, in `f64`'s exact representation).
    pub fn label(&self, topo: &Topology) -> String {
        format!("{}@{}@{}", self.graph.name, topo.name(), self.peak_load)
    }

    /// Lowers the workload into a runnable configuration.
    ///
    /// `total_packets` is split over the active generators
    /// proportionally to their offered load, and the run stops once
    /// all of them are delivered.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::BudgetTooSmall`] if `total_packets`
    /// is lower than the number of active generators (every active
    /// generator needs at least one packet).
    ///
    /// # Panics
    ///
    /// Panics if `packet_flits == 0` or `total_packets == 0`.
    pub fn build_config(
        &self,
        topo: &Topology,
        packet_flits: u16,
        total_packets: u64,
    ) -> Result<PlatformConfig, ScenarioError> {
        assert!(packet_flits >= 1, "packets need at least one flit");
        assert!(total_packets >= 1, "need at least one packet");
        let total_load: f64 = self.loads.iter().sum();
        let active = self.loads.iter().filter(|&&l| l > 0.0).count() as u64;
        if total_packets < active {
            return Err(ScenarioError::BudgetTooSmall {
                scenario: self.graph.name.clone(),
                needed: active,
                available: total_packets,
            });
        }

        // Budgets proportional to load, with a floor of one packet
        // per active generator; the heaviest generator absorbs the
        // rounding remainder.
        let mut budgets: Vec<u64> = self
            .loads
            .iter()
            .map(|&l| {
                if l > 0.0 {
                    ((total_packets as f64) * l / total_load).floor().max(1.0) as u64
                } else {
                    0
                }
            })
            .collect();
        let assigned: u64 = budgets.iter().sum();
        let heaviest = self
            .loads
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite loads"))
            .map(|(i, _)| i)
            .expect("at least one generator");
        if assigned < total_packets {
            budgets[heaviest] += total_packets - assigned;
        } else {
            // Flooring can only overshoot through the one-packet
            // floors; shave the remainder off the heaviest budget.
            budgets[heaviest] -= (assigned - total_packets).min(budgets[heaviest] - 1);
        }
        let delivered: u64 = budgets.iter().sum();

        let name = self.label(topo);
        let seed = crate::scenario::scenario_seed(&name);
        let generators: Vec<TrafficModel> = self
            .destinations
            .iter()
            .zip(&self.loads)
            .zip(&budgets)
            .map(|((dst, &load), &budget)| {
                if load > 0.0 {
                    TrafficModel::Uniform(UniformConfig::with_load(
                        load,
                        packet_flits,
                        Some(budget),
                        dst.clone(),
                    ))
                } else {
                    // Idle generator: zero budget, releases nothing.
                    TrafficModel::Uniform(UniformConfig {
                        length: LengthModel::Fixed(packet_flits),
                        gap: (0, 0),
                        budget: Some(0),
                        destination: dst.clone(),
                    })
                }
            })
            .collect();
        let routing = crate::scenario::scenario_routing(topo, &self.flows);
        Ok(PlatformConfig {
            name,
            topology: topo.clone(),
            flows: self.flows.clone(),
            routing: routing.routing,
            vc_policy: routing.vc_policy,
            switch: SwitchSettings {
                num_vcs: routing.num_vcs,
                ..SwitchSettings::default()
            },
            generators,
            receptors: vec![TrKind::Stochastic; topo.receptors().len()],
            source_queue_capacity: 16,
            stop: StopCondition {
                delivered_packets: Some(delivered),
                ..StopCondition::default()
            },
            seed,
            record_trace: false,
            clock_mode: nocem::ClockMode::default(),
            engine: nocem::config::EngineKind::default(),
            telemetry: None,
            profile: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocem_topology::builders::mesh;

    #[test]
    fn bundled_graphs_validate() {
        for g in [mpeg4_decoder(), vopd()] {
            g.validate().unwrap();
            assert!(g.cores.len() >= 12);
            assert!(g.flows.len() >= 15);
        }
        assert_eq!(vopd().cores.len(), 16);
        assert_eq!(mpeg4_decoder().cores.len(), 12);
    }

    #[test]
    fn malformed_graphs_are_rejected() {
        let mut g = mpeg4_decoder();
        g.flows.push(CoreFlow {
            src: 0,
            dst: 99,
            bandwidth: 1.0,
        });
        assert!(matches!(
            g.validate(),
            Err(ScenarioError::MalformedGraph { .. })
        ));
        let mut g = vopd();
        g.flows[0].bandwidth = 0.0;
        assert!(g.validate().is_err());
        let mut g = vopd();
        g.flows[0].src = g.flows[0].dst;
        assert!(g.validate().is_err());
    }

    #[test]
    fn mapper_places_all_cores_on_distinct_switches() {
        let topo = mesh(4, 4).unwrap();
        for g in [mpeg4_decoder(), vopd()] {
            let m = map_greedy(&g, &topo).unwrap();
            assert_eq!(m.core_to_switch.len(), g.cores.len());
            let unique: std::collections::BTreeSet<_> = m.core_to_switch.iter().collect();
            assert_eq!(unique.len(), g.cores.len(), "{}: switch reused", g.name);
        }
    }

    #[test]
    fn mapper_beats_worst_case_placement() {
        // The greedy mapping must cost less weighted hops than the
        // pessimal (reversed center-out) placement.
        let topo = mesh(4, 4).unwrap();
        let g = vopd();
        let greedy = map_greedy(&g, &topo).unwrap();
        let mut reversed = crate::switches_center_out(&topo);
        reversed.reverse();
        let pessimal = Mapping {
            core_to_switch: reversed.into_iter().take(g.cores.len()).collect(),
        };
        assert!(greedy.weighted_hops(&g, &topo) < pessimal.weighted_hops(&g, &topo));
    }

    #[test]
    fn mapper_rejects_small_topologies() {
        let topo = mesh(2, 2).unwrap();
        assert!(matches!(
            map_greedy(&vopd(), &topo),
            Err(ScenarioError::Mapping { .. })
        ));
    }

    #[test]
    fn workload_lowering_shapes_up() {
        let topo = mesh(4, 4).unwrap();
        let w = CoreGraphWorkload::new(vopd(), &topo, 0.4).unwrap();
        assert_eq!(w.destinations.len(), 16);
        assert_eq!(w.loads.len(), 16);
        // The heaviest core offers exactly the peak load.
        let max = w.loads.iter().cloned().fold(0.0, f64::max);
        assert!((max - 0.4).abs() < 1e-12);
        // All loads in [0, peak].
        assert!(w.loads.iter().all(|&l| (0.0..=0.4).contains(&l)));
        let cfg = w.build_config(&topo, 4, 1_000).unwrap();
        assert_eq!(cfg.generators.len(), 16);
        // Stop condition covers exactly the budget sum.
        let budget_sum: u64 = cfg
            .generators
            .iter()
            .map(|g| match g {
                TrafficModel::Uniform(u) => u.budget.unwrap(),
                _ => unreachable!(),
            })
            .sum();
        assert_eq!(cfg.stop.delivered_packets, Some(budget_sum));
        assert_eq!(budget_sum, 1_000);
    }

    #[test]
    fn workload_on_larger_topology_parks_unused_switches() {
        let topo = mesh(5, 5).unwrap();
        let w = CoreGraphWorkload::new(mpeg4_decoder(), &topo, 0.3).unwrap();
        let idle = w.loads.iter().filter(|&&l| l == 0.0).count();
        // 25 switches, 12 cores, but some cores are pure sinks; at
        // least the 13 unoccupied switches are idle.
        assert!(idle >= 13, "expected >= 13 idle generators, got {idle}");
        let cfg = w.build_config(&topo, 4, 500).unwrap();
        assert_eq!(cfg.generators.len(), 25);
    }

    #[test]
    fn determinism_of_mapping() {
        let topo = mesh(4, 4).unwrap();
        let a = map_greedy(&vopd(), &topo).unwrap();
        let b = map_greedy(&vopd(), &topo).unwrap();
        assert_eq!(a, b);
    }
}
