//! # nocem-scenarios — scenario & workload subsystem
//!
//! The paper demonstrates its emulation framework on a single 6-switch
//! setup with uniform and burst traffic. Every serious NoC evaluation
//! since runs a *matrix* of topologies × traffic patterns × loads, plus
//! application workloads. This crate turns the framework into that
//! workload library:
//!
//! * [`patterns`] — the eight classic **synthetic spatial traffic
//!   patterns** (uniform-random, transpose, bit-complement,
//!   bit-reversal, shuffle, tornado, hotspot, nearest-neighbor),
//!   parameterized over any `nocem-topology` mesh/torus/ring and
//!   lowered into per-TG destination distributions of
//!   `nocem-traffic`;
//! * [`coregraph`] — a small **application core-graph IR** (cores,
//!   directed flows with bandwidth weights), two bundled graphs
//!   modeled on the classic MPEG-4 decoder and VOPD benchmarks, and a
//!   greedy bandwidth-aware mapper onto generated topologies;
//! * [`scenario`] — named topology specs and the glue that turns a
//!   (pattern, topology, load) triple into a ready-to-run
//!   `nocem::PlatformConfig` with a deterministic per-scenario seed;
//! * [`registry`] — the scenario registry: name → recipe lookup over
//!   the built-in catalogue plus user registrations;
//! * [`matrix`] — the **scenario-matrix runner**: expands
//!   `scenarios × topologies × loads` into sweep points, runs them in
//!   parallel through `nocem::sweep`, and aggregates one CSV.
//!
//! # Example
//!
//! ```
//! use nocem_scenarios::matrix::MatrixSpec;
//! use nocem_scenarios::registry::ScenarioRegistry;
//! use nocem_scenarios::scenario::TopologySpec;
//!
//! let registry = ScenarioRegistry::builtin();
//! let spec = MatrixSpec {
//!     scenarios: vec!["transpose".into(), "tornado".into()],
//!     topologies: vec![TopologySpec::Mesh { width: 4, height: 4 }],
//!     loads: vec![0.10],
//!     shards: vec![1],
//!     packet_flits: 4,
//!     packets_per_point: 400,
//!     // Hybrid clock gating: identical results, fewer stepped cycles.
//!     clock_mode: nocem::ClockMode::Gated,
//! };
//! let outcome = spec.run(&registry, 2).unwrap();
//! assert_eq!(outcome.rows.len(), 2);
//! assert!(outcome.rows.iter().all(|r| r.results.delivered == 400));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coregraph;
pub mod matrix;
pub mod patterns;
pub mod registry;
pub mod scenario;

pub use coregraph::{mpeg4_decoder, vopd, CoreFlow, CoreGraph, CoreGraphWorkload, Mapping};
pub use matrix::{MatrixError, MatrixOutcome, MatrixRow, MatrixSpec};
pub use patterns::{PatternTraffic, SyntheticPattern};
pub use registry::{Scenario, ScenarioKind, ScenarioRegistry};
pub use scenario::{scenario_seed, ScenarioSpec, TopologySpec};

use nocem_common::ids::SwitchId;

/// Errors raised while constructing scenarios.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScenarioError {
    /// The requested scenario name is not in the registry.
    UnknownScenario {
        /// The name that failed to resolve.
        name: String,
    },
    /// A synthetic pattern cannot be instantiated on this topology.
    NotApplicable {
        /// Pattern name.
        pattern: &'static str,
        /// Topology name.
        topology: String,
        /// Why the combination is invalid.
        reason: String,
    },
    /// The topology itself failed to build or route.
    Topology(nocem_topology::TopologyError),
    /// A core graph cannot be mapped onto the topology.
    Mapping {
        /// Core-graph name.
        graph: String,
        /// Why the mapping failed.
        reason: String,
    },
    /// A core graph is malformed (dangling core index, negative
    /// bandwidth, …).
    MalformedGraph {
        /// Core-graph name.
        graph: String,
        /// Why the graph is invalid.
        reason: String,
    },
    /// The per-point packet budget is too small for the scenario
    /// (every active generator needs at least one packet). A sizing
    /// problem of the run, not of the scenario — the matrix runner
    /// skips such points instead of aborting.
    BudgetTooSmall {
        /// Scenario (core-graph) name.
        scenario: String,
        /// Packets the point would need at minimum.
        needed: u64,
        /// Packets the spec offered.
        available: u64,
    },
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::UnknownScenario { name } => {
                write!(f, "unknown scenario {name:?}")
            }
            ScenarioError::NotApplicable {
                pattern,
                topology,
                reason,
            } => write!(
                f,
                "pattern {pattern} not applicable to {topology}: {reason}"
            ),
            ScenarioError::Topology(e) => write!(f, "topology error: {e}"),
            ScenarioError::Mapping { graph, reason } => {
                write!(f, "cannot map core graph {graph}: {reason}")
            }
            ScenarioError::MalformedGraph { graph, reason } => {
                write!(f, "malformed core graph {graph}: {reason}")
            }
            ScenarioError::BudgetTooSmall {
                scenario,
                needed,
                available,
            } => write!(
                f,
                "{scenario} needs at least {needed} packets per point, got {available}"
            ),
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::Topology(e) => Some(e),
            _ => None,
        }
    }
}

impl From<nocem_topology::TopologyError> for ScenarioError {
    fn from(e: nocem_topology::TopologyError) -> Self {
        ScenarioError::Topology(e)
    }
}

/// Orders switches by distance from the topology's "center": grid
/// center for meshes/tori, id order otherwise. Ties break by id so the
/// order is deterministic. Used by the hotspot pattern (hotspots sit
/// in the center, where they hurt most) and the core-graph mapper
/// (high-traffic cores want central placement).
fn switches_center_out(topo: &nocem_topology::Topology) -> Vec<SwitchId> {
    let mut ids: Vec<SwitchId> = topo.switch_ids().collect();
    if let Some(grid) = topo.grid() {
        let (cx, cy) = (
            f64::from(grid.width - 1) / 2.0,
            f64::from(grid.height - 1) / 2.0,
        );
        ids.sort_by_key(|&s| {
            let (x, y) = grid.coords(s);
            let d = (f64::from(x) - cx).abs() + (f64::from(y) - cy).abs();
            // Scale to an integer key; grids are far smaller than 1e6.
            ((d * 1_000_000.0) as u64, s.raw())
        });
    }
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let e = ScenarioError::UnknownScenario {
            name: "nope".into(),
        };
        assert!(e.to_string().contains("nope"));
        let e = ScenarioError::NotApplicable {
            pattern: "transpose",
            topology: "ring8".into(),
            reason: "needs a square grid".into(),
        };
        assert!(e.to_string().contains("transpose"));
        assert!(e.to_string().contains("ring8"));
    }

    #[test]
    fn center_out_order_on_mesh() {
        let m = nocem_topology::builders::mesh(3, 3).unwrap();
        let order = switches_center_out(&m);
        // 3x3 center is switch 4.
        assert_eq!(order[0], SwitchId::new(4));
        assert_eq!(order.len(), 9);
    }

    #[test]
    fn center_out_order_without_grid_is_id_order() {
        let r = nocem_topology::builders::ring(5).unwrap();
        let order = switches_center_out(&r);
        assert_eq!(order, (0..5).map(SwitchId::new).collect::<Vec<_>>());
    }
}
