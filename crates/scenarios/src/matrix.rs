//! The scenario-matrix runner.
//!
//! [`MatrixSpec`] names a set of registry scenarios, topologies,
//! loads and engine shard counts; [`MatrixSpec::expand`] produces one
//! labelled `nocem::SweepPoint` per *applicable* combination
//! (inapplicable ones — transpose on a ring, bit patterns on 9
//! switches — are collected as skips, not errors), and
//! [`MatrixSpec::run`] pushes the points through the parallel sweep
//! runner of `nocem-core` and aggregates everything into typed rows
//! plus one CSV document.
//!
//! Every point's platform seed derives from its scenario label
//! ([`crate::scenario_seed`]), so a matrix run is deterministic
//! regardless of worker count or scheduling — and the `shards` axis
//! never perturbs results, because the sharded engine is
//! ledger-identical to the single-threaded one (only the recorded
//! wall-clock time changes).

use crate::registry::ScenarioRegistry;
use crate::scenario::TopologySpec;
use crate::ScenarioError;
use nocem::clock::ClockMode;
use nocem::compile::compute_routing;
use nocem::config::EngineKind;
use nocem::error::EmulationError;
use nocem::results::EmulationResults;
use nocem::sweep::{compile_fault, run_config_routed, run_sweep_indexed, SweepPoint};
use nocem_common::csv::CsvWriter;

/// A `scenarios × topologies × loads × shards` experiment matrix.
#[derive(Debug, Clone)]
pub struct MatrixSpec {
    /// Registry names of the scenarios to run.
    pub scenarios: Vec<String>,
    /// Topologies to instantiate each scenario on.
    pub topologies: Vec<TopologySpec>,
    /// Offered loads (per-TG fraction of link bandwidth).
    pub loads: Vec<f64>,
    /// Engine shard counts to run each point on. `1` is the
    /// single-threaded engine; `k > 1` runs the sharded engine with
    /// `k` worker threads (same results, different wall clock — the
    /// scaling axis for 16×16/32×32 topologies). Most matrices use
    /// `vec![1]`.
    pub shards: Vec<usize>,
    /// Packet length in flits.
    pub packet_flits: u16,
    /// Packet budget of every matrix point.
    pub packets_per_point: u64,
    /// Clock mode every point runs under. `Gated` is the production
    /// setting for large matrices — cycle-equivalent to `EveryCycle`
    /// (proven by the lockstep tests) and much faster at low load;
    /// the CSV records each point's skipped cycles and effective
    /// speedup so the gating win stays visible in the perf
    /// trajectory.
    pub clock_mode: ClockMode,
}

/// One combination the matrix skipped, with the reason.
#[derive(Debug, Clone)]
pub struct SkippedPoint {
    /// The label the point would have had.
    pub label: String,
    /// Why it cannot run.
    pub reason: ScenarioError,
}

/// One executed matrix point.
#[derive(Debug, Clone)]
pub struct MatrixRow {
    /// Scenario registry name.
    pub scenario: String,
    /// Topology name.
    pub topology: String,
    /// Offered load.
    pub load: f64,
    /// Engine shard count (1 = single-threaded engine).
    pub shards: usize,
    /// Full label (`scenario@topology@load`, plus `@s<k>` when
    /// sharded).
    pub label: String,
    /// Wall-clock milliseconds the whole point took — compile /
    /// elaboration, the run, and results collection (the one matrix
    /// column that is *not* deterministic). Routing tables are
    /// computed once per (scenario, topology, load) group and shared
    /// across its `shards` axis; that one-off cost is charged to the
    /// group's first point.
    pub wall_ms: f64,
    /// The emulation results of the point.
    pub results: EmulationResults,
}

/// All outcomes of one matrix run.
#[derive(Debug, Clone)]
pub struct MatrixOutcome {
    /// Executed points, in expansion order.
    pub rows: Vec<MatrixRow>,
    /// Combinations that were skipped as inapplicable.
    pub skipped: Vec<SkippedPoint>,
}

/// Matrix failure: either expansion failed outright (unknown scenario
/// name) or a point failed to emulate.
#[derive(Debug)]
#[non_exhaustive]
pub enum MatrixError {
    /// A scenario name did not resolve or a config failed to build
    /// for a reason other than pattern applicability.
    Scenario(ScenarioError),
    /// A point compiled but failed during emulation.
    Emulation(EmulationError),
}

impl std::fmt::Display for MatrixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatrixError::Scenario(e) => write!(f, "matrix expansion failed: {e}"),
            MatrixError::Emulation(e) => write!(f, "matrix point failed: {e}"),
        }
    }
}

impl std::error::Error for MatrixError {}

impl From<ScenarioError> for MatrixError {
    fn from(e: ScenarioError) -> Self {
        MatrixError::Scenario(e)
    }
}

impl From<EmulationError> for MatrixError {
    fn from(e: EmulationError) -> Self {
        MatrixError::Emulation(e)
    }
}

impl MatrixSpec {
    /// Number of raw combinations before applicability filtering.
    pub fn combinations(&self) -> usize {
        self.scenarios.len() * self.topologies.len() * self.loads.len() * self.shards.len().max(1)
    }

    /// The shard counts to expand over (`[1]` when the field is
    /// empty, so older specs keep meaning "single-threaded").
    fn shard_axis(&self) -> Vec<usize> {
        if self.shards.is_empty() {
            vec![1]
        } else {
            self.shards.clone()
        }
    }

    /// Expands the matrix into labelled sweep points.
    ///
    /// Inapplicable combinations land in the second return value;
    /// unknown scenario names are hard errors.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::UnknownScenario`] if a scenario name
    /// is not in `registry`.
    pub fn expand(
        &self,
        registry: &ScenarioRegistry,
    ) -> Result<(Vec<SweepPoint>, Vec<SkippedPoint>), ScenarioError> {
        let (meta, points, skipped) = self.expand_with_meta(registry)?;
        drop(meta);
        Ok((points, skipped))
    }

    /// Expansion that also returns `(scenario, topology, load,
    /// shards)` per point, parallel to the points, so [`Self::run`]
    /// never has to re-parse labels (which would be lossy for loads
    /// and for scenario names containing `@`).
    #[allow(clippy::type_complexity)]
    fn expand_with_meta(
        &self,
        registry: &ScenarioRegistry,
    ) -> Result<
        (
            Vec<(String, String, f64, usize)>,
            Vec<SweepPoint>,
            Vec<SkippedPoint>,
        ),
        ScenarioError,
    > {
        let mut meta = Vec::new();
        let mut points = Vec::new();
        let mut skipped = Vec::new();
        let shard_axis = self.shard_axis();
        for name in &self.scenarios {
            let scenario = registry.resolve(name)?;
            for &topology in &self.topologies {
                for &load in &self.loads {
                    for &shards in &shard_axis {
                        let mut label = format!("{name}@{}@{load}", topology.name());
                        if shards != 1 {
                            label.push_str(&format!("@s{shards}"));
                        }
                        match scenario.build_config(
                            topology,
                            load,
                            self.packet_flits,
                            self.packets_per_point,
                        ) {
                            Ok(mut config) => {
                                config.clock_mode = self.clock_mode;
                                if shards != 1 {
                                    config.engine = EngineKind::Sharded { shards };
                                }
                                meta.push((name.clone(), topology.name(), load, shards));
                                points.push(SweepPoint::new(label, config));
                            }
                            // A pattern that doesn't fit the topology,
                            // a core graph with too few switches, or a
                            // budget too small for the point is an
                            // expected hole in the matrix, not a
                            // failure.
                            Err(
                                reason @ (ScenarioError::NotApplicable { .. }
                                | ScenarioError::Mapping { .. }
                                | ScenarioError::BudgetTooSmall { .. }),
                            ) => {
                                skipped.push(SkippedPoint { label, reason });
                            }
                            Err(other) => return Err(other),
                        }
                    }
                }
            }
        }
        Ok((meta, points, skipped))
    }

    /// Expands and runs the matrix over up to `threads` workers.
    ///
    /// Each point runs on the engine its shard count names (through
    /// `nocem::sweep::run_config_routed`) and is individually
    /// wall-clocked. Across the `shards` axis the (scenario, topology,
    /// load) platform is identical, so its routing tables — route
    /// computation plus the deadlock check, which dominate elaboration
    /// on huge meshes — are computed **once per shard group** and
    /// reused for every shard count; the one-off routing cost is
    /// charged to the group's first point's `wall_ms`. When timing
    /// sharded-vs-single speedups, run with `threads = 1` so
    /// concurrent points do not steal the shard workers' cores.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError`] on expansion failure or the first
    /// failing point (by expansion order).
    pub fn run(
        &self,
        registry: &ScenarioRegistry,
        threads: usize,
    ) -> Result<MatrixOutcome, MatrixError> {
        let (meta, points, skipped) = self.expand_with_meta(registry)?;
        // The shards axis is the innermost expansion loop, so the
        // points of one (scenario, topology, load) group — identical
        // platforms on different engines — are consecutive. One sweep
        // unit per group keeps the parallel scheduling and
        // input-order failure semantics of `run_sweep_with` while the
        // group shares its elaborated routing.
        let mut groups: Vec<(usize, usize)> = Vec::new(); // (start, len)
        for (i, m) in meta.iter().enumerate() {
            match groups.last_mut() {
                Some(&mut (start, ref mut len))
                    if (&meta[start].0, &meta[start].1, meta[start].2) == (&m.0, &m.1, m.2) =>
                {
                    *len += 1;
                }
                _ => groups.push((i, 1)),
            }
        }
        let group_points: Vec<SweepPoint> = groups
            .iter()
            .map(|&(start, _)| points[start].clone())
            .collect();
        let outcomes = run_sweep_indexed(&group_points, threads, |g, group| {
            let (start, len) = groups[g];
            let members = &points[start..start + len];
            let routing_started = std::time::Instant::now();
            let routing =
                compute_routing(&group.config).map_err(|e| compile_fault(&group.config, e))?;
            let mut routing_ms = routing_started.elapsed().as_secs_f64() * 1e3;
            let mut outs = Vec::with_capacity(len);
            for member in members {
                let started = std::time::Instant::now();
                let results = run_config_routed(&member.config, Some(&routing))?;
                let wall_ms = started.elapsed().as_secs_f64() * 1e3 + routing_ms;
                routing_ms = 0.0; // charged once, to the first member
                outs.push((results, wall_ms));
            }
            Ok::<_, EmulationError>(outs)
        })?;
        // `run_sweep_with` returns outcomes in input order and groups
        // are consecutive expansion runs, so flattening zips
        // positionally with the expansion metadata.
        let rows = outcomes
            .into_iter()
            .flat_map(|(_, outs)| outs)
            .zip(points)
            .zip(meta)
            .map(
                |(((results, wall_ms), point), (scenario, topology, load, shards))| MatrixRow {
                    scenario,
                    topology,
                    load,
                    shards,
                    label: point.label,
                    wall_ms,
                    results,
                },
            )
            .collect();
        Ok(MatrixOutcome { rows, skipped })
    }
}

impl MatrixOutcome {
    /// Renders the aggregated CSV document: one record per executed
    /// point plus a trailing comment per skipped combination.
    pub fn to_csv(&self) -> String {
        let mut csv = CsvWriter::new(&[
            "scenario",
            "topology",
            "load",
            "shards",
            "packets",
            "cycles",
            "cycles_skipped",
            "gating_speedup",
            "throughput_flits_per_cycle",
            "mean_network_latency",
            "mean_total_latency",
            "stalled_cycles",
            "wall_ms",
        ]);
        csv.comment(
            "nocem scenario matrix: one record per (scenario, topology, load, shards) point",
        );
        csv.comment(
            "cycles_skipped/gating_speedup: cycles the fast-forward kernel jumped and the \
             resulting simulated-cycles-per-stepped-cycle ratio (1.0 = ungated)",
        );
        csv.comment(
            "shards: engine worker threads (1 = single-threaded engine; results are \
             ledger-identical across shard counts, only wall_ms changes)",
        );
        for row in &self.rows {
            let r = &row.results;
            csv.record_display(&[
                &row.scenario,
                &row.topology,
                &row.load,
                &row.shards,
                &r.delivered,
                &r.cycles,
                &r.cycles_skipped,
                &format_args!("{:.2}", r.gating_speedup()),
                &format_args!("{:.4}", r.throughput()),
                &format_args!("{:.2}", r.network_latency.mean().unwrap_or(0.0)),
                &format_args!("{:.2}", r.total_latency.mean().unwrap_or(0.0)),
                &r.stalled_cycles,
                &format_args!("{:.1}", row.wall_ms),
            ]);
        }
        for s in &self.skipped {
            csv.comment(&format!("skipped {}: {}", s.label, s.reason));
        }
        csv.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocem_common::csv::CsvDocument;

    fn small_spec() -> MatrixSpec {
        MatrixSpec {
            scenarios: vec!["tornado".into(), "transpose".into()],
            topologies: vec![
                TopologySpec::Mesh {
                    width: 2,
                    height: 2,
                },
                TopologySpec::Ring { switches: 4 },
            ],
            loads: vec![0.10],
            shards: vec![1],
            packet_flits: 2,
            packets_per_point: 40,
            clock_mode: ClockMode::EveryCycle,
        }
    }

    #[test]
    fn expansion_partitions_points_and_skips() {
        let reg = ScenarioRegistry::builtin();
        let spec = small_spec();
        assert_eq!(spec.combinations(), 4);
        let (points, skipped) = spec.expand(&reg).unwrap();
        // transpose@ring4 is inapplicable; the other three run.
        assert_eq!(points.len(), 3);
        assert_eq!(skipped.len(), 1);
        assert!(skipped[0].label.starts_with("transpose@ring4"));
    }

    #[test]
    fn unmappable_core_graph_is_skipped_not_fatal() {
        let reg = ScenarioRegistry::builtin();
        let spec = MatrixSpec {
            scenarios: vec!["vopd".into()],
            topologies: vec![
                TopologySpec::Ring { switches: 4 }, // 4 switches < 16 cores
                TopologySpec::Mesh {
                    width: 4,
                    height: 4,
                },
            ],
            loads: vec![0.10],
            shards: vec![1],
            packet_flits: 2,
            packets_per_point: 64,
            clock_mode: ClockMode::EveryCycle,
        };
        let (points, skipped) = spec.expand(&reg).unwrap();
        assert_eq!(points.len(), 1);
        assert_eq!(skipped.len(), 1);
        assert!(skipped[0].label.starts_with("vopd@ring4"));
    }

    #[test]
    fn too_small_budget_is_skipped_not_fatal() {
        let reg = ScenarioRegistry::builtin();
        let spec = MatrixSpec {
            scenarios: vec!["vopd".into(), "tornado".into()],
            topologies: vec![TopologySpec::Mesh {
                width: 4,
                height: 4,
            }],
            loads: vec![0.10],
            shards: vec![1],
            packet_flits: 2,
            // Fewer packets than vopd's active generators; fine for
            // the synthetic pattern.
            packets_per_point: 8,
            clock_mode: ClockMode::EveryCycle,
        };
        let (points, skipped) = spec.expand(&reg).unwrap();
        assert_eq!(points.len(), 1, "tornado point survives");
        assert_eq!(skipped.len(), 1);
        assert!(skipped[0].label.starts_with("vopd@mesh4x4"));
        assert!(matches!(
            skipped[0].reason,
            ScenarioError::BudgetTooSmall { .. }
        ));
    }

    #[test]
    fn unknown_scenario_is_a_hard_error() {
        let reg = ScenarioRegistry::builtin();
        let mut spec = small_spec();
        spec.scenarios.push("warp_drive".into());
        assert!(matches!(
            spec.expand(&reg),
            Err(ScenarioError::UnknownScenario { .. })
        ));
    }

    #[test]
    fn run_delivers_every_budgeted_packet_and_aggregates_csv() {
        let reg = ScenarioRegistry::builtin();
        let spec = small_spec();
        let outcome = spec.run(&reg, 2).unwrap();
        assert_eq!(outcome.rows.len(), 3);
        for row in &outcome.rows {
            assert_eq!(row.results.delivered, 40, "{}", row.label);
            assert!(row.results.cycles > 0);
        }
        let csv = outcome.to_csv();
        let doc = CsvDocument::parse(&csv).unwrap();
        assert_eq!(doc.records.len(), 3);
        assert_eq!(doc.column("scenario"), Some(0));
        assert_eq!(doc.column("shards"), Some(3));
        assert_eq!(doc.column("cycles"), Some(5));
        assert_eq!(doc.column("cycles_skipped"), Some(6));
        assert_eq!(doc.column("gating_speedup"), Some(7));
        assert_eq!(doc.column("wall_ms"), Some(12));
        assert!(csv.contains("# skipped transpose@ring4"));
    }

    #[test]
    fn gated_matrix_matches_ungated_and_records_the_skip() {
        let reg = ScenarioRegistry::builtin();
        let ungated = small_spec().run(&reg, 2).unwrap();
        let gated = MatrixSpec {
            clock_mode: ClockMode::Gated,
            ..small_spec()
        }
        .run(&reg, 2)
        .unwrap();
        let mut any_skipped = false;
        for (u, g) in ungated.rows.iter().zip(&gated.rows) {
            assert_eq!(u.label, g.label);
            // Behaviour is identical; only the skip counter differs.
            let mut g_norm = g.results.clone();
            any_skipped |= g_norm.cycles_skipped > 0;
            g_norm.cycles_skipped = 0;
            assert_eq!(g_norm, u.results, "{} diverged under gating", u.label);
        }
        assert!(any_skipped, "a 10%-load matrix must skip some cycles");
        let csv = gated.to_csv();
        assert!(csv.contains("cycles_skipped"));
        assert!(csv.contains("gating_speedup"));
    }

    #[test]
    fn shards_axis_is_ledger_identical_and_labelled() {
        let reg = ScenarioRegistry::builtin();
        let spec = MatrixSpec {
            scenarios: vec!["tornado".into()],
            topologies: vec![TopologySpec::Mesh {
                width: 4,
                height: 4,
            }],
            loads: vec![0.10],
            shards: vec![1, 2],
            packet_flits: 2,
            packets_per_point: 60,
            clock_mode: ClockMode::EveryCycle,
        };
        assert_eq!(spec.combinations(), 2);
        let outcome = spec.run(&reg, 1).unwrap();
        assert_eq!(outcome.rows.len(), 2);
        let (single, sharded) = (&outcome.rows[0], &outcome.rows[1]);
        assert_eq!(single.shards, 1);
        assert_eq!(sharded.shards, 2);
        assert!(sharded.label.ends_with("@s2"), "{}", sharded.label);
        // The shards axis only changes the wall clock, never results.
        assert_eq!(single.results, sharded.results);
        let csv = outcome.to_csv();
        assert!(csv.contains("shards"));
        assert!(csv.contains("wall_ms"));
    }

    #[test]
    fn shard_groups_share_routing_without_reordering_rows() {
        // Two loads x two shard counts: four points in two routing
        // groups. Rows must come back in expansion order (shards
        // innermost), with the sharded result identical to its
        // group's single-threaded baseline.
        let reg = ScenarioRegistry::builtin();
        let spec = MatrixSpec {
            scenarios: vec!["tornado".into()],
            topologies: vec![TopologySpec::Mesh {
                width: 4,
                height: 4,
            }],
            loads: vec![0.05, 0.10],
            shards: vec![1, 2],
            packet_flits: 2,
            packets_per_point: 48,
            clock_mode: ClockMode::EveryCycle,
        };
        let outcome = spec.run(&reg, 3).unwrap();
        let labels: Vec<&str> = outcome.rows.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(
            labels,
            [
                "tornado@mesh4x4@0.05",
                "tornado@mesh4x4@0.05@s2",
                "tornado@mesh4x4@0.1",
                "tornado@mesh4x4@0.1@s2",
            ]
        );
        for pair in outcome.rows.chunks(2) {
            assert_eq!(pair[0].results, pair[1].results, "{}", pair[1].label);
        }
        // The two loads genuinely differ (distinct seeds and gaps).
        assert_ne!(
            outcome.rows[0].results.cycles,
            outcome.rows[2].results.cycles
        );
    }

    #[test]
    fn duplicate_axis_values_keep_their_own_rows() {
        // Regression: group lookup used to key on the raw point
        // label, so a repeated axis value (two identical loads here)
        // made both groups run the last group's members and
        // misattribute results.
        let reg = ScenarioRegistry::builtin();
        let spec = MatrixSpec {
            scenarios: vec!["tornado".into()],
            topologies: vec![TopologySpec::Mesh {
                width: 2,
                height: 2,
            }],
            loads: vec![0.10, 0.10],
            shards: vec![1],
            packet_flits: 2,
            packets_per_point: 40,
            clock_mode: ClockMode::EveryCycle,
        };
        let outcome = spec.run(&reg, 2).unwrap();
        assert_eq!(outcome.rows.len(), 2);
        for row in &outcome.rows {
            assert_eq!(row.label, "tornado@mesh2x2@0.1");
            assert_eq!(row.results.delivered, 40, "both duplicates really ran");
        }
        assert_eq!(outcome.rows[0].results, outcome.rows[1].results);
    }

    #[test]
    fn matrix_is_deterministic_across_thread_counts() {
        let reg = ScenarioRegistry::builtin();
        let spec = small_spec();
        let serial = spec.run(&reg, 1).unwrap();
        let parallel = spec.run(&reg, 4).unwrap();
        for (s, p) in serial.rows.iter().zip(&parallel.rows) {
            assert_eq!(s.label, p.label);
            assert_eq!(s.results.cycles, p.results.cycles);
            assert_eq!(s.results.delivered, p.results.delivered);
        }
    }
}
