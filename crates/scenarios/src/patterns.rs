//! Synthetic spatial traffic patterns.
//!
//! Each pattern maps every source switch of a topology to a
//! *destination distribution* over switches, in the style every NoC
//! evaluation since Dally & Towles' textbook uses:
//!
//! | pattern | destination of source `s` |
//! |---|---|
//! | uniform-random | every other switch, equal probability |
//! | transpose | `(x, y) → (y, x)` on a square grid |
//! | bit-complement | `s → !s` over `log2(N)` bits |
//! | bit-reversal | `s → reverse(s)` over `log2(N)` bits |
//! | shuffle | `s → rotate_left(s, 1)` over `log2(N)` bits |
//! | tornado | half-way around each dimension |
//! | hotspot | center switches drawn `weight×` more often |
//! | nearest-neighbor | one-hop neighbors, equal probability |
//!
//! A pattern *expands* ([`SyntheticPattern::traffic`]) into dense
//! [`FlowSpec`]s plus one [`DestinationModel`] per traffic generator —
//! exactly what `nocem::PlatformConfig` consumes. Patterns address
//! destinations by switch, so they require a topology with at least
//! one TG and one TR per switch (what the mesh/torus/ring builders
//! produce); [`Topology::has_endpoint_pair_per_switch`] is the gate.

use crate::ScenarioError;
use nocem_common::ids::FlowId;
use nocem_common::ids::SwitchId;
use nocem_topology::routing::FlowSpec;
use nocem_topology::Topology;
use nocem_traffic::generator::DestinationModel;

/// Default hotspot count for [`SyntheticPattern::Hotspot`].
pub const DEFAULT_HOTSPOTS: u32 = 1;
/// Default hotspot weight multiplier (a hotspot is drawn this many
/// times more often than a regular destination).
pub const DEFAULT_HOTSPOT_WEIGHT: u32 = 8;

/// A synthetic spatial traffic pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SyntheticPattern {
    /// Uniform-random destination over all other switches.
    UniformRandom,
    /// Matrix transpose `(x, y) → (y, x)`; requires a square grid.
    Transpose,
    /// Bitwise complement of the switch index; requires a
    /// power-of-two switch count.
    BitComplement,
    /// Bit-order reversal of the switch index; requires a
    /// power-of-two switch count.
    BitReversal,
    /// Perfect shuffle (rotate index bits left by one); requires a
    /// power-of-two switch count.
    Shuffle,
    /// Tornado: half-way around each dimension (grid) or around the
    /// ring (no grid).
    Tornado,
    /// Hotspot: `hotspots` central switches receive `weight×` the
    /// traffic of every other switch.
    Hotspot {
        /// Number of hotspot switches (≥ 1).
        hotspots: u32,
        /// Relative draw weight of a hotspot destination (≥ 2).
        weight: u32,
    },
    /// Uniform choice among the switches one hop away.
    NearestNeighbor,
}

impl SyntheticPattern {
    /// The eight built-in patterns with default parameters, in
    /// catalogue order.
    pub const ALL: [SyntheticPattern; 8] = [
        SyntheticPattern::UniformRandom,
        SyntheticPattern::Transpose,
        SyntheticPattern::BitComplement,
        SyntheticPattern::BitReversal,
        SyntheticPattern::Shuffle,
        SyntheticPattern::Tornado,
        SyntheticPattern::Hotspot {
            hotspots: DEFAULT_HOTSPOTS,
            weight: DEFAULT_HOTSPOT_WEIGHT,
        },
        SyntheticPattern::NearestNeighbor,
    ];

    /// Stable registry/CSV name.
    pub fn name(&self) -> &'static str {
        match self {
            SyntheticPattern::UniformRandom => "uniform_random",
            SyntheticPattern::Transpose => "transpose",
            SyntheticPattern::BitComplement => "bit_complement",
            SyntheticPattern::BitReversal => "bit_reversal",
            SyntheticPattern::Shuffle => "shuffle",
            SyntheticPattern::Tornado => "tornado",
            SyntheticPattern::Hotspot { .. } => "hotspot",
            SyntheticPattern::NearestNeighbor => "nearest_neighbor",
        }
    }

    /// One-line catalogue description.
    pub fn description(&self) -> &'static str {
        match self {
            SyntheticPattern::UniformRandom => "uniform-random destination over all other switches",
            SyntheticPattern::Transpose => "matrix transpose (x,y) -> (y,x) on a square grid",
            SyntheticPattern::BitComplement => "destination = bitwise complement of source index",
            SyntheticPattern::BitReversal => "destination = bit-reversed source index",
            SyntheticPattern::Shuffle => "perfect shuffle: rotate index bits left by one",
            SyntheticPattern::Tornado => "half-way around each dimension",
            SyntheticPattern::Hotspot { .. } => "central hotspot switches drawn more often",
            SyntheticPattern::NearestNeighbor => "uniform choice among one-hop neighbors",
        }
    }

    /// Checks whether the pattern can be instantiated on `topo`.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::NotApplicable`] with the precise
    /// precondition that failed.
    pub fn check(&self, topo: &Topology) -> Result<(), ScenarioError> {
        let fail = |reason: String| {
            Err(ScenarioError::NotApplicable {
                pattern: self.name(),
                topology: topo.name().to_owned(),
                reason,
            })
        };
        if !topo.has_endpoint_pair_per_switch() {
            return fail("every switch needs one TG and one TR".into());
        }
        let n = topo.switch_count();
        match self {
            SyntheticPattern::UniformRandom | SyntheticPattern::Tornado => {
                if n < 2 {
                    return fail("needs at least two switches".into());
                }
            }
            SyntheticPattern::Transpose => match topo.grid() {
                None => return fail("needs grid metadata".into()),
                Some(g) if g.width != g.height => {
                    return fail(format!("needs a square grid, got {}x{}", g.width, g.height));
                }
                Some(_) => {}
            },
            SyntheticPattern::BitComplement
            | SyntheticPattern::BitReversal
            | SyntheticPattern::Shuffle => {
                if n < 2 || !n.is_power_of_two() {
                    return fail(format!("needs a power-of-two switch count, got {n}"));
                }
            }
            SyntheticPattern::Hotspot { hotspots, weight } => {
                if *hotspots == 0 || *hotspots as usize >= n {
                    return fail(format!("hotspot count {hotspots} must be in [1, {})", n));
                }
                if *weight < 2 {
                    return fail("hotspot weight must be at least 2".into());
                }
            }
            SyntheticPattern::NearestNeighbor => {
                if n < 2 {
                    return fail("needs at least two switches".into());
                }
            }
        }
        Ok(())
    }

    /// For deterministic (one-destination-per-source) patterns: the
    /// destination switch of every source switch, indexed by source.
    /// `None` for the distribution patterns (uniform-random, hotspot,
    /// nearest-neighbor).
    ///
    /// The scenario property tests assert these are true permutations.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::NotApplicable`] if [`Self::check`]
    /// fails.
    pub fn permutation(&self, topo: &Topology) -> Result<Option<Vec<SwitchId>>, ScenarioError> {
        self.check(topo)?;
        let n = topo.switch_count();
        let map = match self {
            SyntheticPattern::Transpose => {
                let grid = topo.grid().expect("checked");
                (0..n)
                    .map(|s| {
                        let (x, y) = grid.coords(SwitchId::new(s as u32));
                        grid.at(y, x)
                    })
                    .collect()
            }
            SyntheticPattern::BitComplement => {
                let mask = (n - 1) as u32;
                (0..n).map(|s| SwitchId::new(!(s as u32) & mask)).collect()
            }
            SyntheticPattern::BitReversal => {
                let bits = n.trailing_zeros();
                (0..n)
                    .map(|s| {
                        let r = (s as u32).reverse_bits() >> (32 - bits);
                        SwitchId::new(r)
                    })
                    .collect()
            }
            SyntheticPattern::Shuffle => {
                let bits = n.trailing_zeros();
                let mask = (n - 1) as u32;
                (0..n)
                    .map(|s| {
                        let s = s as u32;
                        SwitchId::new(((s << 1) | (s >> (bits - 1))) & mask)
                    })
                    .collect()
            }
            SyntheticPattern::Tornado => match topo.grid() {
                Some(grid) => (0..n)
                    .map(|s| {
                        let (x, y) = grid.coords(SwitchId::new(s as u32));
                        let dx = grid.width.div_ceil(2) - 1;
                        let dy = grid.height.div_ceil(2) - 1;
                        grid.at((x + dx) % grid.width, (y + dy) % grid.height)
                    })
                    .collect(),
                None => {
                    let hop = (n as u32).div_ceil(2) - 1;
                    (0..n)
                        .map(|s| SwitchId::new((s as u32 + hop) % n as u32))
                        .collect()
                }
            },
            SyntheticPattern::UniformRandom
            | SyntheticPattern::Hotspot { .. }
            | SyntheticPattern::NearestNeighbor => return Ok(None),
        };
        Ok(Some(map))
    }

    /// Expands the pattern over `topo` into flows and per-generator
    /// destination models.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::NotApplicable`] if [`Self::check`]
    /// fails.
    pub fn traffic(&self, topo: &Topology) -> Result<PatternTraffic, ScenarioError> {
        self.check(topo)?;
        let mut expansion = Expansion::new(topo);
        if let Some(map) = self.permutation(topo)? {
            for (src, &dst) in map.iter().enumerate() {
                let src = SwitchId::new(src as u32);
                let flow = expansion.flow(src, dst);
                expansion.fixed(src, flow);
            }
            return Ok(expansion.finish());
        }
        match *self {
            SyntheticPattern::UniformRandom => {
                for src in topo.switch_ids() {
                    let options: Vec<_> = topo
                        .switch_ids()
                        .filter(|&d| d != src)
                        .map(|d| expansion.flow_pair(src, d))
                        .collect();
                    expansion.uniform(src, options);
                }
            }
            SyntheticPattern::Hotspot { hotspots, weight } => {
                let hot: Vec<SwitchId> = crate::switches_center_out(topo)
                    .into_iter()
                    .take(hotspots as usize)
                    .collect();
                for src in topo.switch_ids() {
                    let options: Vec<_> = topo
                        .switch_ids()
                        .filter(|&d| d != src)
                        .map(|d| {
                            let w = if hot.contains(&d) { weight } else { 1 };
                            let (dst, flow) = expansion.flow_pair(src, d);
                            (dst, flow, w)
                        })
                        .collect();
                    expansion.weighted(src, options);
                }
            }
            SyntheticPattern::NearestNeighbor => {
                for src in topo.switch_ids() {
                    let mut neighbors: Vec<SwitchId> = topo
                        .switch_neighbors(src)
                        .map(|(_, _, next, _)| next)
                        .collect();
                    neighbors.sort();
                    neighbors.dedup();
                    let options: Vec<_> = neighbors
                        .into_iter()
                        .map(|d| expansion.flow_pair(src, d))
                        .collect();
                    expansion.uniform(src, options);
                }
            }
            _ => unreachable!("deterministic patterns handled via permutation()"),
        }
        Ok(expansion.finish())
    }
}

impl std::fmt::Display for SyntheticPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A pattern expanded over a concrete topology: dense flows plus one
/// destination model per generator (in `topology.generators()` order).
#[derive(Debug, Clone)]
pub struct PatternTraffic {
    /// All (src TG, dst TR) flows the pattern uses, densely numbered.
    pub flows: Vec<FlowSpec>,
    /// Destination model of each generator, `generators()` order.
    pub destinations: Vec<DestinationModel>,
}

/// Builder state shared by all pattern expansions: interns (src
/// switch, dst switch) pairs as dense flows and records per-generator
/// destination models.
struct Expansion<'t> {
    topo: &'t Topology,
    flows: Vec<FlowSpec>,
    /// `(src switch, dst switch) -> interned flow`; keeps interning
    /// O(1) per lookup (uniform-random alone creates n·(n−1) distinct
    /// flows, so a linear scan would make expansion O(n⁴)).
    flow_index: std::collections::HashMap<(SwitchId, SwitchId), FlowId>,
    /// Per-switch TG / TR, precomputed once — `Topology::generator_at`
    /// is a linear endpoint scan, far too slow to call per (src, dst)
    /// pair.
    tg_at: Vec<nocem_common::ids::EndpointId>,
    tr_at: Vec<nocem_common::ids::EndpointId>,
    /// Destination model per switch (generators are per-switch here).
    models: Vec<Option<DestinationModel>>,
}

impl<'t> Expansion<'t> {
    fn new(topo: &'t Topology) -> Self {
        // `check()` has already guaranteed one TG and one TR per
        // switch.
        let tg_at = topo
            .switch_ids()
            .map(|s| topo.generator_at(s).expect("checked: TG per switch"))
            .collect();
        let tr_at = topo
            .switch_ids()
            .map(|s| topo.receptor_at(s).expect("checked: TR per switch"))
            .collect();
        Expansion {
            topo,
            flows: Vec::new(),
            flow_index: std::collections::HashMap::new(),
            tg_at,
            tr_at,
            models: vec![None; topo.switch_count()],
        }
    }

    /// Interns the flow src-switch → dst-switch, returning its id.
    fn flow(&mut self, src: SwitchId, dst: SwitchId) -> FlowId {
        if let Some(&existing) = self.flow_index.get(&(src, dst)) {
            return existing;
        }
        let flow = FlowId::new(self.flows.len() as u32);
        self.flows.push(FlowSpec {
            flow,
            src: self.tg_at[src.index()],
            dst: self.tr_at[dst.index()],
        });
        self.flow_index.insert((src, dst), flow);
        flow
    }

    /// Interns a flow and returns the `(endpoint, flow)` pair the
    /// destination models consume.
    fn flow_pair(
        &mut self,
        src: SwitchId,
        dst: SwitchId,
    ) -> (nocem_common::ids::EndpointId, FlowId) {
        let flow = self.flow(src, dst);
        (self.tr_at[dst.index()], flow)
    }

    fn fixed(&mut self, src: SwitchId, flow: FlowId) {
        let spec = self.flows[flow.index()];
        self.models[src.index()] = Some(DestinationModel::Fixed {
            dst: spec.dst,
            flow,
        });
    }

    fn uniform(&mut self, src: SwitchId, options: Vec<(nocem_common::ids::EndpointId, FlowId)>) {
        assert!(!options.is_empty(), "pattern produced no destinations");
        self.models[src.index()] = Some(DestinationModel::UniformChoice(options));
    }

    fn weighted(
        &mut self,
        src: SwitchId,
        options: Vec<(nocem_common::ids::EndpointId, FlowId, u32)>,
    ) {
        assert!(!options.is_empty(), "pattern produced no destinations");
        self.models[src.index()] = Some(DestinationModel::Weighted(options));
    }

    fn finish(self) -> PatternTraffic {
        // Reorder per-switch models into generators() order.
        let destinations = self
            .topo
            .generators()
            .into_iter()
            .map(|g| {
                let s = self.topo.endpoint(g).switch;
                self.models[s.index()]
                    .clone()
                    .expect("every switch's generator received a model")
            })
            .collect();
        PatternTraffic {
            flows: self.flows,
            destinations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocem_topology::builders::{mesh, ring, star, torus};

    #[test]
    fn catalogue_is_complete() {
        assert_eq!(SyntheticPattern::ALL.len(), 8);
        let names: std::collections::BTreeSet<_> =
            SyntheticPattern::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), 8, "pattern names must be unique");
    }

    #[test]
    fn transpose_needs_square_grid() {
        let m = mesh(4, 2).unwrap();
        assert!(SyntheticPattern::Transpose.check(&m).is_err());
        let sq = mesh(3, 3).unwrap();
        assert!(SyntheticPattern::Transpose.check(&sq).is_ok());
        let r = ring(4).unwrap();
        assert!(SyntheticPattern::Transpose.check(&r).is_err());
    }

    #[test]
    fn bit_patterns_need_power_of_two() {
        let m9 = mesh(3, 3).unwrap();
        for p in [
            SyntheticPattern::BitComplement,
            SyntheticPattern::BitReversal,
            SyntheticPattern::Shuffle,
        ] {
            assert!(p.check(&m9).is_err(), "{p} must reject 9 switches");
            assert!(p.check(&mesh(4, 4).unwrap()).is_ok());
            assert!(p.check(&ring(8).unwrap()).is_ok());
        }
    }

    #[test]
    fn patterns_reject_star_hub_without_endpoints() {
        let s = star(4).unwrap();
        for p in SyntheticPattern::ALL {
            assert!(p.check(&s).is_err(), "{p} must reject hub-only switches");
        }
    }

    #[test]
    fn transpose_permutation_on_4x4() {
        let m = mesh(4, 4).unwrap();
        let map = SyntheticPattern::Transpose
            .permutation(&m)
            .unwrap()
            .unwrap();
        let grid = m.grid().unwrap();
        // (1, 2) -> (2, 1): switch 9 -> switch 6.
        assert_eq!(map[grid.at(1, 2).index()], grid.at(2, 1));
        // Diagonal maps to itself.
        assert_eq!(map[grid.at(3, 3).index()], grid.at(3, 3));
    }

    #[test]
    fn bit_complement_pairs_opposite_corners() {
        let m = mesh(4, 4).unwrap();
        let map = SyntheticPattern::BitComplement
            .permutation(&m)
            .unwrap()
            .unwrap();
        assert_eq!(map[0], SwitchId::new(15));
        assert_eq!(map[15], SwitchId::new(0));
    }

    #[test]
    fn tornado_on_ring_is_half_way() {
        let r = ring(8).unwrap();
        let map = SyntheticPattern::Tornado.permutation(&r).unwrap().unwrap();
        // hop = ceil(8/2) - 1 = 3.
        assert_eq!(map[0], SwitchId::new(3));
        assert_eq!(map[6], SwitchId::new(1));
    }

    #[test]
    fn tornado_on_torus_moves_per_dimension() {
        let t = torus(4, 4).unwrap();
        let map = SyntheticPattern::Tornado.permutation(&t).unwrap().unwrap();
        let grid = t.grid().unwrap();
        // dx = dy = 1 on a 4-ary torus.
        assert_eq!(map[grid.at(0, 0).index()], grid.at(1, 1));
        assert_eq!(map[grid.at(3, 3).index()], grid.at(0, 0));
    }

    #[test]
    fn uniform_random_expands_all_pairs() {
        let m = mesh(2, 2).unwrap();
        let t = SyntheticPattern::UniformRandom.traffic(&m).unwrap();
        assert_eq!(t.flows.len(), 4 * 3);
        assert_eq!(t.destinations.len(), 4);
        for d in &t.destinations {
            match d {
                DestinationModel::UniformChoice(opts) => assert_eq!(opts.len(), 3),
                other => panic!("expected uniform choice, got {other:?}"),
            }
        }
    }

    #[test]
    fn hotspot_weights_center() {
        let m = mesh(3, 3).unwrap();
        let t = SyntheticPattern::Hotspot {
            hotspots: 1,
            weight: 10,
        }
        .traffic(&m)
        .unwrap();
        // Sources other than the center must weight the center 10x.
        let center_tr = m.receptor_at(SwitchId::new(4)).unwrap();
        for (i, d) in t.destinations.iter().enumerate() {
            let src_switch = m.endpoint(m.generators()[i]).switch;
            let DestinationModel::Weighted(opts) = d else {
                panic!("expected weighted model");
            };
            if src_switch != SwitchId::new(4) {
                let hot = opts.iter().find(|&&(e, _, _)| e == center_tr).unwrap();
                assert_eq!(hot.2, 10);
            }
            assert!(opts.iter().all(|&(_, _, w)| w == 1 || w == 10));
        }
    }

    #[test]
    fn nearest_neighbor_uses_one_hop_switches() {
        let m = mesh(3, 3).unwrap();
        let t = SyntheticPattern::NearestNeighbor.traffic(&m).unwrap();
        // Corner switch 0 has exactly two neighbors.
        let DestinationModel::UniformChoice(opts) = &t.destinations[0] else {
            panic!("expected uniform choice");
        };
        assert_eq!(opts.len(), 2);
        // Center switch 4 has four.
        let DestinationModel::UniformChoice(opts) = &t.destinations[4] else {
            panic!("expected uniform choice");
        };
        assert_eq!(opts.len(), 4);
    }

    #[test]
    fn flow_ids_are_dense_and_unique() {
        let m = mesh(4, 4).unwrap();
        for p in SyntheticPattern::ALL {
            let t = p.traffic(&m).unwrap();
            for (i, f) in t.flows.iter().enumerate() {
                assert_eq!(f.flow.index(), i, "{p}: flows must be densely numbered");
            }
            let pairs: std::collections::BTreeSet<_> =
                t.flows.iter().map(|f| (f.src, f.dst)).collect();
            assert_eq!(pairs.len(), t.flows.len(), "{p}: duplicate flow pair");
        }
    }
}
