//! The scenario registry: name → recipe.
//!
//! A [`Scenario`] is a *topology-free* recipe — a synthetic pattern or
//! a core-graph workload — that the matrix runner (or a user) binds to
//! a concrete topology and load. [`ScenarioRegistry::builtin`] holds
//! the full catalogue: the eight synthetic patterns plus the two
//! bundled core graphs; users can [`ScenarioRegistry::register`] more.

use crate::coregraph::{mpeg4_decoder, vopd, CoreGraph, CoreGraphWorkload};
use crate::patterns::SyntheticPattern;
use crate::scenario::{ScenarioSpec, TopologySpec};
use crate::ScenarioError;
use nocem::config::PlatformConfig;
use std::collections::BTreeMap;

/// What a scenario runs.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum ScenarioKind {
    /// A synthetic spatial traffic pattern.
    Pattern(SyntheticPattern),
    /// An application core-graph workload.
    CoreGraph(CoreGraph),
}

/// A named, topology-free scenario recipe.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Registry key (also the CSV `scenario` column).
    pub name: String,
    /// One-line human description for catalogues.
    pub description: String,
    /// The recipe.
    pub kind: ScenarioKind,
}

impl Scenario {
    /// Binds the recipe to a topology / load / packet parameters and
    /// lowers it into a runnable configuration.
    ///
    /// For core-graph scenarios, `load` is the peak per-TG offered
    /// load (the heaviest core's TG offers exactly `load`; the others
    /// scale down proportionally to their bandwidth).
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError`] when the recipe is not applicable to
    /// the topology.
    pub fn build_config(
        &self,
        topology: TopologySpec,
        load: f64,
        packet_flits: u16,
        total_packets: u64,
    ) -> Result<PlatformConfig, ScenarioError> {
        let mut config = match &self.kind {
            ScenarioKind::Pattern(pattern) => ScenarioSpec {
                pattern: *pattern,
                topology,
                load,
                packet_flits,
                total_packets,
            }
            .build_config()?,
            ScenarioKind::CoreGraph(graph) => {
                let topo = topology.build()?;
                let workload = CoreGraphWorkload::new(graph.clone(), &topo, load)?;
                workload.build_config(&topo, packet_flits, total_packets)?
            }
        };
        // Name and seed come from the *registry* name, not the
        // recipe's canonical name: two differently-parameterized
        // registrations of the same pattern (e.g. two hotspot
        // variants) must not share a seed, and matrix rows must carry
        // a name that resolves back to this registry entry.
        let label = format!("{}@{}@{load}", self.name, topology.name());
        config.seed = crate::scenario::scenario_seed(&label);
        config.name = label;
        Ok(config)
    }
}

/// Name-indexed scenario catalogue.
#[derive(Debug, Clone, Default)]
pub struct ScenarioRegistry {
    scenarios: BTreeMap<String, Scenario>,
}

impl ScenarioRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The built-in catalogue: the eight synthetic patterns (by
    /// pattern name) plus `mpeg4` and `vopd`.
    pub fn builtin() -> Self {
        let mut reg = Self::new();
        for pattern in SyntheticPattern::ALL {
            reg.register(Scenario {
                name: pattern.name().to_owned(),
                description: pattern.description().to_owned(),
                kind: ScenarioKind::Pattern(pattern),
            });
        }
        for graph in [mpeg4_decoder(), vopd()] {
            reg.register(Scenario {
                name: graph.name.clone(),
                description: format!(
                    "core-graph workload: {} cores, {} flows",
                    graph.cores.len(),
                    graph.flows.len()
                ),
                kind: ScenarioKind::CoreGraph(graph),
            });
        }
        reg
    }

    /// Adds (or replaces) a scenario under its name.
    pub fn register(&mut self, scenario: Scenario) {
        self.scenarios.insert(scenario.name.clone(), scenario);
    }

    /// Looks a scenario up by name.
    pub fn get(&self, name: &str) -> Option<&Scenario> {
        self.scenarios.get(name)
    }

    /// Like [`Self::get`] but with a typed error for matrix
    /// expansion.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::UnknownScenario`].
    pub fn resolve(&self, name: &str) -> Result<&Scenario, ScenarioError> {
        self.get(name)
            .ok_or_else(|| ScenarioError::UnknownScenario {
                name: name.to_owned(),
            })
    }

    /// All scenario names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.scenarios.keys().map(String::as_str).collect()
    }

    /// Iterates over the catalogue in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Scenario> + '_ {
        self.scenarios.values()
    }

    /// Number of registered scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_catalogue_contents() {
        let reg = ScenarioRegistry::builtin();
        assert_eq!(reg.len(), 10, "8 patterns + 2 core graphs");
        for name in [
            "uniform_random",
            "transpose",
            "bit_complement",
            "bit_reversal",
            "shuffle",
            "tornado",
            "hotspot",
            "nearest_neighbor",
            "mpeg4",
            "vopd",
        ] {
            assert!(reg.get(name).is_some(), "missing scenario {name}");
        }
        assert!(reg.get("bogus").is_none());
        assert!(matches!(
            reg.resolve("bogus"),
            Err(ScenarioError::UnknownScenario { .. })
        ));
    }

    #[test]
    fn registry_lookup_builds_configs() {
        let reg = ScenarioRegistry::builtin();
        let mesh = TopologySpec::Mesh {
            width: 4,
            height: 4,
        };
        let cfg = reg
            .resolve("tornado")
            .unwrap()
            .build_config(mesh, 0.2, 4, 100)
            .unwrap();
        assert_eq!(cfg.generators.len(), 16);
        let cfg = reg
            .resolve("vopd")
            .unwrap()
            .build_config(mesh, 0.2, 4, 100)
            .unwrap();
        assert_eq!(cfg.generators.len(), 16);
    }

    #[test]
    fn config_name_and_seed_follow_registry_name() {
        let mut reg = ScenarioRegistry::builtin();
        reg.register(Scenario {
            name: "hotspot_heavy".into(),
            description: "meaner hotspot".into(),
            kind: ScenarioKind::Pattern(SyntheticPattern::Hotspot {
                hotspots: 2,
                weight: 16,
            }),
        });
        let mesh = TopologySpec::Mesh {
            width: 4,
            height: 4,
        };
        let base = reg
            .resolve("hotspot")
            .unwrap()
            .build_config(mesh, 0.1, 2, 64)
            .unwrap();
        let heavy = reg
            .resolve("hotspot_heavy")
            .unwrap()
            .build_config(mesh, 0.1, 2, 64)
            .unwrap();
        // Matrix-label shape, resolving back to the registry entry.
        assert_eq!(base.name, "hotspot@mesh4x4@0.1");
        assert_eq!(heavy.name, "hotspot_heavy@mesh4x4@0.1");
        // Differently-parameterized registrations never share a seed.
        assert_ne!(base.seed, heavy.seed);
    }

    #[test]
    fn user_registration_overrides() {
        let mut reg = ScenarioRegistry::builtin();
        let n = reg.len();
        reg.register(Scenario {
            name: "hotspot".into(),
            description: "meaner hotspot".into(),
            kind: ScenarioKind::Pattern(SyntheticPattern::Hotspot {
                hotspots: 2,
                weight: 16,
            }),
        });
        assert_eq!(reg.len(), n, "replacement, not addition");
        assert_eq!(reg.get("hotspot").unwrap().description, "meaner hotspot");
    }
}
