//! From (pattern, topology, load) to a runnable platform
//! configuration.
//!
//! [`TopologySpec`] names a generated topology the way the matrix
//! runner and CSV rows refer to it; [`ScenarioSpec`] binds a
//! [`SyntheticPattern`] to a topology, an offered load, and packet
//! parameters, and lowers the combination into a
//! [`nocem::PlatformConfig`] with a deterministic seed derived from
//! the scenario name ([`scenario_seed`]).

use crate::patterns::SyntheticPattern;
use crate::ScenarioError;
use nocem::config::{PlatformConfig, RoutingSpec, StopCondition, SwitchSettings, TrafficModel};
use nocem_stats::TrKind;
use nocem_topology::builders;
use nocem_topology::routing::{ring_minimal_path, FlowPaths, FlowSpec, RouteAlgorithm, VcPolicy};
use nocem_topology::Topology;
use nocem_traffic::stochastic::UniformConfig;

/// A named, generated topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologySpec {
    /// `width × height` 2-D mesh.
    Mesh {
        /// Columns.
        width: u32,
        /// Rows.
        height: u32,
    },
    /// `width × height` 2-D torus.
    Torus {
        /// Columns.
        width: u32,
        /// Rows.
        height: u32,
    },
    /// Ring of `switches` switches.
    Ring {
        /// Switch count.
        switches: u32,
    },
}

impl TopologySpec {
    /// Stable name used in scenario labels and CSV rows
    /// (`mesh4x4`, `torus4x4`, `ring8`).
    pub fn name(&self) -> String {
        match self {
            TopologySpec::Mesh { width, height } => format!("mesh{width}x{height}"),
            TopologySpec::Torus { width, height } => format!("torus{width}x{height}"),
            TopologySpec::Ring { switches } => format!("ring{switches}"),
        }
    }

    /// Builds the topology.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Topology`] for degenerate dimensions.
    pub fn build(&self) -> Result<Topology, ScenarioError> {
        Ok(match *self {
            TopologySpec::Mesh { width, height } => builders::mesh(width, height)?,
            TopologySpec::Torus { width, height } => builders::torus(width, height)?,
            TopologySpec::Ring { switches } => builders::ring(switches)?,
        })
    }
}

/// The routing a scenario applies to its topology: the route spec
/// plus the virtual-channel scheme that keeps it deadlock-free.
#[derive(Debug, Clone)]
pub struct ScenarioRouting {
    /// How flows are routed.
    pub routing: RoutingSpec,
    /// How paths are labelled with virtual channels.
    pub vc_policy: VcPolicy,
    /// Virtual channels the switches need for the labels.
    pub num_vcs: u8,
}

/// Deadlock-free *minimal* routing for a scenario topology and flow
/// set:
///
/// * meshes route dimension-ordered XY on a single VC (acyclic channel
///   dependencies, the classic result);
/// * tori route dimension-ordered XY taking the shorter direction
///   around each dimension — wrap-around links included — on 2 VCs
///   with a dateline assignment;
/// * rings route the shorter arc — crossing the wrap-around when it is
///   nearer — on 2 VCs with a dateline assignment (the line-routing
///   restriction the single-VC platform needed is gone);
/// * anything else falls back to shortest-path on a single VC.
pub fn scenario_routing(topo: &Topology, flows: &[FlowSpec]) -> ScenarioRouting {
    if let Some(grid) = topo.grid() {
        // A torus is a grid with wrap links; a mesh has none. (Tori
        // with both dimensions <= 2 degenerate to meshes.)
        let is_torus = topo
            .links()
            .any(|l| match (l.from_switch(), l.to_switch()) {
                (Some(a), Some(b)) => grid.is_wrap_hop(a, b),
                _ => false,
            });
        return if is_torus {
            ScenarioRouting {
                routing: RoutingSpec::Algorithm(RouteAlgorithm::TorusXy),
                vc_policy: VcPolicy::Dateline,
                num_vcs: 2,
            }
        } else {
            ScenarioRouting {
                routing: RoutingSpec::Algorithm(RouteAlgorithm::Xy),
                vc_policy: VcPolicy::SingleVc,
                num_vcs: 1,
            }
        };
    }
    if topo.is_switch_ring() && topo.switch_count() >= 3 {
        let n = topo.switch_count() as u32;
        let paths = flows
            .iter()
            .map(|&spec| {
                let a = topo.endpoint(spec.src).switch;
                let b = topo.endpoint(spec.dst).switch;
                FlowPaths {
                    spec,
                    paths: vec![ring_minimal_path(n, a, b)],
                }
            })
            .collect();
        return ScenarioRouting {
            routing: RoutingSpec::Explicit(paths),
            vc_policy: VcPolicy::Dateline,
            num_vcs: 2,
        };
    }
    ScenarioRouting {
        routing: RoutingSpec::Algorithm(RouteAlgorithm::Shortest),
        vc_policy: VcPolicy::SingleVc,
        num_vcs: 1,
    }
}

impl std::fmt::Display for TopologySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// Deterministic seed derived from a scenario name (FNV-1a), so a
/// scenario always replays identically — across runs, thread counts
/// and machines — without any seed bookkeeping by the caller.
pub fn scenario_seed(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    // Avoid the degenerate all-zero platform seed.
    h | 1
}

/// A fully-bound synthetic scenario: pattern × topology × load plus
/// packet parameters.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// The spatial pattern.
    pub pattern: SyntheticPattern,
    /// The topology to run it on.
    pub topology: TopologySpec,
    /// Offered load per generator, fraction of link bandwidth in
    /// `(0, 1)`.
    pub load: f64,
    /// Packet length in flits.
    pub packet_flits: u16,
    /// Total packets over all generators.
    pub total_packets: u64,
}

impl ScenarioSpec {
    /// Canonical label: `pattern@topology@load`, e.g.
    /// `tornado@mesh4x4@0.3`. The load uses `f64`'s exact shortest
    /// representation so distinct loads never collapse into one
    /// label (and therefore one seed). Doubles as the seed source.
    pub fn label(&self) -> String {
        format!(
            "{}@{}@{}",
            self.pattern.name(),
            self.topology.name(),
            self.load
        )
    }

    /// The deterministic platform seed of this scenario.
    pub fn seed(&self) -> u64 {
        scenario_seed(&self.label())
    }

    /// Lowers the scenario into a runnable configuration: builds the
    /// topology, expands the pattern into flows and destination
    /// models, splits the packet budget over the generators, and
    /// seeds the platform from the scenario label.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError`] when the topology cannot be built or
    /// the pattern is not applicable to it.
    ///
    /// # Panics
    ///
    /// Panics if `load` is outside `(0, 1)`, `packet_flits == 0` or
    /// `total_packets == 0` — caller configuration bugs.
    pub fn build_config(&self) -> Result<PlatformConfig, ScenarioError> {
        assert!(
            self.load > 0.0 && self.load < 1.0,
            "offered load must be in (0, 1)"
        );
        assert!(self.packet_flits >= 1, "packets need at least one flit");
        assert!(self.total_packets >= 1, "need at least one packet");

        let topo = self.topology.build()?;
        let traffic = self.pattern.traffic(&topo)?;
        let n = traffic.destinations.len();
        let generators: Vec<TrafficModel> = traffic
            .destinations
            .iter()
            .enumerate()
            .map(|(i, dst)| {
                TrafficModel::Uniform(UniformConfig::with_load(
                    self.load,
                    self.packet_flits,
                    Some(PlatformConfig::split_budget(self.total_packets, n, i)),
                    dst.clone(),
                ))
            })
            .collect();
        let receptors = vec![TrKind::Stochastic; topo.receptors().len()];
        let routing = scenario_routing(&topo, &traffic.flows);
        Ok(PlatformConfig {
            name: self.label(),
            flows: traffic.flows,
            routing: routing.routing,
            vc_policy: routing.vc_policy,
            switch: SwitchSettings {
                num_vcs: routing.num_vcs,
                ..SwitchSettings::default()
            },
            generators,
            receptors,
            source_queue_capacity: 16,
            stop: StopCondition {
                delivered_packets: Some(self.total_packets),
                ..StopCondition::default()
            },
            seed: self.seed(),
            record_trace: false,
            clock_mode: nocem::ClockMode::default(),
            engine: nocem::config::EngineKind::default(),
            telemetry: None,
            profile: None,
            topology: topo,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_spec_names() {
        assert_eq!(
            TopologySpec::Mesh {
                width: 4,
                height: 4
            }
            .name(),
            "mesh4x4"
        );
        assert_eq!(
            TopologySpec::Torus {
                width: 2,
                height: 3
            }
            .name(),
            "torus2x3"
        );
        assert_eq!(TopologySpec::Ring { switches: 8 }.name(), "ring8");
    }

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        assert_eq!(
            scenario_seed("tornado@mesh4x4@0.3"),
            scenario_seed("tornado@mesh4x4@0.3")
        );
        assert_ne!(
            scenario_seed("tornado@mesh4x4@0.3"),
            scenario_seed("tornado@mesh4x4@0.1")
        );
        assert_ne!(scenario_seed("a"), scenario_seed("b"));
        // Seeds are never zero.
        assert_ne!(scenario_seed(""), 0);
    }

    #[test]
    fn build_config_shapes_up() {
        let spec = ScenarioSpec {
            pattern: SyntheticPattern::Transpose,
            topology: TopologySpec::Mesh {
                width: 4,
                height: 4,
            },
            load: 0.2,
            packet_flits: 4,
            total_packets: 160,
        };
        let cfg = spec.build_config().unwrap();
        assert_eq!(cfg.name, "transpose@mesh4x4@0.2");
        assert_eq!(cfg.generators.len(), 16);
        assert_eq!(cfg.receptors.len(), 16);
        assert_eq!(cfg.stop.delivered_packets, Some(160));
        assert_eq!(cfg.seed, spec.seed());
        // Budgets cover the total exactly.
        let total: u64 = cfg
            .generators
            .iter()
            .map(|g| match g {
                TrafficModel::Uniform(u) => u.budget.unwrap(),
                _ => unreachable!(),
            })
            .sum();
        assert_eq!(total, 160);
    }

    #[test]
    fn inapplicable_pattern_is_reported() {
        let spec = ScenarioSpec {
            pattern: SyntheticPattern::Transpose,
            topology: TopologySpec::Ring { switches: 8 },
            load: 0.2,
            packet_flits: 4,
            total_packets: 100,
        };
        assert!(matches!(
            spec.build_config(),
            Err(ScenarioError::NotApplicable { .. })
        ));
    }
}
