//! Property-based correctness tests for the scenario subsystem:
//! every synthetic pattern produces valid in-topology destinations,
//! deterministic patterns are true permutations, and expansion is
//! stable across calls.

use nocem::compile::elaborate;
use nocem_common::ids::SwitchId;
use nocem_scenarios::patterns::SyntheticPattern;
use nocem_scenarios::registry::ScenarioRegistry;
use nocem_scenarios::scenario::TopologySpec;
use nocem_topology::deadlock::check_routing_deadlock_freedom;
use nocem_topology::graph::EndpointKind;
use nocem_topology::Topology;
use nocem_traffic::generator::DestinationModel;
use proptest::prelude::*;

/// A strategy over the eight built-in patterns.
fn pattern() -> impl Strategy<Value = SyntheticPattern> {
    (0usize..SyntheticPattern::ALL.len()).prop_map(|i| SyntheticPattern::ALL[i])
}

/// A strategy over small but varied topologies (meshes, tori, rings —
/// including square/non-square and power-of-two/odd switch counts).
fn topology_spec() -> impl Strategy<Value = TopologySpec> {
    (0u32..3, 2u32..6, 2u32..6).prop_map(|(kind, a, b)| match kind {
        0 => TopologySpec::Mesh {
            width: a,
            height: b,
        },
        1 => TopologySpec::Torus {
            width: a,
            height: b,
        },
        _ => TopologySpec::Ring { switches: a * b },
    })
}

/// Destination endpoints and flows of a model, flattened.
fn model_targets(model: &DestinationModel) -> Vec<(nocem_common::ids::EndpointId, u32)> {
    match model {
        DestinationModel::Fixed { dst, flow } => vec![(*dst, flow.raw())],
        DestinationModel::UniformChoice(opts) => opts.iter().map(|&(d, f)| (d, f.raw())).collect(),
        DestinationModel::Weighted(opts) => opts.iter().map(|&(d, f, _)| (d, f.raw())).collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every applicable (pattern, topology) expansion yields
    /// destinations that exist in the topology, are receptors, and
    /// ride flows whose spec matches the generator's switch.
    #[test]
    fn patterns_yield_valid_in_topology_destinations(
        p in pattern(),
        spec in topology_spec(),
    ) {
        let topo: Topology = spec.build().expect("specs are non-degenerate");
        let Ok(traffic) = p.traffic(&topo) else {
            // Inapplicable combination — the typed error is the
            // contract; nothing further to check.
            return Ok(());
        };
        let generators = topo.generators();
        prop_assert_eq!(traffic.destinations.len(), generators.len());
        // Flow ids are dense.
        for (i, f) in traffic.flows.iter().enumerate() {
            prop_assert_eq!(f.flow.index(), i);
            prop_assert_eq!(topo.endpoint(f.src).kind, EndpointKind::Generator);
            prop_assert_eq!(topo.endpoint(f.dst).kind, EndpointKind::Receptor);
        }
        for (g, model) in generators.iter().zip(&traffic.destinations) {
            let src_switch = topo.endpoint(*g).switch;
            let targets = model_targets(model);
            prop_assert!(!targets.is_empty(), "generator with no destinations");
            for (dst, flow_raw) in targets {
                // Destination endpoint exists and is a receptor.
                prop_assert!((dst.index()) < topo.endpoint_count());
                prop_assert_eq!(topo.endpoint(dst).kind, EndpointKind::Receptor);
                // The flow is registered and matches (src TG, dst TR).
                let flow = traffic.flows.get(flow_raw as usize)
                    .expect("flow id in range");
                prop_assert_eq!(flow.dst, dst);
                prop_assert_eq!(topo.endpoint(flow.src).switch, src_switch);
            }
        }
    }

    /// Deterministic patterns are true permutations of the switch
    /// set: every switch appears exactly once as a destination.
    #[test]
    fn deterministic_patterns_are_permutations(
        p in pattern(),
        spec in topology_spec(),
    ) {
        let topo = spec.build().expect("specs are non-degenerate");
        let Ok(Some(map)) = p.permutation(&topo) else {
            return Ok(());
        };
        prop_assert_eq!(map.len(), topo.switch_count());
        let mut seen = vec![false; topo.switch_count()];
        for &dst in &map {
            prop_assert!(dst.index() < topo.switch_count(), "destination off-topology");
            prop_assert!(!seen[dst.index()], "destination {} repeated", dst);
            seen[dst.index()] = true;
        }
        prop_assert!(seen.iter().all(|&s| s), "not a surjection");
    }

    /// Pattern expansion is deterministic: two expansions of the same
    /// combination are identical (the scenario seed contract relies
    /// on this).
    #[test]
    fn expansion_is_stable(p in pattern(), spec in topology_spec()) {
        let topo = spec.build().expect("specs are non-degenerate");
        let (Ok(a), Ok(b)) = (p.traffic(&topo), p.traffic(&topo)) else {
            return Ok(());
        };
        prop_assert_eq!(a.flows, b.flows);
        prop_assert_eq!(a.destinations.len(), b.destinations.len());
        for (x, y) in a.destinations.iter().zip(&b.destinations) {
            prop_assert_eq!(x, y);
        }
    }

    /// Deadlock freedom for the whole catalogue: every registry
    /// scenario, bound to any mesh/torus/ring, compiles to routing
    /// whose *per-VC* channel-dependency graph is acyclic —
    /// `elaborate()` enforces it at compile time, and the tables are
    /// re-checked directly here. On rings and tori this exercises the
    /// minimal + dateline scheme (wrap-around links in use).
    #[test]
    fn every_scenario_routing_is_deadlock_free_per_vc(
        idx in 0usize..16,
        spec in topology_spec(),
    ) {
        let reg = ScenarioRegistry::builtin();
        let names = reg.names();
        let scenario = reg.resolve(names[idx % names.len()]).unwrap();
        let Ok(cfg) = scenario.build_config(spec, 0.2, 2, 64) else {
            // Inapplicable combination (pattern/topology mismatch,
            // unmappable core graph, budget floor) — a matrix skip.
            return Ok(());
        };
        let elab = elaborate(&cfg)
            .unwrap_or_else(|e| panic!("{} must compile deadlock-free: {e}", cfg.name));
        check_routing_deadlock_freedom(&cfg.topology, &elab.routing)
            .unwrap_or_else(|c| panic!("{}: {c}", cfg.name));
        prop_assert!(
            elab.routing.max_vc() < cfg.switch.num_vcs,
            "routing VCs stay within the switch configuration"
        );
    }

    /// The tornado permutation never sends a packet more than half-way
    /// around its dimension (the pattern's defining property).
    #[test]
    fn tornado_stays_within_half_way(spec in topology_spec()) {
        let topo = spec.build().expect("specs are non-degenerate");
        let Ok(Some(map)) = SyntheticPattern::Tornado.permutation(&topo) else {
            return Ok(());
        };
        if let Some(grid) = topo.grid() {
            for (src, &dst) in map.iter().enumerate() {
                let (sx, sy) = grid.coords(SwitchId::new(src as u32));
                let (dx, dy) = grid.coords(dst);
                let hx = (dx + grid.width - sx) % grid.width;
                let hy = (dy + grid.height - sy) % grid.height;
                prop_assert!(hx <= grid.width / 2, "x hop {hx} beyond half-way");
                prop_assert!(hy <= grid.height / 2, "y hop {hy} beyond half-way");
            }
        }
    }
}

/// Ring and torus scenarios route *minimally*: every configured path
/// has exactly the graph-distance hop count (line routing would
/// detour the long way around), and at least one path crosses the
/// dateline (uses VC 1).
#[test]
fn ring_and_torus_scenarios_route_minimally_across_wraparound() {
    let reg = ScenarioRegistry::builtin();
    for spec in [
        TopologySpec::Ring { switches: 8 },
        TopologySpec::Torus {
            width: 4,
            height: 4,
        },
    ] {
        let cfg = reg
            .resolve("uniform_random")
            .unwrap()
            .build_config(spec, 0.2, 2, 64)
            .unwrap();
        assert_eq!(cfg.switch.num_vcs, 2, "{}: dateline needs 2 VCs", spec);
        let elab = elaborate(&cfg).unwrap();
        for fp in elab.routing.flows() {
            let from = cfg.topology.endpoint(fp.spec.src).switch;
            let to = cfg.topology.endpoint(fp.spec.dst).switch;
            let shortest = nocem_topology::routing::shortest_path(&cfg.topology, from, to)
                .expect("connected topology");
            for path in &fp.paths {
                assert_eq!(
                    path.len(),
                    shortest.len(),
                    "{}: flow {} routed non-minimally",
                    spec,
                    fp.spec.flow
                );
            }
        }
        assert!(
            elab.routing.max_vc() >= 1,
            "{spec}: no path crossed the dateline"
        );
    }
}
