//! The congestion counter — the paper's second trace-driven receptor
//! statistic.
//!
//! Congestion is accounted per link, at the link's *source*: a link is
//! *blocked* in a cycle when a flit waited to traverse it but was not
//! granted (arbitration loss, busy wormhole, or exhausted credits).
//! [`CongestionCounter`] accumulates `(blocked, forwarded)` pairs per
//! link; the **congestion rate** of a link is
//! `blocked / (blocked + forwarded)` — stall cycles per unit of
//! carried traffic, which is the y-axis of the paper's Figure 3.

use nocem_common::ids::LinkId;

/// Per-link congestion accumulator.
///
/// # Examples
///
/// ```
/// use nocem_common::ids::LinkId;
/// use nocem_stats::congestion::CongestionCounter;
///
/// let mut cc = CongestionCounter::new(2);
/// cc.add(LinkId::new(0), 25, 75); // blocked 25 cycles, forwarded 75 flits
/// assert!((cc.rate(LinkId::new(0)) - 0.25).abs() < 1e-9);
/// assert_eq!(cc.rate(LinkId::new(1)), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CongestionCounter {
    blocked: Vec<u64>,
    forwarded: Vec<u64>,
}

impl CongestionCounter {
    /// Creates counters for `links` links, all zero.
    pub fn new(links: usize) -> Self {
        CongestionCounter {
            blocked: vec![0; links],
            forwarded: vec![0; links],
        }
    }

    /// Number of links tracked.
    pub fn links(&self) -> usize {
        self.blocked.len()
    }

    /// Adds `blocked` stall cycles and `forwarded` flits to `link`.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn add(&mut self, link: LinkId, blocked: u64, forwarded: u64) {
        self.blocked[link.index()] += blocked;
        self.forwarded[link.index()] += forwarded;
    }

    /// Blocked cycles accumulated on `link`.
    pub fn blocked(&self, link: LinkId) -> u64 {
        self.blocked[link.index()]
    }

    /// Flits forwarded over `link`.
    pub fn forwarded(&self, link: LinkId) -> u64 {
        self.forwarded[link.index()]
    }

    /// Congestion rate of `link`: `blocked / (blocked + forwarded)`,
    /// 0 when the link never carried traffic.
    pub fn rate(&self, link: LinkId) -> f64 {
        let b = self.blocked[link.index()] as f64;
        let f = self.forwarded[link.index()] as f64;
        if b + f == 0.0 {
            0.0
        } else {
            b / (b + f)
        }
    }

    /// Utilization of `link` over `cycles` total cycles:
    /// `forwarded / cycles`.
    pub fn utilization(&self, link: LinkId, cycles: u64) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            self.forwarded[link.index()] as f64 / cycles as f64
        }
    }

    /// Aggregate congestion rate over a set of links (the paper's
    /// Figure 3 reports the rate of the hot links).
    pub fn aggregate_rate(&self, links: &[LinkId]) -> f64 {
        let mut b = 0u64;
        let mut f = 0u64;
        for &l in links {
            b += self.blocked[l.index()];
            f += self.forwarded[l.index()];
        }
        if b + f == 0 {
            0.0
        } else {
            b as f64 / (b + f) as f64
        }
    }

    /// Aggregate congestion rate over every link.
    pub fn network_rate(&self) -> f64 {
        let b: u64 = self.blocked.iter().sum();
        let f: u64 = self.forwarded.iter().sum();
        if b + f == 0 {
            0.0
        } else {
            b as f64 / (b + f) as f64
        }
    }

    /// The link with the highest congestion rate, if any traffic
    /// flowed at all.
    pub fn hottest(&self) -> Option<(LinkId, f64)> {
        (0..self.blocked.len())
            .map(|i| (LinkId::new(i as u32), self.rate(LinkId::new(i as u32))))
            .filter(|&(l, _)| self.blocked[l.index()] + self.forwarded[l.index()] > 0)
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("rates are finite"))
    }

    /// Merges another counter with the same link count.
    ///
    /// # Panics
    ///
    /// Panics if link counts differ.
    pub fn merge(&mut self, other: &CongestionCounter) {
        assert_eq!(self.links(), other.links(), "link counts differ");
        for i in 0..self.blocked.len() {
            self.blocked[i] += other.blocked[i];
            self.forwarded[i] += other.forwarded[i];
        }
    }
}

/// Per-virtual-channel buffer occupancy watermarks.
///
/// Every switch tracks, per VC index, the highest fill level (in
/// flits) any of its per-VC input FIFOs reached; this accumulator
/// max-merges those watermarks across switches (and across shard
/// snapshots) into one platform-wide view. A VC that stays near its
/// FIFO depth for the whole run is the congestion hot spot the curve
/// CSVs surface as `max_vc_occupancy`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VcOccupancy {
    max_per_vc: Vec<u64>,
}

impl VcOccupancy {
    /// Creates zeroed watermarks for `num_vcs` virtual channels.
    pub fn new(num_vcs: usize) -> Self {
        VcOccupancy {
            max_per_vc: vec![0; num_vcs],
        }
    }

    /// Number of virtual channels tracked.
    pub fn num_vcs(&self) -> usize {
        self.max_per_vc.len()
    }

    /// Raises the watermark of `vc` to at least `occupancy` (growing
    /// the VC axis on demand).
    pub fn record(&mut self, vc: usize, occupancy: u64) {
        if vc >= self.max_per_vc.len() {
            self.max_per_vc.resize(vc + 1, 0);
        }
        self.max_per_vc[vc] = self.max_per_vc[vc].max(occupancy);
    }

    /// Max-merges another accumulator (VC axes may differ in length).
    pub fn merge(&mut self, other: &VcOccupancy) {
        for (vc, &m) in other.max_per_vc.iter().enumerate() {
            self.record(vc, m);
        }
    }

    /// Watermark of one VC (0 for untracked VCs).
    pub fn max_of(&self, vc: usize) -> u64 {
        self.max_per_vc.get(vc).copied().unwrap_or(0)
    }

    /// Highest watermark over every VC.
    pub fn overall_max(&self) -> u64 {
        self.max_per_vc.iter().copied().max().unwrap_or(0)
    }

    /// The per-VC watermarks, indexed by VC.
    pub fn per_vc(&self) -> &[u64] {
        &self.max_per_vc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vc_occupancy_records_watermarks() {
        let mut o = VcOccupancy::new(2);
        assert_eq!(o.num_vcs(), 2);
        o.record(0, 3);
        o.record(0, 1); // lower: no change
        o.record(1, 4);
        assert_eq!(o.max_of(0), 3);
        assert_eq!(o.max_of(1), 4);
        assert_eq!(o.overall_max(), 4);
        assert_eq!(o.per_vc(), &[3, 4]);
        assert_eq!(o.max_of(7), 0, "untracked VCs read as empty");
    }

    #[test]
    fn vc_occupancy_grows_and_merges() {
        let mut a = VcOccupancy::new(1);
        a.record(0, 2);
        let mut b = VcOccupancy::new(3);
        b.record(0, 1);
        b.record(2, 5);
        a.merge(&b);
        assert_eq!(a.num_vcs(), 3);
        assert_eq!(a.per_vc(), &[2, 0, 5]);
        let empty = VcOccupancy::default();
        assert_eq!(empty.overall_max(), 0);
    }

    #[test]
    fn rates() {
        let mut cc = CongestionCounter::new(3);
        cc.add(LinkId::new(0), 10, 90);
        cc.add(LinkId::new(1), 50, 50);
        assert!((cc.rate(LinkId::new(0)) - 0.1).abs() < 1e-9);
        assert!((cc.rate(LinkId::new(1)) - 0.5).abs() < 1e-9);
        assert_eq!(cc.rate(LinkId::new(2)), 0.0);
    }

    #[test]
    fn accumulation_is_additive() {
        let mut cc = CongestionCounter::new(1);
        cc.add(LinkId::new(0), 5, 5);
        cc.add(LinkId::new(0), 5, 5);
        assert_eq!(cc.blocked(LinkId::new(0)), 10);
        assert_eq!(cc.forwarded(LinkId::new(0)), 10);
        assert!((cc.rate(LinkId::new(0)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn aggregate_over_hot_links() {
        let mut cc = CongestionCounter::new(4);
        cc.add(LinkId::new(1), 30, 70);
        cc.add(LinkId::new(2), 10, 90);
        let agg = cc.aggregate_rate(&[LinkId::new(1), LinkId::new(2)]);
        assert!((agg - 0.2).abs() < 1e-9);
        assert_eq!(cc.aggregate_rate(&[LinkId::new(3)]), 0.0);
    }

    #[test]
    fn network_rate_spans_all_links() {
        let mut cc = CongestionCounter::new(2);
        cc.add(LinkId::new(0), 1, 3);
        cc.add(LinkId::new(1), 3, 1);
        assert!((cc.network_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn utilization() {
        let mut cc = CongestionCounter::new(1);
        cc.add(LinkId::new(0), 0, 45);
        assert!((cc.utilization(LinkId::new(0), 100) - 0.45).abs() < 1e-9);
        assert_eq!(cc.utilization(LinkId::new(0), 0), 0.0);
    }

    #[test]
    fn hottest_link() {
        let mut cc = CongestionCounter::new(3);
        assert_eq!(cc.hottest(), None);
        cc.add(LinkId::new(0), 1, 9);
        cc.add(LinkId::new(2), 5, 5);
        let (l, r) = cc.hottest().unwrap();
        assert_eq!(l, LinkId::new(2));
        assert!((r - 0.5).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = CongestionCounter::new(1);
        a.add(LinkId::new(0), 1, 1);
        let mut b = CongestionCounter::new(1);
        b.add(LinkId::new(0), 2, 2);
        a.merge(&b);
        assert_eq!(a.blocked(LinkId::new(0)), 3);
    }

    #[test]
    #[should_panic(expected = "link counts differ")]
    fn merge_rejects_mismatch() {
        CongestionCounter::new(1).merge(&CongestionCounter::new(2));
    }
}
