//! Histograms — the statistic the paper's stochastic receptors report
//! ("histograms, which show an image of the received traffic").
//!
//! Two bucketing schemes are provided: [`Histogram`] with uniform-width
//! bins (hardware: a small RAM indexed by `value / width`) and
//! [`Log2Histogram`] with power-of-two bins (hardware: a
//! priority-encoder index), which is what latency distributions use.

/// Fixed-width-bin histogram over `u64` samples.
///
/// Values beyond the last bin are accumulated in an overflow bin so no
/// sample is ever lost — mirroring the saturating top bucket of the
/// hardware receptor RAM.
///
/// # Examples
///
/// ```
/// use nocem_stats::histogram::Histogram;
/// let mut h = Histogram::new(4, 10); // 4 bins of width 10: 0..40
/// h.record(3);
/// h.record(25);
/// h.record(1_000); // overflow bin
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.bin_count(0), 1);
/// assert_eq!(h.bin_count(2), 1);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bins: Vec<u64>,
    width: u64,
    overflow: u64,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` bins of `width` units each.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `width == 0`.
    pub fn new(bins: usize, width: u64) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(width > 0, "bin width must be positive");
        Histogram {
            bins: vec![0; bins],
            width,
            overflow: 0,
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = (value / self.width) as usize;
        if idx < self.bins.len() {
            self.bins[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of bins (excluding overflow).
    pub fn bins(&self) -> usize {
        self.bins.len()
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> u64 {
        self.width
    }

    /// Samples recorded into bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Samples beyond the last bin.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all samples, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Approximate `q`-quantile (`0.0..=1.0`) from bin boundaries: the
    /// upper edge of the bin where the cumulative count crosses `q`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut cum = 0;
        for (i, &c) in self.bins.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Some((i as u64 + 1) * self.width);
            }
        }
        Some(self.max)
    }

    /// Iterates `(bin lower edge, count)` pairs, then the overflow bin
    /// is reachable through [`Histogram::overflow`].
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .map(move |(i, &c)| (i as u64 * self.width, c))
    }

    /// Renders the histogram as ASCII bars — the monitor's "image of
    /// the received traffic". One row per non-empty bin (plus the
    /// overflow bin), bars scaled so the tallest fits `max_width`
    /// characters.
    ///
    /// # Examples
    ///
    /// ```
    /// use nocem_stats::histogram::Histogram;
    /// let mut h = Histogram::new(3, 10);
    /// for v in [1, 2, 3, 15] { h.record(v); }
    /// let art = h.render_ascii(20);
    /// assert!(art.contains("[0..10)"));
    /// assert!(art.contains('#'));
    /// ```
    pub fn render_ascii(&self, max_width: usize) -> String {
        let max_width = max_width.max(1);
        let tallest = self
            .bins
            .iter()
            .copied()
            .chain(std::iter::once(self.overflow))
            .max()
            .unwrap_or(0);
        if tallest == 0 {
            return String::from("(empty)\n");
        }
        let label_width = format!(
            "[{}..{})",
            (self.bins.len() - 1) as u64 * self.width,
            self.bins.len() as u64 * self.width
        )
        .len();
        let bar = |count: u64| {
            let len = ((count as u128 * max_width as u128) / tallest as u128) as usize;
            let len = if count > 0 { len.max(1) } else { 0 };
            "#".repeat(len)
        };
        let mut out = String::new();
        for (i, &count) in self.bins.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let lo = i as u64 * self.width;
            let hi = lo + self.width;
            out.push_str(&format!(
                "{:<label_width$} {:>8} {}\n",
                format!("[{lo}..{hi})"),
                count,
                bar(count)
            ));
        }
        if self.overflow > 0 {
            out.push_str(&format!(
                "{:<label_width$} {:>8} {}\n",
                format!("[{}..)", self.bins.len() as u64 * self.width),
                self.overflow,
                bar(self.overflow)
            ));
        }
        out
    }

    /// Merges another histogram with identical geometry.
    ///
    /// # Panics
    ///
    /// Panics if geometries differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.width, other.width, "bin widths differ");
        assert_eq!(self.bins.len(), other.bins.len(), "bin counts differ");
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl std::fmt::Display for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "histogram ({} samples)", self.count)?;
        let peak = self.bins.iter().copied().max().unwrap_or(0).max(1);
        for (edge, c) in self.iter() {
            let bar = "#".repeat((c * 40 / peak) as usize);
            writeln!(f, "{:>10} | {:>8} {}", edge, c, bar)?;
        }
        if self.overflow > 0 {
            writeln!(f, "{:>10} | {:>8}", "overflow", self.overflow)?;
        }
        Ok(())
    }
}

/// Power-of-two-bin histogram: bin `i` counts samples in
/// `[2^i, 2^(i+1))`, with bin 0 counting 0 and 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    bins: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Log2Histogram {
    /// Creates a histogram with `bins` power-of-two bins (64 covers
    /// the whole `u64` range).
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `bins > 64`.
    pub fn new(bins: usize) -> Self {
        assert!((1..=64).contains(&bins), "log2 histogram bins in 1..=64");
        Log2Histogram {
            bins: vec![0; bins],
            count: 0,
            sum: 0,
        }
    }

    /// Records one sample (values beyond the last bin saturate into
    /// it).
    pub fn record(&mut self, value: u64) {
        let idx = if value < 2 {
            0
        } else {
            (63 - value.leading_zeros()) as usize
        };
        let idx = idx.min(self.bins.len() - 1);
        self.bins[idx] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Total samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Count in bin `i` (samples in `[2^i, 2^(i+1))`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_rendering_shows_bins_and_overflow() {
        let mut h = Histogram::new(2, 10);
        h.record(1);
        h.record(2);
        h.record(55); // overflow
        let art = h.render_ascii(10);
        assert!(art.contains("[0..10)"), "{art}");
        assert!(!art.contains("[10..20)"), "empty bins are skipped: {art}");
        assert!(art.contains("[20..)"), "overflow row present: {art}");
        // The tallest bin gets the full width; nonzero rows get >= 1.
        assert!(art.contains(&"#".repeat(10)));
        let overflow_row = art.lines().find(|l| l.starts_with("[20..)")).unwrap();
        assert!(overflow_row.contains('#'));
    }

    #[test]
    fn ascii_rendering_of_empty_histogram() {
        let h = Histogram::new(4, 8);
        assert_eq!(h.render_ascii(30), "(empty)\n");
    }

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::new(3, 5);
        for v in [0, 4, 5, 14, 15] {
            h.record(v);
        }
        assert_eq!(h.bin_count(0), 2);
        assert_eq!(h.bin_count(1), 1);
        assert_eq!(h.bin_count(2), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn summary_statistics() {
        let mut h = Histogram::new(10, 10);
        for v in [10, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.mean(), Some(20.0));
        assert_eq!(h.min(), Some(10));
        assert_eq!(h.max(), Some(30));
    }

    #[test]
    fn empty_histogram_returns_none() {
        let h = Histogram::new(2, 1);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn quantiles_from_bins() {
        let mut h = Histogram::new(10, 10);
        for v in 0..100 {
            h.record(v);
        }
        // Median falls in the bin [40, 50) -> upper edge 50.
        assert_eq!(h.quantile(0.5), Some(50));
        assert_eq!(h.quantile(0.99), Some(100));
        assert_eq!(h.quantile(0.0), Some(10));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::new(2, 10);
        a.record(5);
        let mut b = Histogram::new(2, 10);
        b.record(15);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.bin_count(1), 1);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.min(), Some(5));
        assert_eq!(a.max(), Some(100));
    }

    #[test]
    #[should_panic(expected = "bin widths differ")]
    fn merge_rejects_mismatched_geometry() {
        Histogram::new(2, 10).merge(&Histogram::new(2, 5));
    }

    #[test]
    fn display_renders_bars() {
        let mut h = Histogram::new(2, 10);
        h.record(1);
        h.record(2);
        h.record(11);
        let s = h.to_string();
        assert!(s.contains("3 samples"));
        assert!(s.contains('#'));
    }

    #[test]
    fn log2_binning() {
        let mut h = Log2Histogram::new(8);
        for v in [0, 1, 2, 3, 4, 7, 8, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.bin_count(0), 2); // 0, 1
        assert_eq!(h.bin_count(1), 2); // 2, 3
        assert_eq!(h.bin_count(2), 2); // 4, 7
        assert_eq!(h.bin_count(3), 1); // 8
        assert_eq!(h.bin_count(7), 1); // saturated
        assert_eq!(h.count(), 8);
        assert!(h.mean().unwrap() > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        Histogram::new(0, 1);
    }
}
